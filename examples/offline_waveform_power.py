#!/usr/bin/env python3
"""Offline power analysis: record a waveform once, analyse it many times.

Workflow:

1. run the functional model at full speed (POWERTEST off — zero power
   code) while dumping the bus signals to a VCD file;
2. replay the recorded waveform through the macromodels under several
   technology corners (nominal, low-voltage, scaled process) without
   re-simulating;
3. cross-check the replay against a live-instrumented run.

This is the workflow a team uses when functional simulations are
expensive and power questions keep changing.

Run:  python examples/offline_waveform_power.py
"""

import os
import tempfile

from repro.analysis import TextTable, block_contribution_table
from repro.kernel import load_vcd, us
from repro.power import (
    OfflinePowerAnalyzer,
    PAPER_TECHNOLOGY,
    TECH_180NM,
    trace_bus,
)
from repro.workloads import build_paper_testbench


def record(path, duration):
    print("recording %d us of bus activity (functional-only run)..."
          % (duration / 1_000_000))
    testbench = build_paper_testbench(seed=1, power_analysis=False)
    tracer = trace_bus(testbench.sim, testbench.bus, path)
    testbench.run(duration)
    tracer.close()
    testbench.assert_protocol_clean()
    size_kb = os.path.getsize(path) / 1024
    print("  -> %s (%.0f KiB, %d transactions)"
          % (path, size_kb, testbench.transactions_completed()))
    return testbench.config


def main():
    duration = us(50)
    with tempfile.TemporaryDirectory() as tmp:
        vcd_path = os.path.join(tmp, "bus.vcd")
        config = record(vcd_path, duration)

        vcd = load_vcd(vcd_path)
        print("parsed %d signals, %.0f us of activity"
              % (len(vcd.names()), vcd.end_time / 1_000_000))
        print()

        corners = [
            ("nominal 0.35um @ 3.3V", PAPER_TECHNOLOGY),
            ("low-voltage @ 2.5V",
             PAPER_TECHNOLOGY.scaled(vdd=2.5, name="lv")),
            ("0.18um shrink @ 1.8V", TECH_180NM),
        ]
        table = TextTable(["Corner", "Total energy", "Avg power"])
        ledgers = {}
        for label, params in corners:
            analyzer = OfflinePowerAnalyzer(config, params=params)
            ledger = analyzer.analyze(vcd, clock_period_ps=10_000,
                                      first_edge_ps=5_000)
            ledgers[label] = ledger
            seconds = duration * 1e-12
            table.add_row([
                label,
                "%.2f nJ" % (ledger.total_energy * 1e9),
                "%.3f mW" % (ledger.average_power(seconds) * 1e3),
            ])
        print("Technology what-if from one recording:")
        print(table)
        print()

        print("Block breakdown at the nominal corner:")
        print(block_contribution_table(ledgers[corners[0][0]]))
        print()

        # cross-check: live monitor on an identical run
        live = build_paper_testbench(seed=1, power_analysis=True)
        live.run(duration)
        offline_total = ledgers[corners[0][0]].total_energy
        live_total = live.ledger.total_energy
        error = abs(offline_total - live_total) / live_total
        print("offline replay vs live monitor: %.2f%% difference"
              % (100 * error))
        assert error < 0.03


if __name__ == "__main__":
    main()
