#!/usr/bin/env python3
"""Two-tier fault campaign: cycle-accurate vs calibrated TLM.

Runs the *same* fault campaign (same scenarios, fault modes, seeds and
durations) on both accuracy tiers and prints what the transaction-level
tier buys and what it costs: wall-clock speedup, per-(scenario, fault)
total-energy delta against the cycle-accurate reference, and agreement
of the fault outcomes.  This is the trade docs/TLM.md documents — the
TLM tier exists so campaigns like this one can be run at orders of
magnitude more seeds and scenarios.

Run:  python examples/tlm_campaign.py
"""

import time

from repro.analysis import format_energy
from repro.faults import run_fault_campaign

SCENARIOS = ("portable-audio-player", "wireless-modem")
FAULTS = ("none", "always-retry", "hung-slave", "unreleased-split")
DURATION_US = 20.0


def run_tier(tier):
    start = time.perf_counter()
    campaign = run_fault_campaign(
        scenarios=SCENARIOS, faults=FAULTS,
        duration_us=DURATION_US, tier=tier)
    return campaign, time.perf_counter() - start


def main():
    print("Campaign: %d scenarios x %d fault modes, %.0f us each"
          % (len(SCENARIOS), len(FAULTS), DURATION_US))

    cycle, cycle_seconds = run_tier("cycle")
    tlm, tlm_seconds = run_tier("tlm")

    by_key = {(run.scenario, run.fault): run for run in tlm.runs}
    print()
    print("%-22s %-17s %9s %12s %12s %8s" % (
        "scenario", "fault", "outcomes", "cycle E", "tlm E", "delta"))
    worst = 0.0
    for ref in cycle.runs:
        fast = by_key[(ref.scenario, ref.fault)]
        agree = ("%s" % ref.outcome if ref.outcome == fast.outcome
                 else "%s!=%s" % (ref.outcome, fast.outcome))
        delta = (100.0 * (fast.total_energy - ref.total_energy)
                 / ref.total_energy) if ref.total_energy else 0.0
        worst = max(worst, abs(delta))
        print("%-22s %-17s %9s %12s %12s %+7.2f%%" % (
            ref.scenario, ref.fault, agree,
            format_energy(ref.total_energy),
            format_energy(fast.total_energy), delta))

    print()
    print("cycle tier: %6.2f s wall clock" % cycle_seconds)
    print("tlm tier:   %6.2f s wall clock  (%.1fx speedup)"
          % (tlm_seconds, cycle_seconds / tlm_seconds))
    print("worst |energy delta|: %.2f %% "
          "(committed bound: 5 %% on fault-free held-out runs; "
          "faulted runs exercise the response-cost model on top)"
          % worst)


if __name__ == "__main__":
    main()
