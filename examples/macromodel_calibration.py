#!/usr/bin/env python3
"""Macromodel calibration: derive energy models from gate level.

Walks the paper's §3/§5.1 characterisation flow end to end:

1. synthesise a gate-level one-hot decoder (NOT/AND only, as in the
   paper) and a multiplexer;
2. simulate them under random stimulus, counting node toggles and
   charging ½CV² per transition (the SIS step);
3. fit the analytic macromodels by least squares;
4. validate the fit and compare the fitted decoder slope with the
   paper's structural prediction E_DEC ∝ n_I · n_O · C_PD · HD_IN.

Run:  python examples/macromodel_calibration.py
"""

from repro.analysis import TextTable
from repro.gatelevel import (
    GateLevelSimulator,
    decoder_input_bits,
    synth_mux,
    synth_one_hot_decoder,
)
from repro.power import (
    characterize_decoder,
    characterize_mux,
    DecoderEnergyModel,
    GATE_LEVEL_TECHNOLOGY,
)


def decoder_calibration():
    print("== Decoder characterisation ==")
    table = TextTable([
        "n_outputs", "gates", "fitted pJ/HD_IN", "fitted pJ/HD_OUT",
        "mean rel err",
    ])
    for n_outputs in (2, 4, 8, 16):
        netlist = synth_one_hot_decoder(n_outputs)
        fit = characterize_decoder(n_outputs, samples=600)
        coeff = dict(zip(fit.model.feature_names, fit.model.coefficients))
        table.add_row([
            n_outputs, netlist.n_gates,
            "%.4f" % (coeff["hd_in"] * 1e12),
            "%.4f" % (coeff["hd_out"] * 1e12),
            "%.1f %%" % (100 * fit.mean_relative_error),
        ])
    print(table)
    print()
    print("The fitted model is linear in HD_IN with an HD_OUT step —")
    print("exactly the paper's E_DEC shape.  The per-HD_IN slope grows")
    print("with n_I*n_O as the structural model predicts:")
    for n_outputs in (4, 8, 16):
        n_inputs = decoder_input_bits(n_outputs)
        model = DecoderEnergyModel(n_outputs, GATE_LEVEL_TECHNOLOGY)
        print("  n_O=%2d: structural slope coefficient n_I*n_O = %d"
              % (n_outputs, n_inputs * n_outputs))
    print()


def mux_calibration():
    print("== Multiplexer characterisation ==")
    table = TextTable([
        "legs x width", "gates", "pJ per output toggle",
        "pJ per select toggle", "total-energy err",
    ])
    for n_inputs, width in ((2, 16), (3, 32), (4, 32), (4, 64)):
        netlist = synth_mux(n_inputs, width)
        fit = characterize_mux(n_inputs, width, samples=600)
        coeff = dict(zip(fit.model.feature_names, fit.model.coefficients))
        table.add_row([
            "%dx%d" % (n_inputs, width), netlist.n_gates,
            "%.4f" % (coeff["hd_out"] * 1e12),
            "%.4f" % (coeff["hd_sel"] * 1e12),
            "%.2f %%" % (100 * fit.total_energy_error),
        ])
    print(table)
    print()


def worst_case_check():
    """Sanity: a full-swing vector costs what the netlist capacitance
    allows, never more."""
    print("== Worst-case bound check ==")
    netlist = synth_mux(4, 32)
    simulator = GateLevelSimulator(netlist, vdd=1.8)
    simulator.step_ints(d0=0, d1=0, d2=0, d3=0, s=0)
    result = simulator.step_ints(
        d0=0xFFFFFFFF, d1=0xFFFFFFFF, d2=0xFFFFFFFF, d3=0xFFFFFFFF, s=0,
    )
    bound = netlist.total_capacitance() * 0.5 * 1.8 * 1.8
    print("full-swing step energy %.3e J <= netlist bound %.3e J: %s"
          % (result.energy, bound, result.energy <= bound))


def main():
    decoder_calibration()
    mux_calibration()
    worst_case_check()


if __name__ == "__main__":
    main()
