#!/usr/bin/env python3
"""Low-power optimisation study: using the analysis to save energy.

The methodology's end game (paper §2): once the hot spots are known,
evaluate optimisations *before* committing to them.  This example runs
the three levers the library models on one bursty workload:

1. **clock gating** (dynamic power management) during idle windows;
2. **bus encoding** (bus-invert on write data, T0 on addresses);
3. **arbitration policy** (fixed-priority vs round-robin vs TDMA),

and prints the energy verdict for each — plus the per-master
chargeback that tells you *who* is spending the budget.

Run:  python examples/low_power_optimization.py
"""

from repro.analysis import TextTable, format_energy
from repro.kernel import us
from repro.power import (
    BusInvertEncoder,
    ClockGateController,
    GlobalPowerMonitor,
    T0Encoder,
    evaluate_encoding,
)
from repro.workloads import AhbSystem, DmaBurstSource, PaperWriteReadSource

DURATION = us(50)
REGIONS = [(index * 0x1000, 0x1000) for index in range(2)]


def build(arbitration="fixed-priority", gate_threshold=None):
    sources = [
        PaperWriteReadSource(REGIONS, seed=1, max_pairs=3,
                             idle_range=(15, 40)),
        DmaBurstSource(REGIONS, seed=2, idle_range=(10, 40)),
    ]
    system = AhbSystem(sources, n_slaves=2, arbitration=arbitration,
                       power_analysis=False, monitor_style="none",
                       checker=False)
    controller = None
    if gate_threshold is not None:
        controller = ClockGateController(system.sim, "cgc", system.bus,
                                         idle_threshold=gate_threshold)
    monitor = GlobalPowerMonitor(system.sim, "mon", system.bus,
                                 with_clock_tree=True,
                                 clock_gate=controller)
    return system, monitor


def capture(system):
    wdata, addr = [], []

    def probe():
        wdata.append(system.bus.hwdata.value)
        addr.append(system.bus.haddr.value)

    system.sim.add_method(probe, [system.clk.posedge],
                          initialize=False)
    return wdata, addr


def main():
    # -- baseline -------------------------------------------------------
    baseline_system, baseline_monitor = build()
    wdata, addr = capture(baseline_system)
    baseline_system.run(DURATION)
    baseline = baseline_monitor.total_energy

    print("Baseline (50 us, fixed priority, no optimisation): %s"
          % format_energy(baseline))
    shares = baseline_monitor.master_energy_shares()
    table = TextTable(["Master", "Energy share"])
    for index, share in enumerate(shares):
        label = ["CPU-like", "DMA", "default master"][index]
        table.add_row([label, "%.1f %%" % (100 * share)])
    print(table)
    print()

    # -- lever 1: clock gating -----------------------------------------
    print("Lever 1: clock gating during idle windows")
    gating_table = TextTable(["Idle threshold", "Energy", "Saved"])
    for threshold in (2, 8):
        system, monitor = build(gate_threshold=threshold)
        system.run(DURATION)
        saved = baseline - monitor.total_energy
        gating_table.add_row([
            threshold, format_energy(monitor.total_energy),
            "%.1f %%" % (100 * saved / baseline),
        ])
    print(gating_table)
    print()

    # -- lever 2: bus encodings ----------------------------------------
    print("Lever 2: bus encodings on the captured traffic")
    encoding_table = TextTable(["Encoding", "Transition delta"])
    for label, values, encoder in (
            ("HWDATA bus-invert", wdata, BusInvertEncoder(32)),
            ("HADDR T0", addr, T0Encoder(32))):
        outcome = evaluate_encoding(values, 32, encoder)
        encoding_table.add_row([
            label, "%+.1f %%" % (-100 * outcome.transition_savings),
        ])
    print(encoding_table)
    print()

    # -- lever 3: arbitration ------------------------------------------
    print("Lever 3: arbitration policy")
    arb_table = TextTable(["Policy", "Energy", "Transactions"])
    for policy in ("fixed-priority", "round-robin", "tdma"):
        system, monitor = build(arbitration=policy)
        system.run(DURATION)
        arb_table.add_row([
            policy, format_energy(monitor.total_energy),
            system.transactions_completed(),
        ])
    print(arb_table)


if __name__ == "__main__":
    main()
