#!/usr/bin/env python3
"""A full AMBA topology: AHB system bus plus an APB peripheral segment.

Reproduces the architecture the paper situates the AHB in: "a
high-performance system bus ... on which the CPU, on-chip memory and
other DMA devices reside.  Also located on the high-performance bus is
a bridge to the lower bandwidth APB, where most of the system
peripheral devices are located."

A CPU-like master reads/writes RAM on the AHB and programs two APB
peripherals (UART, timer) through the bridge; the global power monitor
accounts the AHB energy throughout, and the example also shows the
latency cost of crossing the bridge.

Run:  python examples/apb_subsystem.py
"""

from repro.amba import (
    AhbBus,
    AhbConfig,
    AhbMaster,
    AhbProtocolChecker,
    AhbTransaction,
    DefaultMaster,
    MemorySlave,
)
from repro.amba.apb import ApbBridge, ApbRegisterSlave
from repro.analysis import block_contribution_table, format_energy
from repro.kernel import Clock, MHz, Simulator, us
from repro.power import GlobalPowerMonitor


RAM_BASE = 0x0000_0000
APB_BASE = 0x0001_0000


def build_system():
    sim = Simulator()
    clk = Clock.from_frequency(sim, "clk", MHz(100))
    config = AhbConfig.with_uniform_map(
        n_masters=2, n_slaves=2, region_size=0x10000, default_master=1,
    )
    bus = AhbBus(sim, "ahb", clk, config)
    cpu = AhbMaster(sim, "cpu", clk, bus.master_ports[0], bus)
    DefaultMaster(sim, "default", clk, bus.master_ports[1], bus)
    ram = MemorySlave(sim, "ram", clk, bus.slave_ports[0], bus)
    bridge = ApbBridge(
        sim, "apb_bridge", clk, bus.slave_ports[1], bus,
        apb_map=[(0x0000, 0x100), (0x0100, 0x100)],
    )
    uart = ApbRegisterSlave(sim, "uart", clk, bridge, 0)
    timer = ApbRegisterSlave(sim, "timer", clk, bridge, 1)
    checker = AhbProtocolChecker(sim, "checker", bus)
    monitor = GlobalPowerMonitor(sim, "power", bus)
    return sim, clk, bus, cpu, ram, bridge, uart, timer, checker, monitor


def main():
    (sim, clk, bus, cpu, ram, bridge, uart, timer,
     checker, monitor) = build_system()

    # Boot sequence: initialise RAM, program the UART divisor and the
    # timer reload register, then stream data RAM -> UART.
    ram_writes = [
        cpu.enqueue(AhbTransaction.write_single(RAM_BASE + 4 * i,
                                                0x1000 + i))
        for i in range(16)
    ]
    uart_divisor = cpu.enqueue(
        AhbTransaction.write_single(APB_BASE + 0x00, 115200))
    timer_reload = cpu.enqueue(
        AhbTransaction.write_single(APB_BASE + 0x100 + 0x04, 50_000))

    streams = []
    for i in range(16):
        streams.append(cpu.enqueue(
            AhbTransaction.read(RAM_BASE + 4 * i)))
        streams.append(cpu.enqueue(
            AhbTransaction.write_single(APB_BASE + 0x08, 0x1000 + i)))
    readback = cpu.enqueue(AhbTransaction.read(APB_BASE + 0x100 + 0x04))

    sim.run(until=us(20))

    assert all(txn.done for txn in ram_writes), "RAM writes incomplete"
    assert uart_divisor.done and timer_reload.done
    assert readback.rdata == [50_000], readback.rdata
    assert checker.ok, checker.violations[:3]

    print("Boot + streaming completed in %.2f us"
          % (sim.now / 1e6))
    print("UART divisor register: %d" % uart.regs[0])
    print("UART data register:    %#x" % uart.regs[2])
    print("Timer reload register: %d" % timer.regs[1])
    print("APB accesses through the bridge: %d" % bridge.apb_accesses)

    ram_read = next(txn for txn in streams if not txn.write)
    apb_write = next(txn for txn in streams if txn.write)
    print()
    print("Latency (kernel time per transaction):")
    print("  RAM read through AHB:   %d ns" % (ram_read.latency / 1000))
    print("  UART write through APB: %d ns" % (apb_write.latency / 1000))
    print("  -> the bridge adds %d wait states per access"
          % ApbBridge.APB_WAIT_STATES)

    print()
    print("AHB energy while driving the subsystem: %s"
          % format_energy(monitor.total_energy))
    print(block_contribution_table(monitor.ledger))


if __name__ == "__main__":
    main()
