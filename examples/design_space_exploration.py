#!/usr/bin/env python3
"""Design-space exploration: pick a bus architecture under a power budget.

The methodology's purpose (paper §2): "in a small time it is possible
to evaluate hundreds of different configurations and architectures in
order to reach the desired trade-offs in terms of ... speed, throughput
and power consumption."

This example sweeps three architectural knobs on a DMA-plus-CPU
workload —

* arbitration policy (fixed priority vs round robin),
* memory wait states (fast vs slow RAM macro),
* bus data width (32 vs 64 bit),

— and reports throughput, energy and energy-per-byte for every point,
then picks the best configuration under a simple constraint.

Run:  python examples/design_space_exploration.py
"""

from repro.amba import Arbitration
from repro.analysis import TextTable, format_energy
from repro.kernel import MHz, us
from repro.workloads import AhbSystem, CpuLikeSource, DmaBurstSource


def build_point(arbitration, wait_states, data_width, seed=3):
    """One design point: CPU-like master 0 plus a DMA master 1."""
    region = 0x1000
    regions = [(index * region, region) for index in range(3)]
    sources = [
        CpuLikeSource(regions, seed=seed),
        DmaBurstSource(regions, seed=seed + 1),
    ]
    return AhbSystem(
        sources, n_slaves=3, region_size=region,
        wait_states=[wait_states] * 3, data_width=data_width,
        frequency_hz=MHz(100), arbitration=arbitration,
        monitor_style="global", checker=True,
    )


def main():
    duration = us(30)
    table = TextTable([
        "Arbitration", "Wait states", "Width", "Transactions",
        "Bytes moved", "Energy", "Energy/byte",
    ])
    results = []
    for arbitration in (Arbitration.FIXED_PRIORITY,
                        Arbitration.ROUND_ROBIN):
        for wait_states in (0, 2):
            for data_width in (32, 64):
                system = build_point(arbitration, wait_states, data_width)
                system.run(duration)
                system.assert_protocol_clean()
                txns = system.transactions_completed()
                bytes_moved = sum(
                    txn.beats * (1 << int(txn.hsize))
                    for master in system.masters
                    for txn in master.completed
                )
                energy = system.total_energy
                per_byte = energy / bytes_moved if bytes_moved else 0.0
                results.append((arbitration, wait_states, data_width,
                                txns, bytes_moved, energy, per_byte))
                table.add_row([
                    arbitration, wait_states, data_width, txns,
                    bytes_moved, format_energy(energy),
                    format_energy(per_byte),
                ])

    print("Design-space sweep (30 us of CPU + DMA traffic):")
    print(table)
    print()

    # Decision rule: most throughput among points within 1.15x of the
    # lowest energy-per-byte.
    best_efficiency = min(row[6] for row in results if row[4])
    candidates = [row for row in results
                  if row[4] and row[6] <= 1.15 * best_efficiency]
    winner = max(candidates, key=lambda row: row[4])
    print("Selected architecture: %s, %d wait states, %d-bit data bus"
          % (winner[0], winner[1], winner[2]))
    print("  -> %d transactions, %s total, %s per byte"
          % (winner[3], format_energy(winner[5]),
             format_energy(winner[6])))


if __name__ == "__main__":
    main()
