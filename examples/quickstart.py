#!/usr/bin/env python3
"""Quickstart: build an AHB system, run traffic, read the power report.

Assembles the paper's testbench (two masters executing WRITE-READ
atomic pairs, a default master, three memory slaves, 100 MHz), runs it
for 50 us with the global power monitor attached, and prints the
instruction-level energy table (the paper's Table 1) plus the
sub-block breakdown (Fig. 6).

Run:  python examples/quickstart.py
"""

from repro.analysis import (
    block_contribution_table,
    format_energy,
    instruction_class_summary,
    instruction_energy_table,
)
from repro.kernel import to_seconds, us
from repro.workloads import build_paper_testbench


def main():
    # POWERTEST equivalent: power_analysis=True wires in the monitor;
    # with False, no instrumentation code exists in the model at all.
    testbench = build_paper_testbench(seed=1, power_analysis=True)
    testbench.run(us(50))

    # The protocol checker ran alongside; make sure the bus was legal.
    testbench.assert_protocol_clean()

    ledger = testbench.ledger
    elapsed = to_seconds(testbench.sim.now)

    print("Simulated %.1f us at 100 MHz (%d bus cycles)"
          % (elapsed * 1e6, ledger.cycles))
    print("Completed transactions: %d"
          % testbench.transactions_completed())
    print("Total bus energy: %s" % format_energy(ledger.total_energy))
    print("Average bus power: %.3f mW"
          % (ledger.average_power(elapsed) * 1e3))
    print()
    print("Instruction energy analysis (paper Table 1):")
    print(instruction_energy_table(ledger))
    print()
    print(instruction_class_summary(ledger))
    print()
    print("Sub-block contributions (paper Fig. 6):")
    print(block_contribution_table(ledger))


if __name__ == "__main__":
    main()
