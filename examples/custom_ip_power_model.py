#!/usr/bin/env python3
"""Applying the methodology to a new IP core: a FIFO DMA engine.

The paper's methodology is explicitly general ("an analysis approach
that could be reused for different IP typologies").  This example
builds a *new* IP — a word FIFO with a streaming input and an AHB-less
drain — and instruments it exactly per the recipe:

1. identify the instruction set (PUSH, POP, PUSH_POP, IDLE);
2. build macromodels from technology parameters (register banks via
   :class:`RegisterEnergyModel`);
3. add an Activity monitor and a power FSM *without touching the
   functional code*;
4. simulate and read the per-instruction energy table.

Run:  python examples/custom_ip_power_model.py
"""

import random

from repro.analysis import TextTable, format_energy
from repro.kernel import Clock, MHz, Module, Simulator, us
from repro.power import (
    Activity,
    EnergyLedger,
    PAPER_TECHNOLOGY,
    RegisterEnergyModel,
    hamming,
)


class WordFifo(Module):
    """A synchronous FIFO with valid/ready handshakes on both sides.

    Purely functional: contains no power code whatsoever.
    """

    def __init__(self, sim, name, clk, depth=8, width=32):
        super().__init__(sim, name)
        self.clk = clk
        self.depth = depth
        self.width = width
        self.in_valid = self.signal("in_valid")
        self.in_data = self.signal("in_data", width=width)
        self.in_ready = self.signal("in_ready", init=1)
        self.out_valid = self.signal("out_valid")
        self.out_data = self.signal("out_data", width=width)
        self.out_ready = self.signal("out_ready")
        self._storage = []
        self.pushes = 0
        self.pops = 0
        self.method(self._on_clk, [clk.posedge], initialize=False)

    def _on_clk(self):
        pushed = bool(self.in_valid.value and self.in_ready.value)
        popped = bool(self.out_valid.value and self.out_ready.value)
        if popped:
            self._storage.pop(0)
            self.pops += 1
        if pushed:
            self._storage.append(self.in_data.value)
            self.pushes += 1
        self.in_ready.write(1 if len(self._storage) < self.depth else 0)
        if self._storage:
            self.out_valid.write(1)
            self.out_data.write(self._storage[0])
        else:
            self.out_valid.write(0)


class FifoPowerMonitor(Module):
    """Power instrumentation for :class:`WordFifo`, added afterwards.

    Instruction set: IDLE, PUSH, POP, PUSH_POP.  Energy per cycle is a
    storage-register model (clock load every cycle + C_PD per stored
    bit toggled) plus output-register activity measured by an
    ``Activity`` monitor — no modification of the FIFO itself.
    """

    def __init__(self, sim, name, fifo, params=PAPER_TECHNOLOGY):
        super().__init__(sim, name)
        self.fifo = fifo
        self.params = params
        self.storage_model = RegisterEnergyModel(
            fifo.depth * fifo.width, params)
        self.output_model = RegisterEnergyModel(fifo.width, params)
        self.activity = Activity(
            "fifo_io", (fifo.in_data, fifo.out_data, fifo.in_valid,
                        fifo.out_valid))
        self.ledger = EnergyLedger(blocks=("STORAGE", "OUTPUT"))
        self._prev_in = fifo.in_data.value
        self.method(self._on_clk, [fifo.clk.posedge], initialize=False)

    def _instruction(self, pushed, popped):
        if pushed and popped:
            return "PUSH_POP"
        if pushed:
            return "PUSH"
        if popped:
            return "POP"
        return "IDLE"

    def _on_clk(self):
        fifo = self.fifo
        pushed = bool(fifo.in_valid.value and fifo.in_ready.value)
        popped = bool(fifo.out_valid.value and fifo.out_ready.value)
        sample = self.activity.sample()

        write_hd = hamming(self._prev_in, fifo.in_data.value,
                           width=fifo.width) if pushed else 0
        self._prev_in = fifo.in_data.value
        energies = {
            "STORAGE": self.storage_model.energy(write_hd),
            "OUTPUT": self.output_model.energy(
                sample.hd(fifo.out_data)),
        }
        self.ledger.charge_cycle(self._instruction(pushed, popped),
                                 energies)


def main():
    sim = Simulator()
    clk = Clock.from_frequency(sim, "clk", MHz(100))
    fifo = WordFifo(sim, "fifo", clk)
    monitor = FifoPowerMonitor(sim, "fifo_power", fifo)

    rng = random.Random(42)

    def producer():
        while True:
            yield clk.posedge
            if rng.random() < 0.6:
                fifo.in_valid.write(1)
                fifo.in_data.write(rng.getrandbits(32))
            else:
                fifo.in_valid.write(0)

    def consumer():
        while True:
            yield clk.posedge
            fifo.out_ready.write(1 if rng.random() < 0.5 else 0)

    sim.add_thread(producer)
    sim.add_thread(consumer)
    sim.run(until=us(100))

    ledger = monitor.ledger
    ledger.check_conservation()
    print("FIFO ran %d cycles: %d pushes, %d pops"
          % (ledger.cycles, fifo.pushes, fifo.pops))
    table = TextTable(["Instruction", "Count", "Avg energy", "Share"])
    for name in sorted(ledger.instructions,
                       key=lambda n: -ledger.instructions[n].energy):
        stats = ledger.instructions[name]
        table.add_row([
            name, stats.count, format_energy(stats.average_energy),
            "%.1f %%" % (100 * ledger.instruction_share(name)),
        ])
    print(table)
    print("total energy:", format_energy(ledger.total_energy))


if __name__ == "__main__":
    main()
