"""Integration tests for the three power-model styles."""

import pytest

from repro.kernel import us
from repro.power import BLOCK_ARB, BLOCK_M2S
from repro.workloads import build_paper_testbench


DURATION = us(10)


class TestGlobalMonitor:
    def test_energy_accumulates_and_conserves(self):
        tb = build_paper_testbench(seed=5)
        tb.run(DURATION)
        tb.assert_protocol_clean()
        assert tb.total_energy > 0
        tb.ledger.check_conservation()

    def test_cycle_count_matches_clock(self):
        tb = build_paper_testbench(seed=5)
        tb.run(DURATION)
        assert tb.ledger.cycles == 1000  # 10 us at 100 MHz

    def test_deterministic_across_runs(self):
        def run():
            tb = build_paper_testbench(seed=9)
            tb.run(DURATION)
            return tb.total_energy, tb.ledger.cycles
        assert run() == run()

    def test_different_seeds_differ(self):
        def run(seed):
            tb = build_paper_testbench(seed=seed)
            tb.run(DURATION)
            return tb.total_energy
        assert run(1) != run(2)

    def test_traces_optional(self):
        tb = build_paper_testbench(seed=5)
        tb.run(DURATION)
        assert tb.monitor.traces is None
        tb2 = build_paper_testbench(seed=5, with_traces=True)
        tb2.run(DURATION)
        assert tb2.monitor.traces is not None
        assert tb2.monitor.traces["TOTAL"].total_energy == \
            pytest.approx(tb2.total_energy)

    def test_activity_summary_structure(self):
        tb = build_paper_testbench(seed=5)
        tb.run(DURATION)
        summary = tb.monitor.activity_summary()
        assert {"m2s_out", "s2m_out", "arb_in"} <= set(summary)

    def test_datafile_written(self, tmp_path):
        path = tmp_path / "energy.dat"
        with open(path, "w") as fh:
            tb = build_paper_testbench(seed=5, datafile=fh)
            tb.run(DURATION)
        lines = path.read_text().splitlines()
        assert len(lines) == 1000


class TestPowertestSwitch:
    def test_power_analysis_off_builds_no_monitor(self):
        tb = build_paper_testbench(seed=5, power_analysis=False)
        tb.run(DURATION)
        assert tb.monitor is None
        assert tb.ledger is None
        assert tb.total_energy == 0.0
        # functional behaviour unaffected
        assert tb.transactions_completed() > 0

    def test_functional_results_identical_with_and_without_power(self):
        with_power = build_paper_testbench(seed=7)
        with_power.run(DURATION)
        without = build_paper_testbench(seed=7, power_analysis=False)
        without.run(DURATION)
        assert with_power.transactions_completed() == \
            without.transactions_completed()
        assert with_power.bus.arbiter.handover_count == \
            without.bus.arbiter.handover_count


class TestLocalMonitor:
    def test_local_style_close_to_global(self):
        reference = build_paper_testbench(seed=5)
        reference.run(DURATION)
        table = {name: stats.average_energy
                 for name, stats in reference.ledger.instructions.items()}
        local = build_paper_testbench(seed=5, monitor_style="local",
                                      instruction_energies=table)
        local.run(DURATION)
        # same seed, table from the same run: totals match closely
        assert local.total_energy == pytest.approx(
            reference.total_energy, rel=0.02)

    def test_local_needs_table(self):
        with pytest.raises(ValueError):
            build_paper_testbench(seed=5, monitor_style="local")


class TestPrivateMonitor:
    def test_private_style_tracks_global(self):
        reference = build_paper_testbench(seed=5)
        reference.run(DURATION)
        private = build_paper_testbench(seed=5, monitor_style="private")
        private.run(DURATION)
        assert private.total_energy > 0
        assert private.total_energy == pytest.approx(
            reference.total_energy, rel=0.40)
        private.ledger.check_conservation()

    def test_private_block_ranking_sensible(self):
        tb = build_paper_testbench(seed=5, monitor_style="private")
        tb.run(DURATION)
        ledger = tb.ledger
        assert ledger.block_energy[BLOCK_M2S] > \
            ledger.block_energy[BLOCK_ARB]
