"""The append-only campaign journal: tolerant loading and resume state."""

import json

import pytest

from repro.exec import (
    FORMAT,
    CampaignJournal,
    ExecutorConfig,
    JournalError,
    execute_campaign,
    load_journal,
)
from repro.faults import enumerate_campaign


def write_lines(path, records, tail=""):
    with open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record) + "\n")
        fh.write(tail)


def header(runs=("s/none", "s/always-retry")):
    return {"event": "campaign", "format": FORMAT,
            "config": {"jobs": 2}, "runs": list(runs)}


class TestLoad:
    def test_round_trip_accounting(self, tmp_path):
        path = tmp_path / "c.jsonl"
        write_lines(path, [
            header(),
            {"event": "dispatch", "run": "s/none", "attempt": 1,
             "worker": 11},
            {"event": "result", "run": "s/none",
             "result": {"scenario": "s", "fault": "none",
                        "outcome": "completed"}},
            {"event": "dispatch", "run": "s/always-retry",
             "attempt": 1, "worker": 12},
            {"event": "attempt-failed", "run": "s/always-retry",
             "attempt": 1, "reason": "worker-crashed", "detail": ""},
            {"event": "dispatch", "run": "s/always-retry",
             "attempt": 2, "worker": 13},
        ])
        state = load_journal(path)
        assert state.completed == {"s/none"}
        assert state.results["s/none"]["outcome"] == "completed"
        assert state.attempts == {"s/always-retry": 1}
        # dispatched again after the failed attempt, no result yet
        assert state.in_flight == {"s/always-retry"}
        assert not state.truncated_tail

    def test_truncated_trailing_line_is_tolerated(self, tmp_path):
        path = tmp_path / "c.jsonl"
        write_lines(path, [
            header(),
            {"event": "result", "run": "s/none",
             "result": {"scenario": "s", "fault": "none",
                        "outcome": "completed"}},
        ], tail='{"event": "result", "run": "s/alw')  # killed mid-write
        state = load_journal(path)
        assert state.truncated_tail
        assert state.completed == {"s/none"}

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with open(path, "w") as fh:
            fh.write(json.dumps(header()) + "\n")
            fh.write("not json at all\n")
            fh.write(json.dumps({"event": "result", "run": "s/none",
                                 "result": {}}) + "\n")
        with pytest.raises(JournalError, match="line 2") as excinfo:
            load_journal(path)
        # the faulting line is also carried structurally, so tooling
        # does not have to parse the message
        assert excinfo.value.line == 2

    def test_interior_vs_tail_corruption_contract(self, tmp_path):
        """The tolerant-loading boundary, spelled out: the same bad
        line is fatal in the interior but recoverable at the tail."""
        records = [
            header(),
            {"event": "result", "run": "s/none",
             "result": {"scenario": "s", "fault": "none",
                        "outcome": "completed"}},
        ]
        bad = '{"event": "result", "run": "s/alw'  # killed mid-write

        tail_path = tmp_path / "tail.jsonl"
        write_lines(tail_path, records, tail=bad)
        state = load_journal(tail_path)
        assert state.truncated_tail
        assert state.completed == {"s/none"}

        interior_path = tmp_path / "interior.jsonl"
        with open(interior_path, "w") as fh:
            fh.write(json.dumps(records[0]) + "\n")
            fh.write(bad + "\n")
            fh.write(json.dumps(records[1]) + "\n")
        with pytest.raises(JournalError) as excinfo:
            load_journal(interior_path)
        assert excinfo.value.line == 2
        assert "line 2" in str(excinfo.value)

    def test_non_line_errors_carry_no_line(self, tmp_path):
        path = tmp_path / "c.jsonl"
        write_lines(path, [{"event": "result", "run": "s/none",
                            "result": {}}])
        with pytest.raises(JournalError) as excinfo:
            load_journal(path)
        assert excinfo.value.line is None

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "c.jsonl"
        write_lines(path, [{"event": "result", "run": "s/none",
                            "result": {}}])
        with pytest.raises(JournalError, match="header"):
            load_journal(path)

    def test_wrong_format_raises(self, tmp_path):
        path = tmp_path / "c.jsonl"
        write_lines(path, [{"event": "campaign",
                            "format": "something-else/9"}])
        with pytest.raises(JournalError, match="format"):
            load_journal(path)

    def test_quarantine_is_remembered(self, tmp_path):
        path = tmp_path / "c.jsonl"
        write_lines(path, [
            header(),
            {"event": "quarantine", "run": "s/always-retry",
             "artefact": "/tmp/q.json"},
            {"event": "result", "run": "s/always-retry",
             "result": {"scenario": "s", "fault": "always-retry",
                        "outcome": "quarantined"}},
        ])
        state = load_journal(path)
        assert state.quarantined == {"s/always-retry": "/tmp/q.json"}
        assert "s/always-retry" in state.completed


class TestExecutorResume:
    def test_truncated_tail_resumes_cleanly_at_executor_level(
            self, tmp_path):
        """A journal whose final line was cut by a hard kill must not
        poison a resume: the executor restores every fully-recorded
        run and re-executes nothing."""
        runs = enumerate_campaign(
            ("portable-audio-player",), ("none", "always-retry"),
            seed=1, duration_us=2.0)
        journal = str(tmp_path / "campaign.jsonl")
        report = execute_campaign(
            runs, ExecutorConfig(journal=journal))
        assert len(report.results) == len(runs)
        with open(journal, "a") as fh:
            fh.write('{"event": "result", "run": "s/trunc')  # mid-write
        resumed = execute_campaign(
            runs, ExecutorConfig(journal=journal, resume=True))
        assert resumed.resumed == len(runs)
        assert set(resumed.results) == set(report.results)
        for run_id, result in report.results.items():
            assert resumed.results[run_id].fingerprint \
                == result.fingerprint

    def test_interior_corruption_is_fatal_at_executor_level(
            self, tmp_path):
        runs = enumerate_campaign(
            ("portable-audio-player",), ("none",), seed=1,
            duration_us=2.0)
        journal = str(tmp_path / "campaign.jsonl")
        execute_campaign(runs, ExecutorConfig(journal=journal))
        lines = open(journal).read().splitlines()
        lines.insert(1, "## edited by hand ##")
        lines.append(json.dumps({"event": "interrupted",
                                 "phase": "drain"}))
        with open(journal, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        with pytest.raises(JournalError) as excinfo:
            execute_campaign(
                runs, ExecutorConfig(journal=journal, resume=True))
        assert excinfo.value.line == 2


class TestWriter:
    def test_writer_appends_flushed_lines(self, tmp_path):
        path = tmp_path / "c.jsonl"
        journal = CampaignJournal(str(path))
        journal.open(header={"config": {}, "runs": ["s/none"]})
        journal.append({"event": "dispatch", "run": "s/none",
                        "attempt": 1, "worker": None})
        # readable before close: every append hits the disk
        state = load_journal(path)
        assert state.header["format"] == FORMAT
        assert state.in_flight == {"s/none"}
        journal.close()

    def test_reopen_for_resume_appends(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with CampaignJournal(str(path)) as journal:
            journal.open(header={"config": {}, "runs": ["s/none"]})
        with CampaignJournal(str(path)) as journal:
            journal.open(resume=True)
            journal.append({"event": "result", "run": "s/none",
                            "result": {"scenario": "s",
                                       "fault": "none",
                                       "outcome": "completed"}})
        state = load_journal(path)
        assert state.header is not None
        assert state.completed == {"s/none"}
