"""BLIF export/import round-trip tests (SIS interchange format)."""

import io

import pytest

from repro.gatelevel import (
    AND2,
    GateLevelSimulator,
    INV,
    Netlist,
    OR2,
    XOR2,
    synth_mux,
    synth_one_hot_decoder,
    synth_priority_arbiter,
)
from repro.gatelevel.blif import (
    BlifError,
    load_blif,
    read_blif,
    save_blif,
    write_blif,
)


def roundtrip(netlist):
    buffer = io.StringIO()
    write_blif(netlist, buffer)
    buffer.seek(0)
    return read_blif(buffer)


def outputs_match(original, rebuilt, vectors):
    sim_a = GateLevelSimulator(original)
    sim_b = GateLevelSimulator(rebuilt)
    for vector in vectors:
        ra = sim_a.step(vector)
        rb = sim_b.step(vector)
        va = [ra.outputs[net] for net in original.outputs]
        vb = [rb.outputs[net] for net in rebuilt.outputs]
        if va != vb:
            return False
    return True


def exhaustive_vectors(n_inputs):
    import itertools
    return list(itertools.product((0, 1), repeat=n_inputs))


class TestExport:
    def test_header_sections(self):
        netlist = synth_one_hot_decoder(4)
        buffer = io.StringIO()
        write_blif(netlist, buffer, model_name="dec4")
        text = buffer.getvalue()
        assert text.startswith(".model dec4\n")
        assert ".inputs a[0] a[1]" in text
        assert ".outputs" in text
        assert text.rstrip().endswith(".end")

    def test_latches_exported(self):
        netlist = synth_priority_arbiter(3)
        buffer = io.StringIO()
        write_blif(netlist, buffer)
        assert buffer.getvalue().count(".latch") == 3

    def test_cover_rows_for_cells(self):
        netlist = Netlist("t")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        netlist.mark_output(netlist.add_cell(OR2, [a, b],
                                             output_name="y"))
        buffer = io.StringIO()
        write_blif(netlist, buffer)
        text = buffer.getvalue()
        assert ".names a b y" in text
        assert "1- 1" in text and "-1 1" in text

    def test_save_and_load_files(self, tmp_path):
        netlist = synth_one_hot_decoder(4)
        path = tmp_path / "dec.blif"
        save_blif(netlist, str(path))
        rebuilt = load_blif(str(path))
        assert outputs_match(netlist, rebuilt, exhaustive_vectors(2))


class TestRoundTrip:
    @pytest.mark.parametrize("n_outputs", [2, 4, 8])
    def test_decoder_roundtrip(self, n_outputs):
        netlist = synth_one_hot_decoder(n_outputs)
        rebuilt = roundtrip(netlist)
        assert outputs_match(netlist, rebuilt,
                             exhaustive_vectors(len(netlist.inputs)))

    def test_mux_roundtrip(self):
        netlist = synth_mux(3, 3)
        rebuilt = roundtrip(netlist)
        assert outputs_match(netlist, rebuilt,
                             exhaustive_vectors(len(netlist.inputs)))

    def test_xor_tree_roundtrip(self):
        netlist = Netlist("parity")
        bits = netlist.add_input_bus("d", 4)
        netlist.mark_output(netlist.tree(XOR2, bits, output_name="p"))
        rebuilt = roundtrip(netlist)
        assert outputs_match(netlist, rebuilt, exhaustive_vectors(4))

    def test_sequential_roundtrip(self):
        netlist = synth_priority_arbiter(3)
        rebuilt = roundtrip(netlist)
        assert len(rebuilt.dffs) == 3
        import random
        rng = random.Random(4)
        vectors = [tuple(rng.randint(0, 1) for _ in range(3))
                   for _ in range(60)]
        assert outputs_match(netlist, rebuilt, vectors)

    def test_cell_types_recovered(self):
        netlist = Netlist("t")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        netlist.mark_output(netlist.add_cell(AND2, [a, b]))
        netlist.mark_output(netlist.add_cell(INV, [a]))
        rebuilt = roundtrip(netlist)
        kinds = sorted(cell.cell_type.name for cell in rebuilt.cells)
        assert kinds == ["AND2", "INV"]


class TestForeignBlif:
    def test_parse_hand_written_sis_style(self):
        text = """# produced by sis
.model half_adder
.inputs x y
.outputs s c
.names x y s
01 1
10 1
.names x y c
11 1
.end
"""
        netlist = read_blif(io.StringIO(text))
        sim = GateLevelSimulator(netlist)
        for x, y in ((0, 0), (0, 1), (1, 0), (1, 1)):
            result = sim.step([x, y], clock=False)
            values = [result.outputs[net] for net in netlist.outputs]
            assert values == [x ^ y, x & y]

    def test_dont_care_and_offset_covers(self):
        text = """.model f
.inputs a b c
.outputs y
.names a b c y
1-- 0
-1- 0
.end
"""
        # y = NOT(a OR b): OFF-set cover
        netlist = read_blif(io.StringIO(text))
        sim = GateLevelSimulator(netlist)
        for a in (0, 1):
            for b in (0, 1):
                result = sim.step([a, b, 0], clock=False)
                assert list(result.outputs.values()) == [1 - (a | b)]

    def test_line_continuation(self):
        text = """.model f
.inputs a \\
b
.outputs y
.names a b y
11 1
.end
"""
        netlist = read_blif(io.StringIO(text))
        assert len(netlist.inputs) == 2

    def test_errors(self):
        with pytest.raises(BlifError):
            read_blif(io.StringIO(".model f\n.garbage\n.end\n"))
        with pytest.raises(BlifError):
            read_blif(io.StringIO(
                ".model f\n.inputs a\n.outputs y\n.end\n"))
