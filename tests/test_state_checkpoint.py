"""System-level checkpoint/restore exactness and the state-digest
divergence oracle.

The contract under test: a snapshot restored into a freshly elaborated
identical system continues **bit-identically** — the state digest after
``restore + run(N)`` equals the digest after ``run(M + N)`` — and when
two executions are *not* bit-identical, the digest-stream comparison
localizes the first divergent interval and names the differing state
paths."""

import json

import pytest

from repro.amba.transactions import reset_txn_ids
from repro.cli import main
from repro.kernel import StateError, us
from repro.replay import campaign_spec, execute
from repro.replay.verify import compare_streams, verify_digests
from repro.state import CheckpointPlan, CheckpointStore
from repro.workloads import build_scenario

SCENARIO = "portable-audio-player"


def build(name=SCENARIO, seed=2):
    # The global transaction-id counter is part of snapshotted state;
    # reset it per elaboration exactly as `repro.replay.execute` does,
    # so manually built systems are comparable.
    reset_txn_ids()
    return build_scenario(name, seed=seed)


class TestSnapshotRestore:
    def test_restore_then_run_matches_straight_run(self):
        straight = build()
        straight.run(us(4))
        expected = straight.snapshot().digest

        donor = build()
        donor.run(us(2))
        snap = donor.snapshot()

        resumed = build()
        resumed.restore(snap)
        assert resumed.snapshot().digest == snap.digest
        resumed.run(us(2))
        assert resumed.snapshot().digest == expected

    def test_restore_into_different_elaboration_raises(self):
        donor = build(SCENARIO)
        donor.run(us(1))
        snap = donor.snapshot()
        # structurally different design: signal sets don't match
        other = build("portable-videogame")
        with pytest.raises(StateError, match="does not match"):
            other.restore(snap)
        # same design, but a component section is missing
        clipped = json.loads(json.dumps(snap.to_dict()))
        removed = sorted(clipped["state"]["components"])[0]
        del clipped["state"]["components"][removed]
        fresh = build(SCENARIO)
        with pytest.raises(StateError):
            fresh.restore(clipped["state"])

    def test_chunked_execution_equals_straight_execution(self):
        spec = campaign_spec(SCENARIO, "always-retry", seed=3,
                             duration_us=4.0)
        _, straight = execute(
            spec, checkpoint=CheckpointPlan(interval_cycles=0))
        _, chunked = execute(
            spec, checkpoint=CheckpointPlan(interval_cycles=150))
        assert straight.digests["entries"][-1]["digest"] \
            == chunked.digests["entries"][-1]["digest"]
        assert straight.fingerprint() == chunked.fingerprint()


class TestStoreResume:
    def test_resumed_run_reproduces_uninterrupted_stream(
            self, tmp_path):
        """Crash recovery is provably exact: stop a checkpointed run
        partway (the crash proxy), resume it from its store in a fresh
        process-equivalent execution, and the merged digest stream and
        fingerprint are byte-identical to an uninterrupted run."""
        spec = campaign_spec(SCENARIO, "always-retry", seed=5,
                             duration_us=6.0)
        interval = 100  # 1 us at 100 MHz: partial end lands on-boundary
        ref_store = CheckpointStore(str(tmp_path / "ref"))
        _, ref = execute(spec, checkpoint=CheckpointPlan(
            interval, ref_store))

        crash_store = CheckpointStore(str(tmp_path / "crash"))
        execute(spec.replace(duration_us=2.0),
                checkpoint=CheckpointPlan(interval, crash_store))
        _, resumed = execute(spec, checkpoint=CheckpointPlan(
            interval, crash_store), resume=True)

        assert json.dumps(resumed.digests["entries"], sort_keys=True) \
            == json.dumps(ref.digests["entries"], sort_keys=True)
        assert resumed.fingerprint() == ref.fingerprint()
        # the stream on disk is the same merged record
        assert json.dumps(crash_store.digest_stream(), sort_keys=True) \
            == json.dumps(ref_store.digest_stream(), sort_keys=True)

    def test_resume_skips_already_executed_prefix(self, tmp_path):
        spec = campaign_spec(SCENARIO, "none", seed=1, duration_us=3.0)
        store = CheckpointStore(str(tmp_path / "ck"))
        execute(spec.replace(duration_us=2.0),
                checkpoint=CheckpointPlan(100, store))
        system, _ = execute(spec, checkpoint=CheckpointPlan(100, store),
                            resume=True)
        # resumed execution only simulated the last microsecond
        assert system.sim.now == us(3)


class _TimeBomb:
    """Test-only injected nondeterminism: a state provider whose
    content flips to a run-specific value once sim time passes the
    fuse — bit-identical before, divergent after."""

    def __init__(self, sim, fuse_ps, value):
        self.sim = sim
        self.fuse_ps = fuse_ps
        self.value = value

    def state_dict(self):
        return {"v": 0 if self.sim.now < self.fuse_ps else self.value}

    def load_state_dict(self, state):
        pass


def _armed(value, fuse_us):
    def install(system):
        system.sim.register_state(
            "nondet", _TimeBomb(system.sim, us(fuse_us), value))
    return install


class TestDivergenceOracle:
    SPEC = dict(seed=4, duration_us=6.0)

    def test_identical_runs_verify_clean(self):
        spec = campaign_spec(SCENARIO, "always-retry", **self.SPEC)
        _, recorded = execute(spec, checkpoint=CheckpointPlan(200))
        report = verify_digests(spec, recorded.digests)
        assert report.match
        assert report.entries_compared \
            == len(recorded.digests["entries"])
        assert "identical" in report.describe()

    def test_injected_nondeterminism_is_localized(self):
        """End-to-end oracle: two executions that differ only in a
        state bit planted after 3 us diverge at the first interval
        boundary past the fuse, and the report names the state path."""
        spec = campaign_spec(SCENARIO, "none", **self.SPEC)
        plan = CheckpointPlan(interval_cycles=150)
        _, rec = execute(spec, instrument=_armed(0, 3.0),
                         checkpoint=plan)
        _, act = execute(spec, instrument=_armed(1, 3.0),
                         checkpoint=plan)
        entries = rec.digests["entries"]
        expected_index = next(
            index for index, entry in enumerate(entries)
            if entry["time_ps"] >= us(3))

        report = compare_streams(entries, act.digests["entries"])
        assert not report.match
        div = report.first_divergence
        assert div["index"] == expected_index
        assert div["cycle"] == entries[expected_index]["cycle"]
        assert div["paths"] == ["components.nondet"]
        assert "components.nondet" in report.describe()
        assert "first divergent interval" in report.describe()

    def test_cadence_mismatch_is_reported_not_misattributed(self):
        spec = campaign_spec(SCENARIO, "none", seed=4, duration_us=2.0)
        _, a = execute(spec, checkpoint=CheckpointPlan(100))
        _, b = execute(spec, checkpoint=CheckpointPlan(50))
        report = compare_streams(a.digests["entries"],
                                 b.digests["entries"])
        assert not report.match
        assert "cadence" in report.detail


class TestCliDigests:
    def test_scenario_records_digests_and_replay_verifies(
            self, tmp_path, capsys):
        trace = str(tmp_path / "run.json")
        report_path = str(tmp_path / "report.json")
        assert main(["scenario", "wireless-modem", "--duration-us",
                     "3", "--digest-interval", "100", "--record",
                     trace]) == 0
        assert main(["replay", trace, "--json", report_path]) == 0
        out = capsys.readouterr().out
        assert "state digests" in out
        report = json.load(open(report_path))
        assert report["digests"]["match"]
        assert report["digests"]["entries_compared"] > 1

    def test_tampered_digest_fails_replay_and_names_interval(
            self, tmp_path, capsys):
        trace_path = str(tmp_path / "run.json")
        assert main(["scenario", "wireless-modem", "--duration-us",
                     "3", "--digest-interval", "100", "--record",
                     trace_path]) == 0
        data = json.load(open(trace_path))
        entry = data["runs"][0]["digests"]["entries"][1]
        entry["digest"] = "0" * 64
        entry["sections"]["kernel.signals"] = "0" * 64
        with open(trace_path, "w") as fh:
            json.dump(data, fh)
        report_path = str(tmp_path / "report.json")
        assert main(["replay", trace_path,
                     "--json", report_path]) == 1
        report = json.load(open(report_path))
        assert report["match"]  # fingerprints still agree...
        div = report["digests"]["first_divergence"]
        assert div["index"] == 1  # ...the state stream localizes it
        assert div["paths"] == ["kernel.signals"]
