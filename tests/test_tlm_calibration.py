"""Calibration table artefact: serde, digest integrity, warm-up ramp,
and the committed table's held-out error bound.

The committed ``src/repro/tlm/tables/default.json`` is a versioned,
digest-stamped artefact: hand-edits must be rejected on load, the
declared error bound must hold at the held-out validation seed, and
the warm-up ramp must normalise to 1.0 at its own calibration horizon.
"""

import json

import pytest

from repro.tlm import CalibrationTable, load_default_table
from repro.tlm.calibrate import (
    DEFAULT_CALIBRATION_SEEDS,
    DEFAULT_ERROR_BOUND,
    TABLE_FORMAT,
    _fit_warmup,
)
from repro.tlm.validate import VALIDATION_SEED, validate_table


class TestTableSerde:
    def test_round_trip_preserves_digest(self):
        table = load_default_table()
        clone = CalibrationTable.from_dict(
            json.loads(json.dumps(table.to_dict())))
        assert clone.digest() == table.digest()
        assert clone.to_dict() == table.to_dict()

    def test_hand_edited_table_rejected(self):
        data = load_default_table().to_dict()
        data["default_energy_j"] *= 2
        with pytest.raises(ValueError, match="digest"):
            CalibrationTable.from_dict(data)

    def test_foreign_format_rejected(self):
        with pytest.raises(ValueError, match=TABLE_FORMAT):
            CalibrationTable.from_dict({"format": "other/9"})

    def test_save_load_round_trip(self, tmp_path):
        table = load_default_table()
        path = tmp_path / "table.json"
        table.save(str(path))
        assert CalibrationTable.load(str(path)).digest() \
            == table.digest()


class TestCommittedArtefact:
    def test_declares_the_contract_bound(self):
        table = load_default_table()
        assert table.error_bound == DEFAULT_ERROR_BOUND
        assert table.provenance["scenarios"]
        assert table.version >= 1

    def test_validation_seed_held_out_of_calibration(self):
        """The committed table's generalisation evidence depends on
        seed 2 never being fitted."""
        table = load_default_table()
        assert VALIDATION_SEED not in table.provenance["seeds"]
        assert VALIDATION_SEED not in DEFAULT_CALIBRATION_SEEDS

    def test_scenario_coefficients_resolve(self):
        table = load_default_table()
        for scenario in table.provenance["scenarios"]:
            coeffs = table.coefficients_for(scenario)
            assert coeffs.get("WRITE_WRITE") > 0
            assert coeffs.get("NO_SUCH_INSTRUCTION") \
                == pytest.approx(coeffs.default)


class TestWarmupRamp:
    def test_factor_is_one_at_calibration_horizon(self):
        table = load_default_table()
        for scenario in table.provenance["scenarios"]:
            warmup = table.scenario_entry(scenario).get("warmup")
            assert warmup, scenario
            assert table.warmup_factor(
                scenario, warmup["horizon_cycles"]) \
                == pytest.approx(1.0, abs=1e-9)

    def test_short_runs_corrected_downward(self):
        """Early cycles read mostly-zero memory: a short window must
        be charged less per cycle than the horizon fit."""
        table = load_default_table()
        for scenario in table.provenance["scenarios"]:
            horizon = table.scenario_entry(
                scenario)["warmup"]["horizon_cycles"]
            assert table.warmup_factor(scenario, horizon / 8) < 1.0

    def test_unknown_scenario_and_degenerate_inputs(self):
        table = load_default_table()
        assert table.warmup_factor("unknown-scenario", 1000) == 1.0
        assert table.warmup_factor(
            table.provenance["scenarios"][0], 0) == 1.0

    def test_fit_recovers_a_known_ramp(self):
        import math
        tau, e_inf, delta = 2000.0, 10.0, 3.0
        points = [
            (cycles,
             e_inf - delta * tau / cycles
             * (1.0 - math.exp(-cycles / tau)))
            for cycles in (500.0, 1000.0, 2000.0, 4000.0)
        ]
        fit = _fit_warmup(points)
        assert fit is not None
        assert fit["tau_cycles"] == pytest.approx(tau, rel=0.05)

    def test_fit_declines_flat_data(self):
        points = [(500.0, 1.0), (1000.0, 1.0), (2000.0, 1.0),
                  (4000.0, 1.0)]
        assert _fit_warmup(points) is None


class TestHeldOutBound:
    def test_committed_table_passes_quick_validation(self):
        """One scenario at the held-out seed inside the declared
        bound (CI runs the full sweep; this is the fast in-suite
        check)."""
        report = validate_table(
            load_default_table(),
            scenarios=("portable-audio-player",), duration_us=20.0)
        assert report.passed, "\n" + report.summary()
        entry = report.entries[0]
        assert abs(entry.energy_error_pct) \
            <= report.bound["energy_pct"]
        assert abs(entry.latency_error_cycles) \
            <= report.bound["latency_cycles"]
