"""Unit and property tests for AHB protocol types."""

import pytest
from hypothesis import given, strategies as st

from repro.amba.types import (
    HBURST,
    HRESP,
    HSIZE,
    HTRANS,
    aligned,
    burst_addresses,
    burst_beats,
    is_active,
    is_wrapping,
    next_burst_address,
    response_name,
    size_bytes,
)


class TestEncodings:
    def test_htrans_values_match_spec(self):
        assert int(HTRANS.IDLE) == 0
        assert int(HTRANS.BUSY) == 1
        assert int(HTRANS.NONSEQ) == 2
        assert int(HTRANS.SEQ) == 3

    def test_hresp_values_match_spec(self):
        assert int(HRESP.OKAY) == 0
        assert int(HRESP.ERROR) == 1
        assert int(HRESP.RETRY) == 2
        assert int(HRESP.SPLIT) == 3

    def test_size_bytes(self):
        assert size_bytes(HSIZE.BYTE) == 1
        assert size_bytes(HSIZE.HALFWORD) == 2
        assert size_bytes(HSIZE.WORD) == 4
        assert size_bytes(HSIZE.LINE32) == 128

    def test_is_active(self):
        assert is_active(HTRANS.NONSEQ)
        assert is_active(HTRANS.SEQ)
        assert not is_active(HTRANS.IDLE)
        assert not is_active(HTRANS.BUSY)

    def test_response_name(self):
        assert response_name(0) == "OKAY"
        assert response_name(99).startswith("HRESP")


class TestBurstBeats:
    def test_fixed_beats(self):
        assert burst_beats(HBURST.SINGLE) == 1
        assert burst_beats(HBURST.INCR4) == 4
        assert burst_beats(HBURST.WRAP8) == 8
        assert burst_beats(HBURST.INCR16) == 16

    def test_incr_is_undefined_length(self):
        assert burst_beats(HBURST.INCR) is None

    def test_is_wrapping(self):
        assert is_wrapping(HBURST.WRAP4)
        assert is_wrapping(HBURST.WRAP16)
        assert not is_wrapping(HBURST.INCR8)
        assert not is_wrapping(HBURST.SINGLE)


class TestBurstAddresses:
    def test_incr4_word(self):
        assert burst_addresses(0x20, HBURST.INCR4, HSIZE.WORD) == \
            [0x20, 0x24, 0x28, 0x2C]

    def test_wrap4_word_example_from_spec(self):
        # AMBA spec §3.5.4: WRAP4 word burst at 0x38 wraps at 0x40
        assert burst_addresses(0x38, HBURST.WRAP4, HSIZE.WORD) == \
            [0x38, 0x3C, 0x30, 0x34]

    def test_wrap8_halfword(self):
        addrs = burst_addresses(0x1C, HBURST.WRAP8, HSIZE.HALFWORD)
        assert addrs[0] == 0x1C
        assert len(addrs) == 8
        span = 8 * 2
        boundary = (0x1C // span) * span
        assert all(boundary <= a < boundary + span for a in addrs)

    def test_incr_needs_beats(self):
        with pytest.raises(ValueError):
            burst_addresses(0, HBURST.INCR, HSIZE.WORD)

    def test_fixed_burst_rejects_beats_override(self):
        with pytest.raises(ValueError):
            burst_addresses(0, HBURST.INCR4, HSIZE.WORD, beats=5)

    def test_unaligned_start_rejected(self):
        with pytest.raises(ValueError):
            burst_addresses(0x2, HBURST.INCR4, HSIZE.WORD)

    def test_zero_beats_rejected(self):
        with pytest.raises(ValueError):
            burst_addresses(0, HBURST.INCR, HSIZE.WORD, beats=0)


class TestAlignment:
    def test_aligned(self):
        assert aligned(0x4, HSIZE.WORD)
        assert not aligned(0x2, HSIZE.WORD)
        assert aligned(0x2, HSIZE.HALFWORD)
        assert aligned(0x1, HSIZE.BYTE)


@st.composite
def burst_specs(draw):
    hburst = draw(st.sampled_from(list(HBURST)))
    hsize = draw(st.sampled_from([HSIZE.BYTE, HSIZE.HALFWORD, HSIZE.WORD]))
    step = size_bytes(hsize)
    start = draw(st.integers(min_value=0, max_value=1 << 20)) * step
    beats = draw(st.integers(min_value=1, max_value=16)) \
        if hburst == HBURST.INCR else None
    return hburst, hsize, start, beats


class TestBurstProperties:
    @given(burst_specs())
    def test_all_beats_aligned(self, spec):
        hburst, hsize, start, beats = spec
        for address in burst_addresses(start, hburst, hsize, beats=beats):
            assert aligned(address, hsize)

    @given(burst_specs())
    def test_beat_count_matches(self, spec):
        hburst, hsize, start, beats = spec
        addrs = burst_addresses(start, hburst, hsize, beats=beats)
        expected = beats if beats is not None else burst_beats(hburst)
        assert len(addrs) == expected

    @given(burst_specs())
    def test_wrapping_bursts_stay_in_window(self, spec):
        hburst, hsize, start, beats = spec
        if not is_wrapping(hburst):
            return
        addrs = burst_addresses(start, hburst, hsize, beats=beats)
        span = len(addrs) * size_bytes(hsize)
        boundary = (start // span) * span
        assert all(boundary <= a < boundary + span for a in addrs)
        assert len(set(addrs)) == len(addrs)  # no repeats

    @given(burst_specs())
    def test_incrementing_bursts_are_monotone(self, spec):
        hburst, hsize, start, beats = spec
        if is_wrapping(hburst):
            return
        addrs = burst_addresses(start, hburst, hsize, beats=beats)
        step = size_bytes(hsize)
        assert all(b - a == step for a, b in zip(addrs, addrs[1:]))

    @given(burst_specs())
    def test_next_burst_address_consistency(self, spec):
        hburst, hsize, start, beats = spec
        addrs = burst_addresses(start, hburst, hsize, beats=beats)
        for a, b in zip(addrs, addrs[1:]):
            assert next_burst_address(a, hburst, hsize) == b
