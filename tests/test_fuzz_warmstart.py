"""Shared scenario-prefix warm-starts for fuzz candidates.

The soundness contract: warm-started executions are **bit-identical**
to cold ones — same outcome fingerprint, same coverage keys, same
corpus evolution — because a prefix checkpoint is only shared between
specs whose every prefix-shaping input matches, and only restored
strictly before the consumer's earliest signal-fault window opens."""

import json
import os

from repro.fuzz import FuzzConfig, run_fuzz_campaign
from repro.fuzz.coverage import CoverageProbe
from repro.fuzz.warmstart import (
    MIN_WARM_CYCLES,
    WarmStartCache,
    prefix_horizon_ps,
    prefix_signature,
)
from repro.kernel import us
from repro.replay import FaultEntry, campaign_spec, execute

SCENARIO = "portable-audio-player"


def spec_with_fault(duration_us=10.0, bit=3, start_ps=6_000_000,
                    probability=0.4, seed=3, fault="none",
                    scenario=SCENARIO):
    spec = campaign_spec(scenario, fault, seed=seed,
                         duration_us=duration_us)
    spec.faults = list(spec.faults) + [FaultEntry.signal_fault(
        "bit-flip", "hrdata", bit=bit, start_ps=start_ps,
        end_ps=start_ps + 2_000_000, probability=probability)]
    return spec


class TestPrefixSignature:
    def test_duration_and_fault_window_siblings_share(self):
        # exactly what duration_jitter / fault_shift mutators produce
        a = spec_with_fault(duration_us=10.0, bit=3,
                            start_ps=6_000_000, probability=0.4)
        b = spec_with_fault(duration_us=14.0, bit=5,
                            start_ps=8_000_000, probability=0.1)
        assert prefix_signature(a) == prefix_signature(b)

    def test_prefix_shaping_inputs_split_the_signature(self):
        base = spec_with_fault()
        assert prefix_signature(spec_with_fault(seed=4)) \
            != prefix_signature(base)
        assert prefix_signature(
            spec_with_fault(scenario="wireless-modem")) \
            != prefix_signature(base)
        # behavioural faults act from elaboration: never shareable
        assert prefix_signature(spec_with_fault(fault="always-retry")) \
            != prefix_signature(base)
        # the injector's checkpoint state is positional in fault count
        extra = spec_with_fault()
        extra.faults = extra.faults + [FaultEntry.signal_fault(
            "glitch", "haddr", value=1, start_ps=9_000_000)]
        assert prefix_signature(extra) != prefix_signature(base)

    def test_horizon_is_earliest_signal_fault_window(self):
        spec = spec_with_fault(start_ps=6_000_000)
        assert prefix_horizon_ps(spec, us(10)) == 6_000_000
        clean = campaign_spec(SCENARIO, "none", duration_us=10.0)
        assert prefix_horizon_ps(clean, us(10)) == us(10)

    def test_plan_is_none_when_fault_opens_at_time_zero(self):
        cache = WarmStartCache("/nonexistent")
        assert cache.plan(spec_with_fault(start_ps=0)) is None
        plan = cache.plan(spec_with_fault(start_ps=6_000_000))
        assert plan["horizon_ps"] == 6_000_000


class TestWarmExecution:
    def run(self, spec, warm=None):
        probe = CoverageProbe()
        system, outcome = execute(spec, instrument=probe.install,
                                  warm_start=warm)
        assert outcome.outcome != "crashed", outcome.detail
        return (outcome.fingerprint(),
                probe.coverage_keys(system, outcome))

    def test_producer_and_consumers_match_cold_runs(self, tmp_path):
        cache = WarmStartCache(str(tmp_path))
        spec = spec_with_fault(duration_us=10.0, bit=3,
                               start_ps=6_000_000)
        sibling = spec_with_fault(duration_us=12.0, bit=5,
                                  start_ps=7_000_000, probability=0.2)
        cold_spec = self.run(spec)
        cold_sibling = self.run(sibling)

        producer = self.run(spec, cache.plan(spec))
        store = cache.store_for(spec)
        cycles = store.checkpoint_cycles()
        assert len(cycles) == 1 and cycles[0] >= MIN_WARM_CYCLES
        assert store.digest_stream() == []  # shared: no per-run stream

        consumer = self.run(spec, cache.plan(spec))
        consumer_sibling = self.run(sibling, cache.plan(sibling))
        assert producer == cold_spec
        assert consumer == cold_spec
        assert consumer_sibling == cold_sibling

    def test_checkpoint_past_horizon_is_not_restored(self, tmp_path):
        cache = WarmStartCache(str(tmp_path))
        spec = spec_with_fault(duration_us=10.0, start_ps=6_000_000)
        self.run(spec, cache.plan(spec))  # leaves a 3 us checkpoint
        early = spec_with_fault(duration_us=10.0, start_ps=1_000_000)
        assert prefix_signature(early) == prefix_signature(spec)
        # its own horizon (1 us) predates the cached 3 us checkpoint:
        # it must cold-start, not restore state from inside its window
        assert self.run(early, cache.plan(early)) == self.run(early)

    def test_probe_state_round_trips_through_snapshot(self):
        spec = campaign_spec(SCENARIO, "none", seed=1, duration_us=2.0)
        probe = CoverageProbe()
        system, _ = execute(spec, instrument=probe.install)
        state = json.loads(json.dumps(probe.state_dict()))
        clone_probe = CoverageProbe()
        clone, _ = execute(spec, instrument=clone_probe.install)
        clone_probe.load_state_dict(state)
        assert clone_probe.state_dict() == probe.state_dict()
        assert clone_probe.keys == probe.keys


class TestWarmCampaign:
    def campaign(self, root, warm, jobs=1):
        config = FuzzConfig(budget=16, seed=11, jobs=jobs,
                            batch_size=4, duration_us=5.0,
                            shrink=False, warm_start=warm)
        return run_fuzz_campaign(root, config)

    def tree(self, root):
        out = {}
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = [d for d in dirnames if d != "warmstart"]
            for name in sorted(filenames):
                path = os.path.join(dirpath, name)
                with open(path, "rb") as fh:
                    out[os.path.relpath(path, root)] = fh.read()
        return out

    def test_warm_campaign_is_byte_identical_to_cold(self, tmp_path):
        cold = str(tmp_path / "cold")
        warm = str(tmp_path / "warm")
        report_cold = self.campaign(cold, warm=False)
        report_warm = self.campaign(warm, warm=True)
        assert report_warm.executions == report_cold.executions
        assert self.tree(warm) == self.tree(cold)
        assert os.path.isdir(os.path.join(warm, "warmstart"))
        assert not os.path.isdir(os.path.join(cold, "warmstart"))
