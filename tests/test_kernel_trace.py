"""Unit tests for the VCD tracer."""

import pytest

from repro.kernel import Clock, Signal, Simulator, TracingError, VcdTracer, ns


def run_traced(tmp_path, width=4):
    sim = Simulator()
    clk = Clock(sim, "clk", period=ns(10))
    data = Signal(sim, "data", width=width)
    sim.add_method(lambda: data.write((data.value + 3) % 16),
                   [clk.posedge], initialize=False)
    path = tmp_path / "waves.vcd"
    tracer = VcdTracer(sim, str(path), timescale="1ps")
    tracer.trace(clk.signal, "clk")
    tracer.trace(data, "data")
    sim.run(until=ns(50))
    tracer.close()
    return path.read_text()


class TestVcdOutput:
    def test_header_sections(self, tmp_path):
        text = run_traced(tmp_path)
        assert "$timescale 1ps $end" in text
        assert "$enddefinitions $end" in text
        assert "$dumpvars" in text

    def test_var_declarations(self, tmp_path):
        text = run_traced(tmp_path)
        assert "$var wire 1" in text      # clk
        assert "$var wire 4" in text      # data bus

    def test_time_markers_monotonic(self, tmp_path):
        text = run_traced(tmp_path)
        times = [int(line[1:]) for line in text.splitlines()
                 if line.startswith("#")]
        assert times == sorted(times)
        assert times[-1] == ns(50)

    def test_vector_values_recorded(self, tmp_path):
        text = run_traced(tmp_path)
        # data goes 3, 6, 9, ... -> binary vector tokens present
        assert "b11 " in text
        assert "b110 " in text

    def test_scalar_values_recorded(self, tmp_path):
        text = run_traced(tmp_path)
        lines = text.splitlines()
        scalar_lines = [line for line in lines
                        if line and line[0] in "01" and len(line) <= 3]
        assert scalar_lines, "no scalar toggles recorded"


class TestTracerLifecycle:
    def test_trace_after_first_record_rejected(self, tmp_path):
        sim = Simulator()
        sig = Signal(sim, "a")
        other = Signal(sim, "b")
        tracer = VcdTracer(sim, str(tmp_path / "x.vcd"))
        tracer.trace(sig)

        def driver():
            sig.write(1)
            yield ns(1)

        sim.add_thread(driver)
        sim.run()
        with pytest.raises(TracingError):
            tracer.trace(other)
        tracer.close()

    def test_close_idempotent(self, tmp_path):
        sim = Simulator()
        sig = Signal(sim, "a")
        tracer = VcdTracer(sim, str(tmp_path / "x.vcd"))
        tracer.trace(sig)
        tracer.close()
        tracer.close()  # no error

    def test_context_manager(self, tmp_path):
        sim = Simulator()
        sig = Signal(sim, "a")
        path = tmp_path / "ctx.vcd"
        with VcdTracer(sim, str(path)) as tracer:
            tracer.trace(sig)
        assert path.exists()

    def test_untraced_signals_cost_nothing(self, tmp_path):
        sim = Simulator()
        traced = Signal(sim, "t")
        untraced = Signal(sim, "u")
        tracer = VcdTracer(sim, str(tmp_path / "y.vcd"))
        tracer.trace(traced)

        def driver():
            untraced.write(1)
            traced.write(1)
            yield ns(1)

        sim.add_thread(driver)
        sim.run()
        tracer.close()
        text = (tmp_path / "y.vcd").read_text()
        assert "$var wire 1" in text
        assert text.count("$var") == 1
