"""Simulation profiler tests."""

import pytest

from repro.kernel import (
    Clock,
    MHz,
    Signal,
    SimulationProfiler,
    Simulator,
    ns,
    us,
)


def counting_sim():
    sim = Simulator()
    clk = Clock.from_frequency(sim, "clk", MHz(100))
    count = Signal(sim, "count", width=32)
    sim.add_method(lambda: count.write(count.value + 1),
                   [clk.posedge], initialize=False, name="counter")
    return sim, count


class TestProfiler:
    def test_counts_activations(self):
        sim, count = counting_sim()
        profiler = SimulationProfiler(sim)
        profiler.install()
        sim.run(until=us(1))
        profiler.uninstall()
        counter_profile = profiler.profiles["counter"]
        assert counter_profile.activations == 100
        assert counter_profile.total_seconds >= 0

    def test_functionality_unchanged_by_profiling(self):
        sim, count = counting_sim()
        with SimulationProfiler(sim):
            sim.run(until=us(1))
        assert count.value == 100

    def test_uninstall_restores_bodies(self):
        sim, count = counting_sim()
        profiler = SimulationProfiler(sim)
        profiler.install()
        sim.run(until=ns(100))
        activations = profiler.profiles["counter"].activations
        profiler.uninstall()
        sim.run(until=ns(200))
        assert profiler.profiles["counter"].activations == activations
        assert count.value == 20  # still counting

    def test_double_install_rejected(self):
        sim, _ = counting_sim()
        profiler = SimulationProfiler(sim).install()
        with pytest.raises(RuntimeError):
            profiler.install()
        profiler.uninstall()
        profiler.uninstall()  # idempotent

    def test_hottest_and_report(self):
        sim, _ = counting_sim()
        with SimulationProfiler(sim) as profiler:
            sim.run(until=us(2))
        hottest = profiler.hottest(2)
        assert hottest
        assert hottest[0].total_seconds >= hottest[-1].total_seconds
        report = profiler.report()
        assert "counter" in report
        assert "activations" in report

    def test_delta_count_observed(self):
        sim, _ = counting_sim()
        with SimulationProfiler(sim) as profiler:
            sim.run(until=us(1))
        assert profiler.deltas_observed > 0
        assert profiler.total_activations >= 100

    def test_profile_full_testbench(self):
        """The profiler identifies the monitor as a major cost on an
        instrumented run (the mechanics behind experiment E6)."""
        from repro.workloads import build_paper_testbench
        tb = build_paper_testbench(seed=1, checker=False)
        with SimulationProfiler(tb.sim) as profiler:
            tb.run(us(10))
        names = [profile.name for profile in profiler.hottest(5)]
        assert any("power_monitor" in name for name in names)
