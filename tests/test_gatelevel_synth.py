"""Synthesis generators: functional equivalence and structure."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gatelevel import (
    GateLevelSimulator,
    check_combinational,
    decoder_input_bits,
    decoder_reference,
    mux_reference,
    synth_mux,
    synth_one_hot_decoder,
    synth_priority_arbiter,
)


class TestDecoderSynthesis:
    @pytest.mark.parametrize("n_outputs", [2, 3, 4, 5, 8, 16])
    def test_equivalence(self, n_outputs):
        netlist = synth_one_hot_decoder(n_outputs)
        n_in = decoder_input_bits(n_outputs)
        mismatches = check_combinational(
            netlist, decoder_reference(n_outputs, n_in))
        assert not mismatches

    def test_not_and_only(self):
        netlist = synth_one_hot_decoder(8)
        kinds = {cell.cell_type.name for cell in netlist.cells}
        assert kinds <= {"INV", "AND2", "BUF"}

    def test_input_bits_formula(self):
        assert decoder_input_bits(2) == 1
        assert decoder_input_bits(3) == 2
        assert decoder_input_bits(4) == 2
        assert decoder_input_bits(5) == 3
        assert decoder_input_bits(16) == 4

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            synth_one_hot_decoder(1)

    def test_one_hot_property(self):
        netlist = synth_one_hot_decoder(5)
        sim = GateLevelSimulator(netlist)
        for code in range(5):
            sim.step_ints(a=code)
            value = sim.output_int()
            assert value == (1 << code)


class TestMuxSynthesis:
    @pytest.mark.parametrize("n_inputs,width", [(2, 1), (2, 8), (3, 4),
                                                (4, 4), (5, 2)])
    def test_equivalence(self, n_inputs, width):
        netlist = synth_mux(n_inputs, width)
        n_sel = decoder_input_bits(n_inputs)
        mismatches = check_combinational(
            netlist, mux_reference(n_inputs, width, n_sel),
            exhaustive_limit=12, samples=800)
        assert not mismatches

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            synth_mux(1, 8)
        with pytest.raises(ValueError):
            synth_mux(4, 0)

    @given(st.integers(min_value=0, max_value=3),
           st.lists(st.integers(min_value=0, max_value=0xFFFF),
                    min_size=4, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_selected_leg_is_routed(self, select, legs):
        netlist = synth_mux(4, 16)
        sim = GateLevelSimulator(netlist)
        sim.step_ints(d0=legs[0], d1=legs[1], d2=legs[2], d3=legs[3],
                      s=select)
        assert sim.output_int() == legs[select]


class TestArbiterSynthesis:
    def test_priority_order(self):
        netlist = synth_priority_arbiter(4)
        sim = GateLevelSimulator(netlist)
        sim.step_ints(req=0b1100)
        assert sim.output_int() == 0b0100  # index 2 beats index 3
        sim.step_ints(req=0b1111)
        assert sim.output_int() == 0b0001  # index 0 wins

    def test_default_grant_with_no_requests(self):
        netlist = synth_priority_arbiter(3, default_index=1)
        sim = GateLevelSimulator(netlist)
        sim.step_ints(req=0)
        assert sim.output_int() == 0b010

    def test_grant_is_registered(self):
        netlist = synth_priority_arbiter(3)
        sim = GateLevelSimulator(netlist)
        sim.step_ints(req=0b100)
        before = sim.output_int()
        assert before == 0b100
        # combinational-only evaluation must not move the grant
        result = sim.step_ints(req=0b001)
        assert result.outputs  # grant changed only after the clock
        assert sim.output_int() == 0b001

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            synth_priority_arbiter(1)

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1,
                    max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_grant_always_one_hot(self, reqs):
        netlist = synth_priority_arbiter(3)
        sim = GateLevelSimulator(netlist)
        for req in reqs:
            sim.step_ints(req=req)
            grant = sim.output_int()
            assert bin(grant).count("1") == 1
