"""Auto-generated fuzz reproducer regression test.

Failure signature: rule alignment mandatory
Produced by `repro fuzz` (repro.fuzz.engine.write_reproducer); the
sibling JSON file is the minimal shrunk RunSpec with its recorded
outcome.  Regenerate rather than edit.
"""

import os

from repro.replay import ReplayTrace

_TRACE = os.path.join(os.path.dirname(__file__), 'repro_rule_alignment_mandatory.json')


def test_repro_rule_alignment_mandatory():
    trace = ReplayTrace.load(_TRACE)
    spec, recorded, actual, match = trace.replay(0)
    assert 'alignment' in actual.rules_tripped, \
        "expected rule alignment to trip"
    assert match, "replay diverged from the recorded fingerprint"
