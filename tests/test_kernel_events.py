"""Unit tests for events and processes."""

import pytest

from repro.kernel import Signal, SimulationError, Simulator, ns


class TestEventNotify:
    def test_delta_notify_wakes_thread(self):
        sim = Simulator()
        ev = sim.event("go")
        log = []

        def waiter():
            yield ev
            log.append(sim.now)

        def notifier():
            yield ns(3)
            ev.notify()

        sim.add_thread(waiter)
        sim.add_thread(notifier)
        sim.run()
        assert log == [ns(3)]

    def test_timed_notify(self):
        sim = Simulator()
        ev = sim.event("go")
        log = []

        def waiter():
            yield ev
            log.append(sim.now)

        ev.notify(delay=ns(5))
        sim.add_thread(waiter)
        sim.run()
        assert log == [ns(5)]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        ev = sim.event("go")
        with pytest.raises(ValueError):
            ev.notify(delay=-1)


class TestWaitAny:
    def test_first_event_wins_and_others_are_disarmed(self):
        sim = Simulator()
        a = sim.event("a")
        b = sim.event("b")
        log = []

        def waiter():
            yield (a, b)
            log.append("woken@%d" % sim.now)
            # waiting again only on b: a firing later must not wake us
            yield b
            log.append("b@%d" % sim.now)

        def driver():
            yield ns(1)
            a.notify()
            yield ns(1)
            a.notify()  # waiter is not waiting on a anymore
            yield ns(1)
            b.notify()

        sim.add_thread(waiter)
        sim.add_thread(driver)
        sim.run()
        assert log == ["woken@%d" % ns(1), "b@%d" % ns(3)]

    def test_empty_wait_list_rejected(self):
        sim = Simulator()

        def waiter():
            yield ()

        sim.add_thread(waiter)
        with pytest.raises(SimulationError):
            sim.run()

    def test_wait_on_signal_uses_changed_event(self):
        sim = Simulator()
        sig = Signal(sim, "sig")
        log = []

        def waiter():
            yield sig
            log.append(sig.value)

        def driver():
            yield ns(1)
            sig.write(42)

        sim.add_thread(waiter)
        sim.add_thread(driver)
        sim.run()
        assert log == [42]

    def test_wait_on_garbage_raises_typeerror(self):
        from repro.kernel import ProcessError
        sim = Simulator()

        def waiter():
            yield "nonsense"

        sim.add_thread(waiter)
        with pytest.raises(ProcessError) as excinfo:
            sim.run()
        assert isinstance(excinfo.value.original, TypeError)


class TestMethodProcesses:
    def test_initialize_runs_once_at_start(self):
        sim = Simulator()
        runs = []
        sim.add_method(lambda: runs.append(sim.now), [sim.event("never")])
        sim.run()
        assert runs == [0]

    def test_dont_initialize(self):
        sim = Simulator()
        runs = []
        sim.add_method(lambda: runs.append(sim.now), [sim.event("never")],
                       initialize=False)
        sim.run()
        assert runs == []

    def test_sensitivity_to_multiple_events(self):
        sim = Simulator()
        a = sim.event("a")
        b = sim.event("b")
        runs = []
        sim.add_method(lambda: runs.append(sim.now), [a, b],
                       initialize=False)

        def driver():
            yield ns(1)
            a.notify()
            yield ns(1)
            b.notify()

        sim.add_thread(driver)
        sim.run()
        assert runs == [ns(1), ns(2)]


class TestThreadLifecycle:
    def test_thread_terminates_on_return(self):
        sim = Simulator()
        log = []

        def once():
            log.append("ran")
            return
            yield  # pragma: no cover

        proc = sim.add_thread(once)
        sim.run()
        assert log == ["ran"]
        assert proc.terminated

    def test_negative_delay_in_thread_rejected(self):
        sim = Simulator()

        def bad():
            yield -5

        sim.add_thread(bad)
        with pytest.raises(SimulationError):
            sim.run()
