"""Unit tests for the ``repro.state`` building blocks: atomic JSON
writes, versioned content-addressed snapshots, the on-disk checkpoint
store with its crash-tolerant digest stream, and tree diffing."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.state import (
    FORMAT,
    MISSING,
    CheckpointStore,
    Snapshot,
    StateFormatError,
    atomic_write_json,
    canonical_json,
    diff_section_digests,
    diff_trees,
    digest_of,
)


class TestAtomicWrite:
    def test_round_trip_and_trailing_newline(self, tmp_path):
        path = str(tmp_path / "a.json")
        atomic_write_json(path, {"b": 2, "a": 1})
        raw = open(path).read()
        assert raw.endswith("\n")
        assert json.loads(raw) == {"a": 1, "b": 2}
        # sorted keys: byte-stable output for identical data
        atomic_write_json(path, {"a": 1, "b": 2})
        assert open(path).read() == raw

    def test_failed_write_preserves_old_file_and_leaves_no_tmp(
            self, tmp_path):
        path = str(tmp_path / "a.json")
        atomic_write_json(path, {"ok": True})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        assert json.load(open(path)) == {"ok": True}
        assert os.listdir(str(tmp_path)) == ["a.json"]

    def test_creates_missing_parent_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "er" / "a.json")
        atomic_write_json(path, [1, 2])
        assert json.load(open(path)) == [1, 2]

    @pytest.mark.skipif(os.name != "posix",
                        reason="SIGKILLs a child process")
    def test_sigkill_mid_write_never_leaves_torn_file(self, tmp_path):
        """Satellite: a writer SIGKILLed at a random moment must leave
        either the previous complete file or the new complete one —
        never a truncated tail that poisons the next ``--resume``."""
        target = str(tmp_path / "state.json")
        src = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        child = (
            "import itertools, sys\n"
            "from repro.state import atomic_write_json\n"
            "for i in itertools.count():\n"
            "    atomic_write_json(%r, {'gen': i, 'pad': 'x' * 4096})\n"
            "    if i == 0:\n"
            "        print('first', flush=True)\n" % target
        )
        for _ in range(3):
            proc = subprocess.Popen(
                [sys.executable, "-c", child], env=env,
                stdout=subprocess.PIPE, stderr=subprocess.DEVNULL)
            try:
                assert proc.stdout.readline().strip() == b"first"
                time.sleep(0.05)  # land the kill mid-write-loop
                proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=10)
            finally:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait()
            data = json.load(open(target))  # parses ⇒ not torn
            assert data["pad"] == "x" * 4096
            assert data["gen"] >= 0


class TestSnapshot:
    def tree(self):
        return {"kernel": {"now": 5, "signals": {"clk": 1}},
                "components": {"m0": {"issued": 3}}}

    def test_digest_is_key_order_invariant_and_meta_free(self):
        a = Snapshot(self.tree(), meta={"cycle": 1})
        b = Snapshot({"components": {"m0": {"issued": 3}},
                      "kernel": {"signals": {"clk": 1}, "now": 5}},
                     meta={"cycle": 999, "label": "other"})
        assert a.digest == b.digest
        assert a.digest == digest_of(self.tree())
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_round_trip_preserves_digest_and_meta(self, tmp_path):
        path = str(tmp_path / "snap.json")
        snap = Snapshot(self.tree(), meta={"cycle": 7, "time_ps": 70})
        snap.save(path)
        loaded = Snapshot.load(path)
        assert loaded.digest == snap.digest
        assert loaded.cycle == 7
        assert loaded.time_ps == 70

    def test_wrong_major_version_is_refused(self):
        data = Snapshot(self.tree()).to_dict()
        data["format"] = "repro-state/2"
        with pytest.raises(StateFormatError, match="not a %s" % FORMAT):
            Snapshot.from_dict(data)

    def test_corrupt_content_fails_digest_verification(self):
        data = Snapshot(self.tree()).to_dict()
        data["state"]["kernel"]["now"] = 6  # bit-rot after hashing
        with pytest.raises(StateFormatError, match="digest mismatch"):
            Snapshot.from_dict(data)

    def test_section_digests_name_state_paths(self):
        sections = Snapshot(self.tree()).section_digests()
        assert set(sections) == {"kernel", "kernel.signals",
                                 "components.m0"}
        other = self.tree()
        other["components"]["m0"]["issued"] = 4
        diff = diff_section_digests(
            sections, Snapshot(other).section_digests())
        assert diff == ["components.m0"]


def _snap(cycle, payload):
    return Snapshot({"kernel": {"now": cycle, "signals": {}},
                     "components": {"p": payload}},
                    meta={"cycle": cycle, "time_ps": cycle * 10})


class TestCheckpointStore:
    def test_put_latest_round_trip(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ck"))
        store.put(_snap(100, {"v": 1}))
        store.put(_snap(200, {"v": 2}))
        latest = store.latest()
        assert latest.cycle == 200
        assert store.checkpoint_cycles() == [100, 200]
        assert [e["cycle"] for e in store.digest_stream()] == [100, 200]

    def test_keep_prunes_files_never_the_stream(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ck"), keep=2)
        for cycle in (100, 200, 300, 400):
            store.put(_snap(cycle, {"v": cycle}))
        assert store.checkpoint_cycles() == [300, 400]
        assert [e["cycle"] for e in store.digest_stream()] \
            == [100, 200, 300, 400]

    def test_corrupt_newest_checkpoint_is_skipped(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ck"))
        store.put(_snap(100, {"v": 1}))
        path = store.put(_snap(200, {"v": 2}))
        with open(path, "w") as fh:
            fh.write('{"format": "repro-state/1", "truncated')
        assert store.latest().cycle == 100

    def test_torn_stream_tail_is_dropped_interior_raises(
            self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ck"))
        store.put(_snap(100, {"v": 1}))
        store.put(_snap(200, {"v": 2}))
        with open(store.stream_path, "a") as fh:
            fh.write('{"cycle": 300, "digest"')  # crash mid-append
        assert [e["cycle"] for e in store.digest_stream()] == [100, 200]
        lines = open(store.stream_path).read().splitlines()
        lines[0] = '{"torn": '
        with open(store.stream_path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        with pytest.raises(StateFormatError, match="corrupt digest"):
            store.digest_stream()

    def test_truncate_stream_after_drops_resumed_intervals(
            self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ck"))
        for cycle in (100, 200, 300):
            store.put(_snap(cycle, {"v": cycle}))
        kept = store.truncate_stream_after(200)
        assert [e["cycle"] for e in kept] == [100, 200]
        assert [e["cycle"] for e in store.digest_stream()] == [100, 200]

    def test_empty_store_has_no_latest(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "nowhere"))
        assert store.latest() is None
        assert store.digest_stream() == []


class TestDiffTrees:
    def test_names_leaf_paths_depth_first(self):
        a = {"kernel": {"now": 5}, "components": {"m0": {"v": 1}}}
        b = {"kernel": {"now": 6}, "components": {"m0": {"v": 2}}}
        assert diff_trees(a, b) == [
            ("components.m0.v", 1, 2), ("kernel.now", 5, 6)]

    def test_missing_keys_and_list_lengths(self):
        a = {"c": {"m0": {"v": 1}}, "q": [1, 2, 3]}
        b = {"c": {}, "q": [1, 9]}
        diff = dict((path, (x, y)) for path, x, y in diff_trees(a, b))
        assert diff["c.m0"] == ({"v": 1}, MISSING)
        assert diff["q.<len>"] == (3, 2)
        assert diff["q[1]"] == (2, 9)

    def test_limit_truncates(self):
        a = {str(i): i for i in range(100)}
        b = {str(i): i + 1 for i in range(100)}
        assert len(diff_trees(a, b, limit=10)) == 10
