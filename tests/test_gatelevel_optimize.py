"""Logic-optimisation pass tests (the mini-SIS)."""

import itertools

import pytest

from repro.gatelevel import (
    AND2,
    BUF,
    GateLevelSimulator,
    INV,
    Netlist,
    OR2,
    XOR2,
    check_combinational,
    decoder_reference,
    mux_reference,
    synth_mux,
    synth_one_hot_decoder,
    synth_priority_arbiter,
)
from repro.gatelevel.optimize import (
    OptimizationReport,
    optimize,
    optimize_with_report,
)


def equivalent(a, b, n_in=None):
    """Exhaustively compare two combinational netlists."""
    n_in = n_in or len(a.inputs)
    sim_a = GateLevelSimulator(a)
    sim_b = GateLevelSimulator(b)
    for bits in itertools.product((0, 1), repeat=n_in):
        ra = sim_a.step(bits, clock=False)
        rb = sim_b.step(bits, clock=False)
        va = [ra.outputs[net] for net in a.outputs]
        vb = [rb.outputs[net] for net in b.outputs]
        if va != vb:
            return False
    return True


class TestRewrites:
    def test_double_inverter_removed(self):
        nl = Netlist("t")
        a = nl.add_input("a")
        x = nl.add_cell(INV, [a])
        y = nl.add_cell(INV, [x])
        nl.mark_output(nl.add_cell(AND2, [y, a], output_name="z"))
        opt = optimize(nl)
        assert equivalent(nl, opt)
        assert opt.n_gates == 1  # just the AND

    def test_buffers_dissolve(self):
        nl = Netlist("t")
        a = nl.add_input("a")
        b = nl.add_input("b")
        buffered = nl.add_cell(BUF, [nl.add_cell(BUF, [a])])
        nl.mark_output(nl.add_cell(OR2, [buffered, b], output_name="z"))
        opt = optimize(nl)
        assert equivalent(nl, opt)
        assert opt.n_gates == 1

    def test_duplicate_cells_shared(self):
        nl = Netlist("t")
        a = nl.add_input("a")
        b = nl.add_input("b")
        first = nl.add_cell(AND2, [a, b])
        second = nl.add_cell(AND2, [a, b])  # identical
        nl.mark_output(nl.add_cell(OR2, [first, second],
                                   output_name="z"))
        opt = optimize(nl)
        assert equivalent(nl, opt)
        # OR(x, x) stays, but the duplicated AND collapses
        assert opt.n_gates == 2

    def test_dead_logic_swept(self):
        nl = Netlist("t")
        a = nl.add_input("a")
        b = nl.add_input("b")
        nl.add_cell(XOR2, [a, b])  # drives nothing
        nl.mark_output(nl.add_cell(AND2, [a, b], output_name="z"))
        opt = optimize(nl)
        assert equivalent(nl, opt)
        assert opt.n_gates == 1

    def test_xor_with_inverter_pair(self):
        nl = Netlist("t")
        a = nl.add_input("a")
        b = nl.add_input("b")
        x = nl.add_cell(XOR2, [a, b])
        inv1 = nl.add_cell(INV, [x])
        inv2 = nl.add_cell(INV, [inv1])
        nl.mark_output(nl.add_cell(BUF, [inv2], output_name="z"))
        opt = optimize(nl)
        assert equivalent(nl, opt)
        assert opt.n_gates == 1


class TestSynthesisedBlocks:
    @pytest.mark.parametrize("n_outputs", [4, 8])
    def test_decoder_survives_optimisation(self, n_outputs):
        nl = synth_one_hot_decoder(n_outputs)
        opt = optimize(nl)
        from repro.gatelevel import decoder_input_bits
        n_in = decoder_input_bits(n_outputs)
        assert not check_combinational(
            opt, decoder_reference(n_outputs, n_in))
        assert opt.n_gates <= nl.n_gates

    def test_mux_survives_optimisation(self):
        nl = synth_mux(3, 4)
        opt = optimize(nl)
        from repro.gatelevel import decoder_input_bits
        assert not check_combinational(
            opt, mux_reference(3, 4, decoder_input_bits(3)),
            exhaustive_limit=14)
        assert opt.n_gates <= nl.n_gates

    def test_arbiter_with_flops_survives(self):
        nl = synth_priority_arbiter(3)
        opt = optimize(nl)
        assert len(opt.dffs) == 3
        # same sequential behaviour under the same stimulus
        import random
        rng = random.Random(5)
        sim_a = GateLevelSimulator(nl)
        sim_b = GateLevelSimulator(opt)
        for _ in range(100):
            bits = tuple(rng.randint(0, 1) for _ in range(3))
            ra = sim_a.step(bits)
            rb = sim_b.step(bits)
            assert [ra.outputs[n] for n in nl.outputs] == \
                [rb.outputs[n] for n in opt.outputs]


class TestReport:
    def test_report_counts(self):
        nl = Netlist("t")
        a = nl.add_input("a")
        x = nl.add_cell(INV, [nl.add_cell(INV, [a])])
        nl.mark_output(nl.add_cell(BUF, [x], output_name="z"))
        opt, report = optimize_with_report(nl)
        assert isinstance(report, OptimizationReport)
        assert report.gates_removed >= 2
        assert "gates" in repr(report)

    def test_energy_not_increased_by_optimisation(self):
        """Optimised logic never burns more energy on the same
        stimulus (less capacitance, same function)."""
        import random
        nl = Netlist("t")
        a = nl.add_input("a")
        b = nl.add_input("b")
        c = nl.add_input("c")
        redundant = nl.add_cell(AND2, [a, b])
        redundant2 = nl.add_cell(AND2, [a, b])
        x = nl.add_cell(OR2, [redundant, redundant2])
        y = nl.add_cell(INV, [nl.add_cell(INV, [x])])
        nl.mark_output(nl.add_cell(XOR2, [y, c], output_name="z"))
        opt = optimize(nl)
        assert equivalent(nl, opt)

        rng = random.Random(2)
        sim_a = GateLevelSimulator(nl)
        sim_b = GateLevelSimulator(opt)
        total_a = total_b = 0.0
        for _ in range(300):
            bits = tuple(rng.randint(0, 1) for _ in range(3))
            total_a += sim_a.step(bits, clock=False).energy
            total_b += sim_b.step(bits, clock=False).energy
        assert total_b <= total_a
