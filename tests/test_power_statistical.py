"""Statistical power estimation vs full simulation."""

import pytest

from repro.kernel import MHz, to_seconds, us
from repro.power.statistical import (
    PowerEstimate,
    WorkloadStatistics,
    estimate_average_power,
)
from repro.workloads import build_paper_testbench


def calibrated_run(seed=1, duration_us=10):
    tb = build_paper_testbench(seed=seed, checker=False)
    tb.run(us(duration_us))
    return tb


class TestFromMonitor:
    def test_statistics_extracted(self):
        tb = calibrated_run()
        stats = WorkloadStatistics.from_monitor(tb.monitor)
        assert stats.m2s_hd > 0
        assert stats.s2m_hd > 0
        assert 0 < stats.transfer_fraction <= 1
        assert 0 <= stats.handover_rate < 1
        assert 0 < stats.write_fraction < 1

    def test_empty_monitor_rejected(self):
        tb = build_paper_testbench(seed=1, checker=False)
        with pytest.raises(ValueError):
            WorkloadStatistics.from_monitor(tb.monitor)


class TestEstimateAccuracy:
    def test_estimate_matches_simulation_same_run(self):
        """Linear models: the estimate from a run's own statistics
        reproduces that run's measured average power almost exactly."""
        tb = calibrated_run(seed=1, duration_us=50)
        stats = WorkloadStatistics.from_monitor(tb.monitor)
        estimate = estimate_average_power(stats, tb.config, MHz(100))
        measured = tb.ledger.average_power(to_seconds(tb.sim.now))
        assert estimate.total_power == pytest.approx(measured, rel=0.02)

    def test_short_calibration_predicts_long_run(self):
        """A 5 us calibration predicts a 50 us run of a different seed
        within a few percent (stationary workload)."""
        calibration = calibrated_run(seed=2, duration_us=5)
        stats = WorkloadStatistics.from_monitor(calibration.monitor)
        estimate = estimate_average_power(stats, calibration.config,
                                          MHz(100))
        evaluation = calibrated_run(seed=1, duration_us=50)
        measured = evaluation.ledger.average_power(
            to_seconds(evaluation.sim.now))
        assert estimate.total_power == pytest.approx(measured, rel=0.10)

    def test_block_breakdown_matches(self):
        tb = calibrated_run(seed=1, duration_us=50)
        stats = WorkloadStatistics.from_monitor(tb.monitor)
        estimate = estimate_average_power(stats, tb.config, MHz(100))
        elapsed = to_seconds(tb.sim.now)
        for block in ("M2S", "S2M"):
            measured = tb.ledger.block_energy[block] / elapsed
            assert estimate.block_power[block] == pytest.approx(
                measured, rel=0.05)


class TestAnalyticStatistics:
    def test_from_traffic_parameters(self):
        stats = WorkloadStatistics.from_traffic_parameters(
            transfer_fraction=0.9, write_fraction=0.5)
        assert stats.m2s_hd > stats.s2m_hd  # writes + addresses > reads

    def test_analytic_estimate_in_right_ballpark(self):
        """First-principles knobs land within 2x of simulation — the
        accuracy class the paper assigns to early estimation."""
        tb = calibrated_run(seed=1, duration_us=50)
        measured = tb.ledger.average_power(to_seconds(tb.sim.now))
        led = tb.ledger
        transfer_fraction = tb.monitor.transfer_cycles / led.cycles
        stats = WorkloadStatistics.from_traffic_parameters(
            transfer_fraction=transfer_fraction, write_fraction=0.5,
            handover_rate=tb.monitor.handover_total / led.cycles)
        estimate = estimate_average_power(stats, tb.config, MHz(100))
        assert measured / 2 < estimate.total_power < measured * 2

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            WorkloadStatistics.from_traffic_parameters(
                transfer_fraction=1.5, write_fraction=0.5)
        with pytest.raises(ValueError):
            WorkloadStatistics(m2s_hd=-1, s2m_hd=0, request_hd=0,
                               decode_hd=0, decode_change_rate=0,
                               dsel_hd=0, handover_rate=0)


class TestScaling:
    def test_power_scales_with_utilisation(self):
        tb = calibrated_run()
        stats = WorkloadStatistics.from_monitor(tb.monitor)
        base = estimate_average_power(stats, tb.config, MHz(100))
        half = estimate_average_power(stats.scaled_utilisation(0.5),
                                      tb.config, MHz(100))
        # dynamic part halves; the arbiter clock floor stays
        assert half.total_power < base.total_power
        assert half.total_power > 0.45 * base.total_power

    def test_power_scales_linearly_with_frequency(self):
        tb = calibrated_run()
        stats = WorkloadStatistics.from_monitor(tb.monitor)
        at_100 = estimate_average_power(stats, tb.config, MHz(100))
        at_200 = estimate_average_power(stats, tb.config, MHz(200))
        assert at_200.total_power == pytest.approx(
            2 * at_100.total_power)
        assert at_200.energy_per_cycle() == pytest.approx(
            at_100.energy_per_cycle())

    def test_negative_scale_rejected(self):
        tb = calibrated_run()
        stats = WorkloadStatistics.from_monitor(tb.monitor)
        with pytest.raises(ValueError):
            stats.scaled_utilisation(-1)

    def test_repr(self):
        estimate = PowerEstimate({"M2S": 1e-3}, MHz(100))
        assert "mW" in repr(estimate)
