"""The §5.2 instruction alphabet is exhaustive (ISSUE 9 satellite).

The TLM tier's calibration tables are keyed by the ``<FROM>_<TO>``
instruction names of :mod:`repro.power.instructions`.  If the
cycle-accurate power FSM could ever emit a transition outside
:data:`ALL_INSTRUCTIONS`, the TLM coefficient lookup would silently
fall back to the pooled mean and the calibrated error bound would be
meaningless.  These tests pin the alphabet closed twice over:
structurally (any classifiable mode pair maps into the alphabet) and
observationally (every transition either tier actually charges across
all named scenarios is in the alphabet).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amba.types import HTRANS
from repro.kernel import us
from repro.power.instructions import (
    ALL_INSTRUCTIONS,
    ARBITRATION_INSTRUCTIONS,
    BusMode,
    DATA_TRANSFER_INSTRUCTIONS,
    classify_mode,
    current_mode_of,
    instruction_name,
)
from repro.tlm import TlmSystem, load_default_table
from repro.tlm.calibrate import reference_run
from repro.workloads import SCENARIO_PLANS, plan_scenario

MODES = st.sampled_from(sorted(BusMode, key=lambda mode: mode.value))


class TestStructuralClosure:
    def test_alphabet_is_the_full_mode_product(self):
        assert len(ALL_INSTRUCTIONS) == len(BusMode) ** 2
        assert len(set(ALL_INSTRUCTIONS)) == len(ALL_INSTRUCTIONS)

    @given(previous=MODES, current=MODES)
    def test_every_mode_pair_names_an_instruction(self, previous,
                                                  current):
        name = instruction_name(previous, current)
        assert name in ALL_INSTRUCTIONS
        assert current_mode_of(name) is current

    @given(
        htrans=st.sampled_from([int(t) for t in HTRANS]),
        hwrite=st.booleans(),
        handover=st.booleans(),
        previous=MODES,
    )
    @settings(max_examples=200)
    def test_any_classified_cycle_stays_in_alphabet(
            self, htrans, hwrite, handover, previous):
        """Whatever the bus drives, the resulting transition has a
        name in the alphabet — the closure the table lookup relies
        on."""
        mode = classify_mode(htrans, hwrite, handover)
        assert mode in BusMode
        assert instruction_name(previous, mode) in ALL_INSTRUCTIONS

    def test_instruction_classes_partition_the_alphabet(self):
        data = set(DATA_TRANSFER_INSTRUCTIONS)
        arbitration = set(ARBITRATION_INSTRUCTIONS)
        assert data.isdisjoint(arbitration)
        assert data | arbitration <= set(ALL_INSTRUCTIONS)


class TestObservedTransitions:
    """Every transition the power FSM charges on real workloads is in
    the alphabet — across all named scenarios, on both tiers."""

    def test_cycle_accurate_transitions_covered(self):
        for scenario in sorted(SCENARIO_PLANS):
            system = reference_run(scenario, seed=5, duration_us=5.0)
            observed = set(system.ledger.instructions)
            assert observed, scenario
            assert observed <= set(ALL_INSTRUCTIONS), (
                "scenario %s charged instructions outside the §5.2 "
                "alphabet: %s"
                % (scenario, sorted(observed - set(ALL_INSTRUCTIONS))))

    def test_tlm_transitions_covered(self):
        table = load_default_table()
        for scenario in sorted(SCENARIO_PLANS):
            system = TlmSystem(plan_scenario(scenario, seed=5), table,
                               scenario=scenario)
            system.run(us(5.0))
            observed = set(system.ledger.instructions)
            assert observed, scenario
            assert observed <= set(ALL_INSTRUCTIONS), (
                "TLM run of %s emitted instructions outside the §5.2 "
                "alphabet: %s"
                % (scenario, sorted(observed - set(ALL_INSTRUCTIONS))))
