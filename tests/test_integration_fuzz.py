"""End-to-end fuzz: random transaction streams vs a reference memory.

Property: whatever mix of transfers, bursts, wait states and arbitration
the bus carries, every completed read returns exactly what a flat
reference memory model says it should — and the protocol checker stays
clean throughout.
"""

import random

import pytest

from repro.amba import AhbTransaction, HBURST, HSIZE, size_bytes
from tests.conftest import SmallSystem

REGION = 0x1000


class ReferenceMemory:
    """Flat byte-addressable model of the two test slaves."""

    def __init__(self):
        self.bytes = {}

    def write(self, address, value, size):
        for offset in range(size_bytes(size)):
            self.bytes[address + offset] = (value >> (8 * offset)) & 0xFF

    def read(self, address, size):
        value = 0
        for offset in range(size_bytes(size)):
            value |= self.bytes.get(address + offset, 0) << (8 * offset)
        return value


def random_transaction(rng, reference):
    """Generate one transaction and update the reference model."""
    hsize = rng.choice([HSIZE.BYTE, HSIZE.HALFWORD, HSIZE.WORD])
    step = size_bytes(hsize)
    hburst = rng.choice([HBURST.SINGLE, HBURST.SINGLE, HBURST.INCR4,
                         HBURST.WRAP4, HBURST.INCR])
    beats = rng.randint(2, 6) if hburst == HBURST.INCR else None
    from repro.amba.types import burst_beats
    n_beats = beats or burst_beats(hburst)
    # keep the whole burst inside one slave region
    span = n_beats * step * 4
    slave = rng.randint(0, 1)
    base = slave * REGION
    address = base + rng.randrange(0, (REGION - span) // step) * step
    write = rng.random() < 0.5
    idle = rng.randint(0, 3)
    if write:
        data = [rng.getrandbits(8 * step) for _ in range(n_beats)]
        txn = AhbTransaction(True, address, data=data, hsize=hsize,
                             hburst=hburst, beats=beats,
                             idle_cycles_before=idle)
        return txn
    return AhbTransaction(False, address, hsize=hsize, hburst=hburst,
                          beats=beats, idle_cycles_before=idle)


def apply_in_order(system, reference):
    """Replay completed transactions into the reference model in
    completion order and check reads."""
    completed = []
    for master in (system.m0, system.m1):
        completed.extend(master.completed)
    completed.sort(key=lambda txn: txn.complete_time)
    for txn in completed:
        assert not txn.error
        if txn.write:
            for address, value in zip(txn.addresses, txn.data):
                reference.write(address, value, txn.hsize)
        else:
            assert len(txn.rdata) == txn.beats
            for address, value in zip(txn.addresses, txn.rdata):
                assert value == reference.read(address, txn.hsize), \
                    "read mismatch at %#x in %r" % (address, txn)


@pytest.mark.parametrize("seed", [11, 23, 37])
@pytest.mark.parametrize("waits", [(0, 0), (1, 2)])
def test_fuzz_single_master(seed, waits):
    rng = random.Random(seed)
    system = SmallSystem(wait_states=waits)
    reference = ReferenceMemory()
    for _ in range(60):
        system.m0.enqueue(random_transaction(rng, reference))
    system.run_us(60)
    system.assert_clean()
    assert len(system.m0.completed) == 60
    apply_in_order(system, reference)


@pytest.mark.parametrize("seed", [5, 17])
@pytest.mark.parametrize("arbitration",
                         ["fixed-priority", "round-robin"])
def test_fuzz_two_masters_disjoint_regions(seed, arbitration):
    """Two masters on disjoint address halves: order within each
    master is preserved, so reads check exactly."""
    rng = random.Random(seed)
    system = SmallSystem(arbitration=arbitration)
    reference = ReferenceMemory()
    for _ in range(40):
        txn = random_transaction(rng, reference)
        # m0 gets slave 0 addresses, m1 gets slave 1
        if txn.address < REGION:
            system.m0.enqueue(txn)
        else:
            system.m1.enqueue(txn)
    system.run_us(60)
    system.assert_clean()
    assert len(system.m0.completed) + len(system.m1.completed) == 40
    apply_in_order(system, reference)


def test_fuzz_with_retry_injection():
    rng = random.Random(99)
    system = SmallSystem(retry_period=7)
    reference = ReferenceMemory()
    for _ in range(50):
        system.m0.enqueue(random_transaction(rng, reference))
    system.run_us(80)
    system.assert_clean()
    assert len(system.m0.completed) == 50
    apply_in_order(system, reference)
    retried = sum(t.retries for t in system.m0.completed)
    assert retried > 0
