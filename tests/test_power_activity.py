"""Tests for the paper's Activity class."""

from hypothesis import given, settings, strategies as st

from repro.kernel import Signal, Simulator, ns
from repro.power import Activity


def make_signals(widths=(8, 16, 1)):
    sim = Simulator()
    signals = [Signal(sim, "s%d" % index, width=width)
               for index, width in enumerate(widths)]
    return sim, signals


def drive_and_sample(sim, signals, activity, vectors):
    """Apply each vector (one value per signal) and sample after commit."""
    samples = []

    def driver():
        for vector in vectors:
            for signal, value in zip(signals, vector):
                signal.write(value)
            yield ns(1)
            samples.append(activity.sample())

    sim.add_thread(driver)
    sim.run()
    return samples


class TestSampling:
    def test_first_sample_measures_vs_initial(self):
        sim, signals = make_signals()
        activity = Activity("grp", signals)
        samples = drive_and_sample(sim, signals, activity,
                                   [(0xFF, 0x0, 1)])
        assert samples[0].total == 8 + 0 + 1

    def test_no_change_no_count(self):
        sim, signals = make_signals()
        activity = Activity("grp", signals)
        samples = drive_and_sample(sim, signals, activity,
                                   [(3, 3, 0), (3, 3, 0)])
        assert samples[1].total == 0

    def test_per_signal_hd(self):
        sim, signals = make_signals()
        activity = Activity("grp", signals)
        samples = drive_and_sample(sim, signals, activity,
                                   [(0b101, 0, 0)])
        assert samples[0].hd(signals[0]) == 2
        assert samples[0].hd(signals[1]) == 0

    def test_bit_change_count_accumulates(self):
        sim, signals = make_signals()
        activity = Activity("grp", signals)
        drive_and_sample(sim, signals, activity,
                         [(1, 0, 0), (3, 0, 0), (3, 1, 1)])
        # 1 + 1 + (1+1) bit changes
        assert activity.bit_change_count() == 4
        assert activity.samples_taken == 3

    def test_store_activity_rebaselines(self):
        sim, signals = make_signals()
        activity = Activity("grp", signals)

        def driver():
            signals[0].write(0xAA)
            yield ns(1)
            activity.store_activity()  # baseline now 0xAA, no counting
            yield ns(1)
            sample = activity.sample()
            assert sample.total == 0

        sim.add_thread(driver)
        sim.run()
        assert activity.bit_change_count() == 0


class TestStatistics:
    def test_transition_density(self):
        sim, signals = make_signals(widths=(4,))
        activity = Activity("grp", signals)
        drive_and_sample(sim, signals, activity, [(0xF,), (0x0,)])
        # 4 + 4 transitions over 2 samples of a 4-bit signal
        assert activity.transition_density(signals[0]) == 1.0

    def test_signal_probability(self):
        sim, signals = make_signals(widths=(2,))
        activity = Activity("grp", signals)
        drive_and_sample(sim, signals, activity, [(0b11,), (0b00,)])
        assert activity.signal_probability(signals[0]) == 0.5

    def test_summary_structure(self):
        sim, signals = make_signals()
        activity = Activity("grp", signals)
        drive_and_sample(sim, signals, activity, [(1, 2, 1)])
        summary = activity.summary()
        assert set(summary) == {s.name for s in signals}
        for stats in summary.values():
            assert {"transitions", "density", "probability"} <= \
                set(stats)


class TestProperties:
    @given(st.lists(st.tuples(st.integers(0, 255),
                              st.integers(0, 65535)),
                    min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_total_equals_sum_of_per_signal(self, vectors):
        sim, signals = make_signals(widths=(8, 16))
        activity = Activity("grp", signals)
        samples = drive_and_sample(sim, signals, activity, vectors)
        for sample in samples:
            assert sample.total == sum(sample.per_signal.values())

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_cumulative_count_equals_pairwise_hamming(self, values):
        from repro.power import hamming
        sim, signals = make_signals(widths=(8,))
        activity = Activity("grp", signals)
        drive_and_sample(sim, signals, activity,
                         [(value,) for value in values])
        expected = hamming(0, values[0], width=8) + sum(
            hamming(a, b, width=8)
            for a, b in zip(values, values[1:]))
        assert activity.bit_change_count() == expected
