"""Table and plot formatting tests."""

import numpy as np
import pytest

from repro.analysis import (
    TextTable,
    ascii_plot,
    block_contribution_table,
    comparison_table,
    format_energy,
    instruction_class_summary,
    instruction_energy_table,
    sparkline,
)
from repro.power import EnergyLedger


def sample_ledger():
    ledger = EnergyLedger()
    ledger.charge_cycle("WRITE_READ", {"M2S": 10e-12, "S2M": 5e-12})
    ledger.charge_cycle("READ_WRITE", {"M2S": 8e-12, "S2M": 6e-12})
    ledger.charge_cycle("IDLE_HO_IDLE_HO", {"ARB": 2e-12})
    return ledger


class TestTextTable:
    def test_alignment(self):
        table = TextTable(["name", "value"])
        table.add_row(["x", 1])
        table.add_row(["longer-name", 100])
        text = table.format()
        lines = text.splitlines()
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_row_width_checked(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(["only-one"])

    def test_str(self):
        table = TextTable(["a"])
        table.add_row([1])
        assert "1" in str(table)


class TestFormatEnergy:
    def test_ranges(self):
        assert format_energy(14.7e-12) == "14.70 pJ"
        assert format_energy(839.6e-6) == "839.60 uJ"
        assert format_energy(2.5e-9) == "2.50 nJ"
        assert format_energy(1e-3) == "1.00 mJ"
        assert format_energy(5e-16) == "0.50 fJ"


class TestLedgerTables:
    def test_instruction_table_contains_paper_rows(self):
        text = instruction_energy_table(sample_ledger()).format()
        for name in ("WRITE_READ", "READ_WRITE", "IDLE_HO_IDLE_HO",
                     "Total simulation energy"):
            assert name in text
        assert "100.00 %" in text

    def test_unlisted_rows_optional(self):
        ledger = sample_ledger()
        ledger.charge_cycle("IDLE_IDLE", {"ARB": 1e-12})
        text = instruction_energy_table(
            ledger, include_unlisted=False).format()
        assert "IDLE_IDLE " not in text

    def test_class_summary(self):
        text = instruction_class_summary(sample_ledger()).format()
        assert "data transfer" in text
        assert "arbitration" in text

    def test_block_table_sorted(self):
        text = block_contribution_table(sample_ledger()).format()
        m2s_pos = text.index("M2S")
        arb_pos = text.index("ARB")
        assert m2s_pos < arb_pos  # M2S has more energy

    def test_comparison_table(self):
        table = comparison_table([("a", 1), ("b", 2)], ["k", "v"])
        assert "a" in table.format()


class TestPlots:
    def test_ascii_plot_dimensions(self):
        xs = np.linspace(0, 4, 50)
        ys = np.sin(xs) + 1
        text = ascii_plot(xs, ys, width=40, height=8, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert len(lines) >= 8

    def test_ascii_plot_empty(self):
        assert "(no data)" in ascii_plot([], [], title="x")

    def test_ascii_plot_constant_series(self):
        text = ascii_plot([0, 1, 2], [5, 5, 5])
        assert "*" in text

    def test_ascii_plot_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot([1, 2], [1])

    def test_sparkline(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] == " " and line[-1] == "@"

    def test_sparkline_degenerate(self):
        assert sparkline([]) == ""
        assert sparkline([2, 2]) == "  "
