"""Traffic source and testbench assembly tests."""

import pytest

from repro.amba import HBURST
from repro.kernel import us
from repro.workloads import (
    AhbSystem,
    CpuLikeSource,
    DmaBurstSource,
    PaperWriteReadSource,
    RandomSource,
    ReplaySource,
    build_paper_testbench,
)

REGIONS = [(0x0000, 0x1000), (0x1000, 0x1000)]


class TestPaperSource:
    def test_write_read_pairing(self):
        source = PaperWriteReadSource(REGIONS, seed=3)
        txns = [source.next_transaction(0) for _ in range(20)]
        for write, read in zip(txns[0::2], txns[1::2]):
            assert write.write and not read.write
            assert write.address == read.address
            assert read.idle_cycles_before == 0  # atomic pair

    def test_idle_gap_only_before_sequences(self):
        source = PaperWriteReadSource(REGIONS, seed=3, max_pairs=3,
                                      idle_range=(2, 5))
        txns = [source.next_transaction(0) for _ in range(30)]
        gaps = [t.idle_cycles_before for t in txns]
        nonzero = [g for g in gaps if g]
        assert nonzero
        assert all(2 <= g <= 5 for g in nonzero)

    def test_addresses_stay_in_regions(self):
        source = PaperWriteReadSource(REGIONS, seed=3)
        for _ in range(50):
            txn = source.next_transaction(0)
            assert any(base <= txn.address < base + size
                       for base, size in REGIONS)

    def test_locality(self):
        sticky = PaperWriteReadSource(REGIONS, seed=3, locality=1.0)
        regions = set()
        for _ in range(40):
            txn = sticky.next_transaction(0)
            regions.add(txn.address & ~0xFFF)
        assert len(regions) == 1

    def test_determinism(self):
        def addresses(seed):
            source = PaperWriteReadSource(REGIONS, seed=seed)
            return [source.next_transaction(0).address
                    for _ in range(20)]
        assert addresses(5) == addresses(5)
        assert addresses(5) != addresses(6)

    def test_max_transactions(self):
        source = PaperWriteReadSource(REGIONS, seed=1,
                                      max_transactions=6)
        txns = [source.next_transaction(0) for _ in range(10)]
        assert sum(1 for t in txns if t is not None) == 6

    def test_empty_regions_rejected(self):
        with pytest.raises(ValueError):
            PaperWriteReadSource([], seed=1)


class TestOtherSources:
    def test_random_source_mix(self):
        source = RandomSource(REGIONS, seed=2, write_fraction=0.5)
        txns = [source.next_transaction(0) for _ in range(100)]
        writes = sum(1 for t in txns if t.write)
        assert 25 <= writes <= 75

    def test_dma_alternates_write_read(self):
        source = DmaBurstSource(REGIONS, seed=2, burst=HBURST.INCR4)
        txns = [source.next_transaction(0) for _ in range(6)]
        assert [t.write for t in txns] == [True, False] * 3
        assert all(t.hburst == HBURST.INCR4 for t in txns)

    def test_dma_region_too_small_rejected(self):
        source = DmaBurstSource([(0, 16)], seed=2, burst=HBURST.INCR16)
        with pytest.raises(ValueError):
            source.next_transaction(0)

    def test_cpu_like_is_read_dominated_and_local(self):
        source = CpuLikeSource(REGIONS, seed=2, read_fraction=0.8,
                               jump_probability=0.0)
        txns = [source.next_transaction(0) for _ in range(100)]
        reads = sum(1 for t in txns if not t.write)
        assert reads > 60
        addresses = [t.address for t in txns]
        sequential = sum(1 for a, b in zip(addresses, addresses[1:])
                         if b - a == 4 or b < a)
        assert sequential == len(addresses) - 1

    def test_replay_source(self):
        from repro.amba import AhbTransaction
        txns = [AhbTransaction.read(0), AhbTransaction.read(4)]
        source = ReplaySource(txns)
        assert source.next_transaction(0) is txns[0]
        assert source.next_transaction(0) is txns[1]
        assert source.next_transaction(0) is None


class TestAhbSystem:
    def test_assembly_counts(self):
        sources = [RandomSource(REGIONS, seed=k) for k in range(2)]
        system = AhbSystem(sources, n_slaves=2)
        assert len(system.masters) == 2
        assert len(system.slaves) == 2
        assert system.config.n_masters == 3  # + default master

    def test_monitor_style_validation(self):
        with pytest.raises(ValueError):
            AhbSystem([RandomSource(REGIONS)], monitor_style="bogus")
        with pytest.raises(ValueError):
            AhbSystem([])

    def test_run_advances_time(self):
        system = AhbSystem([RandomSource(REGIONS, seed=1)], n_slaves=2)
        system.run(us(5))
        assert system.sim.now == us(5)
        system.run(us(5))
        assert system.sim.now == us(10)

    def test_paper_testbench_shape(self):
        tb = build_paper_testbench(seed=1)
        assert len(tb.masters) == 2
        assert len(tb.slaves) == 3
        assert tb.config.default_master == 2
        assert tb.clk.period == 10_000  # 100 MHz

    def test_paper_testbench_runs_clean(self):
        tb = build_paper_testbench(seed=4)
        tb.run(us(20))
        tb.assert_protocol_clean()
        assert tb.transactions_completed() > 100
        # every completed read of a pair returns the written value
        for master in tb.masters:
            completed = master.completed
            for write, read in zip(completed[0::2], completed[1::2]):
                if write.write and not read.write and \
                        write.address == read.address:
                    assert read.rdata == write.data
