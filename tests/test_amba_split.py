"""SPLIT transfer tests (AMBA rev 2.0 §3.12)."""


from repro.amba import (
    AhbBus,
    AhbConfig,
    AhbMaster,
    AhbProtocolChecker,
    AhbTransaction,
    DefaultMaster,
    MemorySlave,
    SplitCapableSlave,
)
from repro.kernel import Clock, MHz, Simulator, us


class SplitSystem:
    def __init__(self, split_period=1, split_latency=8):
        self.sim = Simulator()
        self.clk = Clock.from_frequency(self.sim, "clk", MHz(100))
        self.config = AhbConfig.with_uniform_map(
            n_masters=3, n_slaves=2, default_master=2)
        self.bus = AhbBus(self.sim, "ahb", self.clk, self.config)
        self.m0 = AhbMaster(self.sim, "m0", self.clk,
                            self.bus.master_ports[0], self.bus)
        self.m1 = AhbMaster(self.sim, "m1", self.clk,
                            self.bus.master_ports[1], self.bus)
        DefaultMaster(self.sim, "dm", self.clk,
                      self.bus.master_ports[2], self.bus)
        self.fast = MemorySlave(self.sim, "fast", self.clk,
                                self.bus.slave_ports[0], self.bus)
        self.slow = SplitCapableSlave(
            self.sim, "slow", self.clk, self.bus.slave_ports[1],
            self.bus, base=0x1000, split_period=split_period,
            split_latency=split_latency)
        self.checker = AhbProtocolChecker(self.sim, "chk", self.bus)

    def run_us(self, micros):
        self.sim.run(until=self.sim.now + us(micros))
        return self


class TestSplitBasics:
    def test_split_transfer_eventually_completes(self):
        sys = SplitSystem()
        txn = sys.m0.enqueue(AhbTransaction.write_single(0x1000, 0xAB))
        readback = sys.m0.enqueue(AhbTransaction.read(0x1000))
        sys.run_us(3)
        assert sys.checker.ok, sys.checker.violations[:3]
        assert txn.done and not txn.error
        assert txn.retries >= 1  # the split forced a re-issue
        assert readback.rdata == [0xAB]
        assert sys.slow.splits_issued >= 1

    def test_split_latency_delays_completion(self):
        def latency_of(split_latency):
            sys = SplitSystem(split_latency=split_latency)
            txn = sys.m0.enqueue(
                AhbTransaction.write_single(0x1000, 1))
            sys.run_us(5)
            assert txn.done
            return txn.latency

        assert latency_of(20) > latency_of(4)

    def test_no_split_when_disabled(self):
        sys = SplitSystem(split_period=0)
        txn = sys.m0.enqueue(AhbTransaction.write_single(0x1000, 1))
        sys.run_us(2)
        assert txn.done and txn.retries == 0
        assert sys.slow.splits_issued == 0


class TestSplitMasking:
    def test_masked_master_is_not_granted(self):
        sys = SplitSystem(split_latency=30)
        sys.m0.enqueue(AhbTransaction.write_single(0x1000, 1))
        owners = []
        sys.sim.add_method(
            lambda: owners.append((sys.sim.now,
                                   sys.bus.arbiter.owner,
                                   sys.bus.arbiter.split_mask.value)),
            [sys.clk.posedge], initialize=False)
        sys.run_us(2)
        masked_samples = [(t, owner) for t, owner, mask in owners
                          if mask & 1]
        assert masked_samples, "master 0 was never masked"
        # The mask takes effect the cycle after the SPLIT is observed;
        # from then on the arbiter never grants the masked master.
        assert all(owner != 0 for _, owner in masked_samples[1:])
        assert len(masked_samples) > 5

    def test_other_master_proceeds_during_split(self):
        sys = SplitSystem(split_latency=40)
        split_txn = sys.m0.enqueue(
            AhbTransaction.write_single(0x1000, 1))
        fast_txns = [sys.m1.enqueue(
            AhbTransaction.write_single(4 * i, i)) for i in range(8)]
        sys.run_us(5)
        assert sys.checker.ok
        assert all(t.done for t in fast_txns)
        assert split_txn.done
        # the fast master finished well before the split released
        assert fast_txns[-1].complete_time < split_txn.complete_time

    def test_split_count_statistics(self):
        sys = SplitSystem(split_period=1, split_latency=5)
        for i in range(3):
            sys.m0.enqueue(AhbTransaction.write_single(0x1000 + 4 * i,
                                                       i))
        sys.run_us(6)
        assert sys.bus.arbiter.split_count >= 3
        assert all(t.done for t in sys.m0.completed)

    def test_split_mask_cleared_after_release(self):
        sys = SplitSystem(split_latency=5)
        sys.m0.enqueue(AhbTransaction.write_single(0x1000, 1))
        sys.run_us(3)
        assert sys.bus.arbiter.split_mask.value == 0


class TestSplitInterleaving:
    def test_two_masters_split_independently(self):
        sys = SplitSystem(split_period=1, split_latency=10)
        a = sys.m0.enqueue(AhbTransaction.write_single(0x1000, 1))
        b = sys.m1.enqueue(AhbTransaction.write_single(0x1100, 2))
        sys.run_us(5)
        assert sys.checker.ok
        assert a.done and b.done
        assert sys.slow.peek(0x000) == 1
        assert sys.slow.peek(0x100) == 2
