"""Per-master energy chargeback tests."""

import pytest

from repro.amba import AhbTransaction
from repro.power import GlobalPowerMonitor
from tests.conftest import SmallSystem


def monitored_system():
    system = SmallSystem()
    monitor = GlobalPowerMonitor(system.sim, "mon", system.bus)
    return system, monitor


class TestChargeback:
    def test_shares_sum_to_one(self):
        system, monitor = monitored_system()
        system.m0.enqueue(AhbTransaction.write_single(0x0, 1))
        system.m1.enqueue(AhbTransaction.write_single(0x100, 2))
        system.run_us(10)
        shares = monitor.master_energy_shares()
        assert sum(shares) == pytest.approx(1.0)
        assert sum(monitor.master_energy) == pytest.approx(
            monitor.total_energy)

    def test_busy_master_pays_more(self):
        system, monitor = monitored_system()
        for k in range(30):
            system.m0.enqueue(AhbTransaction.write_single(
                4 * k, 0xFFFFFFFF if k % 2 else 0))
        system.m1.enqueue(AhbTransaction.write_single(0x100, 1))
        system.run_us(10)
        energy = monitor.master_energy
        assert energy[0] > 5 * energy[1]

    def test_idle_system_charges_default_master(self):
        system, monitor = monitored_system()
        system.run_us(5)
        shares = monitor.master_energy_shares()
        # default master (index 2) owns the parked bus
        assert shares[2] == pytest.approx(1.0)

    def test_empty_run_has_zero_shares(self):
        system, monitor = monitored_system()
        assert monitor.master_energy_shares() == [0.0, 0.0, 0.0]
