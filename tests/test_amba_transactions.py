"""Unit tests for AHB transactions and beats."""

import pytest

from repro.amba import AhbTransaction, Beat, HBURST, HSIZE


class TestConstruction:
    def test_single_write(self):
        txn = AhbTransaction.write_single(0x10, 0xDEADBEEF)
        assert txn.write and txn.beats == 1
        assert txn.data == [0xDEADBEEF]
        assert txn.addresses == [0x10]

    def test_single_read(self):
        txn = AhbTransaction.read(0x20)
        assert not txn.write
        assert txn.data is None

    def test_write_data_masked_to_size(self):
        txn = AhbTransaction(True, 0x0, data=[0x1_FFFF_FFFF])
        assert txn.data == [0xFFFF_FFFF]

    def test_byte_write_masked(self):
        txn = AhbTransaction(True, 0x3, data=[0x123], hsize=HSIZE.BYTE)
        assert txn.data == [0x23]

    def test_incr4_addresses(self):
        txn = AhbTransaction(False, 0x100, hburst=HBURST.INCR4)
        assert txn.addresses == [0x100, 0x104, 0x108, 0x10C]

    def test_wrap4_addresses(self):
        txn = AhbTransaction(False, 0x38, hburst=HBURST.WRAP4)
        assert txn.addresses == [0x38, 0x3C, 0x30, 0x34]

    def test_incr_beats_from_data(self):
        txn = AhbTransaction(True, 0, data=[1, 2, 3],
                             hburst=HBURST.INCR)
        assert txn.beats == 3

    def test_unique_ids(self):
        a = AhbTransaction.read(0)
        b = AhbTransaction.read(0)
        assert a.id != b.id


class TestValidation:
    def test_write_needs_data(self):
        with pytest.raises(ValueError):
            AhbTransaction(True, 0x0)

    def test_read_takes_no_data(self):
        with pytest.raises(ValueError):
            AhbTransaction(False, 0x0, data=[1])

    def test_burst_data_length_mismatch(self):
        with pytest.raises(ValueError):
            AhbTransaction(True, 0x0, data=[1, 2], hburst=HBURST.INCR4)

    def test_unaligned_address(self):
        with pytest.raises(ValueError):
            AhbTransaction(False, 0x2, hsize=HSIZE.WORD)

    def test_fixed_burst_beats_override_rejected(self):
        with pytest.raises(ValueError):
            AhbTransaction(False, 0x0, hburst=HBURST.INCR8, beats=4)

    def test_zero_beats_rejected(self):
        with pytest.raises(ValueError):
            AhbTransaction(False, 0x0, hburst=HBURST.INCR, beats=0)


class TestResults:
    def test_latency_none_until_complete(self):
        txn = AhbTransaction.read(0)
        assert txn.latency is None
        txn.issue_time = 100
        txn.complete_time = 500
        assert txn.latency == 400

    def test_repr(self):
        txn = AhbTransaction.write_single(0x40, 1)
        assert "WRITE" in repr(txn)
        assert "0x40" in repr(txn)


class TestBeat:
    def test_beat_fields(self):
        txn = AhbTransaction(True, 0x0, data=[10, 20, 30, 40],
                             hburst=HBURST.INCR4)
        first = Beat(txn, 0)
        last = Beat(txn, 3)
        assert first.first and not first.last
        assert last.last and not last.first
        assert first.data == 10 and last.data == 40
        assert last.address == 0xC

    def test_read_beat_has_no_data(self):
        txn = AhbTransaction.read(0x0)
        beat = Beat(txn, 0)
        assert beat.data is None

    def test_single_beat_is_first_and_last(self):
        txn = AhbTransaction.read(0x0)
        beat = Beat(txn, 0)
        assert beat.first and beat.last
