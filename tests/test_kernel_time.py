"""Unit tests for repro.kernel.time."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel.time import (
    GHz,
    MHz,
    clock_period,
    format_time,
    kHz,
    ms,
    ns,
    ps,
    seconds,
    to_ns,
    to_seconds,
    to_us,
    us,
)


class TestUnitConstructors:
    def test_ps_is_identity(self):
        assert ps(7) == 7

    def test_ns(self):
        assert ns(10) == 10_000

    def test_us(self):
        assert us(50) == 50_000_000

    def test_ms(self):
        assert ms(1) == 1_000_000_000

    def test_seconds(self):
        assert seconds(1) == 1_000_000_000_000

    def test_fractional_rounding(self):
        assert ns(0.5) == 500
        assert ns(0.0004) == 0  # rounds to nearest ps

    def test_units_are_integers(self):
        for value in (ns(3.3), us(1.7), ms(0.25)):
            assert isinstance(value, int)


class TestFrequencies:
    def test_clock_period_100mhz(self):
        assert clock_period(MHz(100)) == 10_000

    def test_clock_period_1ghz(self):
        assert clock_period(GHz(1)) == 1_000

    def test_clock_period_khz(self):
        assert clock_period(kHz(100)) == 10_000_000

    def test_negative_frequency_rejected(self):
        with pytest.raises(ValueError):
            clock_period(0)
        with pytest.raises(ValueError):
            clock_period(-5)


class TestConversions:
    def test_roundtrip_seconds(self):
        assert to_seconds(seconds(2)) == pytest.approx(2.0)

    def test_to_ns(self):
        assert to_ns(10_000) == pytest.approx(10.0)

    def test_to_us(self):
        assert to_us(50_000_000) == pytest.approx(50.0)

    @given(st.integers(min_value=0, max_value=10**15))
    def test_to_seconds_monotone(self, t):
        assert to_seconds(t) >= 0
        assert to_seconds(t + 1) > to_seconds(t)


class TestFormatTime:
    def test_ps_range(self):
        assert format_time(999) == "999 ps"

    def test_ns_range(self):
        assert format_time(10_000) == "10.000 ns"

    def test_us_range(self):
        assert format_time(50_000_000) == "50.000 us"

    def test_ms_range(self):
        assert "ms" in format_time(ms(3))

    def test_s_range(self):
        assert format_time(seconds(1)) == "1.000 s"
