"""AHB-to-AHB bridge (hierarchical bus) tests."""

import pytest

from repro.amba import (
    AhbBus,
    AhbConfig,
    AhbMaster,
    AhbProtocolChecker,
    AhbTransaction,
    DefaultMaster,
    HBURST,
    MemorySlave,
)
from repro.amba.bridge import AhbToAhbBridge
from repro.kernel import Clock, MHz, Simulator, us

SYS_REGION = 0x10000     # upstream region size
PERIPH_WINDOW = 0x10000  # upstream window that maps to the sub-bus


class TwoSegmentSystem:
    """CPU on a system bus; RAM local; a subsystem bus behind a bridge."""

    def __init__(self, downstream_mhz=100):
        self.sim = Simulator()
        self.sys_clk = Clock.from_frequency(self.sim, "sys_clk",
                                            MHz(100))
        self.sub_clk = Clock.from_frequency(self.sim, "sub_clk",
                                            MHz(downstream_mhz))

        sys_cfg = AhbConfig.with_uniform_map(
            n_masters=2, n_slaves=2, region_size=SYS_REGION,
            default_master=1)
        self.sys_bus = AhbBus(self.sim, "sysbus", self.sys_clk, sys_cfg)
        self.cpu = AhbMaster(self.sim, "cpu", self.sys_clk,
                             self.sys_bus.master_ports[0], self.sys_bus)
        DefaultMaster(self.sim, "sys_dm", self.sys_clk,
                      self.sys_bus.master_ports[1], self.sys_bus)
        self.ram = MemorySlave(self.sim, "ram", self.sys_clk,
                               self.sys_bus.slave_ports[0], self.sys_bus)

        sub_cfg = AhbConfig.with_uniform_map(
            n_masters=2, n_slaves=2, region_size=0x1000,
            default_master=1)
        self.sub_bus = AhbBus(self.sim, "subbus", self.sub_clk, sub_cfg)
        DefaultMaster(self.sim, "sub_dm", self.sub_clk,
                      self.sub_bus.master_ports[1], self.sub_bus)
        self.sub_slaves = [
            MemorySlave(self.sim, "sub%d" % index, self.sub_clk,
                        self.sub_bus.slave_ports[index], self.sub_bus,
                        base=index * 0x1000)
            for index in range(2)
        ]
        self.bridge = AhbToAhbBridge(
            self.sim, "bridge", self.sys_clk,
            self.sys_bus.slave_ports[1], self.sys_bus, self.sub_bus,
            downstream_port_index=0,
            translate=lambda address: address - SYS_REGION,
        )
        self.sys_checker = AhbProtocolChecker(self.sim, "sys_chk",
                                              self.sys_bus)
        self.sub_checker = AhbProtocolChecker(self.sim, "sub_chk",
                                              self.sub_bus)

    def run_us(self, micros):
        self.sim.run(until=self.sim.now + us(micros))
        return self

    def assert_clean(self):
        assert self.sys_checker.ok, self.sys_checker.violations[:3]
        assert self.sub_checker.ok, self.sub_checker.violations[:3]


class TestBridgedTransfers:
    def test_write_read_roundtrip_through_bridge(self):
        sys = TwoSegmentSystem()
        write = sys.cpu.enqueue(
            AhbTransaction.write_single(SYS_REGION + 0x40, 0xBEEF))
        read = sys.cpu.enqueue(
            AhbTransaction.read(SYS_REGION + 0x40))
        sys.run_us(3)
        sys.assert_clean()
        assert write.done and read.done
        assert read.rdata == [0xBEEF]
        assert sys.sub_slaves[0].peek(0x40) == 0xBEEF
        assert sys.bridge.forwarded == 2

    def test_second_downstream_slave_reachable(self):
        sys = TwoSegmentSystem()
        sys.cpu.enqueue(
            AhbTransaction.write_single(SYS_REGION + 0x1008, 7))
        read = sys.cpu.enqueue(
            AhbTransaction.read(SYS_REGION + 0x1008))
        sys.run_us(3)
        sys.assert_clean()
        assert read.rdata == [7]
        assert sys.sub_slaves[1].peek(0x8) == 7

    def test_local_ram_unaffected(self):
        sys = TwoSegmentSystem()
        local = sys.cpu.enqueue(AhbTransaction.write_single(0x40, 1))
        remote = sys.cpu.enqueue(
            AhbTransaction.write_single(SYS_REGION + 0x40, 2))
        sys.run_us(3)
        sys.assert_clean()
        assert local.done and remote.done
        assert sys.ram.peek(0x40) == 1
        assert sys.sub_slaves[0].peek(0x40) == 2

    def test_downstream_error_propagates(self):
        sys = TwoSegmentSystem()
        # beyond the sub-bus map -> downstream default slave errors
        bad = sys.cpu.enqueue(
            AhbTransaction.read(SYS_REGION + 0x9000))
        good = sys.cpu.enqueue(AhbTransaction.write_single(0x0, 1))
        sys.run_us(4)
        sys.assert_clean()
        assert bad.error and bad.done
        assert good.done and not good.error

    def test_bridge_latency_exceeds_local(self):
        sys = TwoSegmentSystem()
        local = sys.cpu.enqueue(AhbTransaction.read(0x0))
        remote = sys.cpu.enqueue(
            AhbTransaction.read(SYS_REGION + 0x0))
        sys.run_us(3)
        assert remote.latency > local.latency

    def test_burst_crosses_bridge_beat_by_beat(self):
        sys = TwoSegmentSystem()
        data = [10, 20, 30, 40]
        write = sys.cpu.enqueue(AhbTransaction(
            True, SYS_REGION + 0x100, data=data, hburst=HBURST.INCR4))
        read = sys.cpu.enqueue(AhbTransaction(
            False, SYS_REGION + 0x100, hburst=HBURST.INCR4))
        sys.run_us(6)
        sys.assert_clean()
        assert write.done and read.done
        assert read.rdata == data
        assert sys.bridge.forwarded == 8


class TestClockDomains:
    @pytest.mark.parametrize("downstream_mhz", [50, 100, 200])
    def test_cross_frequency_bridging(self, downstream_mhz):
        sys = TwoSegmentSystem(downstream_mhz=downstream_mhz)
        sys.cpu.enqueue(
            AhbTransaction.write_single(SYS_REGION + 0x20, 0x55))
        read = sys.cpu.enqueue(
            AhbTransaction.read(SYS_REGION + 0x20))
        sys.run_us(5)
        sys.assert_clean()
        assert read.rdata == [0x55]

    def test_slower_downstream_means_longer_stall(self):
        fast = TwoSegmentSystem(downstream_mhz=200)
        slow = TwoSegmentSystem(downstream_mhz=25)

        def latency(system):
            txn = system.cpu.enqueue(
                AhbTransaction.read(SYS_REGION + 0x0))
            system.run_us(6)
            assert txn.done
            return txn.latency

        assert latency(slow) > latency(fast)
