"""The transaction-level AHB tier: determinism, faults, parity.

The TLM engine advances in transaction-sized steps with no event
kernel underneath, yet it must honour the same contracts as the
cycle-accurate tier: bit-identical repeat runs, identical serial vs
``--jobs 2`` campaign results, honest fault outcomes, and a refusal
to silently approximate what it cannot model (signal-level faults).
"""

import json

import pytest

from repro.amba.transactions import reset_txn_ids
from repro.faults import run_fault_campaign
from repro.kernel import us
from repro.replay import FaultEntry, campaign_spec, execute
from repro.tlm import TlmSystem, load_default_table
from repro.workloads import SCENARIO_PLANS, plan_scenario


def tlm_run(scenario="portable-audio-player", seed=3,
            duration_us=20.0, **kwargs):
    reset_txn_ids()
    system = TlmSystem(plan_scenario(scenario, seed=seed),
                       load_default_table(), scenario=scenario,
                       **kwargs)
    system.run(us(duration_us))
    return system


class TestDeterminism:
    def test_repeat_runs_bit_identical(self):
        first = tlm_run()
        second = tlm_run()
        assert first.ledger.total_energy == second.ledger.total_energy
        assert first.transactions_completed() \
            == second.transactions_completed()
        assert first.clk.cycles == second.clk.cycles
        assert dict(first.ledger.block_energy) \
            == dict(second.ledger.block_energy)

    def test_block_energy_conserved(self):
        """The ledger invariant survives bulk charging: block energies
        sum to the total."""
        system = tlm_run()
        total = system.ledger.total_energy
        assert total > 0
        assert sum(system.ledger.block_energy.values()) \
            == pytest.approx(total, rel=1e-12)

    def test_every_named_scenario_runs(self):
        for scenario in sorted(SCENARIO_PLANS):
            system = tlm_run(scenario=scenario, duration_us=10.0)
            assert system.transactions_completed() > 0, scenario
            assert system.ledger.total_energy > 0, scenario


class TestFaultOutcomes:
    def _outcome(self, fault):
        spec = campaign_spec("portable-audio-player", fault=fault,
                             duration_us=10.0, tier="tlm")
        system, outcome = execute(spec)
        return system, outcome

    def test_always_retry_recovers_with_watchdog(self):
        system, outcome = self._outcome("always-retry")
        assert outcome.outcome == "recovered"
        assert outcome.watchdog_events > 0
        assert outcome.aborted > 0

    def test_hung_slave_detected(self):
        system, outcome = self._outcome("hung-slave")
        assert outcome.outcome == "recovered"
        assert outcome.watchdog_events > 0
        assert outcome.failed > 0

    def test_unreleased_split_detected(self):
        system, outcome = self._outcome("unreleased-split")
        assert outcome.outcome == "recovered"
        assert outcome.watchdog_events > 0

    def test_fault_energy_overhead_charged(self):
        """Non-OKAY response cycles carry energy on the TLM tier too
        (the paper's overhead accounting)."""
        _, faulted = self._outcome("always-retry")
        assert faulted.overhead_energy_j > 0


class TestFidelityRefusal:
    def test_signal_fault_refused_not_approximated(self):
        """Signal-level faults need kernel wires the TLM does not
        model: the run must crash loudly, never silently skip."""
        spec = campaign_spec("portable-audio-player",
                             duration_us=5.0, tier="tlm")
        spec.faults += [FaultEntry.signal_fault(
            "glitch", "hwdata", value=0xDEAD, start_ps=0)]
        system, outcome = execute(spec)
        assert outcome.outcome == "crashed"
        assert "signal" in (outcome.detail or "").lower()


class TestSerialParallelParity:
    def test_jobs2_campaign_identical(self):
        """ISSUE 9 acceptance: a TLM campaign gives byte-identical
        results and merged metrics serial vs ``--jobs 2``."""
        kwargs = dict(
            scenarios=("portable-audio-player",),
            faults=("none", "always-retry", "hung-slave"),
            duration_us=10.0, tier="tlm", timeout=120,
        )
        serial = run_fault_campaign(jobs=1, **kwargs)
        parallel = run_fault_campaign(jobs=2, **kwargs)

        def comparable(campaign):
            runs = []
            for run in sorted(campaign.runs,
                              key=lambda r: r.run_id):
                data = run.to_dict()
                data.pop("wall_time_s", None)  # host timing only
                runs.append(data)
            return json.dumps(runs, sort_keys=True)

        assert comparable(serial) == comparable(parallel)
        assert json.dumps(serial.metrics().merged, sort_keys=True) \
            == json.dumps(parallel.metrics().merged, sort_keys=True)

    def test_tier_recorded_in_results_and_metrics(self):
        campaign = run_fault_campaign(
            scenarios=("portable-audio-player",), faults=("none",),
            duration_us=5.0, tier="tlm")
        assert all(run.tier == "tlm" for run in campaign.runs)
        merged = campaign.metrics().merged
        series = merged["counters"]["campaign_tier_runs_total"]["series"]
        assert any("tier=tlm" in key for key in series)
