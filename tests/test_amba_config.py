"""Unit tests for bus configuration and address maps."""

import pytest
from hypothesis import given, strategies as st

from repro.amba import AddressMap, AddressRegion, AhbConfig, Arbitration


class TestAddressRegion:
    def test_contains(self):
        region = AddressRegion(0x1000, 0x100, 0)
        assert region.contains(0x1000)
        assert region.contains(0x10FF)
        assert not region.contains(0x1100)
        assert not region.contains(0xFFF)

    def test_end(self):
        assert AddressRegion(0x1000, 0x100, 0).end == 0x1100

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            AddressRegion(0, 0, 0)
        with pytest.raises(ValueError):
            AddressRegion(-4, 8, 0)


class TestAddressMap:
    def test_decode(self):
        amap = AddressMap()
        amap.add(0x0000, 0x1000, 0, name="rom")
        amap.add(0x1000, 0x1000, 1, name="ram")
        assert amap.decode(0x0800) == 0
        assert amap.decode(0x1800) == 1
        assert amap.decode(0x2000) is None

    def test_overlap_rejected(self):
        amap = AddressMap()
        amap.add(0x0000, 0x1000, 0)
        with pytest.raises(ValueError):
            amap.add(0x0800, 0x1000, 1)

    def test_adjacent_regions_allowed(self):
        amap = AddressMap()
        amap.add(0x0000, 0x1000, 0)
        amap.add(0x1000, 0x1000, 1)  # no exception
        assert len(amap) == 2

    def test_region_of(self):
        amap = AddressMap()
        region = amap.add(0x2000, 0x100, 3, name="regs")
        assert amap.region_of(0x2050) is region
        assert amap.region_of(0x0) is None

    def test_slave_indices(self):
        amap = AddressMap()
        amap.add(0x0000, 0x100, 2)
        amap.add(0x1000, 0x100, 0)
        amap.add(0x2000, 0x100, 2)
        assert amap.slave_indices == (0, 2)

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                    max_size=8, unique=True))
    def test_uniform_map_decodes_every_region(self, indices):
        n = max(indices) + 1
        config = AhbConfig.with_uniform_map(n_masters=2, n_slaves=n)
        for index in range(n):
            assert config.address_map.decode(index * 0x1000) == index
            assert config.address_map.decode(
                index * 0x1000 + 0xFFF) == index


class TestAhbConfig:
    def test_defaults(self):
        config = AhbConfig()
        assert config.n_masters == 3
        assert config.data_width == 32
        assert config.arbitration == Arbitration.FIXED_PRIORITY

    def test_validation(self):
        with pytest.raises(ValueError):
            AhbConfig(n_masters=0)
        with pytest.raises(ValueError):
            AhbConfig(n_masters=17)
        with pytest.raises(ValueError):
            AhbConfig(n_slaves=0)
        with pytest.raises(ValueError):
            AhbConfig(data_width=24)
        with pytest.raises(ValueError):
            AhbConfig(default_master=5, n_masters=3)
        with pytest.raises(ValueError):
            AhbConfig(arbitration="lottery")

    def test_map_slave_index_out_of_range(self):
        amap = AddressMap()
        amap.add(0, 0x100, 7)
        with pytest.raises(ValueError):
            AhbConfig(n_slaves=2, address_map=amap)

    def test_slave_base(self):
        config = AhbConfig.with_uniform_map(n_slaves=3)
        assert config.slave_base(0) == 0
        assert config.slave_base(2) == 0x2000
        with pytest.raises(KeyError):
            config.slave_base(9)
