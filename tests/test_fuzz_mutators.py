"""Structured genome mutators: validity, determinism, executability."""

import json
import random

from repro.fuzz.mutators import (
    MAX_FAULTS,
    MUTATOR_NAMES,
    MUTATORS,
    SIGNAL_WIDTHS,
    burst_reshape,
    fault_delete,
    fault_insert,
    fault_shift,
    mutate,
    resilience_knobs,
    seed_drift,
    wait_jitter,
)
from repro.replay import FaultEntry, RunSpec, campaign_spec, execute

QUICK = dict(duration_us=5.0)


def seed_genome(**overrides):
    params = dict(QUICK)
    params.update(overrides)
    return campaign_spec("portable-audio-player", "none", **params)


class TestCatalogue:
    def test_catalogue_names_are_stable(self):
        # names are recorded in corpus provenance: renaming one is a
        # format break, so spell the catalogue out
        assert MUTATOR_NAMES == (
            "burst-reshape", "wait-jitter", "arbitration-flip",
            "idle-scale", "fault-insert", "fault-delete",
            "fault-shift", "duration-jitter", "seed-drift",
            "resilience-knobs",
        )

    def test_mutate_is_deterministic_in_the_rng(self):
        spec = seed_genome()
        first = [mutate(spec, random.Random(42)) for _ in range(5)]
        second = [mutate(spec, random.Random(42)) for _ in range(5)]
        assert [(name, mutated.key()) for name, mutated in first] \
            == [(name, mutated.key()) for name, mutated in second]

    def test_mutate_never_returns_the_same_genome_object(self):
        spec = seed_genome()
        rng = random.Random(3)
        for _ in range(20):
            _, mutated = mutate(spec, rng)
            assert mutated is not spec
            assert spec.faults == []  # parent untouched

    def test_all_mutated_genomes_round_trip_through_json(self):
        spec = seed_genome()
        rng = random.Random(7)
        for _ in range(30):
            _, spec = mutate(spec, rng)
            clone = RunSpec.from_dict(
                json.loads(json.dumps(spec.to_dict())))
            assert clone.key() == spec.key()

    def test_deeply_mutated_genome_still_executes(self):
        spec = seed_genome()
        rng = random.Random(11)
        for _ in range(12):
            _, spec = mutate(spec, rng)
        spec = spec.replace(duration_us=2.0)
        _, outcome = execute(spec)
        # contained outcome, never an uncontained crash of the harness
        assert outcome.outcome in ("completed", "recovered",
                                   "degraded", "hung", "crashed")


class TestIndividualMutators:
    def test_burst_reshape_sets_valid_hburst_code(self):
        spec = seed_genome()
        for trial in range(10):
            mutated = burst_reshape(spec, random.Random(trial))
            if mutated is None:  # drew the current value
                continue
            assert mutated.scenario_kwargs["dma_burst"] in range(8)

    def test_wait_jitter_emits_one_wait_state_per_slave(self):
        mutated = wait_jitter(seed_genome(), random.Random(1))
        waits = mutated.scenario_kwargs["wait_states"]
        assert len(waits) == 3
        assert all(0 <= wait <= 3 for wait in waits)

    def test_fault_insert_respects_schedule_ceiling(self):
        spec = seed_genome()
        rng = random.Random(5)
        for _ in range(MAX_FAULTS):
            spec = fault_insert(spec, rng)
        assert len(spec.faults) == MAX_FAULTS
        assert fault_insert(spec, rng) is None

    def test_fault_insert_windows_stay_inside_the_run(self):
        duration_ps = int(QUICK["duration_us"] * 1_000_000)
        rng = random.Random(9)
        for _ in range(20):
            spec = fault_insert(seed_genome(), rng)
            fault = spec.faults[-1]
            if fault.kind == "behavioural":
                assert 0 <= fault.trigger_after < 256
            else:
                assert fault.signal in SIGNAL_WIDTHS
                assert 0 <= fault.bit < SIGNAL_WIDTHS[fault.signal]
                assert 0 <= fault.start_ps < duration_ps
                assert fault.end_ps > fault.start_ps

    def test_fault_delete_and_shift_need_a_schedule(self):
        empty = seed_genome()
        rng = random.Random(2)
        assert fault_delete(empty, rng) is None
        assert fault_shift(empty, rng) is None
        spec = empty.replace(faults=[FaultEntry.behavioural(
            "always-retry", slave=1, trigger_after=4).to_dict()])
        assert fault_delete(spec, rng).faults == []
        shifted = fault_shift(spec, rng)
        assert len(shifted.faults) == 1
        assert shifted.faults[0].mode == "always-retry"

    def test_seed_drift_changes_a_seed(self):
        spec = seed_genome()
        mutated = seed_drift(spec, random.Random(4))
        assert (mutated.seed != spec.seed
                or mutated.injector_seed != spec.injector_seed)

    def test_resilience_knobs_keep_recover_enabled_by_default(self):
        mutated = resilience_knobs(seed_genome(), random.Random(6))
        assert mutated.watchdog_kwargs["recover"] is True
        assert mutated.retry_limit in (1, 2, 4, 8, 16)

    def test_every_mutator_output_is_spec_or_none(self):
        spec = seed_genome()
        for name, mutator in MUTATORS:
            mutated = mutator(spec, random.Random(8))
            assert mutated is None or isinstance(mutated, RunSpec), name
