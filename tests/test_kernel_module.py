"""Unit tests for hierarchical modules."""

import pytest

from repro.kernel import Clock, ElaborationError, Module, Simulator, ns


class Leaf(Module):
    def __init__(self, sim, name, parent=None):
        super().__init__(sim, name, parent=parent)
        self.out = self.signal("out", width=4)


class Mid(Module):
    def __init__(self, sim, name, parent=None):
        super().__init__(sim, name, parent=parent)
        self.leaf_a = Leaf(sim, "leaf_a", parent=self)
        self.leaf_b = Leaf(sim, "leaf_b", parent=self)


class TestHierarchy:
    def test_hierarchical_names(self):
        sim = Simulator()
        top = Mid(sim, "top")
        assert top.leaf_a.name == "top.leaf_a"
        assert top.leaf_a.out.name == "top.leaf_a.out"

    def test_duplicate_child_name_rejected(self):
        sim = Simulator()
        top = Mid(sim, "top")
        with pytest.raises(ElaborationError):
            Leaf(sim, "leaf_a", parent=top)

    def test_iter_modules_depth_first(self):
        sim = Simulator()
        top = Mid(sim, "top")
        names = [module.name for module in top.iter_modules()]
        assert names == ["top", "top.leaf_a", "top.leaf_b"]

    def test_find(self):
        sim = Simulator()
        top = Mid(sim, "top")
        assert top.find("leaf_b") is top.leaf_b
        with pytest.raises(KeyError):
            top.find("missing")

    def test_repr(self):
        sim = Simulator()
        top = Mid(sim, "top")
        assert "top" in repr(top)


class TestModuleProcesses:
    def test_method_and_thread_helpers(self):
        sim = Simulator()
        clk = Clock(sim, "clk", period=ns(10))

        class Counter(Module):
            def __init__(self, sim, name):
                super().__init__(sim, name)
                self.count = self.signal("count", width=8)
                self.ticks = []
                self.method(self.on_clk, [clk.posedge],
                            initialize=False)
                self.thread(self.logger)

            def on_clk(self):
                self.count.write(self.count.value + 1)

            def logger(self):
                while True:
                    yield self.count.changed
                    self.ticks.append((self.sim.now, self.count.value))

        counter = Counter(sim, "ctr")
        sim.run(until=ns(45))
        # rising edges at 5, 15, 25, 35 and 45 ns
        assert counter.count.value == 5
        assert counter.ticks[0][1] == 1

    def test_process_names_are_hierarchical(self):
        sim = Simulator()

        class Named(Module):
            def __init__(self, sim, name):
                super().__init__(sim, name)
                self.proc = self.method(self.step, [],
                                        initialize=False)

            def step(self):
                pass

        module = Named(sim, "dut")
        assert module.proc.name == "dut.step"
