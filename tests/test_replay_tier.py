"""``RunSpec.tier`` plumbing: serde compat, dispatch, journal resume.

The tier field is additive: journals and traces recorded before it
existed must keep loading (missing tier means the cycle-accurate
tier), and both tiers must derive identical stimulus seeds so a TLM
survey can be confirmed cycle-accurately by flipping one field.
"""

import json

import pytest

from repro.faults import run_fault_campaign
from repro.replay import RunSpec, campaign_spec, execute

QUICK = dict(duration_us=5.0)


class TestTierSerde:
    def test_tier_round_trips_through_json(self):
        spec = campaign_spec("portable-audio-player", tier="tlm",
                             **QUICK)
        clone = RunSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert clone.tier == "tlm"
        assert clone.to_dict() == spec.to_dict()

    def test_missing_tier_defaults_to_cycle(self):
        """A spec dict recorded before the tier field existed."""
        data = campaign_spec("portable-audio-player", **QUICK).to_dict()
        del data["tier"]
        assert RunSpec.from_dict(data).tier == "cycle"

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="tier"):
            RunSpec("portable-audio-player", tier="rtl")

    def test_replace_can_flip_tier(self):
        spec = campaign_spec("portable-audio-player", **QUICK)
        flipped = spec.replace(tier="tlm")
        assert flipped.tier == "tlm"
        assert spec.tier == "cycle"

    def test_tier_does_not_perturb_seed_derivation(self):
        """Same stimulus on both tiers: the derived per-run seed must
        not depend on the execution tier."""
        cycle = campaign_spec("portable-audio-player", **QUICK)
        tlm = campaign_spec("portable-audio-player", tier="tlm",
                            **QUICK)
        assert cycle.seed == tlm.seed


class TestTierDispatch:
    def test_execute_dispatches_to_tlm(self):
        spec = campaign_spec("portable-audio-player", tier="tlm",
                             **QUICK)
        system, outcome = execute(spec)
        assert outcome.outcome in ("completed", "recovered")
        # transaction-level: no event kernel underneath
        assert not hasattr(system, "sim")
        assert system.transactions_completed() > 0

    def test_cycle_tier_still_default_path(self):
        spec = campaign_spec("portable-audio-player", **QUICK)
        system, outcome = execute(spec)
        assert outcome.outcome in ("completed", "recovered")
        assert hasattr(system, "sim")


class TestJournalTierCompat:
    FAULTS = ("none", "always-retry")

    def _campaign(self, path, tier, resume=False):
        return run_fault_campaign(
            scenarios=("portable-audio-player",), faults=self.FAULTS,
            duration_us=5.0, tier=tier, journal=str(path),
            resume=resume)

    def test_tlm_journal_resumes_without_reexecution(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        first = self._campaign(path, "tlm")
        assert first.resumed == 0
        second = self._campaign(path, "tlm", resume=True)
        assert second.resumed == len(second.runs) == len(first.runs)
        assert [run.fingerprint for run in second.runs] \
            == [run.fingerprint for run in first.runs]

    def test_pre_tier_journal_resumes(self, tmp_path):
        """A journal written before the tier field existed: strip the
        field from every recorded spec/result and resume against it."""
        path = tmp_path / "journal.jsonl"
        first = self._campaign(path, "cycle")
        lines = []
        for line in path.read_text().splitlines():
            event = json.loads(line)
            result = event.get("result")
            if result:
                result.pop("tier", None)
                if isinstance(result.get("spec"), dict):
                    result["spec"].pop("tier", None)
            lines.append(json.dumps(event, sort_keys=True))
        path.write_text("\n".join(lines) + "\n")
        second = self._campaign(path, "cycle", resume=True)
        assert second.resumed == len(second.runs) == len(first.runs)
