"""Decoder and multiplexer behaviour tests."""

from repro.amba import AhbTransaction, HTRANS


class TestDecoder:
    def test_hsel_one_hot_every_cycle(self, small_system):
        sys = small_system
        records = []

        def probe():
            sels = [p.hsel.value for p in sys.bus.slave_ports]
            sels.append(sys.bus.default_slave_port.hsel.value)
            records.append(tuple(sels))

        sys.sim.add_method(probe, [sys.clk.posedge], initialize=False)
        sys.m0.enqueue(AhbTransaction.write_single(0x0, 1))
        sys.m0.enqueue(AhbTransaction.write_single(0x1000, 2))
        sys.m0.enqueue(AhbTransaction.read(0x5000))  # unmapped
        sys.run_us(2)
        assert records
        assert all(sum(r) == 1 for r in records)

    def test_selected_index_tracks_address(self, small_system):
        sys = small_system
        seen = set()
        sys.sim.add_method(
            lambda: seen.add(sys.bus.decoder.selected_index.value),
            [sys.clk.posedge], initialize=False)
        sys.m0.enqueue(AhbTransaction.write_single(0x0, 1))
        sys.m0.enqueue(AhbTransaction.write_single(0x1000, 2))
        sys.run_us(2)
        assert {0, 1} <= seen

    def test_unmapped_selects_default_slave(self, small_system):
        sys = small_system
        bad = sys.m0.enqueue(AhbTransaction.read(0x7000))
        sys.run_us(1)
        assert bad.error
        assert sys.bus.default_slave.transfers_accepted == 1

    def test_n_outputs(self, small_system):
        assert small_system.bus.decoder.n_outputs == 3  # 2 + default


class TestM2SMux:
    def test_bus_reflects_owner_signals(self, small_system):
        sys = small_system
        seen_addrs = []

        def probe():
            if sys.bus.htrans.value == int(HTRANS.NONSEQ):
                seen_addrs.append(sys.bus.haddr.value)

        sys.sim.add_method(probe, [sys.clk.posedge], initialize=False)
        sys.m0.enqueue(AhbTransaction.write_single(0x0123 & ~3, 1))
        sys.m1.enqueue(AhbTransaction.write_single(0x1456 & ~3, 2))
        sys.run_us(2)
        sys.assert_clean()
        assert (0x0123 & ~3) in seen_addrs
        assert (0x1456 & ~3) in seen_addrs

    def test_wdata_follows_data_phase_owner(self, small_system):
        sys = small_system
        # m0 writes a distinctive value; the bus HWDATA must carry it
        observed = []
        sys.sim.add_method(
            lambda: observed.append(sys.bus.hwdata.value),
            [sys.clk.posedge], initialize=False)
        sys.m0.enqueue(AhbTransaction.write_single(0x0, 0xFEEDFACE))
        sys.run_us(1)
        assert 0xFEEDFACE in observed

    def test_n_inputs(self, small_system):
        assert small_system.bus.m2s_mux.n_inputs == 3


class TestS2MMux:
    def test_idle_bus_is_ready_okay(self, small_system):
        sys = small_system
        sys.run_us(1)
        assert sys.bus.hready.value == 1
        assert sys.bus.hresp.value == 0

    def test_rdata_routed_from_selected_slave(self, small_system):
        sys = small_system
        sys.slaves[0].poke(0x10, 111)
        sys.slaves[1].poke(0x10, 222)
        r0 = sys.m0.enqueue(AhbTransaction.read(0x0010))
        r1 = sys.m0.enqueue(AhbTransaction.read(0x1010))
        sys.run_us(2)
        assert r0.rdata == [111]
        assert r1.rdata == [222]

    def test_hready_low_during_wait_states(self, small_system_waits):
        sys = small_system_waits
        lows = []
        sys.sim.add_method(
            lambda: lows.append(sys.bus.hready.value),
            [sys.clk.posedge], initialize=False)
        sys.m0.enqueue(AhbTransaction.read(0x1000))  # slave 1: 2 waits
        sys.run_us(1)
        assert 0 in lows

    def test_n_inputs_includes_default(self, small_system):
        assert small_system.bus.s2m_mux.n_inputs == 3
