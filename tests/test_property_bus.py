"""Hypothesis property tests over the whole bus.

Each generated workload drives a full system and asserts the global
invariants: protocol cleanliness, transaction completion, read/write
data integrity and energy-accounting conservation.
"""

from hypothesis import given, settings, strategies as st

from repro.amba import AhbTransaction, HBURST
from repro.power import GlobalPowerMonitor
from tests.conftest import SmallSystem


@st.composite
def transaction_specs(draw):
    """A compact spec tuple later turned into an AhbTransaction."""
    kind = draw(st.sampled_from(["single_w", "single_r", "burst_w",
                                 "burst_r"]))
    slave = draw(st.integers(0, 1))
    offset = draw(st.integers(0, 200)) * 4
    idle = draw(st.integers(0, 4))
    payload = draw(st.integers(0, 0xFFFFFFFF))
    return (kind, slave, offset, idle, payload)


def build_transaction(spec):
    kind, slave, offset, idle, payload = spec
    address = slave * 0x1000 + offset
    if kind == "single_w":
        return AhbTransaction.write_single(address, payload,
                                           idle_cycles_before=idle)
    if kind == "single_r":
        return AhbTransaction.read(address, idle_cycles_before=idle)
    if kind == "burst_w":
        data = [(payload + k) & 0xFFFFFFFF for k in range(4)]
        return AhbTransaction(True, address, data=data,
                              hburst=HBURST.INCR4,
                              idle_cycles_before=idle)
    return AhbTransaction(False, address, hburst=HBURST.INCR4,
                          idle_cycles_before=idle)


class TestBusInvariants:
    @given(st.lists(transaction_specs(), min_size=1, max_size=25),
           st.sampled_from(["fixed-priority", "round-robin"]),
           st.sampled_from([(0, 0), (1, 0), (2, 1)]))
    @settings(max_examples=25, deadline=None)
    def test_any_workload_completes_cleanly(self, specs, arbitration,
                                            waits):
        system = SmallSystem(arbitration=arbitration,
                             wait_states=waits)
        monitor = GlobalPowerMonitor(system.sim, "mon", system.bus)
        queued = []
        for index, spec in enumerate(specs):
            master = system.m0 if index % 2 == 0 else system.m1
            queued.append(master.enqueue(build_transaction(spec)))
        system.run_us(40)

        # 1. protocol clean
        system.assert_clean()
        # 2. everything completed without error
        assert all(txn.done for txn in queued)
        assert not any(txn.error for txn in queued)
        # 3. reads return full bursts
        for txn in queued:
            if not txn.write:
                assert len(txn.rdata) == txn.beats
        # 4. energy accounting conserves and is non-negative
        monitor.ledger.check_conservation()
        assert monitor.total_energy >= 0
        # 5. cycle count matches wall clock
        assert monitor.ledger.cycles == 4000

    @given(st.lists(transaction_specs(), min_size=1, max_size=15),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_energy_is_reproducible(self, specs, _salt):
        """Two identical runs account identical energy, whatever the
        workload (determinism of the whole stack)."""
        def run():
            system = SmallSystem()
            monitor = GlobalPowerMonitor(system.sim, "mon", system.bus)
            for index, spec in enumerate(specs):
                master = system.m0 if index % 2 == 0 else system.m1
                master.enqueue(build_transaction(spec))
            system.run_us(25)
            return monitor.total_energy, monitor.ledger.cycles

        assert run() == run()

    @given(st.lists(transaction_specs(), min_size=2, max_size=20))
    @settings(max_examples=15, deadline=None)
    def test_last_write_wins(self, specs):
        """Sequential consistency per master: after the run, memory
        holds the payload of the last write to each address."""
        system = SmallSystem()
        last_write = {}
        for spec in specs:
            txn = build_transaction(spec)
            system.m0.enqueue(txn)
            if txn.write:
                for address, value in zip(txn.addresses, txn.data):
                    last_write[address] = value
        system.run_us(40)
        system.assert_clean()
        for address, value in last_write.items():
            slave = system.slaves[0 if address < 0x1000 else 1]
            assert slave.peek(address % 0x1000) == value
