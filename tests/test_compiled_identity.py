"""Bit-identity oracle for the compiled engine.

The compiled engine's whole value rests on one claim: for any run the
interpreted kernel can execute, compiling first changes *nothing* —
not the state digest, not the energy ledger down to the last bit, not
the outcome fingerprint.  These tests attack that claim from several
directions: the paper testbench directly, the monitor batch's NumPy
and pure-Python replay paths, flush-cap boundaries, the live-monitor
slot used when batching is ineligible, checkpointed digest streams,
and a Hypothesis sweep over scenarios, fault schedules and seeds.
"""

import pytest

from repro.amba.transactions import reset_txn_ids
from repro.compiled import compile_system
from repro.kernel import us
from repro.replay import FaultEntry, campaign_spec, execute
from repro.state import CheckpointPlan
from repro.workloads import build_paper_testbench

DURATION_US = 20          # 2000 cycles at 100 MHz — enough to split,
                          # retry and hand the bus over many times


def _run_paper(setup=None, seed=1, duration_us=DURATION_US):
    """Build the paper testbench, optionally compile, run, and return
    ``(digest, ledger_state, engine)``.

    ``setup`` receives the elaborated testbench and returns the engine
    (or None for an interpreted run).  The process-global transaction
    id counter is reset first so back-to-back builds in one process
    stay comparable.
    """
    reset_txn_ids()
    testbench = build_paper_testbench(seed=seed, checker=False)
    engine = setup(testbench) if setup is not None else None
    testbench.sim.run(until=us(duration_us))
    return (testbench.snapshot().digest,
            testbench.ledger.state_dict(), engine)


class TestPaperTestbenchIdentity:
    def test_compiled_digest_and_ledger_match_interpreted(self):
        digest, ledger, _ = _run_paper()
        c_digest, c_ledger, engine = _run_paper(compile_system)
        assert engine.runs_compiled > 0, engine.fallback_reason
        assert c_digest == digest
        assert c_ledger == ledger

    def test_python_flush_fallback_matches_numpy(self, monkeypatch):
        # _flush_py is the reference replay; the OverflowError path
        # (values beyond int64) must land on identical state.
        digest, ledger, _ = _run_paper(compile_system)

        from repro.compiled.monitor_batch import MonitorBatch

        def _overflow(self, arr):
            raise OverflowError("forced: exercise the python replay")

        monkeypatch.setattr(MonitorBatch, "_flush_np", _overflow)
        p_digest, p_ledger, engine = _run_paper(compile_system)
        assert engine.runs_compiled > 0, engine.fallback_reason
        assert p_digest == digest
        assert p_ledger == ledger

    def test_flush_cap_boundaries_are_invisible(self, monkeypatch):
        # A tiny cap forces many mid-run flushes; replayed state must
        # not depend on where the batch was cut.
        digest, ledger, _ = _run_paper(compile_system)

        from repro.compiled import monitor_batch
        monkeypatch.setattr(monitor_batch, "_FLUSH_ROWS", 32)
        c_digest, c_ledger, engine = _run_paper(compile_system)
        assert engine.batch is not None
        assert c_digest == digest
        assert c_ledger == ledger

    def test_live_monitor_slot_when_not_batchable(self, monkeypatch):
        # Batch-ineligible monitors keep their live per-cycle method
        # inside the emitted edge function; results are identical,
        # just slower.
        digest, ledger, _ = _run_paper()

        from repro.compiled import engine as engine_mod
        monkeypatch.setattr(engine_mod, "batchable", lambda m: False)
        c_digest, c_ledger, engine = _run_paper(compile_system)
        assert engine.batch is None
        assert engine.runs_compiled > 0, engine.fallback_reason
        assert c_digest == digest
        assert c_ledger == ledger


class TestReplayEngineIdentity:
    def test_checkpoint_digest_streams_match(self):
        spec = campaign_spec("portable-audio-player",
                             fault="always-retry", seed=5,
                             duration_us=4.0)
        _, interpreted = execute(
            spec, checkpoint=CheckpointPlan(interval_cycles=100))
        _, compiled = execute(
            spec.replace(engine="compiled"),
            checkpoint=CheckpointPlan(interval_cycles=100))
        assert compiled.outcome == interpreted.outcome
        assert interpreted.digests["entries"]
        assert compiled.digests == interpreted.digests
        assert compiled.fingerprint() == interpreted.fingerprint()


hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

SCENARIOS = ("portable-audio-player", "wireless-modem",
             "portable-videogame")
BEHAVIOURAL = ("none", "always-retry", "hung-slave")


@st.composite
def run_specs(draw):
    spec = campaign_spec(
        draw(st.sampled_from(SCENARIOS)),
        fault=draw(st.sampled_from(BEHAVIOURAL)),
        seed=draw(st.integers(min_value=0, max_value=2**16)),
        duration_us=draw(st.sampled_from((3.0, 4.0))),
    )
    if draw(st.booleans()):  # optional mid-run signal corruption
        start = draw(st.integers(min_value=0, max_value=2)) * 1_000_000
        spec.faults = list(spec.faults) + [FaultEntry.signal_fault(
            draw(st.sampled_from(("bit-flip", "stuck-at", "glitch"))),
            draw(st.sampled_from(("hrdata", "haddr", "htrans"))),
            bit=draw(st.integers(min_value=0, max_value=7)),
            value=draw(st.integers(min_value=0, max_value=255)),
            start_ps=start, end_ps=start + 2_000_000,
            probability=draw(st.sampled_from((0.1, 0.5, 1.0))),
        )]
    return spec


class TestCompiledEqualsInterpretedProperty:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow],
              derandomize=True)
    @given(spec=run_specs())
    def test_fingerprint_digest_and_ledger_match(self, spec):
        i_system, i_outcome = execute(spec)
        c_system, c_outcome = execute(spec.replace(engine="compiled"))

        assert c_outcome.fingerprint() == i_outcome.fingerprint()
        # Crashed/hung runs can stop mid-delta, where snapshot() is
        # not defined to be quiescent; the fingerprint (which embeds
        # exact energy totals) is the oracle there.
        if i_outcome.outcome == "ok":
            assert (c_system.snapshot().digest
                    == i_system.snapshot().digest)
        if i_system.ledger is not None and c_system.ledger is not None:
            assert (c_system.ledger.state_dict()
                    == i_system.ledger.state_dict())
