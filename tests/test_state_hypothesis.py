"""Property-based exactness: checkpoint/restore is digest-identical to
straight execution across randomly drawn scenarios, fault schedules
and split points.

The single property under test (ISSUE 8 acceptance): for any run the
campaign can encode, executing the first M microseconds, snapshotting,
restoring into a fresh elaboration and executing N more is
bit-identical — same canonical state digest, same outcome fingerprint —
to executing M + N microseconds straight through."""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.replay import FaultEntry, campaign_spec, execute  # noqa: E402
from repro.state import CheckpointPlan, CheckpointStore  # noqa: E402

SCENARIOS = ("portable-audio-player", "wireless-modem",
             "portable-videogame")
BEHAVIOURAL = ("none", "always-retry", "hung-slave")


@st.composite
def run_specs(draw):
    spec = campaign_spec(
        draw(st.sampled_from(SCENARIOS)),
        fault=draw(st.sampled_from(BEHAVIOURAL)),
        seed=draw(st.integers(min_value=0, max_value=2**16)),
        duration_us=draw(st.sampled_from((3.0, 4.0, 5.0))),
    )
    if draw(st.booleans()):  # optional mid-run signal corruption
        start = draw(st.integers(min_value=0, max_value=3)) * 1_000_000
        spec.faults = list(spec.faults) + [FaultEntry.signal_fault(
            draw(st.sampled_from(("bit-flip", "stuck-at", "glitch"))),
            draw(st.sampled_from(("hrdata", "haddr", "htrans"))),
            bit=draw(st.integers(min_value=0, max_value=7)),
            value=draw(st.integers(min_value=0, max_value=255)),
            start_ps=start, end_ps=start + 2_000_000,
            probability=draw(st.sampled_from((0.1, 0.5, 1.0))),
        )]
    return spec


class TestCheckpointProperty:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow],
              derandomize=True)
    @given(spec=run_specs(),
           split_us=st.sampled_from((1.0, 2.0)),
           interval=st.sampled_from((100, 250)))
    def test_restore_and_run_equals_straight_run(
            self, tmp_path_factory, spec, split_us, interval):
        tmp = tmp_path_factory.mktemp("hyp")
        plan = CheckpointPlan(interval_cycles=interval)
        _, straight = execute(spec, checkpoint=plan)

        store = CheckpointStore(str(tmp / "ck"))
        execute(spec.replace(duration_us=split_us),
                checkpoint=CheckpointPlan(interval, store))
        _, resumed = execute(
            spec, checkpoint=CheckpointPlan(interval, store),
            resume=True)

        assert resumed.digests["entries"][-1]["digest"] \
            == straight.digests["entries"][-1]["digest"]
        assert resumed.fingerprint() == straight.fingerprint()
