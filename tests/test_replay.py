"""Deterministic record/replay and the failure shrinker."""

import json

import pytest

from repro.cli import main
from repro.faults import run_fault_campaign
from repro.replay import (
    FORMAT,
    FaultEntry,
    ReplayTrace,
    RunOutcome,
    RunSpec,
    campaign_spec,
    execute,
    failure_signature,
    shrink,
)

QUICK = dict(duration_us=5.0)


def retry_spec(**overrides):
    """A small failing run: always-RETRY slave under the campaign
    resilience stack (trips the retry-livelock rule)."""
    params = dict(QUICK)
    params.update(overrides)
    return campaign_spec("portable-audio-player", fault="always-retry",
                         **params)


def padded_spec():
    """The failing run plus three no-op signal faults (their windows
    open long after the run ends)."""
    spec = retry_spec()
    far = 10**12
    spec.faults += [
        FaultEntry.signal_fault("glitch", "hwdata", value=0xDEAD,
                                start_ps=far),
        FaultEntry.signal_fault("bit-flip", "haddr", bit=2,
                                start_ps=far, end_ps=far + 1000),
        FaultEntry.signal_fault("stuck-at", "htrans", bit=0,
                                start_ps=far, end_ps=far + 1000),
    ]
    return spec


class TestSpecSerde:
    def test_spec_round_trips_through_json(self):
        spec = padded_spec()
        clone = RunSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert clone.key() == spec.key()
        assert [f.describe() for f in clone.faults] \
            == [f.describe() for f in spec.faults]

    def test_replace_produces_independent_copy(self):
        spec = retry_spec()
        shorter = spec.replace(duration_us=1.0)
        assert shorter.duration_us == 1.0
        assert spec.duration_us == QUICK["duration_us"]
        assert shorter.scenario == spec.scenario

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEntry("cosmic-ray")

    def test_trace_format_is_versioned(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "other/9", "runs": []}))
        with pytest.raises(ValueError, match=FORMAT):
            ReplayTrace.load(str(path))


class TestBitExactReplay:
    def test_same_spec_reproduces_identical_fingerprint(self):
        spec = retry_spec()
        _, first = execute(spec)
        _, second = execute(spec)
        assert first.failing
        assert first == second
        # the acceptance contract, spelled out:
        assert first.first_violation_cycle \
            == second.first_violation_cycle
        assert first.total_energy_j == second.total_energy_j

    def test_trace_round_trip_replays_bit_exactly(self, tmp_path):
        spec = retry_spec()
        _, outcome = execute(spec)
        trace = ReplayTrace()
        trace.append(spec, outcome)
        path = str(tmp_path / "trace.json")
        trace.save(path)
        loaded = ReplayTrace.load(path)
        assert len(loaded) == 1
        _, recorded, actual, match = loaded.replay(0)
        assert match
        assert recorded.fingerprint() == actual.fingerprint()

    def test_campaign_spec_mirrors_campaign_runner(self):
        from repro.faults import derive_run_seed
        result = run_fault_campaign(
            scenarios=("portable-audio-player",),
            faults=("always-retry",), **QUICK)
        cell = [run for run in result.runs
                if run.fault == "always-retry"][0]
        # The campaign derives each cell's seed from its identity so
        # results are dispatch-order invariant; mirror that here.
        seed = derive_run_seed(1, "portable-audio-player",
                               "always-retry", 0)
        _, outcome = execute(retry_spec(seed=seed))
        assert outcome.outcome == cell.outcome
        assert outcome.completed == cell.completed
        assert outcome.failed == cell.failed
        assert outcome.total_energy_j == cell.total_energy
        assert tuple(outcome.rules_tripped) == cell.rules_tripped

    def test_signal_faults_replay_deterministically(self):
        spec = retry_spec()
        spec.faults.append(FaultEntry.signal_fault(
            "bit-flip", "haddr", bit=4, probability=0.01,
            start_ps=0))
        _, first = execute(spec)
        _, second = execute(spec)
        assert first == second  # seeded injector RNG

    def test_outcome_failing_classification(self):
        healthy = RunOutcome(outcome="completed", violations=0,
                             recovery_compliant=True)
        assert not healthy.failing
        assert RunOutcome(outcome="hung", violations=0,
                          recovery_compliant=True).failing
        assert RunOutcome(outcome="completed", violations=3,
                          recovery_compliant=True).failing
        assert RunOutcome(outcome="completed", violations=0,
                          recovery_compliant=False).failing


class TestShrinker:
    def test_multi_fault_schedule_shrinks_to_minimal_reproducer(self):
        result = shrink(padded_spec())
        # acceptance: a multi-fault schedule reduces to <= 2 faults
        # (here: exactly the one fault that causes the failure).
        assert len(result.spec.faults) <= 2
        assert result.spec.faults[0].mode == "always-retry"
        assert "retry-livelock" in result.outcome.rules_tripped
        assert result.spec.duration_us < QUICK["duration_us"]
        assert result.executions >= 1
        assert any("faults" in step for step in result.steps)
        assert "minimal" in result.summary()

    def test_shrink_is_1_minimal_over_faults(self):
        result = shrink(padded_spec())
        # removing the last remaining fault must kill the failure
        empty = result.spec.replace(faults=[])
        _, outcome = execute(empty)
        assert "retry-livelock" not in outcome.rules_tripped

    def test_shrink_rejects_healthy_runs(self):
        healthy = campaign_spec("portable-audio-player", fault="none",
                                **QUICK)
        with pytest.raises(ValueError, match="not failing"):
            shrink(healthy)

    def test_failure_signature_prefers_violated_rule(self):
        # the rule signature carries the specific rule_id AND its tier
        assert failure_signature(RunOutcome(
            first_violation_rule="wait-limit",
            recovery_compliant=True, outcome="recovered",
        )) == ("rule", "wait-limit", "advisory")
        assert failure_signature(RunOutcome(
            first_violation_rule="alignment",
            recovery_compliant=False, outcome="recovered",
        )) == ("rule", "alignment", "mandatory")
        assert failure_signature(RunOutcome(
            first_violation_rule=None, recovery_compliant=False,
            outcome="recovered",
        )) == ("non-compliant",)
        assert failure_signature(RunOutcome(
            first_violation_rule=None, recovery_compliant=True,
            outcome="hung",
        )) == ("outcome", "hung")

    def test_crash_signature_keys_on_exception_type(self):
        crashed = RunOutcome(
            first_violation_rule=None, recovery_compliant=True,
            outcome="crashed", detail="KeyError: 'htrans'",
        )
        assert failure_signature(crashed) \
            == ("outcome", "crashed", "KeyError")
        other = RunOutcome(
            first_violation_rule=None, recovery_compliant=True,
            outcome="crashed", detail="ValueError: bad burst",
        )
        assert failure_signature(other) != failure_signature(crashed)

    def test_shrink_pins_original_rule_with_cooccurring_violations(
            self):
        # Two independent bugs in one run: a stuck-at on HADDR bit 0
        # trips the mandatory alignment rule first, while an
        # always-RETRY slave trips the advisory retry-livelock rule.
        # ddmin must not slide from the first bug onto the second.
        spec = retry_spec(duration_us=10.0)
        spec.faults.append(FaultEntry.signal_fault(
            "stuck-at", "haddr", bit=0, value=1,
            start_ps=100_000, end_ps=2_000_000))
        _, outcome = execute(spec)
        assert outcome.first_violation_rule == "alignment"
        assert "retry-livelock" in outcome.rules_tripped
        result = shrink(spec)
        assert "alignment" in result.outcome.rules_tripped
        assert result.outcome.first_violation_rule == "alignment"
        # the livelock fault is dead weight for *this* signature
        assert len(result.spec.faults) == 1
        assert result.spec.faults[0].kind == "stuck-at"

    def test_custom_predicate_drives_the_search(self):
        # shrink against outcome classification instead of rules
        result = shrink(retry_spec(),
                        predicate=lambda o: o.outcome == "recovered")
        assert result.outcome.outcome == "recovered"


class TestCli:
    def test_faults_record_then_replay_round_trip(self, tmp_path):
        trace_path = str(tmp_path / "campaign.json")
        code = main(["faults", "--scenario", "portable-audio-player",
                     "--fault", "always-retry", "--duration-us", "5",
                     "--record", trace_path])
        assert code == 0
        assert len(ReplayTrace.load(trace_path)) == 2
        assert main(["replay", trace_path]) == 0

    def test_replay_shrink_writes_minimal_trace(self, tmp_path,
                                                capsys):
        trace_path = str(tmp_path / "campaign.json")
        out_path = str(tmp_path / "minimal.json")
        main(["faults", "--scenario", "portable-audio-player",
              "--fault", "always-retry", "--duration-us", "5",
              "--record", trace_path])
        code = main(["replay", trace_path, "--shrink",
                     "--out", out_path,
                     "--json", str(tmp_path / "report.json")])
        assert code == 0
        out = capsys.readouterr().out
        assert "bit-exact: yes" in out
        minimal = ReplayTrace.load(out_path)
        assert len(minimal) == 1
        spec, outcome = minimal[0]
        assert len(spec.faults) <= 2
        report = json.loads(
            (tmp_path / "report.json").read_text())
        assert report["match"] is True
        assert report["shrink"]["minimal_spec"]["faults"]

    def test_replay_rejects_bad_index(self, tmp_path):
        trace_path = str(tmp_path / "one.json")
        main(["scenario", "portable-audio-player", "--duration-us",
              "2", "--record", trace_path])
        assert main(["replay", trace_path, "--index", "7"]) == 2

    def test_scenario_check_protocol_raise_stays_clean(self, capsys):
        code = main(["scenario", "wireless-modem", "--duration-us",
                     "5", "--check-protocol", "raise"])
        assert code == 0
        assert '"transactions"' in capsys.readouterr().out

    def test_unrecovered_campaign_exits_nonzero(self, capsys):
        # detection without recovery leaves the hung slave hung: the
        # CI gate must see a non-zero exit and a stderr diagnosis.
        code = main(["faults", "--scenario", "portable-audio-player",
                     "--fault", "hung-slave", "--duration-us", "5",
                     "--no-recover"])
        assert code == 1
        err = capsys.readouterr().err
        assert "campaign FAILED" in err
        assert "hung-slave" in err
