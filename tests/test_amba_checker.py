"""Protocol checker tests: clean traffic passes, violations are caught."""

from repro.amba import (
    AhbBus,
    AhbConfig,
    AhbProtocolChecker,
    AhbTransaction,
    HBURST,
    HTRANS,
)
from repro.kernel import Clock, MHz, Simulator, us


class TestCleanTraffic:
    def test_mixed_traffic_is_clean(self, small_system):
        sys = small_system
        sys.m0.enqueue(AhbTransaction.write_single(0x0, 1))
        sys.m0.enqueue(AhbTransaction(True, 0x100, data=[1, 2, 3, 4],
                                      hburst=HBURST.INCR4))
        sys.m1.enqueue(AhbTransaction.read(0x1000))
        sys.run_us(3)
        assert sys.checker.ok
        assert sys.checker.cycles_checked > 0

    def test_wait_states_are_clean(self, small_system_waits):
        sys = small_system_waits
        sys.m0.enqueue(AhbTransaction(True, 0x1000, data=[9, 8, 7, 6],
                                      hburst=HBURST.INCR4))
        sys.run_us(3)
        assert sys.checker.ok

    def test_error_response_is_clean(self, small_system):
        sys = small_system
        sys.m0.enqueue(AhbTransaction.read(0x9000))
        sys.run_us(2)
        assert sys.checker.ok


class _RogueMaster:
    """Drives raw port signals to provoke specific violations."""

    def __init__(self, sim, clk, bus):
        self.sim = sim
        self.clk = clk
        self.bus = bus
        self.port = bus.master_ports[0]
        self.cycle = 0
        self.script = {}
        sim.add_method(self._drive, [clk.posedge], initialize=False)
        self.port.hbusreq.force(1)

    def _drive(self):
        actions = self.script.get(self.cycle, {})
        for signal_name, value in actions.items():
            getattr(self.port, signal_name).write(value)
        self.cycle += 1


def rogue_system():
    sim = Simulator()
    clk = Clock.from_frequency(sim, "clk", MHz(100))
    config = AhbConfig.with_uniform_map(n_masters=2, n_slaves=1,
                                        default_master=1)
    bus = AhbBus(sim, "ahb", clk, config)
    from repro.amba import DefaultMaster, MemorySlave
    DefaultMaster(sim, "dm", clk, bus.master_ports[1], bus)
    MemorySlave(sim, "s0", clk, bus.slave_ports[0], bus)
    rogue = _RogueMaster(sim, clk, bus)
    checker = AhbProtocolChecker(sim, "chk", bus)
    return sim, rogue, checker


class TestViolationDetection:
    def test_unaligned_address_flagged(self):
        sim, rogue, checker = rogue_system()
        rogue.script = {
            2: {"htrans": int(HTRANS.NONSEQ), "haddr": 0x2,
                "hsize": 2},  # word transfer at halfword address
            3: {"htrans": int(HTRANS.IDLE)},
        }
        sim.run(until=us(1))
        assert any(v.rule == "alignment" for v in checker.violations)

    def test_seq_without_nonseq_flagged(self):
        sim, rogue, checker = rogue_system()
        rogue.script = {
            2: {"htrans": int(HTRANS.SEQ), "haddr": 0x4},
            3: {"htrans": int(HTRANS.IDLE)},
        }
        sim.run(until=us(1))
        assert any(v.rule == "seq-without-nonseq"
                   for v in checker.violations)

    def test_busy_outside_burst_flagged(self):
        sim, rogue, checker = rogue_system()
        rogue.script = {
            2: {"htrans": int(HTRANS.BUSY)},
            3: {"htrans": int(HTRANS.IDLE)},
        }
        sim.run(until=us(1))
        assert any(v.rule == "busy-outside-burst"
                   for v in checker.violations)

    def test_wrong_seq_address_flagged(self):
        sim, rogue, checker = rogue_system()
        rogue.script = {
            2: {"htrans": int(HTRANS.NONSEQ), "haddr": 0x0,
                "hburst": int(HBURST.INCR4), "hsize": 2},
            3: {"htrans": int(HTRANS.SEQ), "haddr": 0x40},  # not 0x4
            4: {"htrans": int(HTRANS.IDLE)},
        }
        sim.run(until=us(1))
        assert any(v.rule == "burst-address" for v in checker.violations)

    def test_strict_mode_raises(self):
        import pytest
        sim, rogue, checker = rogue_system()
        checker.strict = True
        rogue.script = {
            2: {"htrans": int(HTRANS.SEQ), "haddr": 0x4},
        }
        from repro.kernel import ProcessError
        with pytest.raises(ProcessError):
            sim.run(until=us(1))

    def test_violation_repr(self):
        sim, rogue, checker = rogue_system()
        rogue.script = {2: {"htrans": int(HTRANS.BUSY)}}
        sim.run(until=us(1))
        assert checker.violations
        assert "busy-outside-burst" in repr(checker.violations[0])
