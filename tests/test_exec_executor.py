"""The supervised campaign executor.

Covers the PR's acceptance scenario end-to-end: a campaign containing a
run whose worker is deliberately hung (monkeypatched busy-loop) and a
run whose worker is killed finishes anyway, classifies them ``timeout``
and — after two kills — ``quarantined`` with a shrink-ready ``RunSpec``
artefact on disk; a subsequent resume completes only the remaining runs
with results bit-identical to a fresh serial campaign.
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
import repro.exec.worker as worker_mod
from repro.cli import main
from repro.exec import (
    ExecutorConfig,
    WORKER_ENV_FLAG,
    CampaignExecutor,
    execute_campaign,
    load_journal,
)
from repro.faults import enumerate_campaign, run_fault_campaign
from repro.replay import ReplayTrace

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(
    not HAVE_FORK,
    reason="hostile-worker tests patch the worker via fork inheritance")

SCENARIO = "portable-audio-player"
QUICK = dict(duration_us=2.0)


def small_campaign(**kwargs):
    params = dict(scenarios=(SCENARIO,),
                  faults=("always-retry", "hung-slave"), seed=1,
                  **QUICK)
    params.update(kwargs)
    return run_fault_campaign(**params)


def small_runs(scenarios=(SCENARIO,),
               faults=("always-retry", "hung-slave")):
    return enumerate_campaign(scenarios, faults, seed=1, **QUICK)


def strip_wall(campaign_dict):
    """Campaign JSON minus host-timing fields (everything else must be
    bit-identical across executors and dispatch orders)."""
    data = {key: value for key, value in campaign_dict.items()
            if key not in ("wall_time_s", "jobs")}
    data["runs"] = [{key: value for key, value in run.items()
                     if key != "wall_time_s"}
                    for run in data["runs"]]
    metrics = data.get("campaign_metrics")
    if metrics:
        # the merged snapshot is deterministic by contract; the summary
        # carries the wall-clock figures (throughput, jobs)
        data["campaign_metrics"] = {
            "merged": metrics["merged"],
            "summary": {
                key: value
                for key, value in metrics["summary"].items()
                if key not in ("wall_time_s", "jobs",
                               "throughput_runs_per_s")
            },
        }
    return data


def arm_hostile_worker(monkeypatch, by_fault):
    """Monkeypatch the worker entry to hang or die for chosen faults.

    The patch keys off :data:`WORKER_ENV_FLAG` so it only ever fires
    inside a disposable worker process (fork inheritance carries it
    there), never in the supervisor.
    """
    real = worker_mod.execute_payload

    def hostile(payload, wall_clock_budget=None):
        if os.environ.get(WORKER_ENV_FLAG):
            action = by_fault.get(payload["fault"])
            if action == "hang":
                while True:
                    pass
            if action == "die":
                os.kill(os.getpid(), signal.SIGKILL)
        return real(payload, wall_clock_budget=wall_clock_budget)

    monkeypatch.setattr(worker_mod, "execute_payload", hostile)


class TestSerialParallelEquivalence:
    def test_parallel_campaign_is_bit_identical_to_serial(self):
        serial = small_campaign()
        parallel = small_campaign(jobs=2, timeout=60)
        assert serial.ok and parallel.ok
        assert strip_wall(serial.to_dict()) \
            == strip_wall(parallel.to_dict())

    def test_scenario_order_does_not_change_results(self):
        forward = small_campaign(
            scenarios=(SCENARIO, "wireless-modem"))
        backward = small_campaign(
            scenarios=("wireless-modem", SCENARIO))
        by_id = {run.run_id: run.to_dict() for run in backward.runs}
        for run in forward.runs:
            mirrored = dict(by_id[run.run_id])
            mine = run.to_dict()
            mirrored.pop("wall_time_s"), mine.pop("wall_time_s")
            assert mine == mirrored


class TestDeadlines:
    def test_serial_deadline_classifies_timeout(self):
        # The cooperative kernel budget fires without any worker pool.
        result = small_campaign(faults=("always-retry",),
                                duration_us=500.0, timeout=0.01)
        outcomes = {run.run_id: run.outcome for run in result.runs}
        assert set(outcomes.values()) == {"timeout"}
        assert not result.ok
        assert all(run in [r.run_id for r in result.failures]
                   for run in outcomes)

    @needs_fork
    def test_hung_worker_is_killed_and_classified_timeout(
            self, monkeypatch, tmp_path):
        arm_hostile_worker(monkeypatch, {"always-retry": "hang"})
        journal = str(tmp_path / "c.jsonl")
        result = small_campaign(faults=("always-retry",), jobs=2,
                                timeout=0.4, journal=journal)
        by_fault = {run.fault: run for run in result.runs}
        assert by_fault["none"].outcome == "completed"
        assert by_fault["always-retry"].outcome == "timeout"
        assert "killed" in by_fault["always-retry"].detail
        assert not result.ok


class TestQuarantine:
    @needs_fork
    def test_two_worker_kills_quarantine_the_run(self, monkeypatch,
                                                 tmp_path):
        arm_hostile_worker(monkeypatch, {"hung-slave": "die"})
        journal = str(tmp_path / "c.jsonl")
        result = small_campaign(jobs=2, timeout=30, journal=journal,
                                executor_config=None)
        by_fault = {run.fault: run for run in result.runs}
        assert by_fault["none"].outcome == "completed"
        assert by_fault["always-retry"].outcome in (
            "completed", "recovered", "degraded")
        quarantined = by_fault["hung-slave"]
        assert quarantined.outcome == "quarantined"
        assert quarantined.attempts == 2
        # the artefact is a loadable single-run replay trace
        artefact = str(tmp_path / ("quarantine.%s--hung-slave"
                                   ".runspec.json" % SCENARIO))
        assert os.path.exists(artefact)
        trace = ReplayTrace.load(artefact)
        assert len(trace) == 1
        spec, outcome = trace[0]
        assert spec.to_dict() == quarantined.spec
        assert outcome.outcome == "quarantined"

    @needs_fork
    def test_quarantine_disabled_classifies_worker_crashed(
            self, monkeypatch, tmp_path):
        arm_hostile_worker(monkeypatch, {"hung-slave": "die"})
        runs = small_runs()
        config = ExecutorConfig(jobs=2, timeout=30, quarantine=False,
                                artefact_dir=str(tmp_path))
        report = execute_campaign(runs, config)
        outcome = report.results[SCENARIO + "/hung-slave"]
        assert outcome.outcome == "worker-crashed"
        assert not report.quarantined


class TestResume:
    def test_resume_skips_completed_and_is_bit_identical(
            self, monkeypatch, tmp_path):
        journal = str(tmp_path / "c.jsonl")
        # Phase 1: only the first scenario's runs reach the journal.
        first = run_fault_campaign(scenarios=(SCENARIO,),
                                   faults=("always-retry",), seed=1,
                                   journal=journal, **QUICK)
        assert first.ok
        # Phase 2: the full campaign, resumed — phase-1 runs must be
        # restored, not re-executed.
        executed = []
        import repro.exec.executor as executor_mod
        real = executor_mod.execute_payload

        def counting(payload, wall_clock_budget=None):
            executed.append(payload["run"])
            return real(payload, wall_clock_budget=wall_clock_budget)

        monkeypatch.setattr(executor_mod, "execute_payload", counting)
        both = run_fault_campaign(
            scenarios=(SCENARIO, "wireless-modem"),
            faults=("always-retry",), seed=1, journal=journal,
            resume=True, **QUICK)
        assert both.resumed == 2
        assert all(run.startswith("wireless-modem/")
                   for run in executed)
        fresh = run_fault_campaign(
            scenarios=(SCENARIO, "wireless-modem"),
            faults=("always-retry",), seed=1, **QUICK)
        assert strip_wall(fresh.to_dict()) == strip_wall(
            {**both.to_dict(), "resumed": 0})

    def test_resume_tolerates_truncated_tail(self, tmp_path):
        journal = str(tmp_path / "c.jsonl")
        first = run_fault_campaign(scenarios=(SCENARIO,),
                                   faults=("always-retry",), seed=1,
                                   journal=journal, **QUICK)
        assert first.ok
        with open(journal, "a") as fh:
            fh.write('{"event": "result", "run": "tru')  # hard kill
        resumed = run_fault_campaign(scenarios=(SCENARIO,),
                                     faults=("always-retry",), seed=1,
                                     journal=journal, resume=True,
                                     **QUICK)
        assert resumed.resumed == len(first.runs)
        assert strip_wall(resumed.to_dict()) == strip_wall(
            {**first.to_dict(), "resumed": resumed.resumed})

    @needs_fork
    def test_acceptance_hung_and_killed_then_resume(self, monkeypatch,
                                                    tmp_path):
        """The ISSUE's acceptance scenario in one piece."""
        arm_hostile_worker(monkeypatch, {"always-retry": "hang",
                                         "hung-slave": "die"})
        journal = str(tmp_path / "c.jsonl")
        wrecked = small_campaign(jobs=2, timeout=0.4, journal=journal)
        by_fault = {run.fault: run for run in wrecked.runs}
        assert by_fault["none"].outcome == "completed"
        assert by_fault["always-retry"].outcome == "timeout"
        assert by_fault["hung-slave"].outcome == "quarantined"
        artefact = str(tmp_path / ("quarantine.%s--hung-slave"
                                   ".runspec.json" % SCENARIO))
        assert os.path.exists(artefact)
        # Resume with healthy workers: every run already has a
        # journalled result, so nothing re-executes and the healthy
        # run's result is bit-identical to a fresh serial campaign.
        resumed = small_campaign(jobs=2, timeout=30, journal=journal,
                                 resume=True)
        assert resumed.resumed == 3
        fresh = small_campaign(faults=())
        fresh_none = [run for run in fresh.runs
                      if run.fault == "none"][0]
        resumed_none = [run for run in resumed.runs
                        if run.fault == "none"][0]
        a, b = fresh_none.to_dict(), resumed_none.to_dict()
        a.pop("wall_time_s"), b.pop("wall_time_s")
        assert a == b


class TestDegradation:
    @needs_fork
    def test_pool_collapse_degrades_to_serial(self, monkeypatch,
                                              tmp_path):
        # Every worker dies on any payload: the pool collapses, and
        # the supervisor finishes untried runs in-process instead of
        # aborting the campaign.
        arm_hostile_worker(monkeypatch, {"none": "die",
                                         "always-retry": "die",
                                         "hung-slave": "die"})
        runs = small_runs()
        config = ExecutorConfig(jobs=2, timeout=30,
                                max_worker_restarts=1,
                                artefact_dir=str(tmp_path))
        report = execute_campaign(runs, config)
        assert report.degraded
        assert len(report.results) == len(runs)
        outcomes = {run_id: result.outcome
                    for run_id, result in report.results.items()}
        # runs that already killed a worker are not re-run in the
        # supervisor; fresh ones execute serially and succeed
        assert "quarantined" in set(outcomes.values())
        assert set(outcomes.values()) <= {"completed", "recovered",
                                          "degraded", "quarantined"}


class TestSigint:
    def test_first_interrupt_drains_second_aborts(self):
        executor = CampaignExecutor(small_runs(), ExecutorConfig())
        executor._on_sigint()
        assert executor.interrupts == 1  # drain mode, no exception
        executor._phase = "serial"
        with pytest.raises(KeyboardInterrupt):
            executor._on_sigint()

    def test_interrupted_serial_campaign_flushes_and_reports(
            self, tmp_path):
        journal = str(tmp_path / "c.jsonl")
        executor = CampaignExecutor(
            small_runs(), ExecutorConfig(journal=journal))
        executor.interrupts = 1  # as if Ctrl-C landed before work
        report = executor.execute()
        assert report.interrupted
        assert report.results == {}
        state = load_journal(journal)
        assert state.header is not None  # flushed, valid, resumable

    @pytest.mark.skipif(os.name != "posix",
                        reason="sends real SIGINT to a child process")
    def test_cli_double_sigint_exits_130_with_valid_journal(
            self, tmp_path):
        journal = str(tmp_path / "c.jsonl")
        src = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep \
            + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "faults",
             "--scenario", SCENARIO, "--fault", "always-retry",
             "--duration-us", "5000", "--jobs", "2",
             "--journal", journal],
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if os.path.exists(journal) \
                        and "dispatch" in open(journal).read():
                    break
                time.sleep(0.1)
            else:
                pytest.fail("campaign never started dispatching")
            proc.send_signal(signal.SIGINT)
            time.sleep(1.0)
            proc.send_signal(signal.SIGINT)
            rc = proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert rc == 130
        state = load_journal(journal)  # append-only file stayed sane
        assert state.header is not None
        assert state.in_flight or state.results


class TestCrashArtefacts:
    def test_crashed_run_carries_traceback_and_runspec(
            self, monkeypatch, tmp_path):
        import repro.replay.trace as trace_mod

        def explode(*args, **kwargs):
            raise RuntimeError("injected elaboration failure")

        monkeypatch.setattr(trace_mod, "build_scenario", explode)
        journal = str(tmp_path / "c.jsonl")
        result = run_fault_campaign(scenarios=(SCENARIO,),
                                    faults=("always-retry",), seed=1,
                                    journal=journal, **QUICK)
        assert not result.ok
        for run in result.runs:
            assert run.outcome == "crashed"
            assert "RuntimeError: injected elaboration failure" \
                in run.traceback
            assert run.spec is not None
            artefact = str(tmp_path / ("crash.%s--%s.runspec.json"
                                       % (run.scenario, run.fault)))
            assert os.path.exists(artefact)
            trace = ReplayTrace.load(artefact)
            assert trace[0][0].to_dict() == run.spec

    def test_result_spec_and_fingerprint_feed_replay(self, tmp_path):
        # End-to-end: the spec/fingerprint every result now carries is
        # enough to rebuild a replay trace that `repro replay` accepts
        # and reproduces bit-exactly.
        campaign = run_fault_campaign(scenarios=(SCENARIO,),
                                      faults=("always-retry",),
                                      seed=1, **QUICK)
        run = [r for r in campaign.runs
               if r.fault == "always-retry"][0]
        from repro.replay import RunOutcome, RunSpec
        trace = ReplayTrace()
        trace.append(RunSpec.from_dict(run.spec),
                     RunOutcome(**run.fingerprint))
        path = str(tmp_path / "one.json")
        trace.save(path)
        assert main(["replay", path]) == 0  # bit-exact replay


class TestJson:
    def test_campaign_json_round_trips_new_fields(self, tmp_path):
        result = small_campaign(jobs=2, timeout=60)
        data = result.to_dict()
        assert data["jobs"] == 2
        assert data["interrupted"] is False
        assert data["degraded"] is False
        for run in data["runs"]:
            assert "attempts" in run and "wall_time_s" in run
            assert run["spec"] is not None
            assert run["fingerprint"] is not None
        blob = json.dumps(data)
        assert "quarantined" not in blob  # healthy campaign
