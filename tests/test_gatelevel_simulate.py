"""Gate-level simulation and energy accounting tests."""

from hypothesis import given, settings, strategies as st

from repro.gatelevel import (
    AND2,
    GateLevelSimulator,
    Netlist,
    XOR2,
    int_to_bits,
    synth_mux,
    synth_one_hot_decoder,
    synth_priority_arbiter,
)


def simple_and():
    nl = Netlist("and")
    a = nl.add_input("a")
    b = nl.add_input("b")
    nl.mark_output(nl.add_cell(AND2, [a, b], output_name="y"))
    return nl


class TestFunctionalStepping:
    def test_and_truth_table(self):
        sim = GateLevelSimulator(simple_and())
        for a, b, y in ((0, 0, 0), (0, 1, 0), (1, 0, 0), (1, 1, 1)):
            result = sim.step([a, b], clock=False)
            assert list(result.outputs.values()) == [y]

    def test_step_ints_and_output_int(self):
        nl = synth_one_hot_decoder(4)
        sim = GateLevelSimulator(nl)
        sim.step_ints(a=2)
        assert sim.output_int() == 0b100

    def test_dff_delays_by_one_clock(self):
        nl = Netlist("reg")
        d = nl.add_input("d")
        q = nl.add_dff(d, q_name="q")
        nl.mark_output(q)
        sim = GateLevelSimulator(nl)
        r1 = sim.step([1])
        assert r1.outputs[q] == 1  # captured at the end of the step
        r2 = sim.step([0])
        assert r2.outputs[q] == 0


class TestEnergyAccounting:
    def test_no_input_change_costs_nothing_comb(self):
        sim = GateLevelSimulator(simple_and())
        sim.step([1, 1], clock=False)
        result = sim.step([1, 1], clock=False)
        assert result.energy == 0.0
        assert result.toggles == 0

    def test_energy_scales_with_vdd_squared(self):
        low = GateLevelSimulator(simple_and(), vdd=1.0)
        high = GateLevelSimulator(simple_and(), vdd=2.0)
        e_low = low.step([1, 1], clock=False).energy
        e_high = high.step([1, 1], clock=False).energy
        assert abs(e_high / e_low - 4.0) < 1e-9

    def test_toggle_counts_accumulate(self):
        sim = GateLevelSimulator(simple_and())
        sim.step([1, 1], clock=False)
        sim.step([0, 1], clock=False)
        assert sim.total_toggles > 0
        assert sim.steps == 2
        assert sim.mean_energy_per_step > 0

    def test_dff_clock_energy_charged_every_step(self):
        nl = Netlist("reg")
        d = nl.add_input("d")
        nl.mark_output(nl.add_dff(d))
        sim = GateLevelSimulator(nl)
        # no data change at all, but the clock pin still burns energy
        result = sim.step([0])
        assert result.energy > 0

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=2,
                    max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_energy_never_negative_and_bounded(self, codes):
        nl = synth_one_hot_decoder(4)
        sim = GateLevelSimulator(nl, vdd=1.8)
        bound = nl.total_capacitance() * 0.5 * 1.8 * 1.8
        for code in codes:
            result = sim.step_ints(a=code)
            assert result.energy >= 0
            assert result.energy <= bound + 1e-18


class TestXor:
    def test_xor_parity_chain(self):
        nl = Netlist("parity")
        bits = nl.add_input_bus("d", 4)
        nl.mark_output(nl.tree(XOR2, bits, output_name="p"))
        sim = GateLevelSimulator(nl)
        for value in range(16):
            result = sim.step(int_to_bits(value, 4), clock=False)
            expected = bin(value).count("1") % 2
            assert list(result.outputs.values()) == [expected]


class TestSequentialEnergy:
    def test_arbiter_handover_costs_more_than_idle(self):
        nl = synth_priority_arbiter(3)
        sim = GateLevelSimulator(nl)
        sim.step_ints(req=0b010)
        idle = sim.step_ints(req=0b010).energy      # grant stable
        change = sim.step_ints(req=0b001).energy    # grant moves
        assert change > idle

    def test_mux_select_change_expensive(self):
        nl = synth_mux(4, 16)
        sim = GateLevelSimulator(nl)
        legs = {"d0": 0xAAAA, "d1": 0x5555, "d2": 0, "d3": 0xFFFF}
        sim.step_ints(**legs, s=0)
        stable = sim.step_ints(**legs, s=0).energy
        switch = sim.step_ints(**legs, s=1).energy
        assert switch > stable
