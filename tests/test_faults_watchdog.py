"""Integration tests: the bus watchdog detecting and recovering from
liveness hazards behavioural faults create."""

from repro.amba import (
    AhbBus,
    AhbConfig,
    AhbMaster,
    AhbProtocolChecker,
    AhbTransaction,
    AhbWatchdog,
    DefaultMaster,
    MemorySlave,
)
from repro.faults import (
    AlwaysRetrySlave,
    HangSlave,
    UnreleasedSplitSlave,
)
from repro.kernel import Clock, MHz, Simulator, us


class FaultySystem:
    """2 active masters + 2 slaves, slave 0 built by *slave0_factory*,
    with a watchdog attached."""

    def __init__(self, slave0_factory=MemorySlave, retry_limit=None,
                 retry_backoff=0, hready_timeout=8, retry_budget=5,
                 split_timeout=16, recover=True, master1_cls=AhbMaster,
                 **slave0_kwargs):
        self.sim = Simulator()
        self.clk = Clock.from_frequency(self.sim, "clk", MHz(100))
        self.config = AhbConfig.with_uniform_map(
            n_masters=3, n_slaves=2, region_size=0x1000,
            default_master=2,
        )
        self.bus = AhbBus(self.sim, "ahb", self.clk, self.config)
        self.m0 = AhbMaster(self.sim, "m0", self.clk,
                            self.bus.master_ports[0], self.bus,
                            retry_limit=retry_limit,
                            retry_backoff=retry_backoff)
        self.m1 = master1_cls(self.sim, "m1", self.clk,
                              self.bus.master_ports[1], self.bus)
        self.dm = DefaultMaster(self.sim, "dm", self.clk,
                                self.bus.master_ports[2], self.bus)
        self.slaves = [
            slave0_factory(self.sim, "s0", self.clk,
                           self.bus.slave_ports[0], self.bus,
                           base=0, **slave0_kwargs),
            MemorySlave(self.sim, "s1", self.clk,
                        self.bus.slave_ports[1], self.bus,
                        base=0x1000),
        ]
        self.checker = AhbProtocolChecker(self.sim, "chk", self.bus)
        self.watchdog = AhbWatchdog(
            self.sim, "wd", self.bus, masters=[self.m0, self.m1],
            hready_timeout=hready_timeout, retry_budget=retry_budget,
            split_timeout=split_timeout, recover=recover,
        )

    def run_us(self, micros):
        self.sim.run(until=self.sim.now + us(micros))
        return self

    def split_mask_clear(self, master_index=0):
        return (self.bus.arbiter.split_mask.value
                >> master_index) & 1 == 0


class TestStallDetection:
    def test_hung_slave_detected_and_cut_off(self):
        sys = FaultySystem(HangSlave, trigger_after=0,
                           hready_timeout=8)
        hung = sys.m0.enqueue(AhbTransaction.write_single(0x10, 1))
        after = sys.m0.enqueue(AhbTransaction.write_single(0x1010, 2))
        sys.run_us(3)
        assert sys.slaves[0].hung
        assert sys.watchdog.stall_events >= 1
        assert sys.watchdog.recoveries >= 1
        assert not sys.watchdog.ok
        # the hung transfer failed, the bus stayed usable afterwards
        assert hung.done and hung.error
        assert after.done and not after.error
        assert sys.slaves[1].peek(0x10) == 2

    def test_forced_error_recovery_is_protocol_clean(self):
        sys = FaultySystem(HangSlave, trigger_after=0)
        sys.m0.enqueue(AhbTransaction.write_single(0x10, 1))
        sys.m0.enqueue(AhbTransaction.write_single(0x1010, 2))
        sys.run_us(3)
        assert sys.watchdog.recoveries >= 1
        assert sys.checker.ok, sys.checker.violations[:5]
        assert sys.bus.s2m_mux.forced_errors >= 1

    def test_detect_only_mode_records_without_recovery(self):
        sys = FaultySystem(HangSlave, trigger_after=0, recover=False)
        hung = sys.m0.enqueue(AhbTransaction.write_single(0x10, 1))
        sys.run_us(3)
        assert sys.watchdog.stall_events >= 1
        assert sys.watchdog.recoveries == 0
        assert not hung.done  # nothing broke the stall
        assert not sys.bus.hready.value

    def test_stall_events_carry_diagnostics(self):
        sys = FaultySystem(HangSlave, trigger_after=0,
                           hready_timeout=8)
        sys.m0.enqueue(AhbTransaction.read(0x0))
        sys.run_us(2)
        event = sys.watchdog.events[0]
        assert event.rule == "hready-stall"
        assert "HREADY low for 8 cycles" in event.message
        assert event.recovered
        assert "hready-stall" in repr(event)

    def test_legitimate_wait_states_below_window_are_tolerated(self):
        sys = FaultySystem(MemorySlave, wait_states=3,
                           hready_timeout=8)
        txns = [sys.m0.enqueue(AhbTransaction.write_single(4 * i, i))
                for i in range(8)]
        sys.run_us(3)
        assert all(t.done and not t.error for t in txns)
        assert sys.watchdog.ok
        assert sys.watchdog.cycles_watched > 0


class TestRetryStormDetection:
    def test_unbounded_retry_storm_is_cut_by_watchdog(self):
        # No master-side retry limit: without the watchdog this
        # combination livelocks forever.
        sys = FaultySystem(AlwaysRetrySlave, trigger_after=0,
                           retry_limit=None, retry_budget=5)
        txn = sys.m0.enqueue(AhbTransaction.write_single(0x10, 1))
        after = sys.m0.enqueue(AhbTransaction.write_single(0x1010, 2))
        sys.run_us(5)
        assert sys.watchdog.retry_storms >= 1
        assert sys.watchdog.recoveries >= 1
        assert txn.done and txn.error
        assert txn.abort_reason is not None
        assert "RETRY" in txn.abort_reason
        assert after.done and not after.error

    def test_storm_event_names_offending_master(self):
        sys = FaultySystem(AlwaysRetrySlave, trigger_after=0,
                           retry_limit=None, retry_budget=4)
        sys.m0.enqueue(AhbTransaction.read(0x0))
        sys.run_us(3)
        storms = [e for e in sys.watchdog.events
                  if e.rule == "retry-storm"]
        assert storms
        assert "master M0" in storms[0].message


class TestSplitTimeoutDetection:
    def test_unreleased_split_is_released_and_aborted(self):
        sys = FaultySystem(UnreleasedSplitSlave, trigger_after=0,
                           split_timeout=16)
        txn = sys.m0.enqueue(AhbTransaction.write_single(0x10, 1))
        after = sys.m0.enqueue(AhbTransaction.write_single(0x1010, 2))
        sys.run_us(5)
        assert sys.slaves[0].splits_issued >= 1
        assert sys.watchdog.split_timeouts >= 1
        assert sys.split_mask_clear()
        assert txn.done and txn.error
        assert after.done and not after.error

    def test_split_counter_on_slave_is_distinct_from_retry(self):
        sys = FaultySystem(UnreleasedSplitSlave, trigger_after=0)
        sys.m0.enqueue(AhbTransaction.read(0x0))
        sys.run_us(3)
        assert sys.slaves[0].split_responses >= 1
        assert sys.slaves[0].retry_responses == 0


class TestWatchdogConstruction:
    def test_masters_accepted_as_dict(self):
        sys = FaultySystem(MemorySlave)
        wd = AhbWatchdog(sys.sim, "wd2", sys.bus,
                         masters={0: sys.m0}, recover=True)
        assert wd.masters == {0: sys.m0}
        assert wd.ok

    def test_abort_without_registered_master_is_a_noop(self):
        sys = FaultySystem(AlwaysRetrySlave, trigger_after=0,
                           retry_limit=None, retry_budget=4)
        sys.watchdog.masters = {}  # forget the masters
        txn = sys.m0.enqueue(AhbTransaction.read(0x0))
        sys.run_us(2)
        # detection still works; recovery cannot
        assert sys.watchdog.retry_storms >= 1
        assert sys.watchdog.recoveries == 0
        assert not txn.done


class TestBoundedRetryMaster:
    def test_retry_limit_terminates_against_always_retry_slave(self):
        sys = FaultySystem(AlwaysRetrySlave, trigger_after=0,
                           retry_limit=6, retry_budget=10_000)
        txn = sys.m0.enqueue(AhbTransaction.write_single(0x10, 1))
        after = sys.m0.enqueue(AhbTransaction.write_single(0x1010, 2))
        sys.run_us(5)
        assert txn.done and txn.error
        assert txn.retries == 7  # limit + the exhausting attempt
        assert "retry budget exhausted" in txn.abort_reason
        assert sys.m0.aborted_transactions == 1
        assert after.done and not after.error

    def test_retry_backoff_inserts_idle_cycles(self):
        sys = FaultySystem(AlwaysRetrySlave, trigger_after=0,
                           retry_limit=4, retry_backoff=3,
                           retry_budget=10_000)
        sys.m0.enqueue(AhbTransaction.write_single(0x10, 1))
        sys.run_us(5)
        assert sys.m0.backoff_cycles >= 3

    def test_default_master_retry_behaviour_unchanged(self):
        # retry_limit=None preserves the historical infinite retry.
        sys = FaultySystem(MemorySlave, retry_period=4,
                           retry_budget=10_000)
        txns = [sys.m0.enqueue(AhbTransaction.write_single(4 * i, i))
                for i in range(6)]
        sys.run_us(5)
        assert all(t.done and not t.error for t in txns)
        assert sum(t.retries for t in txns) > 0
        assert sys.m0.aborted_transactions == 0


class TestBackToBackFaults:
    """Recovery robustness when a second fault lands while the
    watchdog's forced two-cycle ERROR is still in flight."""

    def test_second_stall_during_forced_error_recovery(self):
        # Both masters target the hung slave.  While the watchdog's
        # forced two-cycle ERROR is completing m0's stalled transfer,
        # m1's address phase to the same dead slave is already
        # pipelined — the second hang begins during the forced ERROR
        # and needs its own detection window and recovery.
        sys = FaultySystem(HangSlave, trigger_after=0,
                           hready_timeout=8)
        first = sys.m0.enqueue(AhbTransaction.write_single(0x10, 1))
        second = sys.m1.enqueue(AhbTransaction.write_single(0x20, 2))
        after = sys.m0.enqueue(AhbTransaction.write_single(0x1010, 3))
        sys.run_us(5)
        assert sys.watchdog.stall_events >= 2
        assert sys.watchdog.recoveries >= 2
        assert first.done and first.error
        assert second.done and second.error
        # the bus survived both overlapping episodes
        assert after.done and not after.error
        assert sys.slaves[1].peek(0x10) == 3

    def test_back_to_back_recoveries_stay_protocol_clean(self):
        sys = FaultySystem(HangSlave, trigger_after=0,
                           hready_timeout=8)
        sys.m0.enqueue(AhbTransaction.write_single(0x10, 1))
        sys.m1.enqueue(AhbTransaction.write_single(0x20, 2))
        sys.run_us(5)
        assert sys.bus.s2m_mux.forced_errors >= 2
        assert sys.checker.ok, sys.checker.violations[:5]


class TestRetryBackoffTiming:
    def test_backoff_cycle_count_is_exact(self):
        # Every rewound RETRY inserts exactly `retry_backoff` idle
        # cycles; with retry_limit=L the master rewinds L times before
        # the (L+1)th RETRY aborts the transaction.
        sys = FaultySystem(AlwaysRetrySlave, trigger_after=0,
                           retry_limit=4, retry_backoff=3,
                           retry_budget=10_000)
        txn = sys.m0.enqueue(AhbTransaction.write_single(0x10, 1))
        sys.run_us(5)
        assert txn.done and txn.error
        assert txn.retries == 5
        assert sys.m0.backoff_cycles == 4 * 3

    def test_backoff_delays_the_final_abort(self):
        def abort_time(backoff):
            sys = FaultySystem(AlwaysRetrySlave, trigger_after=0,
                               retry_limit=4, retry_backoff=backoff,
                               retry_budget=10_000)
            txn = sys.m0.enqueue(AhbTransaction.write_single(0x10, 1))
            cycle_ps = 10_000  # 100 MHz
            for _ in range(1000):
                sys.sim.run(until=sys.sim.now + cycle_ps)
                if txn.done:
                    return sys.sim.now
            raise AssertionError("transaction never completed")

        fast = abort_time(0)
        slow = abort_time(3)
        # 4 rewinds x 3 idle cycles, minus the re-arbitration cycle
        # each rewind pays anyway: at least 2 net extra cycles per
        # rewind (8 cycles x 10 ns at 100 MHz).
        assert slow >= fast + 8 * 10_000

    def test_backoff_releases_the_bus_to_the_other_master(self):
        # While m0 backs off between retries, m1 must make progress
        # on the healthy slave instead of waiting behind the storm.
        sys = FaultySystem(AlwaysRetrySlave, trigger_after=0,
                           retry_limit=8, retry_backoff=4,
                           retry_budget=10_000)
        sys.m0.enqueue(AhbTransaction.write_single(0x10, 1))
        healthy = sys.m1.enqueue(
            AhbTransaction.write_single(0x1010, 7))
        sys.run_us(2)
        assert healthy.done and not healthy.error
        assert sys.slaves[1].peek(0x10) == 7


class TestAbortCurrent:
    def test_abort_current_without_transaction_returns_none(self):
        sys = FaultySystem(MemorySlave)
        sys.run_us(1)
        assert sys.m0.abort_current("test") is None

    def test_abort_current_fails_inflight_transaction(self):
        sys = FaultySystem(HangSlave, trigger_after=0, recover=False)
        txn = sys.m0.enqueue(AhbTransaction.write_single(0x10, 1))
        sys.run_us(1)
        assert not txn.done
        aborted = sys.m0.abort_current("manual abort")
        assert aborted is txn
        assert txn.done and txn.error
        assert txn.abort_reason == "manual abort"
