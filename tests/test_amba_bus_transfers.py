"""Integration tests: transfers through the assembled bus."""

from repro.amba import AhbTransaction, HBURST, HSIZE


class TestSingleTransfers:
    def test_write_then_read_roundtrip(self, small_system):
        sys = small_system
        write = sys.m0.enqueue(AhbTransaction.write_single(0x40, 0xA5A5))
        read = sys.m0.enqueue(AhbTransaction.read(0x40))
        sys.run_us(2)
        sys.assert_clean()
        assert write.done and read.done
        assert read.rdata == [0xA5A5]

    def test_memory_isolated_between_slaves(self, small_system):
        sys = small_system
        sys.m0.enqueue(AhbTransaction.write_single(0x000, 1))
        sys.m0.enqueue(AhbTransaction.write_single(0x1000, 2))
        r0 = sys.m0.enqueue(AhbTransaction.read(0x000))
        r1 = sys.m0.enqueue(AhbTransaction.read(0x1000))
        sys.run_us(2)
        assert r0.rdata == [1] and r1.rdata == [2]
        assert sys.slaves[0].peek(0) == 1
        assert sys.slaves[1].peek(0) == 2

    def test_byte_and_halfword_transfers(self, small_system):
        sys = small_system
        sys.m0.enqueue(AhbTransaction(True, 0x11, data=[0xAB],
                                      hsize=HSIZE.BYTE))
        sys.m0.enqueue(AhbTransaction(True, 0x12, data=[0xCDEF],
                                      hsize=HSIZE.HALFWORD))
        rb = sys.m0.enqueue(AhbTransaction(False, 0x11,
                                           hsize=HSIZE.BYTE))
        rh = sys.m0.enqueue(AhbTransaction(False, 0x12,
                                           hsize=HSIZE.HALFWORD))
        sys.run_us(2)
        sys.assert_clean()
        assert rb.rdata == [0xAB]
        assert rh.rdata == [0xCDEF]

    def test_transaction_timestamps(self, small_system):
        sys = small_system
        txn = sys.m0.enqueue(AhbTransaction.write_single(0x0, 5))
        sys.run_us(1)
        assert txn.issue_time is not None
        assert txn.complete_time > txn.issue_time


class TestBursts:
    def test_incr4_write_read(self, small_system):
        sys = small_system
        data = [0x10, 0x20, 0x30, 0x40]
        write = sys.m0.enqueue(AhbTransaction(True, 0x100, data=data,
                                              hburst=HBURST.INCR4))
        read = sys.m0.enqueue(AhbTransaction(False, 0x100,
                                             hburst=HBURST.INCR4))
        sys.run_us(2)
        sys.assert_clean()
        assert write.done and read.done
        assert read.rdata == data

    def test_wrap8_burst(self, small_system):
        sys = small_system
        data = list(range(101, 109))
        sys.m0.enqueue(AhbTransaction(True, 0x30, data=data,
                                      hburst=HBURST.WRAP8))
        read = sys.m0.enqueue(AhbTransaction(False, 0x30,
                                             hburst=HBURST.WRAP8))
        sys.run_us(2)
        sys.assert_clean()
        assert read.rdata == data
        # wrapped addresses actually landed below the start
        assert sys.slaves[0].peek(0x20) == data[4]

    def test_incr_undefined_length(self, small_system):
        sys = small_system
        data = list(range(1, 12))
        sys.m0.enqueue(AhbTransaction(True, 0x200, data=data,
                                      hburst=HBURST.INCR))
        read = sys.m0.enqueue(AhbTransaction(False, 0x200,
                                             hburst=HBURST.INCR,
                                             beats=len(data)))
        sys.run_us(3)
        sys.assert_clean()
        assert read.rdata == data

    def test_busy_cycles_in_burst(self, small_system):
        sys = small_system
        data = [7, 8, 9, 10]
        write = sys.m0.enqueue(AhbTransaction(True, 0x80, data=data,
                                              hburst=HBURST.INCR4,
                                              busy_between_beats=2))
        read = sys.m0.enqueue(AhbTransaction(False, 0x80,
                                             hburst=HBURST.INCR4))
        sys.run_us(3)
        sys.assert_clean()
        assert write.done
        assert read.rdata == data
        assert sys.m0.busy_cycles >= 6  # 3 gaps x 2 BUSY cycles

    def test_back_to_back_bursts_pipeline(self, small_system):
        sys = small_system
        for index in range(4):
            sys.m0.enqueue(AhbTransaction(
                True, 0x400 + 16 * index,
                data=[index] * 4, hburst=HBURST.INCR4))
        sys.run_us(3)
        sys.assert_clean()
        assert len(sys.m0.completed) == 4


class TestWaitStates:
    def test_wait_states_slow_but_preserve_data(self, small_system_waits):
        sys = small_system_waits
        sys.m0.enqueue(AhbTransaction.write_single(0x1040, 0x77))
        read = sys.m0.enqueue(AhbTransaction.read(0x1040))
        sys.run_us(3)
        sys.assert_clean()
        assert read.rdata == [0x77]
        # slave 1 has 2 wait states: latency > zero-wait minimum
        assert read.latency is not None
        assert sys.m0.wait_cycles > 0

    def test_wait_state_burst(self, small_system_waits):
        sys = small_system_waits
        data = [5, 6, 7, 8]
        sys.m0.enqueue(AhbTransaction(True, 0x1000, data=data,
                                      hburst=HBURST.INCR4))
        read = sys.m0.enqueue(AhbTransaction(False, 0x1000,
                                             hburst=HBURST.INCR4))
        sys.run_us(4)
        sys.assert_clean()
        assert read.rdata == data


class TestErrorsAndRetries:
    def test_unmapped_address_errors(self, small_system):
        sys = small_system
        bad = sys.m0.enqueue(AhbTransaction.read(0x8000))
        good = sys.m0.enqueue(AhbTransaction.write_single(0x0, 1))
        sys.run_us(2)
        sys.assert_clean()
        assert bad.error and bad.done
        assert good.done and not good.error

    def test_error_aborts_remaining_beats(self, small_system):
        sys = small_system
        sys.slaves[0].fail_addresses.add(0x104)
        burst = sys.m0.enqueue(AhbTransaction(
            True, 0x100, data=[1, 2, 3, 4], hburst=HBURST.INCR4))
        after = sys.m0.enqueue(AhbTransaction.write_single(0x200, 9))
        sys.run_us(2)
        sys.assert_clean()
        assert burst.error and burst.done
        assert after.done and not after.error

    def test_retry_reissues_and_completes(self):
        from tests.conftest import SmallSystem
        sys = SmallSystem(retry_period=4)
        txns = [sys.m0.enqueue(AhbTransaction.write_single(4 * i, i))
                for i in range(10)]
        reads = [sys.m0.enqueue(AhbTransaction.read(4 * i))
                 for i in range(10)]
        sys.run_us(5)
        sys.assert_clean()
        assert all(t.done and not t.error for t in txns + reads)
        assert [r.rdata[0] for r in reads] == list(range(10))
        assert sum(t.retries for t in txns + reads) > 0

    def test_retry_limit_terminates_against_always_retry_slave(self):
        # retry_period=1 answers RETRY to every transfer: without a
        # retry limit the master would re-issue forever (livelock).
        from tests.conftest import SmallSystem
        sys = SmallSystem()
        sys.slaves[0].retry_period = 1  # slave 0 only; slave 1 healthy
        sys.m0.retry_limit = 5
        doomed = sys.m0.enqueue(AhbTransaction.write_single(0x10, 1))
        after = sys.m0.enqueue(AhbTransaction.write_single(0x1010, 2))
        sys.run_us(5)
        sys.assert_clean()
        assert doomed.done and doomed.error
        assert doomed.retries == 6  # limit + the exhausting attempt
        assert "retry budget exhausted" in doomed.abort_reason
        assert sys.m0.aborted_transactions == 1
        # slave 1 has no retry injection: the bus stayed live
        assert after.done and not after.error
        assert sys.slaves[1].peek(0x10) == 2

    def test_slave_counts_retries_separately_from_splits(self):
        from tests.conftest import SmallSystem
        sys = SmallSystem(retry_period=2)
        for i in range(6):
            sys.m0.enqueue(AhbTransaction.write_single(4 * i, i))
        sys.run_us(5)
        sys.assert_clean()
        assert sys.slaves[0].retry_responses > 0
        assert sys.slaves[0].split_responses == 0
        assert sys.slaves[0].error_responses == 0
