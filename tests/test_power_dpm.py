"""Dynamic power management tests (clock gating)."""

import pytest

from repro.kernel import us
from repro.power import (
    ClockGateController,
    GlobalPowerMonitor,
    evaluate_gating_policy,
)
from repro.workloads import AhbSystem, PaperWriteReadSource


def bursty_system(idle_threshold=4, gate=True, clock_tree=True,
                  seed=1):
    """A system with long idle windows so gating has something to do."""
    regions = [(i * 0x1000, 0x1000) for i in range(2)]
    sources = [PaperWriteReadSource(regions, seed=seed, max_pairs=3,
                                    idle_range=(20, 60))]
    system = AhbSystem(sources, n_slaves=2, power_analysis=False,
                       monitor_style="none", checker=False)
    controller = None
    if gate:
        controller = ClockGateController(
            system.sim, "cgc", system.bus,
            idle_threshold=idle_threshold)
    monitor = GlobalPowerMonitor(
        system.sim, "mon", system.bus,
        with_clock_tree=clock_tree, clock_gate=controller)
    return system, controller, monitor


class TestClockGateController:
    def test_gates_during_idle_windows(self):
        system, controller, _ = bursty_system()
        system.run(us(50))
        assert controller.gate_events > 0
        assert controller.wake_events > 0
        assert controller.gated_cycles > 100
        assert 0.0 < controller.gated_fraction < 1.0

    def test_never_gated_while_transferring(self):
        system, controller, _ = bursty_system()
        samples = []
        system.sim.add_method(
            lambda: samples.append((system.bus.htrans.value,
                                    controller.gated.value)),
            [system.clk.posedge], initialize=False)
        system.run(us(50))
        # one-cycle wake lag allowed: a transfer may start the cycle
        # after the wake decision, never later
        lagged = 0
        for (htrans, gated), (_, prev_gated) in zip(samples[1:],
                                                    samples[:-1]):
            if htrans != 0 and gated:
                lagged += 1
                assert prev_gated, "gated for >1 cycle into a transfer"
        assert lagged <= samples.count((0, 1)) + 10

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            system, _, _ = bursty_system(idle_threshold=0)

    def test_higher_threshold_gates_less(self):
        def gated_cycles(threshold):
            system, controller, _ = bursty_system(
                idle_threshold=threshold)
            system.run(us(50))
            return controller.gated_cycles

        assert gated_cycles(2) > gated_cycles(16)


class TestGatedEnergy:
    def test_gating_saves_clock_energy(self):
        gated_sys, _, gated_mon = bursty_system(gate=True)
        gated_sys.run(us(50))
        plain_sys, _, plain_mon = bursty_system(gate=False)
        plain_sys.run(us(50))
        assert gated_mon.ledger.block_energy["CLK"] < \
            plain_mon.ledger.block_energy["CLK"]
        # data-path energy is unaffected by gating
        assert gated_mon.ledger.block_energy["M2S"] == pytest.approx(
            plain_mon.ledger.block_energy["M2S"])

    def test_clock_tree_off_by_default(self):
        from repro.workloads import build_paper_testbench
        tb = build_paper_testbench(seed=1)
        tb.run(us(5))
        assert "CLK" not in tb.ledger.block_energy

    def test_gate_without_tree_rejected(self):
        with pytest.raises(ValueError):
            bursty_system(gate=True, clock_tree=False)

    def test_conservation_with_clk_block(self):
        system, _, monitor = bursty_system()
        system.run(us(20))
        monitor.ledger.check_conservation()


class TestWhatIfEvaluation:
    def make_log(self):
        system, controller, monitor = bursty_system(gate=False)
        monitor.fsm.enable_logging()
        system.run(us(50))
        return monitor

    def test_what_if_matches_policy_semantics(self):
        monitor = self.make_log()
        per_cycle = monitor._clock_tree_energy
        evaluation = evaluate_gating_policy(
            monitor.fsm.instruction_log, idle_threshold=4,
            clock_tree_energy_per_cycle=per_cycle)
        assert evaluation.gated_cycles > 0
        assert 0.0 < evaluation.savings_fraction < 1.0
        assert evaluation.total_cycles == 5000

    def test_savings_decrease_with_threshold(self):
        monitor = self.make_log()
        per_cycle = monitor._clock_tree_energy
        fractions = [
            evaluate_gating_policy(
                monitor.fsm.instruction_log, idle_threshold=threshold,
                clock_tree_energy_per_cycle=per_cycle).savings_fraction
            for threshold in (1, 8, 64)
        ]
        assert fractions[0] >= fractions[1] >= fractions[2]

    def test_wake_penalty_reduces_savings(self):
        monitor = self.make_log()
        per_cycle = monitor._clock_tree_energy
        cheap = evaluate_gating_policy(
            monitor.fsm.instruction_log, 4, per_cycle,
            wake_penalty_factor=0.0)
        costly = evaluate_gating_policy(
            monitor.fsm.instruction_log, 4, per_cycle,
            wake_penalty_factor=10.0)
        assert cheap.savings > costly.savings

    def test_repr(self):
        monitor = self.make_log()
        evaluation = evaluate_gating_policy(
            monitor.fsm.instruction_log, 4,
            monitor._clock_tree_energy)
        assert "GatingEvaluation" in repr(evaluation)
