"""Power trace windowing tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.power import PowerTrace, TraceSet


class TestRecording:
    def test_record_and_total(self):
        trace = PowerTrace("T")
        trace.record(1000, 1e-12)
        trace.record(2000, 2e-12)
        assert len(trace) == 2
        assert trace.total_energy == pytest.approx(3e-12)

    def test_negative_energy_rejected(self):
        trace = PowerTrace("T")
        with pytest.raises(ValueError):
            trace.record(0, -1e-12)


class TestWindowing:
    def test_single_window_power(self):
        trace = PowerTrace("T")
        trace.record(500, 1e-12)  # 1 pJ in a 1 ns window = 1 mW
        centers, power = trace.windowed(1000, t_end=1000)
        assert len(power) == 1
        assert power[0] == pytest.approx(1e-3)

    def test_empty_windows_are_zero(self):
        trace = PowerTrace("T")
        trace.record(100, 1e-12)
        trace.record(2100, 1e-12)
        _, power = trace.windowed(1000, t_end=3000)
        assert len(power) == 3
        assert power[1] == 0.0

    def test_window_energy_sums_to_total(self):
        trace = PowerTrace("T")
        for t in range(0, 10_000, 130):
            trace.record(t, 2e-13)
        window = 1000
        _, power = trace.windowed(window, t_end=10_000)
        reconstructed = float(power.sum()) * (window * 1e-12)
        assert reconstructed == pytest.approx(trace.total_energy)

    @given(st.lists(st.tuples(st.integers(0, 99_999),
                              st.floats(0, 1e-12)),
                    min_size=1, max_size=100),
           st.sampled_from([100, 1000, 7000]))
    @settings(max_examples=40, deadline=None)
    def test_energy_conserved_for_any_window(self, events, window):
        trace = PowerTrace("T")
        for t, e in sorted(events):
            trace.record(t, e)
        _, power = trace.windowed(window, t_end=100_000)
        reconstructed = float(power.sum()) * (window * 1e-12)
        assert reconstructed == pytest.approx(trace.total_energy,
                                              rel=1e-9, abs=1e-24)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            PowerTrace("T").windowed(0)

    def test_boundary_sample_included_once(self):
        """An event exactly on a window edge belongs to the window it
        opens — counted once by ``windowed`` and consistently by
        ``energy_between`` (the shared half-open ``[start, end)``
        selection)."""
        trace = PowerTrace("T")
        trace.record(0, 1e-12)
        trace.record(1000, 2e-12)    # exactly on the 2nd window's start
        trace.record(2000, 4e-12)    # exactly on t_end: excluded
        _, power = trace.windowed(1000, t_end=2000)
        assert len(power) == 2
        assert power[0] == pytest.approx(1e-12 / 1e-9)
        assert power[1] == pytest.approx(2e-12 / 1e-9)
        # energy_between agrees with windowed about every boundary
        assert trace.energy_between(0, 1000) == pytest.approx(1e-12)
        assert trace.energy_between(1000, 2000) == pytest.approx(2e-12)
        assert trace.energy_between(2000, 3000) == pytest.approx(4e-12)


class TestDerivedMetrics:
    def test_energy_between(self):
        trace = PowerTrace("T")
        trace.record(100, 1e-12)
        trace.record(900, 1e-12)
        trace.record(1500, 5e-12)
        assert trace.energy_between(0, 1000) == pytest.approx(2e-12)

    def test_mean_and_peak_power(self):
        trace = PowerTrace("T")
        trace.record(0, 1e-12)
        trace.record(1_000_000, 1e-12)
        assert trace.mean_power() == pytest.approx(2e-12 / 1e-6)
        assert trace.peak_power(100_000) > 0

    def test_degenerate_traces(self):
        empty = PowerTrace("T")
        assert empty.mean_power() == 0.0
        assert empty.energy_between(0, 100) == 0.0
        single = PowerTrace("T")
        single.record(10, 1e-12)
        assert single.mean_power() == 0.0

    def test_to_csv(self, tmp_path):
        trace = PowerTrace("T")
        trace.record(500, 1e-12)
        path = tmp_path / "trace.csv"
        trace.to_csv(str(path), 1000)
        lines = path.read_text().splitlines()
        assert lines[0] == "time_s,power_w"
        assert len(lines) >= 2


class TestTraceSet:
    def test_record_many(self):
        traces = TraceSet(("A", "B"))
        traces.record(100, {"A": 1e-12, "B": 2e-12})
        assert traces["A"].total_energy == pytest.approx(1e-12)
        assert traces["B"].total_energy == pytest.approx(2e-12)

    def test_new_names_created_on_demand(self):
        traces = TraceSet(("A",))
        traces.record(0, {"NEW": 1e-12})
        assert "NEW" in traces.names()
