"""Unit tests for the clock generator."""

import pytest

from repro.kernel import Clock, MHz, Simulator, clock_period, ns


class TestClockBasics:
    def test_period_and_edge_count(self):
        sim = Simulator()
        clk = Clock(sim, "clk", period=ns(10))
        edges = []
        sim.add_method(lambda: edges.append(sim.now), [clk.posedge],
                       initialize=False)
        sim.run(until=ns(100))
        assert len(edges) == 10
        # consecutive rising edges are one period apart
        deltas = {b - a for a, b in zip(edges, edges[1:])}
        assert deltas == {ns(10)}

    def test_starts_low(self):
        sim = Simulator()
        clk = Clock(sim, "clk", period=ns(10))
        assert clk.value == 0

    def test_duty_cycle(self):
        sim = Simulator()
        clk = Clock(sim, "clk", period=ns(10), duty=0.3)
        pos, neg = [], []
        sim.add_method(lambda: pos.append(sim.now), [clk.posedge],
                       initialize=False)
        sim.add_method(lambda: neg.append(sim.now), [clk.negedge],
                       initialize=False)
        sim.run(until=ns(50))
        assert pos and neg
        high_time = neg[0] - pos[0]
        assert high_time == ns(3)

    def test_from_frequency(self):
        sim = Simulator()
        clk = Clock.from_frequency(sim, "clk", MHz(100))
        assert clk.period == clock_period(MHz(100)) == ns(10)

    def test_cycles_counter(self):
        sim = Simulator()
        clk = Clock(sim, "clk", period=ns(10))
        sim.run(until=ns(95))
        assert clk.cycles == 10  # edges at 5,15,...,95

    def test_negedge_event(self):
        sim = Simulator()
        clk = Clock(sim, "clk", period=ns(10))
        neg = []
        sim.add_method(lambda: neg.append(sim.now), [clk.negedge],
                       initialize=False)
        sim.run(until=ns(40))
        assert len(neg) >= 3


class TestClockValidation:
    def test_zero_period_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Clock(sim, "clk", period=0)

    def test_bad_duty_rejected(self):
        sim = Simulator()
        for duty in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                Clock(sim, "clk%f" % duty, period=ns(10), duty=duty)

    def test_degenerate_duty_leaves_no_low_time(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Clock(sim, "clk", period=2, duty=0.99)

    def test_repr(self):
        sim = Simulator()
        clk = Clock(sim, "clk", period=ns(10))
        assert "clk" in repr(clk)


class TestTwoClockDomains:
    def test_independent_clocks(self):
        sim = Simulator()
        fast = Clock(sim, "fast", period=ns(10))
        slow = Clock(sim, "slow", period=ns(30))
        fast_edges, slow_edges = [], []
        sim.add_method(lambda: fast_edges.append(sim.now),
                       [fast.posedge], initialize=False)
        sim.add_method(lambda: slow_edges.append(sim.now),
                       [slow.posedge], initialize=False)
        sim.run(until=ns(300))
        assert len(fast_edges) == 3 * len(slow_edges)
