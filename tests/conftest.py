"""Shared fixtures for the test suite."""

import pytest

from repro.amba import (
    AhbBus,
    AhbConfig,
    AhbMaster,
    AhbProtocolChecker,
    DefaultMaster,
    MemorySlave,
)
from repro.kernel import Clock, MHz, Simulator


class SmallSystem:
    """A compact 2-active-master, 2-slave AHB system for tests."""

    def __init__(self, wait_states=(0, 0), retry_period=0,
                 arbitration="fixed-priority", data_width=32,
                 region_size=0x1000):
        self.sim = Simulator()
        self.clk = Clock.from_frequency(self.sim, "clk", MHz(100))
        self.config = AhbConfig.with_uniform_map(
            n_masters=3, n_slaves=2, region_size=region_size,
            data_width=data_width, arbitration=arbitration,
            default_master=2,
        )
        self.bus = AhbBus(self.sim, "ahb", self.clk, self.config)
        self.m0 = AhbMaster(self.sim, "m0", self.clk,
                            self.bus.master_ports[0], self.bus)
        self.m1 = AhbMaster(self.sim, "m1", self.clk,
                            self.bus.master_ports[1], self.bus)
        self.dm = DefaultMaster(self.sim, "dm", self.clk,
                                self.bus.master_ports[2], self.bus)
        self.slaves = [
            MemorySlave(self.sim, "s%d" % index, self.clk,
                        self.bus.slave_ports[index], self.bus,
                        base=index * region_size,
                        wait_states=wait_states[index],
                        retry_period=retry_period)
            for index in range(2)
        ]
        self.checker = AhbProtocolChecker(self.sim, "chk", self.bus)

    def run_us(self, micros):
        from repro.kernel import us
        self.sim.run(until=self.sim.now + us(micros))
        return self

    def assert_clean(self):
        assert self.checker.ok, self.checker.violations[:5]


@pytest.fixture
def small_system():
    return SmallSystem()


@pytest.fixture
def small_system_waits():
    return SmallSystem(wait_states=(1, 2))
