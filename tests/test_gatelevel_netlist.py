"""Netlist construction and analysis tests."""

import pytest

from repro.gatelevel import (
    AND2,
    INV,
    Netlist,
    OR2,
)


class TestConstruction:
    def test_inputs_and_cells(self):
        nl = Netlist("t")
        a = nl.add_input("a")
        b = nl.add_input("b")
        out = nl.add_cell(AND2, [a, b], output_name="y")
        nl.mark_output(out)
        assert nl.n_gates == 1
        assert out.name == "y"
        assert out.driver is not None
        assert a.is_input and out.is_output

    def test_cell_by_name(self):
        nl = Netlist("t")
        a = nl.add_input("a")
        out = nl.add_cell("INV", [a])
        assert out.driver.cell_type is INV

    def test_wrong_arity_rejected(self):
        nl = Netlist("t")
        a = nl.add_input("a")
        with pytest.raises(ValueError):
            nl.add_cell(AND2, [a])

    def test_input_bus(self):
        nl = Netlist("t")
        bus = nl.add_input_bus("d", 4)
        assert [n.name for n in bus] == \
            ["d[0]", "d[1]", "d[2]", "d[3]"]

    def test_fanout_grows_capacitance(self):
        nl = Netlist("t")
        a = nl.add_input("a")
        base = a.capacitance
        nl.add_cell(INV, [a])
        one_load = a.capacitance
        nl.add_cell(INV, [a])
        two_loads = a.capacitance
        assert base < one_load < two_loads

    def test_total_capacitance_positive(self):
        nl = Netlist("t")
        a = nl.add_input("a")
        nl.mark_output(nl.add_cell(INV, [a]), extra_cap=1e-14)
        assert nl.total_capacitance() > 0


class TestTreeReduction:
    def test_tree_of_one_is_identity(self):
        nl = Netlist("t")
        a = nl.add_input("a")
        inv = nl.add_cell(INV, [a])
        assert nl.tree(AND2, [inv]) is inv

    def test_tree_gate_count(self):
        nl = Netlist("t")
        inputs = [nl.add_input("i%d" % k) for k in range(8)]
        nl.tree(AND2, inputs)
        assert nl.n_gates == 7  # n-1 two-input gates

    def test_tree_odd_count(self):
        nl = Netlist("t")
        inputs = [nl.add_input("i%d" % k) for k in range(5)]
        out = nl.tree(OR2, inputs)
        assert out.driver is not None
        assert nl.n_gates == 4

    def test_empty_tree_rejected(self):
        nl = Netlist("t")
        with pytest.raises(ValueError):
            nl.tree(AND2, [])


class TestLevelise:
    def test_topological_order(self):
        nl = Netlist("t")
        a = nl.add_input("a")
        x = nl.add_cell(INV, [a])
        y = nl.add_cell(INV, [x])
        z = nl.add_cell(AND2, [x, y])
        order = nl.levelise()
        position = {cell.output.name: index
                    for index, cell in enumerate(order)}
        assert position[x.name] < position[y.name] < position[z.name]

    def test_cycle_detected(self):
        nl = Netlist("t")
        a = nl.add_input("a")
        # create a feedback loop by hand
        loop_net = nl.net("loop")
        gate_out = nl.add_cell(AND2, [a, loop_net])
        loop_net.driver = gate_out.driver  # bogus wiring
        nl.cells.append(nl.cells[0])  # ensure loop net never ready
        nl.add_cell(INV, [gate_out])
        # rewire: loop_net is driven by `back`
        nl.cells[-1].output = loop_net
        nl._levelised = None
        with pytest.raises(ValueError):
            nl.levelise()

    def test_dff_breaks_cycle(self):
        nl = Netlist("t")
        a = nl.add_input("en")
        q = nl.add_dff(a, q_name="state")  # placeholder d, rewired below
        toggled = nl.add_cell(INV, [q])
        gated = nl.add_cell(AND2, [toggled, a])
        nl.dffs[0].d = gated
        order = nl.levelise()  # must not raise
        assert len(order) == 2

    def test_repr(self):
        nl = Netlist("t")
        assert "t" in repr(nl)
