"""Coverage probe and campaign coverage map."""

import json

import pytest

from repro.fuzz.coverage import (
    CoverageMap,
    CoverageProbe,
    _latency_bucket,
)
from repro.replay import FaultEntry, RunOutcome, campaign_spec, execute

QUICK = dict(duration_us=5.0)


def probed_run(fault="none", **overrides):
    params = dict(QUICK)
    params.update(overrides)
    spec = campaign_spec("portable-audio-player", fault, **params)
    probe = CoverageProbe()
    system, outcome = execute(spec, instrument=probe.install)
    return probe.coverage_keys(system, outcome), outcome


class TestProbe:
    def test_healthy_run_covers_every_signal_class(self):
        keys, _ = probed_run()
        prefixes = {key.split(":", 1)[0] for key in keys}
        # bus transitions, burst kinds, latency buckets, power-FSM
        # transitions and the outcome class all show up on a normal run
        assert {"bus", "burst", "lat", "power", "outcome"} <= prefixes

    def test_keys_are_sorted_and_deterministic(self):
        first, _ = probed_run()
        second, _ = probed_run()
        assert first == sorted(first)
        assert first == second

    def test_rule_arms_and_responses_appear_on_faulty_runs(self):
        keys, outcome = probed_run(fault="always-retry")
        assert "rule:retry-livelock" in keys
        assert "resp:RETRY" in keys
        assert "outcome:%s" % outcome.outcome in keys

    def test_mandatory_breakage_is_its_own_key(self):
        spec = campaign_spec("portable-audio-player", "none", **QUICK)
        spec.faults.append(FaultEntry.signal_fault(
            "stuck-at", "haddr", bit=0, value=1,
            start_ps=100_000, end_ps=2_000_000))
        probe = CoverageProbe()
        system, outcome = execute(spec, instrument=probe.install)
        keys = probe.coverage_keys(system, outcome)
        assert "rule:alignment" in keys
        assert "mandatory-broken" in keys

    def test_elaboration_crash_yields_outcome_only_keys(self):
        probe = CoverageProbe()
        outcome = RunOutcome(outcome="crashed", rules_tripped=[],
                             recovery_compliant=True,
                             detail="KeyError: boom")
        keys = probe.coverage_keys(None, outcome)
        assert keys == ["outcome:crashed"]

    def test_probe_is_observe_only(self):
        spec = campaign_spec("portable-audio-player", "always-retry",
                             **QUICK)
        _, bare = execute(spec)
        probe = CoverageProbe()
        _, probed = execute(spec, instrument=probe.install)
        # the bit-exactness contract: instrumenting must not change
        # the fingerprint, violation cycles and energies included
        assert bare == probed


class TestLatencyBuckets:
    def test_power_of_two_buckets(self):
        assert _latency_bucket(1) == "le1"
        assert _latency_bucket(2) == "le2"
        assert _latency_bucket(3) == "le4"
        assert _latency_bucket(4) == "le4"
        assert _latency_bucket(5) == "le8"
        assert _latency_bucket(100) == "le128"


class TestCoverageMap:
    def test_add_returns_only_novel_keys(self):
        coverage = CoverageMap()
        assert coverage.add(["a", "b"]) == ["a", "b"]
        assert coverage.add(["b", "c"]) == ["c"]
        assert coverage.add(["a"]) == []
        assert coverage.counts == {"a": 2, "b": 2, "c": 1}

    def test_rarity_prefers_rare_keys(self):
        coverage = CoverageMap()
        coverage.add(["common"])
        coverage.add(["common"])
        coverage.add(["common", "rare"])
        assert coverage.rarity(["rare"]) > coverage.rarity(["common"])
        assert coverage.rarity(["unknown"]) == 0.0

    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "coverage.json")
        coverage = CoverageMap()
        coverage.add(["rule:alignment", "bus:IDLE->NONSEQ"])
        coverage.save(path)
        loaded = CoverageMap.load(path)
        assert loaded.counts == coverage.counts

    def test_format_is_versioned(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "other/9"}))
        with pytest.raises(ValueError, match="format"):
            CoverageMap.load(str(path))
