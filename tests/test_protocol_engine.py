"""The runtime compliance engine: rule catalogue, severity handling,
advisory liveness rules, and the legacy checker facade."""

import pytest

from repro.amba import (
    AhbBus,
    AhbConfig,
    AhbMaster,
    AhbProtocolChecker,
    AhbTransaction,
    DefaultMaster,
    MemorySlave,
)
from repro.faults import BabblingMaster
from repro.kernel import (
    Clock,
    FaultInjector,
    MHz,
    ProcessError,
    Simulator,
    ns,
    us,
)
from repro.protocol import (
    CATALOGUE,
    ComplianceEngine,
    ProtocolComplianceError,
    advisory_rules,
    is_mandatory,
    mandatory_rules,
    rule_info,
)
from repro.replay import campaign_spec, execute
from repro.workloads import SCENARIOS, build_scenario


class EngineSystem:
    """2 active masters + 2 slaves with a configurable engine."""

    def __init__(self, severity="record", master1_cls=AhbMaster,
                 wait_states=(0, 0), **engine_kwargs):
        self.sim = Simulator()
        self.clk = Clock.from_frequency(self.sim, "clk", MHz(100))
        self.config = AhbConfig.with_uniform_map(
            n_masters=3, n_slaves=2, region_size=0x1000,
            default_master=2,
        )
        self.bus = AhbBus(self.sim, "ahb", self.clk, self.config)
        self.m0 = AhbMaster(self.sim, "m0", self.clk,
                            self.bus.master_ports[0], self.bus)
        self.m1 = master1_cls(self.sim, "m1", self.clk,
                              self.bus.master_ports[1], self.bus)
        self.dm = DefaultMaster(self.sim, "dm", self.clk,
                                self.bus.master_ports[2], self.bus)
        self.slaves = [
            MemorySlave(self.sim, "s%d" % index, self.clk,
                        self.bus.slave_ports[index], self.bus,
                        base=index * 0x1000,
                        wait_states=wait_states[index])
            for index in range(2)
        ]
        self.engine = ComplianceEngine(self.sim, "engine", self.bus,
                                       severity=severity,
                                       **engine_kwargs)

    def run_us(self, micros):
        self.sim.run(until=self.sim.now + us(micros))
        return self

    def glitch_htrans_seq(self, at_ns=500):
        """Force an out-of-thin-air SEQ onto HTRANS for one cycle."""
        injector = FaultInjector(self.sim, self.clk, seed=3)
        injector.glitch(self.bus.htrans, value=3, cycles=1,
                        start=ns(at_ns))
        return injector


class TestCatalogue:
    def test_every_rule_has_spec_reference_and_tier(self):
        assert len(CATALOGUE) == 14
        for rule_id, info in CATALOGUE.items():
            assert info.rule_id == rule_id
            assert info.spec.startswith("§")
            assert info.summary
            assert isinstance(info.mandatory, bool)

    def test_mandatory_advisory_split(self):
        advisory = {rule_id for rule_id, info in CATALOGUE.items()
                    if not info.mandatory}
        assert advisory == {"wait-limit", "retry-livelock",
                            "split-release"}

    def test_rule_factories_cover_the_catalogue(self):
        emitted = set()
        for rule in mandatory_rules() + advisory_rules():
            assert rule.emits, rule
            emitted.update(rule.emits)
        assert emitted == set(CATALOGUE)

    def test_unknown_rule_ids_count_as_mandatory(self):
        assert is_mandatory("no-such-rule")
        assert not is_mandatory("wait-limit")
        with pytest.raises(KeyError):
            rule_info("no-such-rule")

    def test_advisory_rules_can_be_disabled_individually(self):
        assert advisory_rules(wait_limit=None, retry_limit=None,
                              split_limit=None) == []
        assert len(advisory_rules(retry_limit=None)) == 2


class TestHealthyTraffic:
    def test_clean_system_records_nothing(self):
        sys = EngineSystem()
        for index in range(6):
            sys.m0.enqueue(AhbTransaction.write_single(4 * index,
                                                       index))
        from repro.amba import HBURST
        sys.m1.enqueue(AhbTransaction(True, 0x1000,
                                      data=list(range(8)),
                                      hburst=HBURST.INCR8))
        sys.run_us(3)
        assert sys.engine.ok
        assert sys.engine.mandatory_ok
        assert sys.engine.cycles_checked > 100
        assert sys.engine.rules_tripped() == ()
        assert sys.engine.first_violation is None
        sys.engine.raise_if_violations()  # no-op when clean

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_all_scenarios_clean_in_raise_mode(self, name):
        system = build_scenario(name, seed=1, check_protocol="raise")
        system.run(us(20))
        assert system.checker.ok
        assert system.checker.cycles_checked > 1000


class TestSeverity:
    def test_record_collects_structured_violations(self):
        sys = EngineSystem(severity="record")
        sys.glitch_htrans_seq()
        sys.run_us(2)
        assert not sys.engine.ok
        assert not sys.engine.mandatory_ok
        violation = sys.engine.first_violation
        assert violation.rule in sys.engine.rules_tripped()
        assert violation.cycle >= 0
        assert violation.spec.startswith("§")
        assert violation.snapshot["HTRANS"] == 3
        data = violation.to_dict()
        assert data["mandatory"] is True
        assert data["cycle"] == violation.cycle
        assert sys.engine.rule_counts[violation.rule] >= 1

    def test_raise_dies_at_the_violating_cycle(self):
        sys = EngineSystem(severity="raise")
        sys.glitch_htrans_seq()
        with pytest.raises(ProcessError) as exc_info:
            sys.run_us(2)
        assert isinstance(exc_info.value.original,
                          ProtocolComplianceError)
        assert len(sys.engine.violations) == 1

    def test_warn_prints_once_per_rule(self, capsys):
        sys = EngineSystem(severity="warn")
        sys.glitch_htrans_seq()
        sys.run_us(2)
        err = capsys.readouterr().err
        assert "ProtocolViolation" in err
        rule = sys.engine.first_violation.rule
        assert err.count(rule) >= 1

    def test_per_rule_severity_override(self):
        sys = EngineSystem(
            severity="record",
            severity_overrides={"seq-without-nonseq": "raise"},
        )
        sys.glitch_htrans_seq()
        with pytest.raises(ProcessError):
            sys.run_us(2)

    def test_unknown_severity_rejected(self):
        sim = Simulator()
        clk = Clock.from_frequency(sim, "clk", MHz(100))
        config = AhbConfig.with_uniform_map(n_masters=2, n_slaves=1,
                                            default_master=1)
        bus = AhbBus(sim, "ahb", clk, config)
        with pytest.raises(ValueError):
            ComplianceEngine(sim, "e", bus, severity="explode")
        with pytest.raises(ValueError):
            ComplianceEngine(sim, "e2", bus,
                             severity_overrides={"alignment": "nope"})

    def test_raise_if_violations_summarises(self):
        sys = EngineSystem(severity="record")
        sys.glitch_htrans_seq()
        sys.run_us(2)
        with pytest.raises(AssertionError, match="protocol violations"):
            sys.engine.raise_if_violations()


class TestAdvisoryRules:
    def test_wait_limit_flags_slow_slave_without_breaking_mandatory(self):
        sys = EngineSystem(wait_states=(6, 0), wait_limit=3)
        sys.m0.enqueue(AhbTransaction.write_single(0x10, 1))
        sys.run_us(2)
        assert "wait-limit" in sys.engine.rules_tripped()
        assert not sys.engine.ok
        assert sys.engine.mandatory_ok  # advisory only

    def test_advisory_off_ignores_slow_slave(self):
        sys = EngineSystem(wait_states=(6, 0), advisory=False)
        sys.m0.enqueue(AhbTransaction.write_single(0x10, 1))
        sys.run_us(2)
        assert sys.engine.ok

    def test_wait_limit_flags_once_per_episode(self):
        sys = EngineSystem(wait_states=(6, 0), wait_limit=3)
        sys.m0.enqueue(AhbTransaction.write_single(0x10, 1))
        sys.m0.enqueue(AhbTransaction.write_single(0x14, 2))
        sys.run_us(2)
        waits = [v for v in sys.engine.violations
                 if v.rule == "wait-limit"]
        assert len(waits) == 2  # one per slow transfer, not per cycle


class TestFaultModesTripRules:
    """Acceptance: every PR 1 behavioural fault mode trips at least
    one compliance rule."""

    @pytest.mark.parametrize("fault,expected_rule", [
        ("always-retry", "retry-livelock"),
        ("hung-slave", "wait-limit"),
        ("unreleased-split", "split-release"),
    ])
    def test_slave_fault_modes(self, fault, expected_rule):
        spec = campaign_spec("portable-audio-player", fault=fault,
                             duration_us=8.0)
        _, outcome = execute(spec)
        assert expected_rule in outcome.rules_tripped
        assert outcome.violations >= 1

    def test_babbling_master_trips_mandatory_rules(self):
        sys = EngineSystem(master1_cls=BabblingMaster)
        sys.m0.enqueue(AhbTransaction.write_single(0x10, 1))
        sys.run_us(2)
        tripped = set(sys.engine.rules_tripped())
        assert tripped & {"stall-stability", "seq-without-nonseq",
                          "burst-address", "alignment",
                          "busy-outside-burst"}
        assert not sys.engine.mandatory_ok


class TestLegacyFacade:
    def test_checker_is_an_engine_with_advisory_off(self):
        sys = EngineSystem()
        checker = AhbProtocolChecker(sys.sim, "chk", sys.bus)
        assert isinstance(checker, ComplianceEngine)
        assert all(is_mandatory(rule_id)
                   for rule in checker.rules for rule_id in rule.emits)

    def test_strict_property_maps_to_severity(self):
        sys = EngineSystem()
        checker = AhbProtocolChecker(sys.sim, "chk", sys.bus,
                                     strict=True)
        assert checker.strict and checker.severity == "raise"
        checker.strict = False
        assert checker.severity == "record"
        checker.strict = True
        assert checker.severity == "raise"
