"""Low-power bus encoding tests."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.power.encoding import (
    BusInvertEncoder,
    EncodingEvaluation,
    GrayEncoder,
    IdentityEncoder,
    T0Encoder,
    evaluate_encoding,
    sequence_transitions,
)
from repro.power.hamming import hamming

words32 = st.integers(min_value=0, max_value=(1 << 32) - 1)


class TestBusInvert:
    def test_worst_case_bounded(self):
        """Bus-invert caps per-transfer toggles at w/2 + 1."""
        width = 16
        encoder = BusInvertEncoder(width)
        previous = encoder.encode(0)
        for value in (0xFFFF, 0x0000, 0xFFFF, 0xAAAA, 0x5555):
            pattern = encoder.encode(value)
            toggles = hamming(previous, pattern, width=width + 1)
            assert toggles <= width // 2 + 1
            previous = pattern

    def test_payload_recoverable(self):
        """Decoding (xor with invert line) recovers the payload."""
        width = 8
        encoder = BusInvertEncoder(width)
        rng = random.Random(1)
        for _ in range(200):
            value = rng.getrandbits(width)
            pattern = encoder.encode(value)
            invert = (pattern >> width) & 1
            payload = pattern & ((1 << width) - 1)
            decoded = payload ^ ((1 << width) - 1) if invert else payload
            assert decoded == value

    @given(st.lists(words32, min_size=2, max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_never_more_transitions_than_half_plus_one(self, values):
        width = 32
        encoder = BusInvertEncoder(width)
        previous = 0
        for value in values:
            pattern = encoder.encode(value)
            assert hamming(previous, pattern, width=width + 1) \
                <= width // 2 + 1
            previous = pattern

    def test_saves_on_antagonistic_traffic(self):
        """Alternating all-zeros / all-ones: the classic win."""
        values = [0x0, 0xFFFFFFFF] * 50
        result = evaluate_encoding(values, 32, BusInvertEncoder(32))
        assert result.transition_savings > 0.9
        assert result.energy_savings > 0.8

    def test_random_traffic_roughly_neutral_or_better(self):
        rng = random.Random(7)
        values = [rng.getrandbits(32) for _ in range(500)]
        result = evaluate_encoding(values, 32, BusInvertEncoder(32))
        assert result.transition_savings > -0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            BusInvertEncoder(0)


class TestGray:
    def test_sequential_addresses_toggle_once(self):
        encoder = GrayEncoder()
        previous = encoder.encode(0)
        for value in range(1, 64):
            pattern = encoder.encode(value)
            assert hamming(previous, pattern) == 1
            previous = pattern

    def test_gray_is_a_bijection(self):
        encoder = GrayEncoder()
        patterns = {encoder.encode(value) for value in range(256)}
        assert len(patterns) == 256

    def test_saves_on_counting_traffic(self):
        # Gray coding is applied to the word-index lines (stride-1
        # counting); byte strides would break the one-toggle property.
        values = list(range(200))
        result = evaluate_encoding(values, 16, GrayEncoder())
        assert result.transition_savings > 0.3


class TestT0:
    def test_stream_freezes_bus(self):
        encoder = T0Encoder(16, stride=4)
        first = encoder.encode(0x100)
        stream = [encoder.encode(0x100 + 4 * k) for k in range(1, 10)]
        payload_mask = (1 << 16) - 1
        assert all((p & payload_mask) == (first & payload_mask)
                   for p in stream)
        assert all(p >> 16 == 1 for p in stream)  # INC asserted

    def test_jump_updates_bus(self):
        encoder = T0Encoder(16, stride=4)
        encoder.encode(0x100)
        jump = encoder.encode(0x800)
        assert jump & ((1 << 16) - 1) == 0x800
        assert jump >> 16 == 0

    def test_saves_on_sequential_bursts(self):
        values = []
        for base in (0x100, 0x400, 0x900):
            values.extend(base + 4 * k for k in range(16))
        result = evaluate_encoding(values, 16, T0Encoder(16, stride=4))
        assert result.transition_savings > 0.5

    def test_reset(self):
        encoder = T0Encoder(16)
        encoder.encode(0x10)
        encoder.reset()
        pattern = encoder.encode(0x14)
        assert pattern >> 16 == 0  # no INC right after reset


class TestEvaluation:
    def test_identity_is_exact_baseline(self):
        rng = random.Random(3)
        values = [rng.getrandbits(16) for _ in range(100)]
        result = evaluate_encoding(values, 16, IdentityEncoder())
        assert result.transition_savings == pytest.approx(0.0)
        assert result.energy_savings == pytest.approx(0.0)

    def test_sequence_transitions_helper(self):
        assert sequence_transitions([0, 1, 3], 8) == 1 + 1

    def test_empty_sequence(self):
        result = evaluate_encoding([], 8, GrayEncoder())
        assert result.words == 0
        assert result.transition_savings == 0.0

    def test_repr(self):
        result = EncodingEvaluation("x", 8, 10, 5, 2.0, 1.0, 4)
        assert "x" in repr(result)

    @given(st.lists(words32, min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_energy_never_negative(self, values):
        for encoder in (IdentityEncoder(), BusInvertEncoder(32),
                        GrayEncoder(), T0Encoder(32)):
            result = evaluate_encoding(values, 32, encoder)
            assert result.baseline_energy >= 0
            assert result.encoded_energy >= 0
