"""Unit tests: signal-level fault injection in the kernel."""

from repro.kernel import (
    BitFlipFault,
    Clock,
    FaultInjector,
    GlitchFault,
    MHz,
    Signal,
    Simulator,
    StuckAtFault,
    ns,
)


class Harness:
    """A clocked driver writing a constant pattern to one signal."""

    def __init__(self, pattern=0b1111, width=8):
        self.sim = Simulator()
        self.clk = Clock.from_frequency(self.sim, "clk", MHz(100))
        self.sig = Signal(self.sim, "sig", init=pattern, width=width)
        self.pattern = pattern
        self.samples = []
        self.sim.add_method(self._drive, [self.clk.posedge],
                            name="drive", initialize=False)
        self.injector = FaultInjector(self.sim, self.clk, seed=7)
        self.sim.add_method(self._sample, [self.clk.posedge],
                            name="sample", initialize=False)

    def _drive(self):
        self.sig.write(self.pattern)

    def _sample(self):
        self.samples.append(self.sig.value)

    def run_cycles(self, cycles):
        self.sim.run(until=self.sim.now + cycles * ns(10))
        return self


class TestSignalInjectionHook:
    def test_set_injection_corrupts_committed_value(self):
        h = Harness()
        h.run_cycles(2)
        h.sig.set_injection(lambda value: 0)
        h.run_cycles(3)
        assert h.sig.value == 0
        assert h.sig.injected

    def test_clear_injection_restores_driver_value(self):
        h = Harness()
        h.sig.set_injection(lambda value: 0)
        h.run_cycles(3)
        h.sig.clear_injection()
        h.run_cycles(2)
        assert h.sig.value == h.pattern
        assert not h.sig.injected


class TestStuckAt:
    def test_stuck_at_zero_holds_bit_inside_window(self):
        h = Harness(pattern=0b1111)
        fault = h.injector.stuck_at(h.sig, bit=1, stuck_value=0,
                                    start=ns(30), end=ns(80))
        h.run_cycles(20)
        # bit 1 forced low only while the window was open
        assert fault.fires == 1
        assert fault.active_cycles > 0
        assert 0b1101 in h.samples
        # after the window the healthy value is back
        assert h.samples[-1] == 0b1111
        assert not h.sig.injected

    def test_stuck_at_one_sets_bit(self):
        h = Harness(pattern=0)
        h.injector.stuck_at(h.sig, bit=3, stuck_value=1, start=0)
        h.run_cycles(5)
        assert h.sig.value == 0b1000


class TestBitFlip:
    def test_flip_lasts_one_cycle(self):
        h = Harness(pattern=0b0001)
        fault = h.injector.bit_flip(h.sig, bit=0, start=ns(40))
        h.run_cycles(20)
        assert fault.fires == 1
        assert fault.active_cycles == 1
        corrupted = [s for s in h.samples if s == 0b0000]
        assert len(corrupted) == 1
        assert h.samples[-1] == 0b0001


class TestGlitch:
    def test_glitch_forces_value_for_n_cycles(self):
        h = Harness(pattern=0x5A)
        fault = h.injector.glitch(h.sig, value=0xFF, cycles=3,
                                  start=ns(40))
        h.run_cycles(20)
        assert fault.fires == 1
        assert fault.active_cycles == 3
        assert h.samples.count(0xFF) == 3
        assert h.samples[-1] == 0x5A


class TestScheduling:
    def test_probabilistic_fault_is_seed_reproducible(self):
        def fires_with(seed):
            h = Harness(pattern=0b0001)
            h.injector.rng.seed(seed)
            fault = BitFlipFault(h.sig, bit=0, probability=0.2)
            h.injector.add(fault)
            h.run_cycles(50)
            return fault.fires, list(h.samples)

        assert fires_with(3) == fires_with(3)
        a_fires, _ = fires_with(3)
        assert a_fires > 0

    def test_composite_faults_on_one_signal(self):
        h = Harness(pattern=0)
        h.injector.stuck_at(h.sig, bit=0, stuck_value=1, start=0)
        h.injector.stuck_at(h.sig, bit=2, stuck_value=1, start=0)
        h.run_cycles(5)
        assert h.sig.value == 0b0101

    def test_injection_counter_totals_activations(self):
        h = Harness()
        h.injector.bit_flip(h.sig, bit=0, start=ns(20))
        h.injector.glitch(h.sig, value=0, cycles=2, start=ns(60))
        h.run_cycles(20)
        assert h.injector.injections == 2
        assert not h.injector.active_faults()

    def test_window_not_yet_open_means_no_fire(self):
        h = Harness()
        fault = h.injector.glitch(h.sig, value=0, start=ns(10_000))
        h.run_cycles(10)
        assert fault.fires == 0
        assert h.sig.value == h.pattern

    def test_fault_repr_mentions_signal(self):
        fault = StuckAtFault.__new__(StuckAtFault)
        h = Harness()
        fault = h.injector.stuck_at(h.sig, bit=0)
        assert "sig" in repr(fault)
        assert "faults=1" in repr(h.injector)

    def test_glitch_fault_direct_corrupt(self):
        h = Harness()
        fault = GlitchFault(h.sig, value=0x42, cycles=1)
        assert fault.corrupt(0) == 0x42
        flip = BitFlipFault(h.sig, bit=4)
        assert flip.corrupt(0) == 0b10000
