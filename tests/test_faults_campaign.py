"""End-to-end tests: the fault-injection campaign runner and its CLI.

This is the PR's acceptance scenario: a campaign over two named
scenarios under always-RETRY and hung-slave faults must run to
completion with every fault contained (watchdog detection, bounded
master abort, no unhandled exception) and report the energy overhead
of retries/recovery against the fault-free baseline.
"""

import json

import pytest

from repro.cli import main
from repro.faults import (
    CampaignResult,
    FaultRunResult,
    fault_slave_factory,
    run_fault_campaign,
)


@pytest.fixture(scope="module")
def campaign():
    return run_fault_campaign(
        scenarios=("portable-audio-player", "wireless-modem"),
        faults=("always-retry", "hung-slave"),
        seed=1, duration_us=5.0,
    )


class TestCampaignAcceptance:
    def test_every_fault_is_contained(self, campaign):
        assert campaign.ok
        outcomes = {(run.scenario, run.fault): run.outcome
                    for run in campaign.runs}
        assert len(outcomes) == 6  # 2 scenarios x (baseline + 2 faults)
        for (scenario, fault), outcome in outcomes.items():
            if fault == "none":
                assert outcome == "completed"
            else:
                assert outcome in ("recovered", "degraded"), \
                    (scenario, fault, outcome)

    def test_no_crash_outcomes(self, campaign):
        assert all(run.outcome != "crashed" for run in campaign.runs)
        assert all(not run.detail.startswith("Traceback")
                   for run in campaign.runs)

    def test_hung_slave_triggers_watchdog_detection(self, campaign):
        hung = [run for run in campaign.runs
                if run.fault == "hung-slave"]
        assert hung
        for run in hung:
            assert run.watchdog_events >= 1
            assert run.recoveries >= 1
            assert run.failed >= 1

    def test_always_retry_is_bounded(self, campaign):
        retry = [run for run in campaign.runs
                 if run.fault == "always-retry"]
        assert retry
        for run in retry:
            # either the watchdog cut the storm or the master budget
            # did; both leave failed-but-done transactions behind
            assert run.failed >= 1
            assert run.aborted >= 1

    def test_faulted_runs_report_energy_overhead(self, campaign):
        for run in campaign.runs:
            if run.fault == "none":
                assert run.overhead_energy == 0.0
                assert run.energy_overhead_ratio == 0.0
            else:
                # retry/error response cycles carry measurable energy
                assert run.overhead_energy > 0.0
                assert run.energy_per_txn > run.baseline_energy_per_txn
                assert run.energy_overhead_ratio > 0.0

    def test_baseline_still_makes_progress_under_fault(self, campaign):
        for run in campaign.runs:
            assert run.completed - run.failed > 0


class TestCampaignReporting:
    def test_summary_table_lists_every_run(self, campaign):
        text = campaign.summary().format()
        assert "portable-audio-player" in text
        assert "wireless-modem" in text
        assert "hung-slave" in text
        assert "Energy/txn vs baseline" in text

    def test_to_dict_is_json_serialisable(self, campaign):
        payload = json.loads(json.dumps(campaign.to_dict()))
        assert payload["ok"] is True
        assert len(payload["runs"]) == 6
        run = payload["runs"][0]
        assert "overhead_energy_j" in run
        assert "energy_overhead_ratio" in run

    def test_result_reprs(self, campaign):
        assert "portable-audio-player" in repr(campaign.runs[0])

    def test_campaign_not_ok_when_a_run_hangs(self):
        bad = FaultRunResult("s", "f", "hung")
        assert not CampaignResult([bad], duration_us=1.0).ok
        crashed = FaultRunResult("s", "f", "crashed")
        assert not CampaignResult([crashed], duration_us=1.0).ok


class TestFactories:
    def test_unknown_fault_mode_raises(self):
        with pytest.raises(KeyError, match="unknown fault mode"):
            fault_slave_factory("melt-down")

    def test_unknown_scenario_propagates(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            run_fault_campaign(scenarios=("not-a-device",),
                               faults=("always-retry",),
                               duration_us=1.0)


class TestFaultsCli:
    def test_cli_smoke(self, capsys):
        code = main([
            "faults", "--duration-us", "2",
            "--scenario", "portable-audio-player",
            "--fault", "hung-slave",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "hung-slave" in out
        assert "Outcome" in out

    def test_cli_rejects_unknown_fault(self, capsys):
        code = main(["faults", "--fault", "melt-down"])
        assert code == 2
        assert "unknown fault mode" in capsys.readouterr().err

    def test_cli_writes_json(self, tmp_path, capsys):
        path = tmp_path / "campaign.json"
        code = main([
            "faults", "--duration-us", "2",
            "--scenario", "portable-audio-player",
            "--fault", "always-retry",
            "--json", str(path),
        ])
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["runs"]
