"""Instruction-set tests (behavioural decomposition)."""

from repro.amba.types import HTRANS
from repro.power import (
    ALL_INSTRUCTIONS,
    ARBITRATION_INSTRUCTIONS,
    DATA_TRANSFER_INSTRUCTIONS,
    PAPER_FSM_INSTRUCTIONS,
    TABLE1_INSTRUCTIONS,
    BusMode,
    classify_mode,
    instruction_name,
    is_arbitration,
    is_data_transfer,
)


class TestClassifyMode:
    def test_write(self):
        assert classify_mode(HTRANS.NONSEQ, 1, False) == BusMode.WRITE
        assert classify_mode(HTRANS.SEQ, 1, True) == BusMode.WRITE

    def test_read(self):
        assert classify_mode(HTRANS.NONSEQ, 0, False) == BusMode.READ

    def test_idle(self):
        assert classify_mode(HTRANS.IDLE, 0, False) == BusMode.IDLE

    def test_idle_handover(self):
        assert classify_mode(HTRANS.IDLE, 0, True) == BusMode.IDLE_HO

    def test_busy_folds_into_idle(self):
        assert classify_mode(HTRANS.BUSY, 1, False) == BusMode.IDLE
        assert classify_mode(HTRANS.BUSY, 0, True) == BusMode.IDLE_HO

    def test_accepts_raw_ints(self):
        assert classify_mode(2, 1, False) == BusMode.WRITE


class TestInstructionNames:
    def test_naming(self):
        assert instruction_name(BusMode.WRITE, BusMode.READ) == \
            "WRITE_READ"
        assert instruction_name(BusMode.IDLE_HO, BusMode.IDLE_HO) == \
            "IDLE_HO_IDLE_HO"

    def test_alphabet_size(self):
        assert len(ALL_INSTRUCTIONS) == 16
        assert len(set(ALL_INSTRUCTIONS)) == 16

    def test_paper_listing_is_subset(self):
        assert set(PAPER_FSM_INSTRUCTIONS) <= set(ALL_INSTRUCTIONS)

    def test_table1_rows_are_subset(self):
        assert set(TABLE1_INSTRUCTIONS) <= set(PAPER_FSM_INSTRUCTIONS)


class TestInstructionClasses:
    def test_classes_are_disjoint(self):
        assert not (set(DATA_TRANSFER_INSTRUCTIONS)
                    & set(ARBITRATION_INSTRUCTIONS))

    def test_transfer_examples(self):
        assert is_data_transfer("WRITE_READ")
        assert is_data_transfer("READ_WRITE")
        assert is_data_transfer("IDLE_WRITE")
        assert not is_data_transfer("IDLE_HO_WRITE")
        assert not is_data_transfer("READ_IDLE")

    def test_arbitration_examples(self):
        assert is_arbitration("IDLE_HO_IDLE_HO")
        assert is_arbitration("READ_IDLE_HO")
        assert is_arbitration("IDLE_HO_WRITE")
        assert not is_arbitration("WRITE_READ")
        assert not is_arbitration("IDLE_IDLE")

    def test_every_instruction_has_one_class_at_most(self):
        for name in ALL_INSTRUCTIONS:
            assert not (is_data_transfer(name) and is_arbitration(name))

    def test_table1_rows_are_classified(self):
        # every Table 1 row belongs to the transfer or arbitration class
        for name in TABLE1_INSTRUCTIONS:
            assert is_data_transfer(name) or is_arbitration(name)
