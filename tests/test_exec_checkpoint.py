"""Executor-level intra-run crash recovery and SIGTERM handling.

The acceptance scenario: a campaign whose runs checkpoint periodically
survives having attempts cut short (cooperative timeout, SIGKILL of
the whole process) and still produces results and digest streams
byte-identical to an uninterrupted campaign; SIGTERM drains like
SIGINT and exits 143."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.exec import (
    CampaignExecutor,
    ExecutorConfig,
    execute_campaign,
    load_journal,
)
from repro.faults import enumerate_campaign, run_fault_campaign
from repro.state import CheckpointStore

SCENARIO = "portable-audio-player"


def _runs(faults=("always-retry",), duration_us=4.0):
    return enumerate_campaign((SCENARIO,), faults, seed=1,
                              duration_us=duration_us)


def _streams(checkpoint_root):
    """run-id -> digest-stream JSON text for every run store."""
    out = {}
    for name in sorted(os.listdir(checkpoint_root)):
        store = CheckpointStore(os.path.join(checkpoint_root, name))
        out[name] = json.dumps(store.digest_stream(), sort_keys=True)
    return out


class TestCheckpointedCampaign:
    def test_serial_and_parallel_record_identical_streams(
            self, tmp_path):
        ref = execute_campaign(
            _runs(), ExecutorConfig(
                jobs=1, checkpoint_dir=str(tmp_path / "serial"),
                checkpoint_interval=100,
                artefact_dir=str(tmp_path)))
        par = execute_campaign(
            _runs(), ExecutorConfig(
                jobs=2, checkpoint_dir=str(tmp_path / "par"),
                checkpoint_interval=100,
                artefact_dir=str(tmp_path)))
        assert _streams(str(tmp_path / "serial")) \
            == _streams(str(tmp_path / "par"))
        for run_id, result in ref.results.items():
            assert result.fingerprint \
                == par.results[run_id].fingerprint

    def test_dispatch_journal_references_checkpoint_store(
            self, tmp_path):
        journal = str(tmp_path / "c.jsonl")
        execute_campaign(
            _runs(), ExecutorConfig(
                jobs=1, journal=journal,
                checkpoint_dir=str(tmp_path / "ck"),
                checkpoint_interval=100,
                artefact_dir=str(tmp_path)))
        dispatches = [json.loads(line)
                      for line in open(journal)
                      if '"dispatch"' in line]
        assert dispatches
        for record in dispatches:
            assert record["checkpoint"].startswith(
                str(tmp_path / "ck"))

    def test_cooperative_timeout_resumes_to_exact_completion(
            self, tmp_path):
        """A per-run budget far smaller than the run's wall cost: each
        attempt times out cooperatively mid-run, the executor
        re-dispatches it against its checkpoint store, and the final
        result is bit-identical to an unconstrained run."""
        duration = 30.0
        ref_dir = str(tmp_path / "ref")
        ref = execute_campaign(
            _runs(("hung-slave",), duration),
            ExecutorConfig(jobs=1, checkpoint_dir=ref_dir,
                           checkpoint_interval=250,
                           artefact_dir=str(tmp_path)))

        journal = str(tmp_path / "c.jsonl")
        ck_dir = str(tmp_path / "ck")
        report = execute_campaign(
            _runs(("hung-slave",), duration),
            ExecutorConfig(jobs=1, timeout=0.2, max_attempts=80,
                           checkpoint_dir=ck_dir,
                           checkpoint_interval=250, journal=journal,
                           artefact_dir=str(tmp_path)))
        # enumerate_campaign adds a "none" baseline run per scenario
        run_id, result = next(
            (run_id, result)
            for run_id, result in report.results.items()
            if result.fault == "hung-slave")
        assert result.outcome not in ("timeout", "quarantined"), \
            result.detail
        assert result.fingerprint \
            == ref.results[run_id].fingerprint
        assert _streams(ck_dir) == _streams(ref_dir)
        events = [json.loads(line) for line in open(journal)]
        retries = [e for e in events if e["event"] == "attempt-failed"
                   and e.get("reason") == "timeout"]
        if result.attempts > 1:  # host-speed dependent, usually true
            assert retries
            assert all("checkpoint" in e for e in retries)

    def test_timeout_without_checkpointing_stays_terminal(
            self, tmp_path):
        report = execute_campaign(
            _runs(("hung-slave",), 30.0),
            ExecutorConfig(jobs=1, timeout=0.1, max_attempts=3,
                           artefact_dir=str(tmp_path)))
        result = next(result for result in report.results.values()
                      if result.fault == "hung-slave")
        assert result.outcome == "timeout"


class TestSigterm:
    def test_sigterm_records_signal_and_enters_drain(self):
        executor = CampaignExecutor(_runs(), ExecutorConfig())
        executor._on_sigint(signal.SIGTERM)
        assert executor.interrupts == 1
        assert executor.report.interrupt_signal == signal.SIGTERM

    def test_campaign_result_carries_interrupt_signal(self, tmp_path):
        result = run_fault_campaign(
            scenarios=(SCENARIO,), faults=("always-retry",), seed=1,
            duration_us=2.0)
        assert result.to_dict()["interrupt_signal"] is None

    @pytest.mark.skipif(os.name != "posix",
                        reason="sends real SIGTERM to a child process")
    def test_cli_sigterm_drains_flushes_and_exits_143(self, tmp_path):
        journal = str(tmp_path / "c.jsonl")
        src = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep \
            + env.get("PYTHONPATH", "")
        # a run of ~100 us is long enough to still be in flight when
        # the signal lands, short enough that the graceful drain (the
        # in-flight runs are *finished*, not killed) completes quickly
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "faults",
             "--scenario", SCENARIO, "--fault", "always-retry",
             "--duration-us", "100", "--jobs", "2",
             "--journal", journal],
            env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if os.path.exists(journal) \
                        and "dispatch" in open(journal).read():
                    break
                time.sleep(0.1)
            else:
                pytest.fail("campaign never started dispatching")
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert rc == 143
        state = load_journal(journal)
        assert state.header is not None
        interrupted = [json.loads(line) for line in open(journal)
                       if '"interrupted"' in line]
        assert interrupted
        assert interrupted[-1]["signal"] == "SIGTERM"


@pytest.mark.skipif(os.name != "posix",
                    reason="SIGKILLs a child campaign process")
class TestKillResume:
    def test_sigkilled_campaign_resumes_byte_identical(self, tmp_path):
        """The CI smoke scenario, in-tree: SIGKILL a parallel
        checkpointed campaign mid-run, resume it, and require the
        merged results and every digest stream to be byte-identical to
        an uninterrupted reference campaign."""
        duration = "40"
        base_cmd = [sys.executable, "-m", "repro.cli", "faults",
                    "--scenario", SCENARIO,
                    "--fault", "always-retry",
                    "--fault", "hung-slave",
                    "--duration-us", duration, "--jobs", "2",
                    "--seed", "1", "--checkpoint-interval", "200"]
        src = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep \
            + env.get("PYTHONPATH", "")

        ref_dir = str(tmp_path / "ref-ck")
        ref_json = str(tmp_path / "ref.json")
        subprocess.run(
            base_cmd + ["--checkpoint-dir", ref_dir,
                        "--journal", str(tmp_path / "ref.jsonl"),
                        "--json", ref_json],
            env=env, check=True, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL, timeout=300)

        ck_dir = str(tmp_path / "ck")
        journal = str(tmp_path / "c.jsonl")
        out_json = str(tmp_path / "out.json")
        cmd = base_cmd + ["--checkpoint-dir", ck_dir,
                          "--journal", journal, "--json", out_json]
        # own process group: the SIGKILL must take out the workers too,
        # like a real OOM-kill / node reclaim would
        proc = subprocess.Popen(cmd, env=env,
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL,
                                start_new_session=True)
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if os.path.isdir(ck_dir) and any(
                        os.listdir(os.path.join(ck_dir, d))
                        for d in os.listdir(ck_dir)):
                    break
                time.sleep(0.05)
            else:
                pytest.fail("no checkpoint appeared before deadline")
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                try:
                    os.killpg(proc.pid, signal.SIGKILL)
                except OSError:
                    pass
                proc.wait()
        assert not os.path.exists(out_json)  # it really died mid-run

        subprocess.run(
            cmd + ["--resume"], env=env, check=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            timeout=300)

        reference = json.load(open(ref_json))
        resumed = json.load(open(out_json))

        def comparable(data):
            runs = []
            for run in sorted(data["runs"],
                              key=lambda r: (r["scenario"],
                                             r["fault"])):
                runs.append({key: value
                             for key, value in run.items()
                             if key not in ("wall_time_s", "attempts",
                                            "metrics", "detail")})
            return runs

        assert comparable(resumed) == comparable(reference)
        assert _streams(ck_dir) == _streams(ref_dir)
