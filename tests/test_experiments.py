"""Integration tests for the experiment runners (shortened runs).

The full-length shape checks run in the benchmark harness; these tests
verify the runners execute end to end and their checks pass on
reduced-duration runs.
"""

import pytest

from repro.analysis import (
    characterize_instruction_energies,
    run_fig6,
    run_granularity_ablation,
    run_macromodel_validation,
    run_model_styles_ablation,
    run_power_figure,
    run_table1,
)
from repro.kernel import us


class TestTable1:
    def test_full_length_passes_all_checks(self):
        result = run_table1(seed=1)
        assert result.passed, result.summary()

    def test_summary_renders(self):
        result = run_table1(seed=1, duration_ps=us(10))
        text = result.summary()
        assert "Table 1" in text
        assert "shape checks" in text

    def test_other_seed_also_in_band(self):
        result = run_table1(seed=3)
        assert 0.75 <= result.metrics["data_transfer_share"] <= 0.97


class TestPowerFigures:
    @pytest.mark.parametrize("block", ["TOTAL", "ARB", "M2S"])
    def test_figures_pass(self, block):
        result = run_power_figure(block, seed=1)
        assert result.passed, result.summary()
        assert result.metrics["windows"] == 40
        assert result.metrics["mean_power_w"] > 0

    def test_m2s_dominates_arbiter(self):
        total = run_power_figure("TOTAL", seed=1)
        arb = run_power_figure("ARB", seed=1)
        m2s = run_power_figure("M2S", seed=1)
        assert m2s.metrics["mean_power_w"] > \
            4 * arb.metrics["mean_power_w"]
        assert total.metrics["mean_power_w"] >= \
            m2s.metrics["mean_power_w"]


class TestFig6:
    def test_passes(self):
        result = run_fig6(seed=1, duration_ps=us(20))
        assert result.passed, result.summary()
        shares = [result.metrics["share_%s" % b]
                  for b in ("M2S", "S2M", "DEC", "ARB")]
        assert sum(shares) == pytest.approx(1.0, abs=1e-9)


class TestValidationAndAblations:
    def test_macromodel_validation(self):
        result = run_macromodel_validation(samples=150)
        assert result.passed, result.summary()

    def test_granularity_ablation(self):
        result = run_granularity_ablation(seed=1, duration_ps=us(20))
        assert result.passed, result.summary()

    def test_model_styles_ablation(self):
        result = run_model_styles_ablation(seed=1, duration_ps=us(20))
        assert result.passed, result.summary()

    def test_instruction_energy_characterisation(self):
        table = characterize_instruction_energies(seed=2,
                                                  duration_ps=us(10))
        assert "WRITE_READ" in table
        assert all(energy >= 0 for energy in table.values())
