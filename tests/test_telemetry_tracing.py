"""Tracer tests: spans, export round-trip, validation, null backend."""

import json

import pytest

from repro.telemetry import NULL_TRACER, Tracer, validate_chrome_trace


def sample_tracer():
    tracer = Tracer()
    track = tracer.track("bus", "master0")
    track.begin("transfer", 1000, cat="bus.master")
    track.instant("wait", 2000, cat="bus.wait")
    track.end(3000)
    power = tracer.track("power", "power_fsm")
    power.begin("WRITE", 0)
    power.end(5000)
    power.counter("energy_j", 5000, {"ARB": 1e-12, "M2S": 2e-12})
    return tracer


class TestTracks:
    def test_span_pairing(self):
        tracer = sample_tracer()
        phases = [event.phase for event in tracer.events]
        assert phases.count("B") == phases.count("E") == 2

    def test_end_without_begin_rejected(self):
        with pytest.raises(ValueError):
            Tracer().track("p", "t").end(0)

    def test_nested_spans_close_innermost_first(self):
        tracer = Tracer()
        track = tracer.track("p", "t")
        track.begin("outer", 0)
        track.begin("inner", 10)
        track.end(20)
        track.end(30)
        names = [event.name for event in tracer.events
                 if event.phase == "E"]
        assert names == ["inner", "outer"]

    def test_finish_closes_open_spans(self):
        tracer = Tracer()
        track = tracer.track("p", "t")
        track.begin("dangling", 0)
        tracer.finish(999)
        assert not track.open_spans
        last = tracer.events[-1]
        assert last.phase == "E" and last.ts_ps == 999

    def test_event_cap_counts_drops(self):
        tracer = Tracer(max_events=2)
        track = tracer.track("p", "t")
        for index in range(5):
            track.instant("i%d" % index, index)
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_dual_timebase_recorded(self):
        tracer = sample_tracer()
        for event in tracer.events:
            assert event.wall_ns >= 0
            assert isinstance(event.ts_ps, int)


class TestChromeExport:
    def test_round_trip_valid(self, tmp_path):
        path = str(tmp_path / "trace.json")
        sample_tracer().write_chrome(path)
        assert validate_chrome_trace(path) == []
        payload = json.loads(open(path).read())
        assert payload["otherData"]["timebase"] == "sim"

    def test_wall_timebase_valid(self, tmp_path):
        path = str(tmp_path / "trace.json")
        sample_tracer().write_chrome(path, timebase="wall")
        assert validate_chrome_trace(path) == []

    def test_bad_timebase_rejected(self):
        with pytest.raises(ValueError):
            sample_tracer().chrome_events(timebase="lunar")

    def test_metadata_names_tracks(self):
        events = sample_tracer().chrome_events()
        meta = [event for event in events if event["ph"] == "M"]
        names = {event["args"]["name"] for event in meta}
        assert {"bus", "power", "master0", "power_fsm"} <= names

    def test_ts_monotonic_and_microseconds(self):
        events = [event for event in sample_tracer().chrome_events()
                  if event["ph"] != "M"]
        ts = [event["ts"] for event in events]
        assert ts == sorted(ts)
        # 1000 ps == 0.001 us
        begin = next(event for event in events
                     if event["name"] == "transfer")
        assert begin["ts"] == pytest.approx(1e-3)

    def test_instants_are_thread_scoped(self):
        events = sample_tracer().chrome_events()
        instant = next(event for event in events
                       if event["ph"] == "i")
        assert instant["s"] == "t"

    def test_validator_flags_unmatched_end(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"traceEvents": [
            {"name": "x", "ph": "E", "ts": 0, "pid": 1, "tid": 1},
        ]}))
        problems = validate_chrome_trace(str(path))
        assert any("unmatched E" in problem for problem in problems)

    def test_validator_flags_non_monotonic(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"traceEvents": [
            {"name": "a", "ph": "i", "ts": 5, "pid": 1, "tid": 1},
            {"name": "b", "ph": "i", "ts": 1, "pid": 1, "tid": 1},
        ]}))
        problems = validate_chrome_trace(str(path))
        assert any("monotonic" in problem for problem in problems)

    def test_validator_flags_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert validate_chrome_trace(str(path))


class TestJsonlExport:
    def test_one_object_per_line(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = sample_tracer()
        tracer.write_jsonl(path)
        lines = open(path).read().splitlines()
        assert len(lines) == len(tracer.events)
        first = json.loads(lines[0])
        assert first["ts_ps"] == 1000
        assert "wall_ns" in first


class TestNullTracer:
    def test_noop_and_shared(self):
        track = NULL_TRACER.track("p", "t")
        assert track is NULL_TRACER.track("other", "lane")
        track.begin("x", 0)
        track.end(1)
        track.instant("y", 2)
        track.counter("c", 3, {})
        assert len(NULL_TRACER) == 0
        NULL_TRACER.finish(100)
