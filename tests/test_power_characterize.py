"""Characterisation / macromodel fitting tests."""

import pytest

from repro.power import (
    characterize_arbiter,
    characterize_decoder,
    characterize_mux,
    fit_linear_model,
)


class TestFitLinearModel:
    def test_exact_linear_data(self):
        rows = [[1, 0], [0, 1], [2, 1], [3, 2]]
        energies = [2.0 * a + 5.0 * b for a, b in rows]
        model = fit_linear_model(rows, energies, ("a", "b"),
                                 fit_intercept=False)
        assert model.energy(a=1, b=0) == pytest.approx(2.0)
        assert model.energy(a=0, b=1) == pytest.approx(5.0)

    def test_intercept_recovered(self):
        rows = [[x] for x in range(10)]
        energies = [3.0 + 2.0 * x for x in range(10)]
        model = fit_linear_model(rows, energies, ("x",))
        assert model.intercept == pytest.approx(3.0)
        assert model.coefficients[0] == pytest.approx(2.0)

    def test_negative_coefficients_clamped(self):
        rows = [[x, x] for x in range(1, 8)]
        # second feature is redundant; force a negative-looking target
        energies = [2.0 * x for x, _ in rows]
        model = fit_linear_model(rows, energies, ("a", "b"),
                                 fit_intercept=False)
        assert all(c >= 0 for c in model.coefficients)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            fit_linear_model([[1, 2]], [1.0, 2.0], ("a", "b"))
        with pytest.raises(ValueError):
            fit_linear_model([[1, 2]], [1.0], ("a",))


class TestDecoderCharacterisation:
    def test_fit_quality(self):
        result = characterize_decoder(4, samples=300)
        assert result.mean_relative_error < 0.15
        assert result.total_energy_error < 0.05

    def test_positive_coefficients(self):
        result = characterize_decoder(8, samples=300)
        coeffs = dict(zip(result.model.feature_names,
                          result.model.coefficients))
        assert coeffs["hd_in"] > 0
        assert coeffs["hd_out"] >= 0

    def test_slope_grows_with_size(self):
        small = characterize_decoder(4, samples=300)
        large = characterize_decoder(16, samples=300)
        slope = lambda fit: dict(zip(  # noqa: E731
            fit.model.feature_names, fit.model.coefficients))["hd_in"]
        assert slope(large) > slope(small)

    def test_deterministic(self):
        a = characterize_decoder(4, samples=100, seed=7)
        b = characterize_decoder(4, samples=100, seed=7)
        assert a.model.coefficients == b.model.coefficients


class TestMuxCharacterisation:
    def test_fit_quality(self):
        result = characterize_mux(3, 16, samples=300)
        assert result.total_energy_error < 0.10

    def test_select_toggle_costlier_than_data_bit(self):
        result = characterize_mux(4, 32, samples=400)
        coeffs = dict(zip(result.model.feature_names,
                          result.model.coefficients))
        # flipping the select re-decodes the one-hot tree and swings
        # many output bits: per-event cost above a single data bit
        assert coeffs["hd_sel"] > coeffs["hd_out"]


class TestArbiterCharacterisation:
    def test_fit_quality(self):
        result = characterize_arbiter(3, samples=300)
        assert result.total_energy_error < 0.10

    def test_handover_coefficient_positive(self):
        result = characterize_arbiter(4, samples=400)
        coeffs = dict(zip(result.model.feature_names,
                          result.model.coefficients))
        assert coeffs["handover"] > 0

    def test_rmse_reported(self):
        result = characterize_arbiter(3, samples=100)
        assert result.rmse >= 0
        assert "CharacterizationResult" in repr(result)
