"""Coverage of assorted public surfaces not exercised elsewhere."""


from repro.analysis.report import render_report, run_all
from repro.kernel import us
from repro.workloads import build_paper_testbench, slave_regions


class TestReportRunner:
    def test_quick_report_runs_everything(self):
        results = run_all(seed=1, quick=True)
        assert len(results) == 10
        text = render_report(results)
        assert "reproduction report" in text
        assert "Table 1" in text
        # quick mode shortens runs but the structural checks that do
        # not depend on run length must still pass
        fig6 = [r for r in results if "Figure 6" in r.name][0]
        assert fig6.passed


class TestSlaveRegions:
    def test_full_regions(self):
        tb = build_paper_testbench(seed=1, checker=False)
        regions = slave_regions(tb.config)
        assert regions == [(0x0000, 0x1000), (0x1000, 0x1000),
                           (0x2000, 0x1000)]

    def test_scaled_regions(self):
        tb = build_paper_testbench(seed=1, checker=False)
        regions = slave_regions(tb.config, scale=0.25)
        assert all(size == 0x400 for _, size in regions)

    def test_scale_floor(self):
        tb = build_paper_testbench(seed=1, checker=False)
        regions = slave_regions(tb.config, scale=1e-9)
        assert all(size == 4 for _, size in regions)


class TestTopLevelApi:
    def test_star_exports_resolve(self):
        import repro
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_exports_resolve(self):
        import repro.amba
        import repro.analysis
        import repro.gatelevel
        import repro.kernel
        import repro.power
        import repro.workloads
        for module in (repro.amba, repro.analysis, repro.gatelevel,
                       repro.kernel, repro.power, repro.workloads):
            for name in module.__all__:
                assert getattr(module, name) is not None, \
                    "%s.%s" % (module.__name__, name)

    def test_version(self):
        import repro
        assert repro.__version__ == "1.0.0"


class TestPaperTestbenchKnobs:
    def test_custom_wait_states(self):
        tb = build_paper_testbench(seed=1, wait_states=[1, 1, 1],
                                   checker=False)
        tb.run(us(10))
        assert tb.transactions_completed() > 0
        assert all(slave.wait_states == 1 for slave in tb.slaves)

    def test_round_robin_variant_runs_clean(self):
        tb = build_paper_testbench(seed=1, arbitration="round-robin")
        tb.run(us(10))
        tb.assert_protocol_clean()

    def test_locality_zero_thrashes_decoder(self):
        sticky = build_paper_testbench(seed=1, locality=1.0,
                                       checker=False)
        sticky.run(us(20))
        thrashy = build_paper_testbench(seed=1, locality=0.0,
                                        checker=False)
        thrashy.run(us(20))
        assert thrashy.monitor.decode_change_count > \
            sticky.monitor.decode_change_count
