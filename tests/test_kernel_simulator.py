"""Unit tests for the delta-cycle scheduler."""

import pytest

from repro.kernel import (
    DeltaCycleLimitError,
    ProcessError,
    Signal,
    SimulationError,
    Simulator,
    ns,
)


class TestDeltaCycles:
    def test_combinational_chain_settles_in_one_time_step(self):
        sim = Simulator()
        a = Signal(sim, "a")
        b = Signal(sim, "b")
        c = Signal(sim, "c")
        sim.add_method(lambda: b.write(a.value + 1), [a])
        sim.add_method(lambda: c.write(b.value * 2), [b])

        def driver():
            yield ns(1)
            a.write(10)

        sim.add_thread(driver)
        sim.run()
        assert sim.now == ns(1)
        assert (b.value, c.value) == (11, 22)

    def test_zero_delay_loop_detected(self):
        sim = Simulator(max_delta_cycles=50)
        a = Signal(sim, "a")
        b = Signal(sim, "b")
        # a = not b; b = not a with no stable point given init values.
        sim.add_method(lambda: a.write(1 - b.value), [b],
                       name="inv_loop")
        sim.add_method(lambda: b.write(a.value), [a], name="buf_loop")

        def kick():
            yield ns(1)
            a.write(1 - a.value)

        sim.add_thread(kick)
        with pytest.raises(DeltaCycleLimitError) as exc_info:
            sim.run()
        # the error names the processes still runnable in the final
        # delta cycle, so the loop can be found without a debugger.
        error = exc_info.value
        # the two loop halves alternate, so whichever half was about
        # to run is the one reported -- never the innocent kicker.
        assert error.process_names
        assert set(error.process_names) <= {"inv_loop", "buf_loop"}
        assert "runnable processes" in str(error)

    def test_all_processes_in_delta_see_same_snapshot(self):
        sim = Simulator()
        sig = Signal(sim, "sig", init=7)
        seen = []

        def p1():
            sig.write(8)
            seen.append(("p1", sig.value))
            yield ns(1)

        def p2():
            seen.append(("p2", sig.value))
            yield ns(1)

        sim.add_thread(p1)
        sim.add_thread(p2)
        sim.run()
        assert ("p1", 7) in seen and ("p2", 7) in seen


class TestRunControl:
    def test_run_until_stops_clock(self):
        sim = Simulator()
        sig = Signal(sim, "sig")

        def driver():
            while True:
                sig.write(sig.value + 1)
                yield ns(10)

        sim.add_thread(driver)
        sim.run(until=ns(35))
        assert sim.now == ns(35)
        # events at 0, 10, 20, 30 ran; event at 40 pending
        assert sig.value == 4

    def test_run_resumes_where_it_stopped(self):
        sim = Simulator()
        sig = Signal(sim, "sig")

        def driver():
            while True:
                sig.write(sig.value + 1)
                yield ns(10)

        sim.add_thread(driver)
        sim.run(until=ns(25))
        first = sig.value
        sim.run(until=ns(55))
        assert sig.value > first
        assert sim.now == ns(55)

    def test_run_without_events_returns_immediately(self):
        sim = Simulator()
        assert sim.run() == 0

    def test_stop_from_process(self):
        sim = Simulator()
        log = []

        def runner():
            for index in range(100):
                log.append(index)
                if index == 3:
                    sim.stop()
                yield ns(1)

        sim.add_thread(runner)
        sim.run()
        assert log == [0, 1, 2, 3]

    def test_max_time_steps_guard(self):
        sim = Simulator()

        def ticker():
            while True:
                yield ns(1)

        sim.add_thread(ticker)
        sim.run(max_time_steps=5)
        assert sim.now <= ns(6)

    def test_run_is_not_reentrant(self):
        sim = Simulator()

        def nested():
            sim.run()
            yield ns(1)

        sim.add_thread(nested)
        with pytest.raises(SimulationError):
            sim.run()


class TestWallClockBudget:
    def test_budget_expiry_raises_between_time_steps(self):
        from repro.kernel import WallClockDeadlineError
        sim = Simulator()

        def ticker():
            while True:
                yield ns(1)

        sim.add_thread(ticker)
        with pytest.raises(WallClockDeadlineError) as excinfo:
            sim.run(until=ns(10_000_000), wall_clock_budget=0.0)
        assert excinfo.value.budget == 0.0
        assert excinfo.value.elapsed >= 0.0

    def test_no_budget_means_no_deadline(self):
        sim = Simulator()

        def ticker():
            for _ in range(5):
                yield ns(1)

        sim.add_thread(ticker)
        assert sim.run() == ns(5)

    def test_generous_budget_does_not_fire(self):
        sim = Simulator()

        def ticker():
            for _ in range(5):
                yield ns(1)

        sim.add_thread(ticker)
        assert sim.run(wall_clock_budget=60.0) == ns(5)


class TestErrors:
    def test_process_exception_wrapped(self):
        sim = Simulator()

        def bad():
            raise RuntimeError("boom")
            yield  # pragma: no cover

        sim.add_thread(bad, name="badproc")
        with pytest.raises(ProcessError) as excinfo:
            sim.run()
        assert "badproc" in str(excinfo.value)
        assert isinstance(excinfo.value.original, RuntimeError)


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def build():
            sim = Simulator()
            sig = Signal(sim, "sig", width=16)
            log = []

            def driver():
                value = 1
                while True:
                    value = (value * 5 + 1) % 65536
                    sig.write(value)
                    yield ns(3)

            sim.add_method(lambda: log.append((sim.now, sig.value)),
                           [sig], initialize=False)
            sim.add_thread(driver)
            sim.run(until=ns(100))
            return log

        assert build() == build()

    def test_introspection(self):
        sim = Simulator()
        Signal(sim, "a")
        sim.add_method(lambda: None, [], name="m")
        assert len(sim.signals) == 1
        assert len(sim.processes) == 1
        assert "Simulator" in repr(sim)
