"""Property and unit tests for Hamming/activity metrics."""

from hypothesis import given, strategies as st

from repro.power import (
    expected_hamming_uniform,
    hamming,
    hamming_sequence,
    signal_probability,
    total_transitions,
    transition_density,
)

words = st.integers(min_value=0, max_value=(1 << 32) - 1)


class TestHamming:
    def test_basic(self):
        assert hamming(0b1010, 0b0110) == 2
        assert hamming(0, 0) == 0
        assert hamming(0, 0xFF) == 8

    def test_width_masking(self):
        assert hamming(0x100, 0x000, width=8) == 0
        assert hamming(0x1FF, 0x000, width=8) == 8

    @given(words, words)
    def test_symmetry(self, a, b):
        assert hamming(a, b) == hamming(b, a)

    @given(words)
    def test_identity(self, a):
        assert hamming(a, a) == 0

    @given(words, words, words)
    def test_triangle_inequality(self, a, b, c):
        assert hamming(a, c) <= hamming(a, b) + hamming(b, c)

    @given(words, words)
    def test_bounded_by_width(self, a, b):
        assert hamming(a, b, width=32) <= 32

    @given(words, words, words)
    def test_xor_invariance(self, a, b, mask):
        assert hamming(a, b) == hamming(a ^ mask, b ^ mask)


class TestSequences:
    def test_hamming_sequence(self):
        assert hamming_sequence([0, 1, 3, 3]) == [1, 1, 0]

    def test_total_transitions(self):
        assert total_transitions([0, 1, 3, 3]) == 2

    def test_empty_and_singleton(self):
        assert hamming_sequence([]) == []
        assert hamming_sequence([5]) == []
        assert total_transitions([5]) == 0

    @given(st.lists(words, min_size=2, max_size=50))
    def test_total_matches_sum(self, values):
        assert total_transitions(values) == sum(hamming_sequence(values))

    @given(st.lists(words, min_size=2, max_size=50))
    def test_density_in_unit_interval(self, values):
        density = transition_density(values, 32)
        assert 0.0 <= density <= 1.0

    def test_density_degenerate(self):
        assert transition_density([], 8) == 0.0
        assert transition_density([1], 8) == 0.0
        assert transition_density([1, 2], 0) == 0.0


class TestSignalProbability:
    def test_all_ones(self):
        assert signal_probability([0xF, 0xF], 4) == [1.0] * 4

    def test_half(self):
        probs = signal_probability([0b01, 0b10], 2)
        assert probs == [0.5, 0.5]

    def test_empty(self):
        assert signal_probability([], 3) == [0.0, 0.0, 0.0]

    @given(st.lists(words, min_size=1, max_size=40))
    def test_probabilities_bounded(self, values):
        for p in signal_probability(values, 32):
            assert 0.0 <= p <= 1.0


class TestExpectedHamming:
    def test_uniform(self):
        assert expected_hamming_uniform(32) == 16.0
        assert expected_hamming_uniform(0) == 0.0
