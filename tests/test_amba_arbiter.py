"""Arbitration behaviour tests."""

from repro.amba import AhbTransaction
from tests.conftest import SmallSystem


class TestGrantBasics:
    def test_default_master_holds_idle_bus(self, small_system):
        sys = small_system
        sys.run_us(1)
        assert sys.bus.arbiter.owner == 2  # default master index
        grants = [p.hgrant.value for p in sys.bus.master_ports]
        assert grants == [0, 0, 1]

    def test_requesting_master_gets_grant(self, small_system):
        sys = small_system
        sys.m0.enqueue(AhbTransaction.write_single(0x0, 1))
        sys.run_us(1)
        sys.assert_clean()
        # after completing, bus returns to default master
        assert sys.bus.arbiter.owner == 2
        assert sys.bus.arbiter.handover_count >= 2

    def test_fixed_priority_prefers_lower_index(self, small_system):
        sys = small_system
        # both masters queue work before the sim starts
        for i in range(5):
            sys.m0.enqueue(AhbTransaction.write_single(0x100 + 4 * i, i))
            sys.m1.enqueue(AhbTransaction.write_single(0x200 + 4 * i, i))
        sys.run_us(3)
        sys.assert_clean()
        m0_done = sys.m0.completed[-1].complete_time
        m1_done = sys.m1.completed[-1].complete_time
        assert m0_done < m1_done  # m0 won the bus first

    def test_transfers_not_preempted_mid_burst(self, small_system):
        from repro.amba import HBURST
        sys = small_system
        burst = sys.m0.enqueue(AhbTransaction(
            True, 0x0, data=list(range(16)), hburst=HBURST.INCR16))
        sys.m1.enqueue(AhbTransaction.write_single(0x800, 1))
        sys.run_us(3)
        sys.assert_clean()
        assert burst.done and not burst.error
        assert burst.retries == 0


class TestRoundRobin:
    def test_round_robin_alternates(self):
        sys = SmallSystem(arbitration="round-robin")
        for i in range(6):
            sys.m0.enqueue(AhbTransaction.write_single(0x0 + 4 * i, i,
                                                       ))
            sys.m1.enqueue(AhbTransaction.write_single(0x100 + 4 * i, i))
        sys.run_us(3)
        sys.assert_clean()
        assert len(sys.m0.completed) == 6
        assert len(sys.m1.completed) == 6
        # interleaving: m1 finishes its first txn before m0 finishes all
        assert sys.m1.completed[0].complete_time < \
            sys.m0.completed[-1].complete_time

    def test_round_robin_fairness(self):
        sys = SmallSystem(arbitration="round-robin")
        n = 20
        for i in range(n):
            sys.m0.enqueue(AhbTransaction.write_single(4 * i, 1))
            sys.m1.enqueue(AhbTransaction.write_single(0x400 + 4 * i, 2))
        sys.run_us(10)
        sys.assert_clean()
        # both masters complete everything and progress stays balanced
        assert len(sys.m0.completed) == n
        assert len(sys.m1.completed) == n
        mid = sys.sim.now // 2
        m0_half = sum(1 for t in sys.m0.completed
                      if t.complete_time <= mid)
        m1_half = sum(1 for t in sys.m1.completed
                      if t.complete_time <= mid)
        assert abs(m0_half - m1_half) <= 3


class TestLockedTransfers:
    def test_hlock_keeps_bus_through_idle(self, small_system):
        sys = small_system
        locked = sys.m1.enqueue(AhbTransaction.write_single(
            0x0, 7, locked=True))
        sys.m0.enqueue(AhbTransaction.write_single(0x100, 8))
        sys.run_us(2)
        sys.assert_clean()
        assert locked.done

    def test_hmastlock_signal_asserted(self, small_system):
        sys = small_system
        observed = []
        sys.m0.enqueue(AhbTransaction.write_single(0x0, 7, locked=True))
        sys.sim.add_method(
            lambda: observed.append(sys.bus.arbiter.hmastlock.value),
            [sys.clk.posedge], initialize=False)
        sys.run_us(1)
        assert 1 in observed


class TestHandoverCounting:
    def test_handover_count_grows_with_alternating_masters(
            self, small_system):
        sys = small_system
        for i in range(4):
            sys.m0.enqueue(AhbTransaction.write_single(
                4 * i, i, idle_cycles_before=4))
            sys.m1.enqueue(AhbTransaction.write_single(
                0x200 + 4 * i, i, idle_cycles_before=4))
        sys.run_us(5)
        sys.assert_clean()
        assert sys.bus.arbiter.handover_count >= 8

    def test_no_handover_on_quiet_bus(self):
        sys = SmallSystem()
        sys.run_us(5)
        assert sys.bus.arbiter.handover_count == 0
