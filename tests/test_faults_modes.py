"""Unit tests: behavioural fault modes, and their visibility to the
protocol checker and fault injectors."""

from repro.amba import AhbTransaction
from repro.faults import (
    AlwaysRetrySlave,
    BabblingMaster,
    FaultInjector,
    HangSlave,
    UnreleasedSplitSlave,
)
from repro.kernel import ns
from tests.test_faults_watchdog import FaultySystem


class TestHangSlave:
    def test_healthy_until_trigger(self):
        sys = FaultySystem(HangSlave, trigger_after=3, recover=False)
        txns = [sys.m0.enqueue(AhbTransaction.write_single(4 * i, i))
                for i in range(5)]
        sys.run_us(3)
        # first three transfers complete, the fourth hangs the bus
        assert [t.done for t in txns] == [True] * 3 + [False, False]
        assert sys.slaves[0].hung
        assert sys.slaves[0].hangs >= 1

    def test_hang_holds_hready_low(self):
        sys = FaultySystem(HangSlave, trigger_after=0, recover=False)
        sys.m0.enqueue(AhbTransaction.read(0x0))
        sys.run_us(2)
        assert not sys.bus.hready.value


class TestAlwaysRetrySlave:
    def test_retries_after_trigger_counted(self):
        sys = FaultySystem(AlwaysRetrySlave, trigger_after=2,
                           retry_limit=3, retry_budget=10_000)
        good = [sys.m0.enqueue(AhbTransaction.write_single(4 * i, i))
                for i in range(2)]
        bad = sys.m0.enqueue(AhbTransaction.write_single(0x40, 9))
        sys.run_us(3)
        assert all(t.done and not t.error for t in good)
        assert bad.done and bad.error
        assert sys.slaves[0].retry_responses >= 3
        assert sys.slaves[0].split_responses == 0

    def test_error_paths_pass_through(self):
        # Out-of-range accesses must still ERROR, not RETRY.
        sys = FaultySystem(AlwaysRetrySlave, trigger_after=0,
                           retry_limit=3, size=0x100,
                           retry_budget=10_000)
        bad = sys.m0.enqueue(AhbTransaction.read(0x800))
        sys.run_us(2)
        assert bad.done and bad.error
        assert sys.slaves[0].error_responses == 1
        assert sys.slaves[0].retry_responses == 0


class TestUnreleasedSplitSlave:
    def test_split_issued_and_never_released(self):
        sys = FaultySystem(UnreleasedSplitSlave, trigger_after=0,
                           recover=False, split_timeout=10_000)
        txn = sys.m0.enqueue(AhbTransaction.read(0x0))
        sys.run_us(3)
        assert sys.slaves[0].splits_issued == 1
        assert not txn.done  # parked in the split mask forever
        assert not sys.split_mask_clear()

    def test_healthy_until_trigger(self):
        sys = FaultySystem(UnreleasedSplitSlave, trigger_after=2,
                           recover=False, split_timeout=10_000)
        txns = [sys.m0.enqueue(AhbTransaction.write_single(4 * i, i))
                for i in range(3)]
        sys.run_us(3)
        assert [t.done for t in txns] == [True, True, False]


class TestBabblingMasterVsChecker:
    def test_checker_flags_babbled_protocol_faults(self):
        sys = FaultySystem(master1_cls=BabblingMaster)
        sys.run_us(5)
        assert sys.m1.babbled_cycles > 0
        assert not sys.checker.ok
        assert len(sys.checker.violations) >= 1

    def test_babbler_is_reproducible(self):
        def violations(seed):
            sys = FaultySystem(recover=False, master1_cls=(
                lambda sim, name, clk, port, bus:
                BabblingMaster(sim, name, clk, port, bus, seed=seed)))
            sys.run_us(3)
            return [v.rule for v in sys.checker.violations]

        assert violations(5) == violations(5)


class TestSignalInjectionVsChecker:
    def test_checker_flags_glitched_htrans(self):
        # A glitch forcing SEQ onto the idle bus HTRANS is a
        # protocol-visible fault the checker must catch.
        sys = FaultySystem(recover=False)
        injector = FaultInjector(sys.sim, sys.clk, seed=1)
        injector.glitch(sys.bus.htrans, value=3, cycles=2,
                        start=ns(200))
        sys.run_us(2)
        assert injector.injections >= 1
        assert not sys.checker.ok

    def test_clean_system_stays_clean_without_faults(self):
        sys = FaultySystem(recover=False)
        FaultInjector(sys.sim, sys.clk, seed=1)  # armed with nothing
        txns = [sys.m0.enqueue(AhbTransaction.write_single(4 * i, i))
                for i in range(4)]
        sys.run_us(2)
        assert all(t.done and not t.error for t in txns)
        assert sys.checker.ok
        assert sys.watchdog.ok
