"""Vectorized gate-level batch vs the scalar sweep it must reproduce.

``run_batch`` promises exact integer toggle counts and identical
end-of-batch simulator state (values, per-net toggle counts, totals,
step counter); only the accumulated *energy* is allowed to differ in
the last float ulps (summation order).  Each test drives a scalar
``step_ints`` sweep and a batched run of the same vectors side by side.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gatelevel import (
    AND2,
    BatchResult,
    CellType,
    GateLevelSimulator,
    Netlist,
    run_batch,
    synth_mux,
    synth_one_hot_decoder,
)


def _mux_vectors(count, seed=0):
    """A deterministic address/data stimulus for ``synth_mux(4, 8)``."""
    vectors = []
    state = seed
    for index in range(count):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        vectors.append({"s": state & 3,
                        "d0": (state >> 2) & 0xFF,
                        "d1": (state >> 10) & 0xFF,
                        "d2": (state >> 18) & 0xFF,
                        "d3": (~state >> 3) & 0xFF})
    return vectors


def _scalar_sweep(simulator, vectors):
    """Apply *vectors* one at a time; return per-step toggle counts."""
    return [simulator.step_ints(**vector).toggles for vector in vectors]


def _assert_same_state(batch_sim, scalar_sim):
    assert batch_sim.total_toggles == scalar_sim.total_toggles
    assert batch_sim.steps == scalar_sim.steps
    for net in batch_sim.netlist.nets:
        peer = _net_by_name(scalar_sim.netlist, net.name)
        assert batch_sim.values[net] == scalar_sim.values[peer], net.name
        assert (batch_sim.toggle_counts[net]
                == scalar_sim.toggle_counts[peer]), net.name
    assert np.isclose(batch_sim.total_energy, scalar_sim.total_energy,
                      rtol=1e-12)


def _net_by_name(netlist, name):
    for net in netlist.nets:
        if net.name == name:
            return net
    raise KeyError(name)


class TestBatchEqualsScalar:
    def test_mux_sweep_matches_exactly(self):
        vectors = _mux_vectors(300)
        scalar_sim = GateLevelSimulator(synth_mux(4, 8))
        per_step = _scalar_sweep(scalar_sim, vectors)

        batch_sim = GateLevelSimulator(synth_mux(4, 8))
        result = run_batch(batch_sim, vectors)

        assert isinstance(result, BatchResult)
        assert result.steps == len(vectors)
        assert result.toggles == sum(per_step)
        assert result.per_vector_toggles.tolist() == per_step
        _assert_same_state(batch_sim, scalar_sim)

    def test_absent_bus_keeps_previous_value(self):
        # step_ints semantics: a bus missing from a vector holds its
        # last value — the batch must carry state the same way.
        vectors = [{"s": 1, "d0": 0xAA, "d1": 0x55,
                    "d2": 0, "d3": 0xFF},
                   {"d1": 0x54},           # s/d0/d2/d3 held
                   {"s": 3},
                   {}]                     # pure hold, zero toggles
        scalar_sim = GateLevelSimulator(synth_mux(4, 8))
        per_step = _scalar_sweep(scalar_sim, vectors)

        batch_sim = GateLevelSimulator(synth_mux(4, 8))
        result = run_batch(batch_sim, vectors)
        assert result.per_vector_toggles.tolist() == per_step
        _assert_same_state(batch_sim, scalar_sim)

    def test_interleaves_with_scalar_stepping(self):
        # End-of-batch state is committed state: scalar steps before
        # and after a batch see exactly what an all-scalar run sees.
        vectors = _mux_vectors(60, seed=7)
        scalar_sim = GateLevelSimulator(synth_mux(4, 8))
        _scalar_sweep(scalar_sim, vectors)

        mixed_sim = GateLevelSimulator(synth_mux(4, 8))
        _scalar_sweep(mixed_sim, vectors[:20])
        run_batch(mixed_sim, vectors[20:50])
        _scalar_sweep(mixed_sim, vectors[50:])
        _assert_same_state(mixed_sim, scalar_sim)

    def test_decoder_matches(self):
        vectors = [{"a": value % 16} for value in range(40)]
        scalar_sim = GateLevelSimulator(synth_one_hot_decoder(4))
        per_step = _scalar_sweep(scalar_sim, vectors)
        batch_sim = GateLevelSimulator(synth_one_hot_decoder(4))
        result = run_batch(batch_sim, vectors)
        assert result.per_vector_toggles.tolist() == per_step
        _assert_same_state(batch_sim, scalar_sim)

    def test_nonlibrary_cell_falls_back_to_frompyfunc(self):
        def majority(a, b, c):
            return 1 if (a + b + c) >= 2 else 0

        MAJ3 = CellType("MAJ3", 3, majority, 2e-15)

        def build():
            nl = Netlist("maj")
            a = nl.add_input("a")
            b = nl.add_input("b")
            c = nl.add_input("c")
            m = nl.add_cell(MAJ3, [a, b, c], output_name="m")
            nl.mark_output(nl.add_cell(AND2, [m, a], output_name="y"))
            return nl

        vectors = [{"a": i & 1, "b": (i >> 1) & 1, "c": (i >> 2) & 1}
                   for i in range(16)]
        scalar_sim = GateLevelSimulator(build())
        per_step = _scalar_sweep(scalar_sim, vectors)
        batch_sim = GateLevelSimulator(build())
        result = run_batch(batch_sim, vectors)
        assert result.per_vector_toggles.tolist() == per_step
        _assert_same_state(batch_sim, scalar_sim)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(
        st.fixed_dictionaries(
            {},
            optional={"s": st.integers(0, 3),
                      "d0": st.integers(0, 255),
                      "d1": st.integers(0, 255),
                      "d2": st.integers(0, 255),
                      "d3": st.integers(0, 255)}),
        min_size=1, max_size=40))
    def test_property_random_vectors(self, vectors):
        scalar_sim = GateLevelSimulator(synth_mux(4, 8))
        per_step = _scalar_sweep(scalar_sim, vectors)
        batch_sim = GateLevelSimulator(synth_mux(4, 8))
        result = run_batch(batch_sim, vectors)
        assert result.per_vector_toggles.tolist() == per_step
        _assert_same_state(batch_sim, scalar_sim)


class TestBatchEdges:
    def test_empty_batch_is_a_noop(self):
        sim = GateLevelSimulator(synth_mux(2, 4))
        result = run_batch(sim, [])
        assert (result.steps, result.toggles, result.energy) == (0, 0, 0.0)
        assert result.per_vector_toggles.shape == (0,)
        assert sim.steps == 0 and sim.total_toggles == 0

    def test_rejects_sequential_netlists(self):
        nl = Netlist("reg")
        d = nl.add_input("d")
        nl.mark_output(nl.add_dff(d, q_name="q"))
        sim = GateLevelSimulator(nl)
        with pytest.raises(ValueError, match="flip-flop"):
            run_batch(sim, [{"d": 1}])

    def test_unknown_bus_name_raises(self):
        sim = GateLevelSimulator(synth_mux(2, 4))
        with pytest.raises(KeyError, match="no input bus"):
            run_batch(sim, [{"nonesuch": 1}])
