"""CLI and export-module tests."""

import io
import json

import pytest

from repro.analysis.export import (
    ledger_to_csv,
    ledger_to_rows,
    results_to_json,
    run_summary,
    traces_to_csv,
)
from repro.cli import EXPERIMENTS, build_parser, main
from repro.kernel import us
from repro.power import EnergyLedger, TraceSet


class TestExportLedger:
    def make_ledger(self):
        ledger = EnergyLedger()
        ledger.charge_cycle("WRITE_READ", {"M2S": 2e-12, "ARB": 1e-12})
        ledger.charge_cycle("IDLE_IDLE", {"ARB": 1e-12})
        return ledger

    def test_rows_cover_instructions_blocks_total(self):
        rows = ledger_to_rows(self.make_ledger())
        kinds = {row[0] for row in rows}
        assert kinds == {"instruction", "block", "total"}
        total_row = [row for row in rows if row[0] == "total"][0]
        assert total_row[3] == pytest.approx(4e-12)

    def test_csv_format(self):
        buffer = io.StringIO()
        ledger_to_csv(self.make_ledger(), buffer)
        lines = buffer.getvalue().splitlines()
        assert lines[0] == "kind,key,count,energy_j,share"
        assert any(line.startswith("instruction,WRITE_READ")
                   for line in lines)

    def test_traces_csv(self):
        traces = TraceSet(("A", "B"))
        traces.record(500, {"A": 1e-12, "B": 2e-12})
        traces.record(1500, {"A": 3e-12})
        buffer = io.StringIO()
        traces_to_csv(traces, 1000, buffer, t_end=2000)
        lines = buffer.getvalue().splitlines()
        assert lines[0] == "time_s,A_w,B_w"
        assert len(lines) == 3


class TestExportResults:
    def test_result_roundtrips_through_json(self):
        from repro.analysis import run_macromodel_validation
        result = run_macromodel_validation(samples=80)
        payload = json.loads(results_to_json([result]))
        assert payload["total"] == 1
        assert payload["experiments"][0]["name"] == result.name
        assert payload["experiments"][0]["passed"] == result.passed
        assert "fit quality" in payload["experiments"][0]["tables"]

    def test_run_summary(self):
        from repro.workloads import build_paper_testbench
        tb = build_paper_testbench(seed=1)
        tb.run(us(5))
        summary = run_summary(tb)
        assert summary["cycles"] == 500
        assert summary["transactions"] > 0
        assert summary["protocol_violations"] == 0
        assert 0.99 < sum(summary["block_shares"].values()) < 1.01


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "wireless-modem" in out

    def test_every_experiment_is_wired(self):
        expected = {"table1", "fig3", "fig4", "fig5", "fig6",
                    "overhead", "validation", "granularity", "styles",
                    "design-space"}
        assert set(EXPERIMENTS) == expected

    def test_run_validation(self, capsys, tmp_path):
        json_path = tmp_path / "out.json"
        code = main(["run", "validation", "--json", str(json_path)])
        assert code == 0
        assert "Macromodel validation" in capsys.readouterr().out
        payload = json.loads(json_path.read_text())
        assert payload["passed"] == 1

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 2

    def test_scenario_command(self, capsys):
        code = main(["scenario", "portable-audio-player",
                     "--duration-us", "5"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cycles"] == 500
        assert payload["protocol_violations"] == 0

    def test_parser_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])
