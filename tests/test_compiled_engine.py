"""Unit tests for the static compiler (repro.compiled).

Covers graph extraction and its loud rejections (dynamic sensitivity,
undeclared write sets, mixed sensitivity, clock-writing combinational
processes), combinational-cycle detection with the named cycle path,
multi-clock domain partitioning, and the engine's run-time decline /
fall-back paths — every one of which must leave results bit-identical
to the interpreted kernel.
"""

import pytest

from repro.compiled import (
    CompileError,
    compile_simulator,
    extract_graph,
    levelize,
)
from repro.kernel import Clock, MHz, Signal, Simulator, ns, us


def _counter_design():
    """A clocked counter plus a combinational decode stage."""
    sim = Simulator()
    clk = Clock.from_frequency(sim, "clk", MHz(100))
    count = Signal(sim, "count", width=32)
    decoded = Signal(sim, "decoded", width=1)
    sim.add_method(lambda: count.write(count.value + 1),
                   [clk.posedge], name="tick", initialize=False)
    sim.add_method(lambda: decoded.write(1 if count.value % 5 == 0
                                         else 0),
                   [count], name="decode", writes=[decoded])
    return sim, clk, count, decoded


class TestGraphExtraction:
    def test_classifies_seq_and_comb(self):
        sim, clk, count, decoded = _counter_design()
        graph = extract_graph(sim, [clk])
        domain = graph.domain_of(clk)
        assert [info.name for info in domain.seq_pos] == ["tick"]
        assert [info.name for info in graph.comb] == ["decode"]
        assert graph.comb[0].reads == (count,)
        assert graph.comb[0].writes == (decoded,)

    def test_rejects_dynamic_sensitivity_thread(self):
        sim, clk, count, decoded = _counter_design()

        def roamer():
            yield count.changed     # dynamic wait — not compilable

        sim.add_thread(roamer, name="roamer")
        with pytest.raises(CompileError) as excinfo:
            extract_graph(sim, [clk])
        assert "dynamic sensitivity" in str(excinfo.value)
        assert excinfo.value.process_names == ("roamer",)

    def test_rejects_undeclared_comb_writes(self):
        sim = Simulator()
        clk = Clock.from_frequency(sim, "clk", MHz(100))
        a = Signal(sim, "a")
        b = Signal(sim, "b")
        sim.add_method(lambda: b.write(a.value), [a], name="anon")
        with pytest.raises(CompileError, match="write set"):
            extract_graph(sim, [clk])

    def test_rejects_mixed_sensitivity(self):
        sim = Simulator()
        clk = Clock.from_frequency(sim, "clk", MHz(100))
        a = Signal(sim, "a")
        b = Signal(sim, "b")
        sim.add_method(lambda: b.write(a.value), [clk.posedge, a],
                       name="mixed", writes=[b])
        with pytest.raises(CompileError, match="mixes"):
            extract_graph(sim, [clk])

    def test_rejects_edge_on_non_clock_signal(self):
        sim = Simulator()
        clk = Clock.from_frequency(sim, "clk", MHz(100))
        a = Signal(sim, "a")
        sim.add_method(lambda: None, [a.posedge], name="edgy")
        with pytest.raises(CompileError, match="not a .* clock"):
            extract_graph(sim, [clk])

    def test_rejects_comb_clock_writer(self):
        # Compile-time, not run-time: a combinational process that
        # drives the clock wire would corrupt the engine's edge
        # arithmetic.
        sim = Simulator()
        clk = Clock.from_frequency(sim, "clk", MHz(100))
        a = Signal(sim, "a")
        sim.add_method(lambda: clk.signal.write(0), [a],
                       name="gater", writes=[clk.signal])
        with pytest.raises(CompileError, match="writes clock signal"):
            compile_simulator(sim, [clk], install=False)


class TestLevelize:
    def test_orders_cascade(self):
        sim, clk, count, decoded = _counter_design()
        downstream = Signal(sim, "downstream")
        sim.add_method(lambda: downstream.write(decoded.value),
                       [decoded], name="stage2", writes=[downstream])
        graph = extract_graph(sim, [clk])
        ordered = levelize(graph.comb)
        assert [info.name for info in ordered] == ["decode", "stage2"]
        assert ordered[0].level == 0
        assert ordered[1].level == 1

    def test_cycle_error_names_full_path(self):
        sim = Simulator()
        clk = Clock.from_frequency(sim, "clk", MHz(100))
        a = Signal(sim, "a")
        b = Signal(sim, "b")
        sim.add_method(lambda: b.write(a.value), [a], name="fwd",
                       writes=[b])
        sim.add_method(lambda: a.write(b.value), [b], name="back",
                       writes=[a])
        graph = extract_graph(sim, [clk])
        with pytest.raises(CompileError) as excinfo:
            levelize(graph.comb)
        error = excinfo.value
        assert "combinational cycle" in str(error)
        # The alternating process -> signal -> process path closes on
        # itself and names both offenders and a connecting signal.
        assert set(error.process_names) == {"fwd", "back"}
        assert error.cycle_path[0] == error.cycle_path[-1]
        assert {"a", "b"} & set(error.cycle_path)


def _build_two_domain(seed_period_ns=10, second_period_ns=27):
    """Two independent clock domains sharing one simulator."""
    sim = Simulator()
    clk_a = Clock(sim, "clk_a", period=ns(seed_period_ns))
    clk_b = Clock(sim, "clk_b", period=ns(second_period_ns))
    count_a = Signal(sim, "count_a", width=32)
    count_b = Signal(sim, "count_b", width=32)
    mixed = Signal(sim, "mixed", width=32)
    sim.add_method(lambda: count_a.write(count_a.value + 1),
                   [clk_a.posedge], name="tick_a", initialize=False)
    sim.add_method(lambda: count_b.write(count_b.value + 1),
                   [clk_b.posedge], name="tick_b", initialize=False)
    sim.add_method(
        lambda: mixed.write(count_a.value * 1000 + count_b.value),
        [count_a, count_b], name="mix", writes=[mixed])
    return sim, clk_a, clk_b, count_a, count_b, mixed


class TestMultiClock:
    def test_domain_partitioning(self):
        sim, clk_a, clk_b, *_ = _build_two_domain()
        graph = extract_graph(sim, [clk_a, clk_b])
        assert [info.name
                for info in graph.domain_of(clk_a).seq_pos] == ["tick_a"]
        assert [info.name
                for info in graph.domain_of(clk_b).seq_pos] == ["tick_b"]
        assert [info.name for info in graph.comb] == ["mix"]

    def test_two_domain_run_matches_interpreted(self):
        reference = _build_two_domain()
        reference[0].run(until=us(2))

        sim, clk_a, clk_b, count_a, count_b, mixed = _build_two_domain()
        engine = compile_simulator(sim, [clk_a, clk_b])
        sim.run(until=us(2))
        assert engine.runs_compiled == 1
        assert engine.runs_declined == 0

        ref_sim, ref_a, ref_b = reference[0], reference[1], reference[2]
        assert (clk_a.cycles, clk_b.cycles) == (ref_a.cycles,
                                                ref_b.cycles)
        assert count_a.value == reference[3].value
        assert count_b.value == reference[4].value
        assert mixed.value == reference[5].value
        assert sim.now == ref_sim.now
        assert sim.delta_count == ref_sim.delta_count

    def test_coincident_edges_keep_interpreted_order(self):
        # Periods 10 and 20 ns: every other edge of the fast clock
        # lands on the same picosecond as the slow clock's edge, so
        # the multi-domain step must group and order by sequence
        # number exactly as the interpreted heap does.
        reference = _build_two_domain(10, 20)
        reference[0].run(until=us(1))

        sim, clk_a, clk_b, count_a, count_b, mixed = _build_two_domain(
            10, 20)
        compile_simulator(sim, [clk_a, clk_b])
        sim.run(until=us(1))
        assert sim.delta_count == reference[0].delta_count
        assert mixed.value == reference[5].value


class TestEngineFallback:
    def test_observer_declines_to_interpreter(self):
        sim, clk, count, decoded = _counter_design()
        engine = compile_simulator(sim, [clk])

        class Observer:
            def on_process(self, process, now, seconds):
                pass

            def on_settle(self, now, deltas):
                pass

        sim.attach_observer(Observer())
        sim.run(until=us(1))
        assert engine.runs_compiled == 0
        assert engine.runs_declined == 1
        assert "observer" in engine.fallback_reason
        assert count.value == 100     # still ran, interpreted

    def test_late_process_registration_declines(self):
        sim, clk, count, decoded = _counter_design()
        engine = compile_simulator(sim, [clk])
        other = Signal(sim, "other")
        sim.add_method(lambda: other.write(count.value), [count],
                       name="late", writes=[other])
        sim.run(until=us(1))
        assert engine.runs_declined == 1
        assert "registered since compile" in engine.fallback_reason
        assert count.value == 100

    def test_seq_clock_writer_bails_mid_run(self):
        # A sequential process that drives the clock wire low is only
        # detectable at run time; the engine must materialize its
        # state and hand the rest of the run to the interpreter,
        # producing the interpreted trajectory.
        def build():
            sim = Simulator()
            clk = Clock(sim, "clk", period=ns(10))
            count = Signal(sim, "count", width=32)

            def tick():
                count.write(count.value + 1)
                if count.value == 49:
                    clk.signal.write(0)    # kill the clock mid-run
            sim.add_method(tick, [clk.posedge], name="tick",
                           initialize=False)
            return sim, clk, count

        ref_sim, _, ref_count = build()
        ref_sim.run(until=us(2))

        sim, clk, count = build()
        engine = compile_simulator(sim, [clk])
        sim.run(until=us(2))
        assert count.value == ref_count.value
        assert sim.now == ref_sim.now
        assert sim.delta_count == ref_sim.delta_count

    def test_uninstall_restores_interpreter(self):
        sim, clk, count, decoded = _counter_design()
        engine = compile_simulator(sim, [clk])
        sim.run(until=us(1))
        assert engine.runs_compiled == 1
        engine.uninstall()
        sim.run(until=us(2))
        assert engine.runs_compiled == 1    # second leg interpreted
        assert count.value == 200

    def test_partial_until_time_matches(self):
        # `until` falling between edges: the engine must stop the
        # clock plan exactly where the interpreted heap would.
        ref_sim, ref_clk, ref_count, _ = _counter_design()
        ref_sim.run(until=ns(10_015))

        sim, clk, count, _ = _counter_design()
        compile_simulator(sim, [clk])
        sim.run(until=ns(10_015))
        assert count.value == ref_count.value
        assert sim.now == ref_sim.now == ns(10_015)
        # and the next leg resumes cleanly, compiled again
        ref_sim.run(until=ns(20_000))
        sim.run(until=ns(20_000))
        assert count.value == ref_count.value
        assert sim.delta_count == ref_sim.delta_count
