"""TDMA arbitration tests."""

import pytest

from repro.amba import AhbTransaction
from repro.kernel import us


def tdma_system(slot_cycles=8):
    from repro.amba import (
        AhbBus,
        AhbConfig,
        AhbMaster,
        AhbProtocolChecker,
        DefaultMaster,
        MemorySlave,
    )
    from repro.kernel import Clock, MHz, Simulator

    class System:
        pass

    system = System()
    system.sim = Simulator()
    system.clk = Clock.from_frequency(system.sim, "clk", MHz(100))
    config = AhbConfig.with_uniform_map(
        n_masters=3, n_slaves=2, default_master=2,
        arbitration="tdma", tdma_slot_cycles=slot_cycles)
    system.config = config
    system.bus = AhbBus(system.sim, "ahb", system.clk, config)
    system.m0 = AhbMaster(system.sim, "m0", system.clk,
                          system.bus.master_ports[0], system.bus)
    system.m1 = AhbMaster(system.sim, "m1", system.clk,
                          system.bus.master_ports[1], system.bus)
    DefaultMaster(system.sim, "dm", system.clk,
                  system.bus.master_ports[2], system.bus)
    system.slaves = [
        MemorySlave(system.sim, "s%d" % index, system.clk,
                    system.bus.slave_ports[index], system.bus,
                    base=index * 0x1000)
        for index in range(2)
    ]
    system.checker = AhbProtocolChecker(system.sim, "chk", system.bus)
    return system


class TestTdma:
    def test_config_accepts_tdma(self):
        system = tdma_system()
        assert system.bus.arbiter.policy == "tdma"

    def test_slot_rotation(self):
        system = tdma_system(slot_cycles=4)
        owners = []
        system.sim.add_method(
            lambda: owners.append(system.bus.arbiter.slot_owner.value),
            [system.clk.posedge], initialize=False)
        system.sim.run(until=us(2))
        assert {0, 1} <= set(owners)  # both real masters get slots
        assert 2 not in owners        # default master never does
        # slots last slot_cycles consecutive samples
        runs = []
        current, length = owners[0], 1
        for owner in owners[1:]:
            if owner == current:
                length += 1
            else:
                runs.append(length)
                current, length = owner, 1
        assert runs and max(runs) == 4

    def test_bandwidth_shared_evenly_under_saturation(self):
        system = tdma_system(slot_cycles=8)
        n = 40
        for k in range(n):
            system.m0.enqueue(AhbTransaction.write_single(4 * k, k))
            system.m1.enqueue(
                AhbTransaction.write_single(0x1000 + 4 * k, k))
        system.sim.run(until=us(15))
        assert system.checker.ok, system.checker.violations[:3]
        assert len(system.m0.completed) == n
        assert len(system.m1.completed) == n
        # progress interleaves: halfway through the run, both masters
        # have completed a comparable share
        mid = system.m0.completed[-1].complete_time // 2
        m0_half = sum(1 for t in system.m0.completed
                      if t.complete_time <= mid)
        m1_half = sum(1 for t in system.m1.completed
                      if t.complete_time <= mid)
        assert abs(m0_half - m1_half) <= 10

    def test_slot_reclaiming_when_owner_idle(self):
        """An idle slot owner's bandwidth is reclaimed: a lone busy
        master is not throttled to 50%."""
        system = tdma_system(slot_cycles=8)
        n = 30
        for k in range(n):
            system.m0.enqueue(AhbTransaction.write_single(4 * k, k))
        system.sim.run(until=us(10))
        assert system.checker.ok
        assert len(system.m0.completed) == n
        # n back-to-back writes complete in about n cycles, not 2n
        span = (system.m0.completed[-1].complete_time
                - system.m0.completed[0].issue_time)
        assert span // 10_000 <= n + 6

    def test_data_integrity_under_tdma(self):
        system = tdma_system(slot_cycles=3)
        writes = [system.m0.enqueue(
            AhbTransaction.write_single(4 * k, 0xC0 + k))
            for k in range(10)]
        reads = [system.m1.enqueue(AhbTransaction.read(4 * k))
                 for k in range(10)]
        system.sim.run(until=us(10))
        assert system.checker.ok
        assert all(t.done for t in writes + reads)

    def test_invalid_slot_length_rejected(self):
        from repro.amba import AhbConfig
        with pytest.raises(ValueError):
            AhbConfig(arbitration="tdma", tdma_slot_cycles=0)
