"""Named SoC scenario tests."""

import pytest

from repro.kernel import us
from repro.workloads import SCENARIOS, build_scenario


class TestScenarioRegistry:
    def test_all_scenarios_listed(self):
        assert set(SCENARIOS) == {
            "portable-audio-player", "wireless-modem",
            "portable-videogame",
        }

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            build_scenario("toaster")


@pytest.mark.parametrize("name", sorted(SCENARIOS))
class TestScenarioRuns:
    def test_runs_clean_with_power(self, name):
        system = build_scenario(name, seed=3)
        system.run(us(20))
        system.assert_protocol_clean()
        assert system.transactions_completed() > 20
        assert system.total_energy > 0
        system.ledger.check_conservation()

    def test_deterministic(self, name):
        def run():
            system = build_scenario(name, seed=3, checker=False)
            system.run(us(10))
            return (system.total_energy,
                    system.transactions_completed())
        assert run() == run()

    def test_data_integrity(self, name):
        system = build_scenario(name, seed=3, checker=False)
        system.run(us(20))
        for master in system.masters:
            for txn in master.completed:
                assert not txn.error
                if not txn.write:
                    assert len(txn.rdata) == txn.beats


class TestScenarioCharacter:
    def test_videogame_has_three_masters(self):
        system = build_scenario("portable-videogame", seed=1)
        assert len(system.masters) == 3

    def test_modem_uses_round_robin_and_wait_states(self):
        system = build_scenario("wireless-modem", seed=1)
        assert system.config.arbitration == "round-robin"
        assert system.slaves[1].wait_states == 1

    def test_scenarios_differ_in_power_profile(self):
        profiles = {}
        for name in SCENARIOS:
            system = build_scenario(name, seed=3, checker=False)
            system.run(us(20))
            profiles[name] = system.total_energy
        assert len(set(profiles.values())) == len(profiles)
