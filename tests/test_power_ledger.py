"""Energy ledger accounting tests (with conservation properties)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.power import EnergyLedger, InstructionStats
from repro.power.ledger import PAPER_BLOCKS


class TestCharging:
    def test_charge_cycle_returns_total(self):
        ledger = EnergyLedger()
        total = ledger.charge_cycle("WRITE_READ",
                                    {"M2S": 1e-12, "ARB": 2e-12})
        assert total == pytest.approx(3e-12)
        assert ledger.cycles == 1

    def test_unknown_block_added_on_the_fly(self):
        ledger = EnergyLedger()
        ledger.charge_cycle("X", {"BRIDGE": 5e-12})
        assert ledger.block_energy["BRIDGE"] == pytest.approx(5e-12)

    def test_negative_energy_rejected(self):
        ledger = EnergyLedger()
        with pytest.raises(ValueError):
            ledger.charge_cycle("X", {"M2S": -1e-12})

    def test_instruction_stats_accumulate(self):
        ledger = EnergyLedger()
        ledger.charge_cycle("A", {"M2S": 1e-12})
        ledger.charge_cycle("A", {"M2S": 3e-12})
        stats = ledger.instruction_stats("A")
        assert stats.count == 2
        assert stats.energy == pytest.approx(4e-12)
        assert stats.average_energy == pytest.approx(2e-12)

    def test_unknown_instruction_stats_are_zero(self):
        ledger = EnergyLedger()
        stats = ledger.instruction_stats("NEVER")
        assert stats.count == 0
        assert stats.average_energy == 0.0


class TestQueries:
    def make_ledger(self):
        ledger = EnergyLedger()
        ledger.charge_cycle("WRITE_READ", {"M2S": 6e-12, "S2M": 2e-12})
        ledger.charge_cycle("IDLE_HO_IDLE_HO", {"ARB": 2e-12})
        return ledger

    def test_block_share(self):
        ledger = self.make_ledger()
        assert ledger.block_share("M2S") == pytest.approx(0.6)
        assert ledger.block_share("DEC") == 0.0

    def test_instruction_share(self):
        ledger = self.make_ledger()
        assert ledger.instruction_share("WRITE_READ") == \
            pytest.approx(0.8)

    def test_class_share(self):
        ledger = self.make_ledger()
        assert ledger.class_share(lambda n: "IDLE_HO" in n) == \
            pytest.approx(0.2)

    def test_block_breakdown_sorted(self):
        ledger = self.make_ledger()
        breakdown = ledger.block_breakdown()
        energies = [energy for energy, _ in breakdown.values()]
        assert energies == sorted(energies, reverse=True)

    def test_average_power(self):
        ledger = self.make_ledger()
        assert ledger.average_power(1e-6) == pytest.approx(1e-5)
        with pytest.raises(ValueError):
            ledger.average_power(0)

    def test_empty_ledger_shares_are_zero(self):
        ledger = EnergyLedger()
        assert ledger.block_share("M2S") == 0.0
        assert ledger.instruction_share("X") == 0.0
        assert ledger.class_share(lambda n: True) == 0.0


energy_amounts = st.floats(min_value=0, max_value=1e-9,
                           allow_nan=False, allow_infinity=False)
block_names = st.sampled_from(PAPER_BLOCKS)
instruction_names = st.sampled_from(
    ["WRITE_READ", "READ_WRITE", "IDLE_IDLE", "IDLE_HO_WRITE"])


class TestConservation:
    @given(st.lists(
        st.tuples(instruction_names,
                  st.dictionaries(block_names, energy_amounts,
                                  min_size=1, max_size=4)),
        min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_blocks_and_instructions_conserve_total(self, cycles):
        ledger = EnergyLedger()
        for instruction, energies in cycles:
            ledger.charge_cycle(instruction, energies)
        assert ledger.check_conservation()
        assert ledger.cycles == len(cycles)

    def test_conservation_violation_detected(self):
        ledger = EnergyLedger()
        ledger.charge_cycle("A", {"M2S": 1e-12})
        ledger.total_energy *= 2  # corrupt
        with pytest.raises(AssertionError):
            ledger.check_conservation()

    def test_repr(self):
        assert "EnergyLedger" in repr(EnergyLedger())
        assert "InstructionStats" in repr(InstructionStats())
