"""Cycle-accurate pipeline timing checks.

These tests pin the AHB pipeline behaviour to exact cycle counts, so
any regression in the evaluate/update scheduling or the master/slave
FSMs shows up as an off-by-one here rather than as a silent energy
shift in the experiments.
"""

from repro.amba import AhbTransaction, HBURST
from repro.kernel import ns
from tests.conftest import SmallSystem

CYCLE = 10_000  # 100 MHz in ps


def cycles(t):
    return t // CYCLE


class TestPipelining:
    def test_back_to_back_singles_take_one_cycle_each(self):
        """N zero-wait single transfers pipeline at 1 transfer/cycle:
        total = N address phases + 1 trailing data phase."""
        sys = SmallSystem()
        n = 10
        txns = [sys.m0.enqueue(AhbTransaction.write_single(4 * k, k))
                for k in range(n)]
        sys.run_us(3)
        sys.assert_clean()
        first_issue = txns[0].issue_time
        last_complete = txns[-1].complete_time
        assert cycles(last_complete - first_issue) == n + 1

    def test_burst_beats_pipeline_at_one_per_cycle(self):
        sys = SmallSystem()
        txn = sys.m0.enqueue(AhbTransaction(
            True, 0x0, data=list(range(8)), hburst=HBURST.INCR8))
        sys.run_us(2)
        sys.assert_clean()
        assert cycles(txn.complete_time - txn.issue_time) == 8 + 1

    def test_single_transfer_latency_with_wait_states(self):
        """Each wait state stretches the data phase by one cycle."""
        for waits in (0, 1, 3):
            sys = SmallSystem(wait_states=(waits, 0))
            txn = sys.m0.enqueue(AhbTransaction.read(0x0))
            sys.run_us(2)
            assert cycles(txn.latency) == 2 + waits, \
                "wait_states=%d" % waits

    def test_wait_states_stretch_each_burst_beat(self):
        sys = SmallSystem(wait_states=(2, 0))
        txn = sys.m0.enqueue(AhbTransaction(
            True, 0x0, data=[1, 2, 3, 4], hburst=HBURST.INCR4))
        sys.run_us(3)
        # 4 beats x (1 + 2 waits) data cycles + 1 address phase
        assert cycles(txn.complete_time - txn.issue_time) == 4 * 3 + 1

    def test_issue_time_is_first_address_phase(self):
        sys = SmallSystem()
        txn = sys.m0.enqueue(AhbTransaction.write_single(0x0, 1))
        sys.run_us(1)
        # grant at the first edge (5 ns), first address phase the
        # cycle after: issue stamped at the second edge
        assert txn.issue_time == ns(15)


class TestHandoverTiming:
    def test_handover_costs_exactly_one_idle_cycle(self):
        """m0 finishes, m1 queued and requesting: ownership moves with
        a single idle cycle on the bus (fixed-priority parking)."""
        sys = SmallSystem()
        a = sys.m0.enqueue(AhbTransaction.write_single(0x0, 1))
        b = sys.m1.enqueue(AhbTransaction.write_single(0x100, 2))
        sys.run_us(2)
        sys.assert_clean()
        # b's first address phase starts 2 cycles after a's completes:
        # one for the grant change, one for b's address phase itself.
        gap = cycles(b.issue_time - a.complete_time)
        assert gap <= 2

    def test_owner_retains_bus_for_queued_work(self):
        """Back-to-back transactions of one master incur no handover."""
        sys = SmallSystem()
        for k in range(5):
            sys.m0.enqueue(AhbTransaction.write_single(4 * k, k))
        sys.run_us(2)
        # exactly two handovers: default->m0 and m0->default
        assert sys.bus.arbiter.handover_count == 2

    def test_idle_cycles_before_releases_bus(self):
        sys = SmallSystem()
        sys.m0.enqueue(AhbTransaction.write_single(0x0, 1))
        sys.m0.enqueue(AhbTransaction.write_single(0x4, 2,
                                                   idle_cycles_before=8))
        sys.run_us(3)
        # bus went back to the default master during the gap
        assert sys.bus.arbiter.handover_count == 4


class TestDataPhaseRouting:
    def test_interleaved_writes_route_correct_wdata(self):
        """Round-robin interleaving of two writers: every memory cell
        ends with its own master's data (HWDATA muxed by HMASTER_D)."""
        sys = SmallSystem(arbitration="round-robin")
        n = 12
        for k in range(n):
            sys.m0.enqueue(AhbTransaction.write_single(
                0x000 + 4 * k, 0xA000 + k))
            sys.m1.enqueue(AhbTransaction.write_single(
                0x200 + 4 * k, 0xB000 + k))
        sys.run_us(5)
        sys.assert_clean()
        for k in range(n):
            assert sys.slaves[0].peek(0x000 + 4 * k) == 0xA000 + k
            assert sys.slaves[0].peek(0x200 + 4 * k) == 0xB000 + k

    def test_read_after_write_same_address_back_to_back(self):
        """The write's data phase overlaps the read's address phase;
        the slave must commit before serving (tests slave ordering)."""
        sys = SmallSystem()
        results = []
        for k in range(6):
            sys.m0.enqueue(AhbTransaction.write_single(0x40, 100 + k))
            results.append(sys.m0.enqueue(AhbTransaction.read(0x40)))
        sys.run_us(3)
        sys.assert_clean()
        assert [r.rdata[0] for r in results] == [100 + k
                                                 for k in range(6)]

    def test_write_data_held_through_wait_states(self):
        sys = SmallSystem(wait_states=(3, 0))
        observed = []
        sys.sim.add_method(
            lambda: observed.append((sys.bus.hready.value,
                                     sys.bus.hwdata.value)),
            [sys.clk.posedge], initialize=False)
        sys.m0.enqueue(AhbTransaction.write_single(0x0, 0x1234_5678))
        sys.run_us(1)
        stalled = [wd for ready, wd in observed if not ready]
        assert stalled
        assert all(wd == 0x1234_5678 for wd in stalled)


class TestDefaultMasterBehaviour:
    def test_default_master_drives_idle_forever(self):
        sys = SmallSystem()
        seen = set()
        sys.sim.add_method(
            lambda: seen.add(sys.bus.htrans.value),
            [sys.clk.posedge], initialize=False)
        sys.run_us(2)
        assert seen == {0}  # IDLE only

    def test_default_master_rejects_enqueue(self):
        import pytest
        sys = SmallSystem()
        with pytest.raises(TypeError):
            sys.dm.enqueue(AhbTransaction.read(0))
