"""Offline (VCD replay) power analysis tests."""

import io

import pytest

from repro.kernel import load_vcd, read_vcd, us
from repro.kernel.vcd_reader import VcdParseError
from repro.power import (
    OfflinePowerAnalyzer,
    PAPER_TECHNOLOGY,
    trace_bus,
)
from repro.workloads import build_paper_testbench


def record_run(tmp_path, seed=1, duration_us=20, with_monitor=True):
    tb = build_paper_testbench(seed=seed, checker=False,
                               power_analysis=with_monitor)
    path = tmp_path / "bus.vcd"
    tracer = trace_bus(tb.sim, tb.bus, str(path))
    tb.run(us(duration_us))
    tracer.close()
    return tb, path


class TestVcdReader:
    def test_roundtrip_signal_count(self, tmp_path):
        tb, path = record_run(tmp_path, duration_us=2)
        vcd = load_vcd(str(path))
        assert "HADDR" in vcd
        assert "HWDATA" in vcd
        assert "HBUSREQ0" in vcd
        assert vcd["HADDR"].width == 32

    def test_value_at_semantics(self):
        text = """$timescale 1ps $end
$scope module top $end
$var wire 4 ! data $end
$upscope $end
$enddefinitions $end
$dumpvars
b0 !
$end
#100
b101 !
#200
b11 !
#300
"""
        vcd = read_vcd(io.StringIO(text))
        signal = vcd["data"]
        assert signal.value_at(50) == 0
        assert signal.value_at(100) == 0b101
        assert signal.value_at(150) == 0b101
        assert signal.value_at(250) == 0b011
        assert vcd.end_time == 300

    def test_timescale_scaling(self):
        text = """$timescale 1ns $end
$var wire 1 ! clk $end
$enddefinitions $end
#5
1!
"""
        vcd = read_vcd(io.StringIO(text))
        assert vcd["clk"].changes == [(5000, 1)]

    def test_x_and_z_read_as_zero(self):
        text = """$timescale 1ps $end
$var wire 4 ! d $end
$var wire 1 " w $end
$enddefinitions $end
#1
bx1z1 !
x"
"""
        vcd = read_vcd(io.StringIO(text))
        assert vcd["d"].value_at(1) == 0b0101
        assert vcd["w"].value_at(1) == 0

    def test_unknown_identifier_rejected(self):
        text = """$timescale 1ps $end
$var wire 1 ! a $end
$enddefinitions $end
#1
1?
"""
        with pytest.raises(VcdParseError):
            read_vcd(io.StringIO(text))

    def test_sample_times(self):
        text = """$timescale 1ps $end
$var wire 1 ! a $end
$enddefinitions $end
#100000
1!
"""
        vcd = read_vcd(io.StringIO(text))
        times = vcd.sample_times(10_000, 5_000)
        assert times[0] == 14_999
        assert times[-1] <= 100_000
        assert all(b - a == 10_000 for a, b in zip(times, times[1:]))


class TestOfflineReplay:
    def test_offline_matches_live_monitor(self, tmp_path):
        tb, path = record_run(tmp_path, duration_us=20)
        analyzer = OfflinePowerAnalyzer(tb.config)
        ledger = analyzer.analyze_file(str(path), 10_000, 5_000)
        live = tb.ledger
        assert ledger.cycles == pytest.approx(live.cycles, abs=2)
        assert ledger.total_energy == pytest.approx(
            live.total_energy, rel=0.02)
        for block in ("M2S", "S2M", "DEC"):
            assert ledger.block_energy[block] == pytest.approx(
                live.block_energy[block], rel=0.03)

    def test_parameter_what_if_without_resimulation(self, tmp_path):
        tb, path = record_run(tmp_path, duration_us=10,
                              with_monitor=False)
        vcd = load_vcd(str(path))
        base = OfflinePowerAnalyzer(tb.config).analyze(
            vcd, 10_000, 5_000)
        low_vdd = OfflinePowerAnalyzer(
            tb.config,
            params=PAPER_TECHNOLOGY.scaled(vdd=PAPER_TECHNOLOGY.vdd / 2),
        ).analyze(vcd, 10_000, 5_000)
        # dynamic energy scales with VDD^2
        assert low_vdd.total_energy == pytest.approx(
            base.total_energy / 4, rel=1e-6)

    def test_missing_signals_rejected(self, tmp_path):
        text = """$timescale 1ps $end
$var wire 2 ! HTRANS $end
$enddefinitions $end
#1000
"""
        tb, _ = record_run(tmp_path, duration_us=1,
                           with_monitor=False)
        analyzer = OfflinePowerAnalyzer(tb.config)
        with pytest.raises(ValueError):
            analyzer.analyze(read_vcd(io.StringIO(text)), 10_000, 5_000)

    def test_instruction_split_close_to_live(self, tmp_path):
        """Offline classification lacks only the (unobservable)
        pending-grant flag; the class split stays close."""
        from repro.power import is_data_transfer
        tb, path = record_run(tmp_path, duration_us=20)
        offline = OfflinePowerAnalyzer(tb.config).analyze_file(
            str(path), 10_000, 5_000)
        live_share = tb.ledger.class_share(is_data_transfer)
        offline_share = offline.class_share(is_data_transfer)
        assert offline_share == pytest.approx(live_share, abs=0.05)
