"""Unit tests for Signal evaluate/update semantics."""

import pytest

from repro.kernel import Signal, Simulator, ns


def make():
    sim = Simulator()
    sig = Signal(sim, "s", init=0, width=8)
    return sim, sig


class TestWriteCommit:
    def test_write_is_delta_delayed(self):
        sim, sig = make()
        observed = []

        def writer():
            sig.write(5)
            observed.append(sig.value)  # still old value this delta
            yield ns(1)
            observed.append(sig.value)

        sim.add_thread(writer)
        sim.run()
        assert observed == [0, 5]

    def test_same_value_write_fires_no_event(self):
        sim, sig = make()
        fired = []
        sim.add_method(lambda: fired.append(sim.now), [sig],
                       initialize=False)

        def writer():
            sig.write(0)  # same as init
            yield ns(1)
            sig.write(3)
            yield ns(1)

        sim.add_thread(writer)
        sim.run()
        assert len(fired) == 1

    def test_last_write_wins_within_delta(self):
        sim, sig = make()

        def writer():
            sig.write(1)
            sig.write(2)
            yield ns(1)

        sim.add_thread(writer)
        sim.run()
        assert sig.value == 2

    def test_force_initialises_without_events(self):
        sim, sig = make()
        fired = []
        sim.add_method(lambda: fired.append(1), [sig], initialize=False)
        sig.force(9)
        sim.run()
        assert sig.value == 9
        assert fired == []


class TestEdges:
    def test_posedge_and_negedge(self):
        sim, sig = make()
        log = []

        def waiter():
            yield sig.posedge
            log.append(("pos", sim.now))
            yield sig.negedge
            log.append(("neg", sim.now))

        def driver():
            yield ns(2)
            sig.write(1)
            yield ns(2)
            sig.write(0)

        sim.add_thread(waiter)
        sim.add_thread(driver)
        sim.run()
        assert log == [("pos", ns(2)), ("neg", ns(4))]

    def test_nonzero_to_nonzero_is_not_posedge(self):
        sim, sig = make()
        hits = []
        sim.add_method(lambda: hits.append(sig.value), [sig.posedge],
                       initialize=False)

        def driver():
            sig.write(1)
            yield ns(1)
            sig.write(2)  # truthy -> truthy: changed, not posedge
            yield ns(1)

        sim.add_thread(driver)
        sim.run()
        assert hits == [1]


class TestWatchers:
    def test_watcher_sees_old_and_new(self):
        sim, sig = make()
        seen = []
        sig.add_watcher(lambda s, old, new: seen.append((old, new)))

        def driver():
            sig.write(4)
            yield ns(1)
            sig.write(7)
            yield ns(1)

        sim.add_thread(driver)
        sim.run()
        assert seen == [(0, 4), (4, 7)]

    def test_watcher_not_called_on_unchanged_commit(self):
        sim, sig = make()
        seen = []
        sig.add_watcher(lambda s, old, new: seen.append(new))

        def driver():
            sig.write(0)
            yield ns(1)

        sim.add_thread(driver)
        sim.run()
        assert seen == []


class TestMisc:
    def test_bool_raises(self):
        _, sig = make()
        with pytest.raises(TypeError):
            bool(sig)

    def test_read_alias(self):
        _, sig = make()
        assert sig.read() == sig.value == 0

    def test_repr_contains_name(self):
        _, sig = make()
        assert "s" in repr(sig)
