"""AHB→APB bridge and APB peripheral tests."""

import pytest

from repro.amba import (
    AhbBus,
    AhbConfig,
    AhbMaster,
    AhbProtocolChecker,
    AhbTransaction,
    DefaultMaster,
    MemorySlave,
)
from repro.amba.apb import ApbBridge, ApbRegisterSlave
from repro.kernel import Clock, MHz, Simulator, us

APB_BASE = 0x1000


@pytest.fixture
def apb_system():
    sim = Simulator()
    clk = Clock.from_frequency(sim, "clk", MHz(100))
    config = AhbConfig.with_uniform_map(n_masters=2, n_slaves=2,
                                        default_master=1)
    bus = AhbBus(sim, "ahb", clk, config)
    master = AhbMaster(sim, "m0", clk, bus.master_ports[0], bus)
    DefaultMaster(sim, "dm", clk, bus.master_ports[1], bus)
    MemorySlave(sim, "ram", clk, bus.slave_ports[0], bus)
    bridge = ApbBridge(sim, "bridge", clk, bus.slave_ports[1], bus,
                       apb_map=[(0x000, 0x100), (0x100, 0x100)],
                       offset_mask=0xFFF)
    uart = ApbRegisterSlave(sim, "uart", clk, bridge, 0)
    timer = ApbRegisterSlave(sim, "timer", clk, bridge, 1)
    checker = AhbProtocolChecker(sim, "chk", bus)

    class System:
        pass

    system = System()
    system.sim = sim
    system.master = master
    system.bridge = bridge
    system.uart = uart
    system.timer = timer
    system.checker = checker
    return system


class TestBridgeTransfers:
    def test_write_read_roundtrip(self, apb_system):
        sys = apb_system
        write = sys.master.enqueue(
            AhbTransaction.write_single(APB_BASE + 0x04, 0xBEEF))
        read = sys.master.enqueue(
            AhbTransaction.read(APB_BASE + 0x04))
        sys.sim.run(until=us(2))
        assert write.done and read.done
        assert read.rdata == [0xBEEF]
        assert sys.uart.regs[1] == 0xBEEF
        assert sys.checker.ok

    def test_second_peripheral_decoded(self, apb_system):
        sys = apb_system
        sys.master.enqueue(
            AhbTransaction.write_single(APB_BASE + 0x108, 42))
        read = sys.master.enqueue(
            AhbTransaction.read(APB_BASE + 0x108))
        sys.sim.run(until=us(2))
        assert read.rdata == [42]
        assert sys.timer.regs[2] == 42
        assert sys.uart.regs[2] == 0

    def test_unmapped_apb_offset_errors(self, apb_system):
        sys = apb_system
        bad = sys.master.enqueue(
            AhbTransaction.read(APB_BASE + 0x800))
        sys.sim.run(until=us(2))
        assert bad.error and bad.done
        assert sys.checker.ok

    def test_bridge_adds_wait_states(self, apb_system):
        sys = apb_system
        ram_txn = sys.master.enqueue(AhbTransaction.write_single(0x0, 1))
        apb_txn = sys.master.enqueue(
            AhbTransaction.write_single(APB_BASE, 2))
        sys.sim.run(until=us(2))
        assert apb_txn.latency > ram_txn.latency

    def test_back_to_back_apb_accesses(self, apb_system):
        sys = apb_system
        writes = [sys.master.enqueue(AhbTransaction.write_single(
            APB_BASE + 4 * i, 100 + i)) for i in range(6)]
        reads = [sys.master.enqueue(AhbTransaction.read(
            APB_BASE + 4 * i)) for i in range(6)]
        sys.sim.run(until=us(5))
        assert all(t.done for t in writes + reads)
        assert [r.rdata[0] for r in reads] == [100 + i for i in range(6)]
        assert sys.bridge.apb_accesses == 12
        assert sys.checker.ok


class TestApbSignalling:
    def test_penable_follows_psel(self, apb_system):
        sys = apb_system
        samples = []

        def probe():
            samples.append((sys.bridge.apb_ports[0].psel.value,
                            sys.bridge.penable.value))

        sys.sim.add_method(
            probe, [sys.bridge.penable, sys.bridge.apb_ports[0].psel],
            initialize=False)
        sys.master.enqueue(AhbTransaction.write_single(APB_BASE, 1))
        sys.sim.run(until=us(2))
        # PENABLE may only be high while PSEL is high
        assert all(psel or not penable for psel, penable in samples)

    def test_peripheral_counters(self, apb_system):
        sys = apb_system
        sys.master.enqueue(AhbTransaction.write_single(APB_BASE, 5))
        sys.master.enqueue(AhbTransaction.read(APB_BASE))
        sys.sim.run(until=us(2))
        assert sys.uart.write_count == 1
        assert sys.uart.read_count == 1
