"""System instrumentation tests: hooks, behaviour neutrality, and the
disabled-telemetry overhead guard."""

import time

import pytest

from repro.kernel import Clock, MHz, Signal, Simulator, us
from repro.telemetry import Telemetry, validate_chrome_trace
from repro.workloads import build_paper_testbench


def instrumented_testbench(duration_us=10, **kwargs):
    telemetry = Telemetry(**kwargs)
    system = build_paper_testbench(seed=3, telemetry=telemetry)
    system.run(us(duration_us))
    telemetry.finalize()
    return system, telemetry


class TestKernelObserver:
    def test_attach_detach(self):
        sim = Simulator()

        class Observer:
            def on_process(self, process, now, seconds):
                pass

            def on_settle(self, now, deltas):
                pass

        observer = Observer()
        sim.attach_observer(observer)
        assert sim.observer is observer
        with pytest.raises(Exception):
            sim.attach_observer(Observer())
        sim.detach_observer(observer)
        assert sim.observer is None
        sim.detach_observer(observer)  # idempotent

    def test_observer_sees_activations_and_settles(self):
        sim = Simulator()
        clk = Clock.from_frequency(sim, "clk", MHz(100))
        count = Signal(sim, "count", width=32)
        sim.add_method(lambda: count.write(count.value + 1),
                       [clk.posedge], initialize=False, name="counter")
        seen = {"processes": 0, "settles": 0, "deltas": 0}

        class Observer:
            def on_process(self, process, now, seconds):
                seen["processes"] += 1
                assert seconds >= 0

            def on_settle(self, now, deltas):
                seen["settles"] += 1
                seen["deltas"] += deltas

        sim.attach_observer(Observer())
        sim.run(until=us(1))
        assert seen["processes"] >= 100
        assert seen["settles"] >= 100
        assert seen["deltas"] >= seen["settles"]


class TestSystemInstrumentation:
    def test_tracks_cover_kernel_bus_and_power(self, tmp_path):
        _, telemetry = instrumented_testbench()
        pids = {event.pid for event in telemetry.tracer.events}
        assert {"kernel", "bus", "power"} <= pids
        path = str(tmp_path / "trace.json")
        telemetry.tracer.write_chrome(path)
        assert validate_chrome_trace(path) == []

    def test_metric_families_populated(self):
        system, telemetry = instrumented_testbench()
        snapshot = telemetry.snapshot()
        counters = snapshot["counters"]
        assert counters["sim_delta_cycles_total"]["series"][""] > 0
        assert sum(counters["bus_txns_total"]["series"].values()) \
            == system.transactions_completed()
        assert counters["power_cycles_total"]["series"][""] \
            == system.ledger.cycles
        energy = sum(
            counters["power_energy_j_total"]["series"].values())
        assert energy == pytest.approx(system.total_energy, rel=1e-9)
        gauges = snapshot["gauges"]
        assert gauges["run_txns_completed"]["series"][""] \
            == system.transactions_completed()

    def test_latency_histogram_counts_transactions(self):
        system, telemetry = instrumented_testbench()
        histogram = telemetry.snapshot()["histograms"][
            "bus_txn_latency_cycles"]
        observed = sum(series["count"]
                       for series in histogram["series"].values())
        assert observed == system.transactions_completed()

    def test_behaviour_not_modified_by_instrumentation(self):
        instrumented, _ = instrumented_testbench()
        plain = build_paper_testbench(seed=3)
        plain.run(us(10))
        assert instrumented.transactions_completed() \
            == plain.transactions_completed()
        assert instrumented.total_energy \
            == pytest.approx(plain.total_energy)
        assert instrumented.bus.arbiter.handover_count \
            == plain.bus.arbiter.handover_count

    def test_disabled_bundle_installs_nothing(self):
        telemetry = Telemetry.disabled()
        system = build_paper_testbench(seed=3, telemetry=telemetry)
        assert system.sim.observer is None
        assert system.monitor.fsm.tracer is None
        system.run(us(2))
        telemetry.finalize()
        assert len(telemetry.tracer) == 0
        assert telemetry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}}

    def test_double_instrument_rejected(self):
        telemetry = Telemetry()
        build_paper_testbench(seed=3, telemetry=telemetry)
        with pytest.raises(RuntimeError):
            build_paper_testbench(seed=3, telemetry=telemetry)

    def test_signal_watching_counts_commits(self):
        telemetry = Telemetry(trace_signals=("htrans",),
                              trace_bus=False, trace_power=False)
        system = build_paper_testbench(seed=3, telemetry=telemetry)
        system.run(us(2))
        commits = telemetry.snapshot()["counters"][
            "sim_signal_commits_total"]["series"]
        assert commits.get("signal=ahb.HTRANS", 0) > 0


class TestOverheadGuard:
    def test_disabled_telemetry_under_5_percent(self):
        """A ``telemetry=None`` system must run within 5% of the PR-3
        baseline — the runtime POWERTEST claim (ISSUE 4 acceptance).

        Both arms run the identical code path (no hooks installed), so
        this guards against accidental always-on instrumentation costs
        leaking into the model; min-of-3 timing suppresses host noise.
        """
        def run(telemetry):
            system = build_paper_testbench(seed=1, telemetry=telemetry)
            system.run(us(10))
            return system

        def timed(telemetry):
            start = time.perf_counter()
            run(telemetry)
            return time.perf_counter() - start

        run(None)  # warm caches
        # interleave the arms so host-load noise hits both equally;
        # min-of-N is the standard noise-robust wall-clock estimator
        baseline = disabled = float("inf")
        for _ in range(5):
            baseline = min(baseline, timed(None))
            disabled = min(disabled, timed(Telemetry.disabled()))
        assert disabled < baseline * 1.05, (
            "disabled telemetry costs %.1f%% (baseline %.4fs, "
            "disabled %.4fs)" % (100 * (disabled / baseline - 1),
                                 baseline, disabled))
