"""Macromodel unit tests: formulas, monotonicity, validation."""


import pytest
from hypothesis import given, strategies as st

from repro.power import (
    ArbiterEnergyModel,
    DecoderEnergyModel,
    FittedMacromodel,
    MuxEnergyModel,
    RegisterEnergyModel,
    TechnologyParameters,
)

PARAMS = TechnologyParameters(vdd=2.0, c_pd=10e-15, c_o=20e-15,
                              c_clk=5e-15)


class TestTechnologyParameters:
    def test_half_cv2(self):
        assert PARAMS.half_cv2 == pytest.approx(2.0)

    def test_node_energy(self):
        assert PARAMS.node_energy(3) == pytest.approx(3 * 10e-15 * 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TechnologyParameters(vdd=0)
        with pytest.raises(ValueError):
            TechnologyParameters(c_pd=-1e-15)

    def test_scaled(self):
        scaled = PARAMS.scaled(vdd=1.0, c_o=5e-15)
        assert scaled.vdd == 1.0
        assert scaled.c_o == 5e-15
        assert scaled.c_pd == PARAMS.c_pd


class TestDecoderModel:
    def test_paper_formula(self):
        model = DecoderEnergyModel(4, PARAMS)
        # n_I = 2, n_O = 4 -> coefficient 8; HD_OUT = 1 when HD_IN >= 1
        expected = PARAMS.half_cv2 * (8 * PARAMS.c_pd * 1
                                      + 2 * 1 * PARAMS.c_o)
        assert model.energy(1) == pytest.approx(expected)

    def test_zero_hd_is_free(self):
        model = DecoderEnergyModel(4, PARAMS)
        assert model.energy(0) == 0.0

    def test_monotone_in_hd(self):
        model = DecoderEnergyModel(8, PARAMS)
        energies = [model.energy(hd) for hd in range(4)]
        assert energies == sorted(energies)
        assert energies[1] < energies[2]

    def test_max_energy(self):
        model = DecoderEnergyModel(8, PARAMS)
        assert model.max_energy() == model.energy(model.n_inputs)

    def test_input_count(self):
        assert DecoderEnergyModel(2, PARAMS).n_inputs == 1
        assert DecoderEnergyModel(5, PARAMS).n_inputs == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            DecoderEnergyModel(1, PARAMS)
        model = DecoderEnergyModel(4, PARAMS)
        with pytest.raises(ValueError):
            model.energy(-1)

    @given(st.integers(min_value=0, max_value=6))
    def test_energy_never_negative(self, hd):
        assert DecoderEnergyModel(8, PARAMS).energy(hd) >= 0


class TestMuxModel:
    def test_scales_with_output_hd(self):
        model = MuxEnergyModel(4, 32, PARAMS)
        assert model.energy(hd_in=16, hd_sel=0, hd_out=16) > \
            model.energy(hd_in=1, hd_sel=0, hd_out=1)

    def test_select_change_costs(self):
        model = MuxEnergyModel(4, 32, PARAMS)
        assert model.energy(0, 1, hd_out=0) > model.energy(0, 0, hd_out=0)

    def test_hd_out_estimation(self):
        model = MuxEnergyModel(4, 32, PARAMS)
        assert model.estimate_hd_out(5, 0) == 5
        assert model.estimate_hd_out(40, 0) == 32  # clamped to width
        assert model.estimate_hd_out(0, 1) == 16.0  # w/2 on select change

    def test_path_coefficient_grows_with_legs(self):
        small = MuxEnergyModel(2, 8, PARAMS)
        large = MuxEnergyModel(16, 8, PARAMS)
        assert large.path_coeff > small.path_coeff

    def test_validation(self):
        with pytest.raises(ValueError):
            MuxEnergyModel(1, 8, PARAMS)
        with pytest.raises(ValueError):
            MuxEnergyModel(4, 0, PARAMS)
        with pytest.raises(ValueError):
            MuxEnergyModel(4, 8, PARAMS).energy(-1, 0)


class TestArbiterModel:
    def test_idle_energy_positive(self):
        model = ArbiterEnergyModel(3, PARAMS)
        assert model.idle_energy() > 0
        assert model.energy(0, False) == pytest.approx(
            model.idle_energy())

    def test_handover_premium(self):
        model = ArbiterEnergyModel(3, PARAMS)
        assert model.energy(0, True) > model.energy(0, False)

    def test_request_activity_term(self):
        model = ArbiterEnergyModel(3, PARAMS)
        assert model.energy(4, False) > model.energy(0, False)

    def test_flop_count_scales(self):
        assert ArbiterEnergyModel(8, PARAMS).n_flops > \
            ArbiterEnergyModel(2, PARAMS).n_flops

    def test_validation(self):
        with pytest.raises(ValueError):
            ArbiterEnergyModel(0, PARAMS)
        with pytest.raises(ValueError):
            ArbiterEnergyModel(3, PARAMS).energy(-2, False)


class TestRegisterModel:
    def test_clock_term(self):
        model = RegisterEnergyModel(32, PARAMS)
        assert model.energy(0) == pytest.approx(
            PARAMS.half_cv2 * PARAMS.c_clk * 32)
        assert model.energy(0, clocked=False) == 0.0

    def test_data_term(self):
        model = RegisterEnergyModel(32, PARAMS)
        delta = model.energy(8) - model.energy(0)
        assert delta == pytest.approx(PARAMS.half_cv2 * PARAMS.c_pd * 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            RegisterEnergyModel(0, PARAMS)
        with pytest.raises(ValueError):
            RegisterEnergyModel(8, PARAMS).energy(-1)


class TestFittedMacromodel:
    def test_evaluation(self):
        model = FittedMacromodel(("a", "b"), (2.0, 3.0), intercept=1.0)
        assert model.energy(a=1, b=2) == pytest.approx(9.0)
        assert model.energy(a=0) == pytest.approx(1.0)

    def test_unknown_feature_rejected(self):
        model = FittedMacromodel(("a",), (1.0,))
        with pytest.raises(KeyError):
            model.energy(z=1)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FittedMacromodel(("a", "b"), (1.0,))

    def test_repr(self):
        model = FittedMacromodel(("hd",), (1e-12,))
        assert "hd" in repr(model)
