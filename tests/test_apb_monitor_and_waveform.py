"""APB power monitor and ASCII waveform tests."""

import io

import pytest

from repro.amba import (
    AhbBus,
    AhbConfig,
    AhbMaster,
    AhbTransaction,
    DefaultMaster,
    MemorySlave,
)
from repro.amba.apb import ApbBridge, ApbRegisterSlave
from repro.analysis.waveform import render_live_signals, render_waveform
from repro.kernel import Clock, MHz, Simulator, read_vcd, us
from repro.power.apb_monitor import (
    BLOCK_APB_BRIDGE,
    BLOCK_APB_BUS,
    ApbPowerMonitor,
)


def apb_system():
    sim = Simulator()
    clk = Clock.from_frequency(sim, "clk", MHz(100))
    config = AhbConfig.with_uniform_map(n_masters=2, n_slaves=2,
                                        default_master=1)
    bus = AhbBus(sim, "ahb", clk, config)
    master = AhbMaster(sim, "m0", clk, bus.master_ports[0], bus)
    DefaultMaster(sim, "dm", clk, bus.master_ports[1], bus)
    MemorySlave(sim, "ram", clk, bus.slave_ports[0], bus)
    bridge = ApbBridge(sim, "bridge", clk, bus.slave_ports[1], bus,
                       apb_map=[(0x000, 0x100), (0x100, 0x100)],
                       offset_mask=0xFFF)
    ApbRegisterSlave(sim, "uart", clk, bridge, 0)
    ApbRegisterSlave(sim, "timer", clk, bridge, 1)
    monitor = ApbPowerMonitor(sim, "apb_power", bridge)
    return sim, master, bridge, monitor


class TestApbPowerMonitor:
    def test_idle_segment_burns_only_register_clock(self):
        sim, master, bridge, monitor = apb_system()
        sim.run(until=us(5))
        ledger = monitor.ledger
        assert set(ledger.instructions) == {"IDLE"}
        assert ledger.block_energy[BLOCK_APB_BUS] == 0.0
        assert ledger.block_energy[BLOCK_APB_BRIDGE] > 0

    def test_accesses_classified(self):
        sim, master, bridge, monitor = apb_system()
        master.enqueue(AhbTransaction.write_single(0x1000, 0xAA))
        master.enqueue(AhbTransaction.read(0x1000))
        sim.run(until=us(5))
        ledger = monitor.ledger
        assert ledger.instruction_stats("SETUP").count == 2
        assert ledger.instruction_stats("ENABLE_WRITE").count == 1
        assert ledger.instruction_stats("ENABLE_READ").count == 1
        ledger.check_conservation()

    def test_access_energy_positive_and_bounded(self):
        sim, master, bridge, monitor = apb_system()
        for k in range(8):
            master.enqueue(AhbTransaction.write_single(
                0x1000 + 4 * k, 0xFFFF + k))
        sim.run(until=us(10))
        per_access = monitor.access_energy()
        assert per_access > 0
        assert per_access < 1e-9  # sanity: sub-nJ per register access

    def test_reads_charge_the_rdata_path(self):
        sim, master, bridge, monitor = apb_system()
        master.enqueue(AhbTransaction.write_single(0x1000,
                                                   0xFFFFFFFF))
        master.enqueue(AhbTransaction.read(0x1000))
        sim.run(until=us(5))
        assert monitor.ledger.block_energy[BLOCK_APB_BUS] > 0


class TestWaveformRendering:
    VCD = """$timescale 1ps $end
$var wire 1 ! clk $end
$var wire 4 " data $end
$enddefinitions $end
#0
0!
b0 "
#10
1!
#20
0!
b101 "
#30
1!
#40
0!
"""

    def test_scalar_and_vector_lanes(self):
        vcd = read_vcd(io.StringIO(self.VCD))
        art = render_waveform(vcd, ["clk", "data"], t_end=40,
                              step_ps=10)
        lines = art.splitlines()
        assert lines[0].startswith("clk")
        assert "/" in lines[0] and "\\" in lines[0]
        assert ">5" in lines[1]  # 0b101 rendered in hex

    def test_window_validation(self):
        vcd = read_vcd(io.StringIO(self.VCD))
        with pytest.raises(ValueError):
            render_waveform(vcd, ["clk"], t_start=40, t_end=40)

    def test_render_live_signals(self):
        sim = Simulator()
        clk = Clock.from_frequency(sim, "clk", MHz(100))
        from repro.kernel import Signal
        count = Signal(sim, "count", width=8)
        sim.add_method(lambda: count.write(count.value + 1),
                       [clk.posedge], initialize=False)
        art = render_live_signals(sim, [clk.signal, count], us(1),
                                  names=["clk", "count"])
        assert "clk" in art and "count" in art
        assert sim.now == us(1)

    def test_render_bus_transfer(self):
        """Smoke: render actual bus signals around a transfer."""
        sim, master, bridge, _ = apb_system()
        master.enqueue(AhbTransaction.write_single(0x0, 0xAB))
        from repro.power import trace_bus
        import tempfile, os
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "w.vcd")
            bus = master.bus
            tracer = trace_bus(sim, bus, path)
            sim.run(until=us(2))
            tracer.close()
            from repro.kernel import load_vcd
            vcd = load_vcd(path)
            art = render_waveform(vcd, ["HTRANS", "HADDR", "HREADY"],
                                  t_end=us(1))
        assert "HTRANS" in art
