"""Power FSM transition/classification tests."""

import pytest

from repro.power import BusMode, EnergyLedger, PowerFsm
from repro.power.power_trace import TraceSet


class TestStepping:
    def test_sequence_classification(self):
        fsm = PowerFsm()
        modes = [BusMode.WRITE, BusMode.READ, BusMode.IDLE_HO,
                 BusMode.IDLE_HO, BusMode.WRITE]
        names = [fsm.step(i * 10_000, mode, {"M2S": 1e-12})
                 for i, mode in enumerate(modes)]
        assert names == ["IDLE_WRITE", "WRITE_READ", "READ_IDLE_HO",
                         "IDLE_HO_IDLE_HO", "IDLE_HO_WRITE"]

    def test_initial_state_is_idle(self):
        fsm = PowerFsm()
        assert fsm.state == BusMode.IDLE

    def test_ledger_charged(self):
        ledger = EnergyLedger()
        fsm = PowerFsm(ledger)
        fsm.step(0, BusMode.WRITE, {"M2S": 2e-12, "ARB": 1e-12})
        assert ledger.total_energy == pytest.approx(3e-12)
        assert ledger.instruction_stats("IDLE_WRITE").count == 1

    def test_traces_record_blocks_and_total(self):
        traces = TraceSet(("M2S", "TOTAL"))
        fsm = PowerFsm(traces=traces)
        fsm.step(1000, BusMode.WRITE, {"M2S": 2e-12})
        assert traces["M2S"].total_energy == pytest.approx(2e-12)
        assert traces["TOTAL"].total_energy == pytest.approx(2e-12)

    def test_datafile_output(self, tmp_path):
        path = tmp_path / "power.dat"
        with open(path, "w") as fh:
            fsm = PowerFsm(datafile=fh)
            fsm.step(10_000, BusMode.READ, {"M2S": 1e-12})
            fsm.step(20_000, BusMode.WRITE, {"M2S": 1e-12})
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert "IDLE_READ" in lines[0]
        assert "READ_WRITE" in lines[1]

    def test_instruction_log(self):
        fsm = PowerFsm()
        fsm.enable_logging()
        fsm.step(0, BusMode.WRITE, {"X": 1e-12})
        assert fsm.instruction_log == [(0, "IDLE_WRITE",
                                        pytest.approx(1e-12))]

    def test_reset_preserves_ledger(self):
        fsm = PowerFsm()
        fsm.step(0, BusMode.WRITE, {"X": 1e-12})
        fsm.reset()
        assert fsm.state == BusMode.IDLE
        assert fsm.ledger.total_energy == pytest.approx(1e-12)

    def test_cycle_counter(self):
        fsm = PowerFsm()
        for i in range(5):
            fsm.step(i, BusMode.IDLE, {})
        assert fsm.cycles == 5
