"""Fine-grained unit checks of the global monitor's accounting."""

import pytest

from repro.amba import AhbTransaction
from repro.kernel import us
from repro.power import (
    BLOCK_ARB,
    BLOCK_DEC,
    BLOCK_M2S,
    BLOCK_S2M,
    PAPER_TECHNOLOGY,
)
from repro.workloads import AhbSystem, ReplaySource


def single_master_system(transactions, **kwargs):
    source = ReplaySource(transactions)
    return AhbSystem([source], n_slaves=3, checker=True, **kwargs)


class TestQuietBus:
    def test_quiet_bus_burns_only_arbiter_clock(self):
        system = single_master_system([])
        system.run(us(10))
        ledger = system.ledger
        assert ledger.block_energy[BLOCK_M2S] == 0.0
        assert ledger.block_energy[BLOCK_DEC] == 0.0
        # arbiter clock tree ticks every one of the 1000 cycles
        expected = (system.monitor.arbiter_model.idle_energy()
                    * ledger.cycles)
        assert ledger.block_energy[BLOCK_ARB] == pytest.approx(
            expected, rel=0.15)

    def test_quiet_bus_mode_is_idle_family(self):
        system = single_master_system([])
        system.run(us(10))
        names = set(system.ledger.instructions)
        assert names <= {"IDLE_IDLE", "IDLE_IDLE_HO", "IDLE_HO_IDLE",
                         "IDLE_HO_IDLE_HO"}


class TestSingleTransferAccounting:
    def test_one_write_charges_m2s_by_its_hamming_weight(self):
        """A lone write of a known value: the M2S energy is exactly the
        mux model priced at the observable bit changes."""
        value = 0x0000_FFFF  # 16 data bits rise and later fall
        txn = AhbTransaction.write_single(0x10, value)
        system = single_master_system([txn])
        system.run(us(10))
        ledger = system.ledger
        m2s_model = system.monitor.m2s_model

        # Observable M2S transitions for the whole run: HTRANS there
        # and back, HADDR there and back, HWRITE pulse, HBUSREQ is not
        # an M2S signal; HWDATA rises (16) and... stays (nothing
        # rewrites it).  Total ≥ the data weight, and the ledger's
        # M2S charge must price each transition at most at the
        # full-path cost.
        total_hd = system.monitor._m2s_out.bit_change_count()
        assert total_hd >= 16
        upper = m2s_model.energy(total_hd, 1, hd_out=total_hd) \
            + m2s_model.energy(0, 1, hd_out=0)
        assert 0 < ledger.block_energy[BLOCK_M2S] \
            <= upper * (1 + 1e-9)

    def test_read_charges_s2m(self):
        prep = AhbTransaction.write_single(0x10, 0xFFFF_FFFF)
        read = AhbTransaction.read(0x10)
        system = single_master_system([prep, read])
        system.run(us(10))
        assert system.ledger.block_energy[BLOCK_S2M] > 0
        # the read data return dominates the response path energy
        s2m_hd = system.monitor._s2m_out.bit_change_count()
        assert s2m_hd >= 32

    def test_decoder_charged_only_on_region_change(self):
        """Transfers within one slave region never change the decode
        code, so DEC energy stays zero; crossing regions charges it."""
        same_region = [AhbTransaction.write_single(0x10 + 4 * k, k)
                       for k in range(4)]
        system = single_master_system(same_region)
        system.run(us(10))
        assert system.ledger.block_energy[BLOCK_DEC] == 0.0

        crossing = [AhbTransaction.write_single(0x0000, 1),
                    AhbTransaction.write_single(0x1000, 2),
                    AhbTransaction.write_single(0x2000, 3)]
        system2 = single_master_system(crossing)
        system2.run(us(10))
        assert system2.ledger.block_energy[BLOCK_DEC] > 0
        assert system2.monitor.decode_change_count >= 2


class TestStatisticsCounters:
    def test_transfer_and_write_cycle_counters(self):
        txns = [AhbTransaction.write_single(0x0, 1),
                AhbTransaction.read(0x0),
                AhbTransaction.write_single(0x4, 2)]
        system = single_master_system(txns)
        system.run(us(10))
        monitor = system.monitor
        assert monitor.transfer_cycles == 3
        assert monitor.write_cycles == 2

    def test_handover_total_matches_arbiter(self):
        txns = [AhbTransaction.write_single(0x0, 1,
                                            idle_cycles_before=5)
                for _ in range(3)]
        system = single_master_system(txns)
        system.run(us(10))
        assert system.monitor.handover_total == \
            system.bus.arbiter.handover_count


class TestModelSizing:
    def test_monitor_models_sized_from_config(self):
        system = single_master_system([], data_width=64)
        monitor = system.monitor
        assert monitor.m2s_model.width == 32 + 64 + 13
        assert monitor.s2m_model.width == 64 + 3
        assert monitor.s2m_model.n_inputs == 4  # 3 slaves + default
        assert monitor.decoder_model.n_outputs == 4

    def test_decoder_shift_from_region_size(self):
        system = single_master_system([])
        # 0x1000 regions -> low 12 bits are offset bits
        assert system.monitor._decoder_shift == 12

    def test_technology_propagates_to_models(self):
        params = PAPER_TECHNOLOGY.scaled(vdd=1.0)
        system = single_master_system([], params=params)
        assert system.monitor.m2s_model.params.vdd == 1.0
