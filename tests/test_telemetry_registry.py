"""Metrics registry tests: instruments, labels, snapshot, merge."""

import pytest

from repro.telemetry import (
    MetricsRegistry,
    NULL_REGISTRY,
    merge_snapshots,
    null_registry,
)


class TestCounters:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", "events")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelled_series_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("txns_total",
                                   labelnames=("master",))
        counter.labels(master="m0").inc(3)
        counter.labels(master="m1").inc(5)
        series = registry.snapshot()["counters"]["txns_total"]["series"]
        assert series == {"master=m0": 3.0, "master=m1": 5.0}

    def test_labelled_parent_rejects_bare_inc(self):
        counter = MetricsRegistry().counter("c", labelnames=("x",))
        with pytest.raises(ValueError):
            counter.inc()

    def test_wrong_labels_rejected(self):
        counter = MetricsRegistry().counter("c", labelnames=("x",))
        with pytest.raises(ValueError):
            counter.labels(y="1")


class TestGauges:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == pytest.approx(13.0)


class TestHistograms:
    def test_bin_placement(self):
        histogram = MetricsRegistry().histogram(
            "h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 50.0, 500.0):
            histogram.observe(value)
        child = histogram.series()[""]
        # <=1: {0.5, 1.0}; <=10: {5.0}; <=100: {50.0}; overflow: {500.0}
        assert child.counts == [2, 1, 1, 1]
        assert child.count == 5
        assert child.sum == pytest.approx(556.5)

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=())


class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("metric")
        with pytest.raises(ValueError):
            registry.gauge("metric")

    def test_label_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("metric", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.counter("metric", labelnames=("b",))

    def test_bucket_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_contains_and_get(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        assert "c" in registry
        assert registry.get("c") is counter
        assert registry.get("missing") is None


class TestNullRegistry:
    def test_all_operations_are_noops(self):
        registry = null_registry()
        assert registry is NULL_REGISTRY
        counter = registry.counter("c", labelnames=("x",))
        counter.labels(x="1").inc(5)
        gauge = registry.gauge("g")
        gauge.set(3)
        gauge.dec()
        registry.histogram("h", buckets=(1.0,)).observe(2)
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}}
        assert "c" not in registry
        assert list(registry) == []


class TestMerge:
    def _snapshot(self, counter_value, gauge_value, observations):
        registry = MetricsRegistry()
        registry.counter("events_total",
                         labelnames=("kind",)) \
            .labels(kind="a").inc(counter_value)
        registry.gauge("level").set(gauge_value)
        histogram = registry.histogram("sizes", buckets=(1.0, 10.0))
        for value in observations:
            histogram.observe(value)
        return registry.snapshot()

    def test_counters_sum_and_gauges_last_win(self):
        merged = merge_snapshots([
            self._snapshot(2, 10, [0.5]),
            self._snapshot(3, 20, [5.0, 50.0]),
        ])
        assert merged["counters"]["events_total"]["series"] == {
            "kind=a": 5.0}
        assert merged["gauges"]["level"]["series"][""] == 20.0
        sizes = merged["histograms"]["sizes"]["series"][""]
        assert sizes["counts"] == [1, 1, 1]
        assert sizes["count"] == 3

    def test_fold_is_order_deterministic(self):
        parts = [self._snapshot(i, i, [float(i)]) for i in range(4)]
        assert merge_snapshots(parts) == merge_snapshots(list(parts))

    def test_bucket_mismatch_rejected(self):
        left = self._snapshot(1, 1, [1.0])
        right = self._snapshot(1, 1, [1.0])
        right["histograms"]["sizes"]["buckets"] = [2.0, 20.0]
        with pytest.raises(ValueError):
            merge_snapshots([left, right])

    def test_merge_empty(self):
        assert merge_snapshots([]) == {
            "counters": {}, "gauges": {}, "histograms": {}}
