"""Campaign aggregation tests: per-run recording, merge determinism,
and serial vs parallel bit-identity."""

import json

import pytest

from repro.faults import FaultRunResult, run_fault_campaign
from repro.telemetry import (
    CampaignMetrics,
    campaign_metrics,
    metrics_for_result,
    metrics_table,
    record_run_metrics,
)
from repro.telemetry.registry import MetricsRegistry


def make_result(scenario="s", fault="f", outcome="completed", **kwargs):
    defaults = dict(completed=10, failed=1, watchdog_events=2,
                    recoveries=1, violations=3, total_energy=2e-9,
                    overhead_energy=5e-10)
    defaults.update(kwargs)
    return FaultRunResult(scenario, fault, outcome, **defaults)


class TestRecording:
    def test_records_deterministic_quantities(self):
        snapshot = metrics_for_result(make_result())
        counters = snapshot["counters"]
        key = "scenario=s,fault=f"  # declared label order
        assert counters["campaign_runs_total"]["series"][
            key + ",outcome=completed"] == 1.0
        assert counters["campaign_txns_completed_total"]["series"][
            key] == 10.0
        assert counters["campaign_energy_j_total"]["series"][
            key] == pytest.approx(2e-9)
        histograms = snapshot["histograms"]
        assert histograms["campaign_run_energy_j"]["series"][
            key]["count"] == 1

    def test_wall_clock_excluded(self):
        fast = metrics_for_result(make_result(wall_time_s=0.01))
        slow = metrics_for_result(make_result(wall_time_s=99.0))
        assert fast == slow

    def test_same_recorder_for_synthesized_results(self):
        """Supervisor-made results (hard-kill timeout, quarantine)
        yield the same snapshot shape as worker-recorded ones."""
        registry = MetricsRegistry()
        record_run_metrics(registry, make_result(
            outcome="quarantined", completed=0, total_energy=0.0))
        snapshot = registry.snapshot()
        assert snapshot["counters"]["campaign_runs_total"]["series"][
            "scenario=s,fault=f,outcome=quarantined"] == 1.0


class TestCampaignMetrics:
    def _results(self):
        return [
            make_result("a", "none"),
            make_result("a", "retry", outcome="recovered"),
            make_result("b", "none", outcome="timeout"),
            make_result("b", "retry", outcome="quarantined"),
        ]

    def test_outcome_rates(self):
        metrics = campaign_metrics(self._results(), wall_time_s=2.0,
                                   jobs=2)
        assert metrics.runs_total == 4
        assert metrics.timeout_rate == 0.25
        assert metrics.quarantine_rate == 0.25
        assert metrics.throughput_runs_per_s == pytest.approx(2.0)

    def test_merge_order_independent_of_input_order(self):
        results = self._results()
        forward = campaign_metrics(results).merged
        backward = campaign_metrics(list(reversed(results))).merged
        assert forward == backward

    def test_attached_snapshots_preferred(self):
        result = make_result()
        result.metrics = metrics_for_result(result)
        # mutating the result after attaching must not change the
        # merged metrics: the snapshot is authoritative
        result.completed = 999
        merged = campaign_metrics([result]).merged
        assert merged["counters"]["campaign_txns_completed_total"][
            "series"]["scenario=s,fault=f"] == 10.0

    def test_to_dict_and_summary_table(self):
        metrics = campaign_metrics(self._results(), wall_time_s=1.0)
        data = metrics.to_dict()
        assert set(data) == {"merged", "summary"}
        assert data["summary"]["runs_total"] == 4
        assert isinstance(metrics, CampaignMetrics)
        rendered = metrics.summary_table().format()
        assert "Timeout rate" in rendered
        table = metrics_table(metrics.merged).format()
        assert "campaign_runs_total" in table


class TestSerialVsParallel:
    def test_jobs2_merged_metrics_bit_identical(self):
        """ISSUE 4 acceptance: a ``--jobs 2`` campaign's merged
        metrics equal the serial run's bit-for-bit."""
        kwargs = dict(
            scenarios=("portable-audio-player",),
            faults=("always-retry", "hung-slave"),
            seed=7, duration_us=5.0, timeout=120,
        )
        serial = run_fault_campaign(jobs=1, **kwargs)
        parallel = run_fault_campaign(jobs=2, **kwargs)
        serial_merged = serial.metrics().merged
        parallel_merged = parallel.metrics().merged
        assert json.dumps(serial_merged, sort_keys=True) \
            == json.dumps(parallel_merged, sort_keys=True)
        # and the per-run snapshots travelled through the worker
        # boundary (attached, not synthesized)
        assert all(run.metrics for run in parallel.runs)
