"""The coverage-guided fuzz campaign engine.

Locks in the PR's acceptance criteria: corpus evolution and the
coverage map are bit-identical for serial and ``--jobs 2`` campaigns
from the same base seed, and a seed genome carrying a known protocol
violation is auto-shrunk into a reproducer a quarter of the original
schedule length that replays to the same rule_id.
"""

import hashlib
import os

import pytest

from repro.cli import main
from repro.fuzz import (
    Corpus,
    FuzzConfig,
    entry_id_for,
    run_fuzz_campaign,
)
from repro.fuzz.coverage import CoverageMap
from repro.replay import FaultEntry, ReplayTrace, campaign_spec

SCENARIO = "portable-audio-player"


def quick_config(**overrides):
    params = dict(budget=6, seed=7, duration_us=5.0, batch_size=4,
                  scenarios=(SCENARIO,))
    params.update(overrides)
    return FuzzConfig(**params)


def corpus_digest(root):
    """(name, sha256) of every campaign file (reproducers excluded:
    they are keyed by failure signature, not part of the evolution)."""
    digests = []
    for name in sorted(os.listdir(root)):
        path = os.path.join(root, name)
        if not os.path.isfile(path):
            continue
        with open(path, "rb") as fh:
            digests.append((name, hashlib.sha256(fh.read()).hexdigest()))
    return digests


def violating_genome(duration_us=20.0):
    """A seed genome with a known mandatory violation (HADDR bit 0
    stuck high => unaligned word transfers) plus an advisory one."""
    spec = campaign_spec(SCENARIO, "always-retry",
                        duration_us=duration_us)
    spec.faults.append(FaultEntry.signal_fault(
        "stuck-at", "haddr", bit=0, value=1,
        start_ps=100_000, end_ps=2_000_000))
    return spec


class TestCampaignLoop:
    def test_campaign_seeds_executes_and_persists(self, tmp_path):
        root = str(tmp_path / "corpus")
        report = run_fuzz_campaign(root, quick_config())
        assert report.executions == 6
        assert report.ok
        assert report.corpus_size >= 1
        assert report.coverage_keys > 0
        assert os.path.exists(os.path.join(root, "state.json"))
        coverage = CoverageMap.load(
            os.path.join(root, "coverage.json"))
        assert len(coverage) == report.coverage_keys
        corpus = Corpus.load(root)
        assert len(corpus) == report.corpus_size
        # seed entry first, mutants carry provenance
        entries = list(corpus)
        assert entries[0].parent is None
        assert all(entry.parent in corpus.entries
                   for entry in entries[1:])
        assert "fuzz campaign" in report.summary()

    def test_serial_and_parallel_evolution_bit_identical(
            self, tmp_path):
        """Acceptance: same base seed + corpus => byte-identical corpus
        files and coverage map under --jobs 1, --jobs 1 again, and
        --jobs 2."""
        digests = []
        for label, jobs in (("a", 1), ("b", 1), ("c", 2)):
            root = str(tmp_path / label)
            run_fuzz_campaign(root, quick_config(budget=10, jobs=jobs))
            digests.append(corpus_digest(root))
        assert digests[0] == digests[1]  # rerun-stable
        assert digests[0] == digests[2]  # worker-count invariant

    def test_resume_continues_the_budget(self, tmp_path):
        root = str(tmp_path / "corpus")
        first = run_fuzz_campaign(root, quick_config(budget=4))
        assert first.executions == 4
        resumed = run_fuzz_campaign(
            root, quick_config(budget=8, resume=True))
        assert resumed.resumed
        assert resumed.executions == 8
        assert resumed.corpus_size >= first.corpus_size

    def test_resume_with_different_seed_is_rejected(self, tmp_path):
        root = str(tmp_path / "corpus")
        run_fuzz_campaign(root, quick_config())
        with pytest.raises(ValueError, match="seed"):
            run_fuzz_campaign(
                root, quick_config(seed=8, resume=True))

    def test_sim_budget_stops_the_campaign(self, tmp_path):
        root = str(tmp_path / "corpus")
        report = run_fuzz_campaign(
            root, quick_config(budget=50, max_sim_us=8.0))
        # seed batch (5 us) crosses the 8 us meter after one more batch
        assert report.executions < 50
        assert report.sim_us >= 8.0


class TestFailureHandling:
    def test_known_violation_seed_yields_shrunk_reproducer(
            self, tmp_path):
        """Acceptance: a known-violation seed genome is auto-shrunk to
        <= 25 % of the original schedule length and replays to the
        same rule_id."""
        root = str(tmp_path / "corpus")
        genome = violating_genome(duration_us=20.0)
        report = run_fuzz_campaign(root, quick_config(
            budget=2, seed_specs=(genome,)))
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure["shrunk"]
        assert failure["signature"] == "rule|alignment|mandatory"
        assert failure["minimal_duration_us"] \
            <= 0.25 * genome.duration_us
        assert failure["minimal_faults"] <= 1
        # the reproducer replays bit-exactly to the same rule
        trace = ReplayTrace.load(failure["reproducer"])
        _, recorded, actual, match = trace.replay(0)
        assert match
        assert actual.first_violation_rule == "alignment"
        # and the generated regression test is valid python that
        # asserts exactly that
        source = open(failure["test"]).read()
        compile(source, failure["test"], "exec")
        assert "def test_repro_rule_alignment_mandatory" in source
        assert "'alignment' in actual.rules_tripped" in source

    def test_failing_genome_enriches_coverage_with_rule_arms(
            self, tmp_path):
        root = str(tmp_path / "corpus")
        report = run_fuzz_campaign(root, quick_config(
            budget=2, seed_specs=(violating_genome(duration_us=5.0),)))
        coverage = CoverageMap.load(os.path.join(root, "coverage.json"))
        assert "rule:alignment" in coverage
        assert "mandatory-broken" in coverage
        assert report.coverage_groups().get("rule")

    def test_unshrunk_failures_gate_the_report(self, tmp_path):
        root = str(tmp_path / "corpus")
        report = run_fuzz_campaign(root, quick_config(
            budget=2, shrink=False,
            seed_specs=(violating_genome(duration_us=5.0),)))
        assert report.failures and not report.failures[0]["shrunk"]
        assert report.unshrunk
        assert not report.ok

    def test_duplicate_signatures_shrink_once(self, tmp_path):
        root = str(tmp_path / "corpus")
        first = violating_genome(duration_us=5.0)
        second = first.replace(seed=first.seed + 1)
        report = run_fuzz_campaign(root, quick_config(
            budget=3, seed_specs=(first, second)))
        shrunk = [failure for failure in report.failures
                  if failure["signature"] == "rule|alignment|mandatory"]
        assert len(shrunk) == 1


class TestCli:
    def test_fuzz_cli_smoke(self, tmp_path, capsys):
        root = str(tmp_path / "corpus")
        coverage_out = str(tmp_path / "coverage.json")
        code = main(["fuzz", "--corpus", root, "--budget", "4",
                     "--seed", "7", "--duration-us", "5",
                     "--batch", "2", "--scenario", SCENARIO,
                     "--coverage-out", coverage_out,
                     "--json", str(tmp_path / "report.json")])
        assert code == 0
        out = capsys.readouterr().out
        assert "fuzz campaign: 4/4 executions" in out
        assert os.path.exists(coverage_out)
        # a second identical invocation in a fresh corpus is
        # bit-identical (the CLI-level determinism contract)
        other = str(tmp_path / "corpus2")
        main(["fuzz", "--corpus", other, "--budget", "4",
              "--seed", "7", "--duration-us", "5", "--batch", "2",
              "--scenario", SCENARIO])
        assert corpus_digest(root) == corpus_digest(other)

    def test_fuzz_cli_rejects_unknown_scenario(self, capsys, tmp_path):
        code = main(["fuzz", "--corpus", str(tmp_path / "c"),
                     "--scenario", "no-such-soc"])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_entry_id_is_content_derived(self):
        spec = campaign_spec(SCENARIO, "none", duration_us=5.0)
        assert entry_id_for(spec) == entry_id_for(spec.replace())
        assert entry_id_for(spec) \
            != entry_id_for(spec.replace(seed=99))
