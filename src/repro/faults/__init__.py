"""Fault injection and resilience evaluation.

Three layers:

* signal-level injectors (re-exported from :mod:`repro.kernel.faults`)
  corrupting named bus wires — stuck-at, bit flip, glitch;
* behavioural fault modes (:mod:`repro.faults.modes`) — hung slave,
  retry livelock, unreleased SPLIT, babbling master;
* the campaign runner (:mod:`repro.faults.campaign`) measuring how the
  resilience stack (bounded-retry masters + bus watchdog) contains
  each fault and what it costs in energy.
"""

from ..kernel.faults import (
    BitFlipFault,
    FaultInjector,
    GlitchFault,
    SignalFault,
    StuckAtFault,
)
from .campaign import (
    CONTAINED_OUTCOMES,
    FAILURE_OUTCOMES,
    FAULT_MODES,
    CampaignResult,
    CampaignRun,
    FaultRunResult,
    derive_run_seed,
    enumerate_campaign,
    fault_slave_factory,
    result_from_execution,
    run_fault_campaign,
)
from .modes import (
    AlwaysRetrySlave,
    BabblingMaster,
    HangSlave,
    UnreleasedSplitSlave,
)

__all__ = [
    "AlwaysRetrySlave",
    "BabblingMaster",
    "BitFlipFault",
    "CONTAINED_OUTCOMES",
    "CampaignResult",
    "CampaignRun",
    "FAILURE_OUTCOMES",
    "FAULT_MODES",
    "FaultInjector",
    "FaultRunResult",
    "GlitchFault",
    "HangSlave",
    "SignalFault",
    "StuckAtFault",
    "UnreleasedSplitSlave",
    "derive_run_seed",
    "enumerate_campaign",
    "fault_slave_factory",
    "result_from_execution",
    "run_fault_campaign",
]
