"""Fault injection and resilience evaluation.

Three layers:

* signal-level injectors (re-exported from :mod:`repro.kernel.faults`)
  corrupting named bus wires — stuck-at, bit flip, glitch;
* behavioural fault modes (:mod:`repro.faults.modes`) — hung slave,
  retry livelock, unreleased SPLIT, babbling master;
* the campaign runner (:mod:`repro.faults.campaign`) measuring how the
  resilience stack (bounded-retry masters + bus watchdog) contains
  each fault and what it costs in energy.
"""

from ..kernel.faults import (
    BitFlipFault,
    FaultInjector,
    GlitchFault,
    SignalFault,
    StuckAtFault,
)
from .campaign import (
    FAULT_MODES,
    CampaignResult,
    FaultRunResult,
    fault_slave_factory,
    run_fault_campaign,
)
from .modes import (
    AlwaysRetrySlave,
    BabblingMaster,
    HangSlave,
    UnreleasedSplitSlave,
)

__all__ = [
    "AlwaysRetrySlave",
    "BabblingMaster",
    "BitFlipFault",
    "CampaignResult",
    "FAULT_MODES",
    "FaultInjector",
    "FaultRunResult",
    "GlitchFault",
    "HangSlave",
    "SignalFault",
    "StuckAtFault",
    "UnreleasedSplitSlave",
    "fault_slave_factory",
    "run_fault_campaign",
]
