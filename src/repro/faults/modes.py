"""Behavioural fault modes for existing bus models.

Where :mod:`repro.kernel.faults` corrupts individual signals, the
models here misbehave at the *protocol* level — the failure modes a
real SoC bring-up actually fights:

* :class:`HangSlave` — accepts a transfer and then never raises
  ``HREADYOUT`` again (a slave whose backend died);
* :class:`AlwaysRetrySlave` — answers every transfer with RETRY
  forever (a livelock generator for the master's re-issue path);
* :class:`UnreleasedSplitSlave` — SPLITs the requesting master and
  never raises ``HSPLITx``, parking the master in the arbiter's split
  mask for good;
* :class:`BabblingMaster` — drives random, protocol-breaking address
  phases whenever granted (a corrupted master state machine), which
  the :class:`~repro.amba.checker.AhbProtocolChecker` flags.

All slaves behave healthily for their first ``trigger_after`` accepted
transfers, so a workload makes real progress before the fault bites —
campaigns compare the before/after energy and completion profile.
"""

from __future__ import annotations

import random

from ..amba.slave import MemorySlave
from ..amba.types import HBURST, HRESP, HSIZE, HTRANS
from ..kernel import Module


class HangSlave(MemorySlave):
    """A memory slave that stops responding after *trigger_after*
    transfers: the data phase begins and ``HREADYOUT`` stays low
    forever, stalling the whole bus until a watchdog cuts it off."""

    def __init__(self, sim, name, clk, port, bus, trigger_after=0,
                 **kwargs):
        super().__init__(sim, name, clk, port, bus, **kwargs)
        self.trigger_after = int(trigger_after)
        self.hangs = 0

    def _begin_transfer(self, transfer):
        if self.transfers_accepted > self.trigger_after:
            self.hangs += 1
            # Unknown-duration stall that is never finished: the
            # never-ready fault mode.
            return (None, HRESP.OKAY)
        return super()._begin_transfer(transfer)

    @property
    def hung(self):
        """True once the slave has started hanging the bus."""
        return self.hangs > 0

    def state_dict(self):
        state = super().state_dict()
        state["hangs"] = self.hangs
        return state

    def load_state_dict(self, state):
        super().load_state_dict(state)
        self.hangs = state["hangs"]


class AlwaysRetrySlave(MemorySlave):
    """A memory slave that answers RETRY to every transfer after its
    first *trigger_after* healthy ones.  Against a master with no retry
    limit this livelocks the bus; with a bounded master the transfer
    fails cleanly once the budget is spent."""

    def __init__(self, sim, name, clk, port, bus, trigger_after=0,
                 **kwargs):
        super().__init__(sim, name, clk, port, bus, **kwargs)
        self.trigger_after = int(trigger_after)

    def _begin_transfer(self, transfer):
        waits, response = super()._begin_transfer(transfer)
        if response != HRESP.OKAY:
            return (waits, response)
        if self.transfers_accepted > self.trigger_after:
            return (waits, HRESP.RETRY)
        return (waits, response)


class UnreleasedSplitSlave(MemorySlave):
    """A memory slave that SPLITs every transfer after its first
    *trigger_after* healthy ones and never raises ``HSPLITx``: the
    split master stays masked out of arbitration forever unless a
    watchdog forces its release."""

    def __init__(self, sim, name, clk, port, bus, trigger_after=0,
                 **kwargs):
        super().__init__(sim, name, clk, port, bus, **kwargs)
        self.trigger_after = int(trigger_after)
        self.splits_issued = 0

    def _begin_transfer(self, transfer):
        waits, response = super()._begin_transfer(transfer)
        if response != HRESP.OKAY:
            return (waits, response)
        if self.transfers_accepted > self.trigger_after:
            self.splits_issued += 1
            return (0, HRESP.SPLIT)
        return (waits, response)

    def state_dict(self):
        state = super().state_dict()
        state["splits_issued"] = self.splits_issued
        return state

    def load_state_dict(self, state):
        super().load_state_dict(state)
        self.splits_issued = state["splits_issued"]


class BabblingMaster(Module):
    """A misbehaving master driving random address phases.

    Models a corrupted master state machine: requests the bus
    constantly and, once granted, presents a new random transfer every
    cycle — ignoring ``HREADY`` stalls, burst sequencing and (with
    ``misalign_probability``) even address alignment.  Every individual
    habit violates a spec rule the protocol checker watches
    (stall-stability, seq-without-nonseq, burst-address, alignment), so
    checker and fault model validate each other.
    """

    def __init__(self, sim, name, clk, port, bus, seed=0,
                 region=(0, 0x1000), misalign_probability=0.25,
                 parent=None):
        super().__init__(sim, name, parent=parent)
        self.clk = clk
        self.port = port
        self.bus = bus
        self.rng = random.Random(seed)
        self.region = region
        self.misalign_probability = misalign_probability
        self.babbled_cycles = 0
        self.method(self._on_clk, [clk.posedge], name="babble",
                    initialize=False)

    def _on_clk(self):
        port = self.port
        port.hbusreq.write(1)
        if not port.hgrant.value:
            port.htrans.write(int(HTRANS.IDLE))
            return
        self.babbled_cycles += 1
        base, size = self.region
        address = base + self.rng.randrange(0, size)
        if self.rng.random() >= self.misalign_probability:
            address &= ~0x3  # usually word aligned, sometimes not
        port.htrans.write(int(self.rng.choice(
            (HTRANS.NONSEQ, HTRANS.SEQ, HTRANS.BUSY))))
        port.haddr.write(address)
        port.hwrite.write(self.rng.randint(0, 1))
        port.hsize.write(int(HSIZE.WORD))
        port.hburst.write(int(self.rng.choice(
            (HBURST.SINGLE, HBURST.INCR4))))
        port.hwdata.write(self.rng.getrandbits(32))

    # -- checkpoint support ---------------------------------------------

    def state_dict(self):
        from ..state.rng import rng_state
        return {
            "rng": rng_state(self.rng),
            "babbled_cycles": self.babbled_cycles,
        }

    def load_state_dict(self, state):
        from ..state.rng import load_rng_state
        load_rng_state(self.rng, state["rng"])
        self.babbled_cycles = state["babbled_cycles"]
