"""Fault-injection campaign runner.

A campaign takes named SoC scenarios (from
:mod:`repro.workloads.scenarios`), runs each one fault-free to obtain
an energy/throughput baseline, then re-runs it under every requested
behavioural fault mode with the resilience stack armed (bounded-retry
masters plus a recovering :class:`~repro.amba.AhbWatchdog`).  Each run
is classified by outcome and annotated with the *energy cost of the
fault*: the ledger's non-OKAY response energy (direct retry/error cycle
cost) and the change in energy-per-completed-transaction against the
fault-free baseline — the system-level "price of resilience" that the
paper's methodology makes measurable.

Outcomes
--------
``completed``
    No failed transactions and no watchdog events: the fault never
    bit (or the mode was a no-op for this workload).
``recovered``
    The watchdog detected a hazard and its recovery action succeeded;
    the workload kept making progress afterwards.
``degraded``
    Transactions failed (bus errors / exhausted retry budgets) but the
    system needed no watchdog rescue and kept running.
``hung``
    A hazard was detected (or the bus ended the run stalled) and no
    recovery succeeded — what a system without the watchdog would be
    left with.
``crashed``
    The simulator raised; the exception text (plus full traceback and
    a replayable :class:`~repro.replay.RunSpec`) is captured in the
    result instead of propagating out of the campaign.
``timeout``
    The run exceeded its wall-clock deadline: the kernel's cooperative
    budget expired (in-process execution) or the supervisor killed a
    worker that blew through its deadline (parallel execution).
``worker-crashed``
    The worker process executing the run died unexpectedly (segfault,
    OOM-kill) and the executor could not or would not retry it.
``quarantined``
    The run killed its worker repeatedly; instead of retrying forever
    its shrink-ready ``RunSpec`` was written to disk and the run was
    set aside so the rest of the campaign could finish.

The last three outcomes are produced by the supervised executor in
:mod:`repro.exec`; plain serial campaigns can still yield ``timeout``
via the kernel's cooperative wall-clock budget.
"""

from __future__ import annotations

import hashlib

from ..analysis.tables import TextTable, format_energy
from .modes import AlwaysRetrySlave, HangSlave, UnreleasedSplitSlave

#: Outcomes that mean the resilience stack contained the fault.
CONTAINED_OUTCOMES = ("completed", "recovered", "degraded")

#: Outcomes that gate a campaign (CLI exits non-zero on any of them).
FAILURE_OUTCOMES = ("hung", "crashed", "timeout", "worker-crashed",
                    "quarantined")

#: Behavioural fault modes a campaign can inject, name → slave class.
#: Every class accepts ``trigger_after`` plus the stock
#: :class:`~repro.amba.MemorySlave` keyword arguments.
FAULT_MODES = {
    "always-retry": AlwaysRetrySlave,
    "hung-slave": HangSlave,
    "unreleased-split": UnreleasedSplitSlave,
}


def fault_slave_factory(mode, trigger_after=0):
    """A ``slave_overrides`` factory injecting fault *mode*.

    Returns a callable with the :class:`~repro.workloads.AhbSystem`
    override signature that builds the misbehaving slave.
    """
    try:
        cls = FAULT_MODES[mode]
    except KeyError:
        raise KeyError(
            "unknown fault mode %r (available: %s)"
            % (mode, ", ".join(sorted(FAULT_MODES)))
        ) from None

    def factory(sim, name, clk, port, bus, **kwargs):
        return cls(sim, name, clk, port, bus,
                   trigger_after=trigger_after, **kwargs)

    return factory


def derive_run_seed(base_seed, scenario, fault, slave_index=0):
    """Deterministic per-run seed for one campaign cell.

    Derived by hashing ``(base_seed, scenario, fault, slave_index)``
    (SHA-256, so it is stable across processes and interpreter
    ``PYTHONHASHSEED`` values) instead of sharing one seed positionally
    across the campaign: every run's stimulus is then a function of its
    own identity, and campaign results are invariant under parallel,
    reordered or resumed execution.
    """
    tag = "%r|%s|%s|%d" % (base_seed, scenario, fault, slave_index)
    digest = hashlib.sha256(tag.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFF_FFFF


class CampaignRun:
    """One enumerated campaign cell: identity plus its ``RunSpec``."""

    __slots__ = ("run_id", "scenario", "fault", "spec")

    def __init__(self, run_id, scenario, fault, spec):
        self.run_id = run_id
        self.scenario = scenario
        self.fault = fault
        self.spec = spec

    def __repr__(self):
        return "CampaignRun(%s)" % self.run_id


class FaultRunResult:
    """Outcome and metrics of one (scenario, fault mode) run."""

    def __init__(self, scenario, fault, outcome, completed=0, failed=0,
                 aborted=0, watchdog_events=0, recoveries=0,
                 violations=0, rules_tripped=(),
                 recovery_compliant=True, total_energy=0.0,
                 overhead_energy=0.0, energy_per_txn=0.0,
                 baseline_energy_per_txn=0.0, detail="",
                 traceback=None, spec=None, fingerprint=None,
                 attempts=1, wall_time_s=0.0, metrics=None,
                 coverage=None, tier="cycle", engine="interpreted"):
        self.scenario = scenario
        self.fault = fault
        self.outcome = outcome
        #: Execution tier the run used (``"cycle"`` or ``"tlm"``).
        self.tier = tier
        #: Kernel engine a cycle-tier run requested (``"interpreted"``,
        #: ``"compiled"`` or ``"auto"``); bit-identical either way.
        self.engine = engine
        self.completed = completed
        self.failed = failed
        self.aborted = aborted
        self.watchdog_events = watchdog_events
        self.recoveries = recoveries
        self.violations = violations
        #: Compliance-rule ids that fired during the run, in
        #: first-occurrence order.
        self.rules_tripped = tuple(rules_tripped)
        #: True when no *mandatory* rule fired — the injected fault and
        #: every watchdog recovery action stayed spec-legal traffic.
        self.recovery_compliant = recovery_compliant
        self.total_energy = total_energy
        self.overhead_energy = overhead_energy
        self.energy_per_txn = energy_per_txn
        self.baseline_energy_per_txn = baseline_energy_per_txn
        self.detail = detail
        #: Full traceback of a ``crashed`` run (None otherwise).
        self.traceback = traceback
        #: The run's :class:`~repro.replay.RunSpec` as a dict, so the
        #: result alone is enough to re-execute or shrink the run.
        self.spec = spec
        #: The run's :class:`~repro.replay.RunOutcome` fingerprint
        #: dict (None for runs that never produced one, e.g.
        #: ``quarantined``).
        self.fingerprint = fingerprint
        #: Dispatch attempts the supervised executor spent on the run.
        self.attempts = attempts
        #: Host wall-clock seconds the (final) attempt took.
        self.wall_time_s = wall_time_s
        #: Per-run telemetry registry snapshot (see
        #: :func:`repro.telemetry.metrics_for_result`); None for
        #: results produced before the telemetry layer existed.
        self.metrics = metrics
        #: Sorted coverage keys observed by the fuzz probe (see
        #: :mod:`repro.fuzz.coverage`); None unless the run executed
        #: with coverage collection enabled.
        self.coverage = list(coverage) if coverage is not None else None

    @property
    def run_id(self):
        """Stable campaign-wide identity of this cell."""
        return "%s/%s" % (self.scenario, self.fault)

    @property
    def energy_overhead_ratio(self):
        """Relative growth of energy per completed transaction."""
        if self.baseline_energy_per_txn <= 0:
            return 0.0
        return (self.energy_per_txn / self.baseline_energy_per_txn) - 1.0

    def to_dict(self):
        return {
            "scenario": self.scenario,
            "fault": self.fault,
            "tier": self.tier,
            "engine": self.engine,
            "outcome": self.outcome,
            "completed": self.completed,
            "failed": self.failed,
            "aborted": self.aborted,
            "watchdog_events": self.watchdog_events,
            "recoveries": self.recoveries,
            "violations": self.violations,
            "rules_tripped": list(self.rules_tripped),
            "recovery_compliant": self.recovery_compliant,
            "total_energy_j": self.total_energy,
            "overhead_energy_j": self.overhead_energy,
            "energy_per_txn_j": self.energy_per_txn,
            "baseline_energy_per_txn_j": self.baseline_energy_per_txn,
            "energy_overhead_ratio": self.energy_overhead_ratio,
            "detail": self.detail,
            "traceback": self.traceback,
            "spec": self.spec,
            "fingerprint": self.fingerprint,
            "attempts": self.attempts,
            "wall_time_s": self.wall_time_s,
            "metrics": self.metrics,
            "coverage": self.coverage,
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a result from :meth:`to_dict` output (journal
        resume path).  Unknown keys are ignored for forward
        compatibility."""
        renames = {
            "total_energy_j": "total_energy",
            "overhead_energy_j": "overhead_energy",
            "energy_per_txn_j": "energy_per_txn",
            "baseline_energy_per_txn_j": "baseline_energy_per_txn",
        }
        known = ("scenario", "fault", "tier", "engine", "outcome",
                 "completed",
                 "failed", "aborted", "watchdog_events", "recoveries",
                 "violations", "rules_tripped", "recovery_compliant",
                 "detail", "traceback", "spec", "fingerprint",
                 "attempts", "wall_time_s", "metrics", "coverage")
        kwargs = {}
        for key, value in data.items():
            key = renames.get(key, key)
            if key in known or key in renames.values():
                kwargs[key] = value
        return cls(**kwargs)

    def __repr__(self):
        return "FaultRunResult(%s/%s: %s)" % (
            self.scenario, self.fault, self.outcome,
        )


class CampaignResult:
    """All runs of one campaign, with a renderable report."""

    def __init__(self, runs, duration_us, jobs=1, wall_time_s=0.0,
                 interrupted=False, interrupt_signal=None, resumed=0,
                 degraded=False, journal=None):
        self.runs = list(runs)
        self.duration_us = duration_us
        #: Worker processes the campaign was dispatched across.
        self.jobs = jobs
        #: Host wall-clock seconds the whole campaign took.
        self.wall_time_s = wall_time_s
        #: True when the campaign was stopped early (SIGINT/SIGTERM
        #: drain); ``interrupt_signal`` is the stopping signal number.
        self.interrupted = interrupted
        self.interrupt_signal = interrupt_signal
        #: Runs restored from a journal instead of executed.
        self.resumed = resumed
        #: True when repeated pool failure forced the executor back to
        #: in-process serial execution.
        self.degraded = degraded
        #: Path of the campaign journal, if one was written.
        self.journal = journal

    @property
    def ok(self):
        """True when every run ended contained (no hang, crash,
        deadline blow-through or quarantine escaped the resilience
        stack) and the campaign was not interrupted."""
        return (not self.interrupted
                and all(run.outcome in CONTAINED_OUTCOMES
                        for run in self.runs))

    @property
    def failures(self):
        """Runs whose outcome gates the campaign."""
        return [run for run in self.runs
                if run.outcome in FAILURE_OUTCOMES]

    def metrics(self):
        """Campaign-level merged telemetry (see
        :func:`repro.telemetry.campaign_metrics`).

        The returned object's ``merged`` snapshot is the ``run_id``-
        ordered fold of every run's per-run snapshot — bit-identical
        whether the campaign ran serially, across ``--jobs N`` workers
        or resumed from a journal.  Wall-clock figures (throughput)
        live only in its summary.
        """
        from ..telemetry import campaign_metrics
        return campaign_metrics(self.runs, wall_time_s=self.wall_time_s,
                                jobs=self.jobs)

    def summary(self):
        """Human-readable campaign report table."""
        table = TextTable([
            "Scenario", "Fault", "Outcome", "OK txns", "Failed",
            "WD events", "Recoveries", "Rules tripped",
            "Fault-cycle energy", "Energy/txn vs baseline",
        ])
        for run in self.runs:
            rules = ", ".join(run.rules_tripped) or "-"
            if not run.recovery_compliant:
                rules += " [MANDATORY]"
            table.add_row([
                run.scenario,
                run.fault,
                run.outcome,
                run.completed - run.failed,
                run.failed,
                run.watchdog_events,
                run.recoveries,
                rules,
                format_energy(run.overhead_energy),
                "%+.1f %%" % (100.0 * run.energy_overhead_ratio),
            ])
        return table

    def to_dict(self):
        return {
            "duration_us": self.duration_us,
            "ok": self.ok,
            "jobs": self.jobs,
            "wall_time_s": self.wall_time_s,
            "interrupted": self.interrupted,
            "interrupt_signal": self.interrupt_signal,
            "resumed": self.resumed,
            "degraded": self.degraded,
            "runs": [run.to_dict() for run in self.runs],
            "campaign_metrics": self.metrics().to_dict(),
        }


def _classify(system, error_text, timed_out=False):
    """Map a finished (or dead) system to a campaign outcome."""
    if timed_out:
        return "timeout"
    if error_text is not None:
        return "crashed"
    watchdog = system.watchdog
    failed = system.transactions_failed()
    events = len(watchdog.events) if watchdog is not None else 0
    recoveries = watchdog.recoveries if watchdog is not None else 0
    if events:
        # A momentary HREADY-low end-of-run snapshot is normal (the
        # middle of a two-cycle response); the reliable hang signal is
        # the watchdog detecting hazards it could not recover from.
        return "recovered" if recoveries else "hung"
    if failed:
        return "degraded"
    return "completed"


def result_from_execution(scenario, fault, system, outcome, spec=None,
                          wall_time_s=0.0, attempts=1):
    """Condense one executed ``(system, RunOutcome)`` pair into a
    :class:`FaultRunResult` (``baseline_energy_per_txn`` is filled in
    by the campaign assembly once the scenario baseline is known)."""
    ok_txns = (outcome.completed or 0) - (outcome.failed or 0)
    total_energy = outcome.total_energy_j or 0.0
    energy_per_txn = total_energy / ok_txns if ok_txns else 0.0
    watchdog = system.watchdog if system is not None else None
    detail = outcome.detail or "; ".join(
        event.rule for event in (watchdog.events if watchdog else [])[:4]
    )
    return FaultRunResult(
        scenario=scenario, fault=fault, outcome=outcome.outcome,
        tier=getattr(spec, "tier", "cycle") if spec is not None
        else "cycle",
        engine=getattr(spec, "engine", "interpreted")
        if spec is not None else "interpreted",
        completed=outcome.completed or 0, failed=outcome.failed or 0,
        aborted=outcome.aborted or 0,
        watchdog_events=outcome.watchdog_events or 0,
        recoveries=outcome.recoveries or 0,
        violations=outcome.violations or 0,
        rules_tripped=tuple(outcome.rules_tripped or ()),
        recovery_compliant=bool(outcome.recovery_compliant),
        total_energy=total_energy,
        overhead_energy=outcome.overhead_energy_j or 0.0,
        energy_per_txn=energy_per_txn,
        detail=detail,
        traceback=getattr(outcome, "traceback_text", None),
        spec=spec.to_dict() if spec is not None else None,
        fingerprint=outcome.fingerprint(),
        attempts=attempts, wall_time_s=wall_time_s,
    )


def enumerate_campaign(scenarios, faults, seed=1, duration_us=20.0,
                       slave_index=0, trigger_after=16, retry_limit=8,
                       retry_backoff=2, hready_timeout=16,
                       retry_budget=6, split_timeout=64, recover=True,
                       check_protocol="record", tier="cycle",
                       engine="interpreted"):
    """Enumerate every campaign cell as a :class:`CampaignRun`.

    Each cell (the per-scenario fault-free baseline plus one run per
    fault mode) gets its own :func:`derive_run_seed`-derived seed and a
    fully self-contained :class:`~repro.replay.RunSpec`, so any
    executor — serial, process pool, or a resumed journal — produces
    bit-identical per-run results in any dispatch order.
    """
    from ..replay import campaign_spec  # deferred: replay imports us
    from ..workloads.scenarios import SCENARIOS

    runs = []
    for scenario in scenarios:
        if scenario not in SCENARIOS:
            # fail at enumeration time, not as N "crashed" runs later
            raise KeyError(
                "unknown scenario %r (available: %s)"
                % (scenario, ", ".join(sorted(SCENARIOS))))
        for fault in ("none",) + tuple(fault for fault in faults
                                       if fault != "none"):
            spec = campaign_spec(
                scenario, fault=fault,
                seed=derive_run_seed(seed, scenario, fault, slave_index),
                duration_us=duration_us, slave_index=slave_index,
                trigger_after=trigger_after, retry_limit=retry_limit,
                retry_backoff=retry_backoff,
                hready_timeout=hready_timeout,
                retry_budget=retry_budget, split_timeout=split_timeout,
                recover=recover, check_protocol=check_protocol,
                tier=tier, engine=engine,
            )
            runs.append(CampaignRun("%s/%s" % (scenario, fault),
                                    scenario, fault, spec))
    return runs


def run_fault_campaign(scenarios=("portable-audio-player",
                                  "wireless-modem"),
                       faults=("always-retry", "hung-slave"),
                       seed=1, duration_us=20.0, slave_index=0,
                       trigger_after=16, retry_limit=8, retry_backoff=2,
                       hready_timeout=16, retry_budget=6,
                       split_timeout=64, recover=True,
                       check_protocol="record", tier="cycle",
                       engine="interpreted", jobs=1,
                       timeout=None, journal=None, resume=False,
                       checkpoint_dir=None, checkpoint_interval=1000,
                       executor_config=None):
    """Run every (scenario, fault) combination and report.

    Parameters
    ----------
    scenarios, faults:
        Names from the scenario registry and :data:`FAULT_MODES`.
    slave_index, trigger_after:
        Which slave misbehaves, and after how many healthy transfers.
    retry_limit, retry_backoff:
        Master-side resilience (per-transaction retry budget, idle
        backoff after each RETRY).
    hready_timeout, retry_budget, split_timeout, recover:
        Watchdog configuration.  The default watchdog ``retry_budget``
        sits below the master ``retry_limit`` so retry storms are cut
        by the watchdog while the master budget remains the backstop.
    check_protocol:
        Severity of the per-run compliance engine (default
        ``"record"``: each result reports which rules tripped and
        whether recovery stayed spec-compliant without aborting the
        campaign).
    tier:
        Execution tier for every run: ``"cycle"`` (signal-accurate
        kernel simulation) or ``"tlm"`` (the calibrated
        transaction-level model in :mod:`repro.tlm`).  Seeds derive
        identically on both tiers, so the same campaign can be
        surveyed fast at transaction level and confirmed
        cycle-accurately.
    engine:
        Kernel engine for cycle-tier runs (``"interpreted"``,
        ``"compiled"`` or ``"auto"`` — see
        :class:`repro.replay.RunSpec.ENGINES`).  Both engines produce
        bit-identical trajectories; the journal records the engine so
        resumed campaigns stay self-describing.
    jobs, timeout, journal, resume:
        Supervised-executor knobs (see :mod:`repro.exec`): worker
        process count (1 = in-process serial), per-run wall-clock
        deadline in host seconds, append-only JSONL journal path, and
        whether to skip runs already journalled as complete.
    checkpoint_dir, checkpoint_interval:
        With ``checkpoint_dir`` set, every run periodically checkpoints
        its full simulation state (every ``checkpoint_interval`` bus
        cycles) under ``checkpoint_dir/<run-id>/`` and a killed or
        timed-out attempt resumes from its newest checkpoint — see
        :mod:`repro.state` and docs/RESILIENCE.md §7.
    executor_config:
        A pre-built :class:`repro.exec.ExecutorConfig`; overrides the
        executor knobs above.

    Returns a :class:`CampaignResult`; per-run failures (simulator
    exceptions, deadline blow-throughs, dead or hung workers) are
    captured as run outcomes, never raised.
    """
    from ..exec import ExecutorConfig, execute_campaign

    runs = enumerate_campaign(
        scenarios, faults, seed=seed, duration_us=duration_us,
        slave_index=slave_index, trigger_after=trigger_after,
        retry_limit=retry_limit, retry_backoff=retry_backoff,
        hready_timeout=hready_timeout, retry_budget=retry_budget,
        split_timeout=split_timeout, recover=recover,
        check_protocol=check_protocol, tier=tier, engine=engine,
    )
    config = executor_config
    if config is None:
        config = ExecutorConfig(jobs=jobs, timeout=timeout,
                                journal=journal, resume=resume,
                                checkpoint_dir=checkpoint_dir,
                                checkpoint_interval=checkpoint_interval)
    report = execute_campaign(runs, config)
    ordered = [report.results[run.run_id] for run in runs
               if run.run_id in report.results]
    baselines = {result.scenario: result for result in ordered
                 if result.fault == "none"}
    for result in ordered:
        baseline = baselines.get(result.scenario)
        if baseline is not None:
            result.baseline_energy_per_txn = baseline.energy_per_txn
    return CampaignResult(
        ordered, duration_us, jobs=config.jobs,
        wall_time_s=report.wall_time_s, interrupted=report.interrupted,
        interrupt_signal=report.interrupt_signal,
        resumed=report.resumed, degraded=report.degraded,
        journal=config.journal,
    )
