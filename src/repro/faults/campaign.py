"""Fault-injection campaign runner.

A campaign takes named SoC scenarios (from
:mod:`repro.workloads.scenarios`), runs each one fault-free to obtain
an energy/throughput baseline, then re-runs it under every requested
behavioural fault mode with the resilience stack armed (bounded-retry
masters plus a recovering :class:`~repro.amba.AhbWatchdog`).  Each run
is classified by outcome and annotated with the *energy cost of the
fault*: the ledger's non-OKAY response energy (direct retry/error cycle
cost) and the change in energy-per-completed-transaction against the
fault-free baseline — the system-level "price of resilience" that the
paper's methodology makes measurable.

Outcomes
--------
``completed``
    No failed transactions and no watchdog events: the fault never
    bit (or the mode was a no-op for this workload).
``recovered``
    The watchdog detected a hazard and its recovery action succeeded;
    the workload kept making progress afterwards.
``degraded``
    Transactions failed (bus errors / exhausted retry budgets) but the
    system needed no watchdog rescue and kept running.
``hung``
    A hazard was detected (or the bus ended the run stalled) and no
    recovery succeeded — what a system without the watchdog would be
    left with.
``crashed``
    The simulator raised; the exception text is captured in the result
    instead of propagating out of the campaign.
"""

from __future__ import annotations

from ..analysis.tables import TextTable, format_energy
from ..kernel import us
from ..workloads.scenarios import build_scenario
from .modes import AlwaysRetrySlave, HangSlave, UnreleasedSplitSlave

#: Behavioural fault modes a campaign can inject, name → slave class.
#: Every class accepts ``trigger_after`` plus the stock
#: :class:`~repro.amba.MemorySlave` keyword arguments.
FAULT_MODES = {
    "always-retry": AlwaysRetrySlave,
    "hung-slave": HangSlave,
    "unreleased-split": UnreleasedSplitSlave,
}


def fault_slave_factory(mode, trigger_after=0):
    """A ``slave_overrides`` factory injecting fault *mode*.

    Returns a callable with the :class:`~repro.workloads.AhbSystem`
    override signature that builds the misbehaving slave.
    """
    try:
        cls = FAULT_MODES[mode]
    except KeyError:
        raise KeyError(
            "unknown fault mode %r (available: %s)"
            % (mode, ", ".join(sorted(FAULT_MODES)))
        ) from None

    def factory(sim, name, clk, port, bus, **kwargs):
        return cls(sim, name, clk, port, bus,
                   trigger_after=trigger_after, **kwargs)

    return factory


class FaultRunResult:
    """Outcome and metrics of one (scenario, fault mode) run."""

    def __init__(self, scenario, fault, outcome, completed=0, failed=0,
                 aborted=0, watchdog_events=0, recoveries=0,
                 violations=0, rules_tripped=(),
                 recovery_compliant=True, total_energy=0.0,
                 overhead_energy=0.0, energy_per_txn=0.0,
                 baseline_energy_per_txn=0.0, detail=""):
        self.scenario = scenario
        self.fault = fault
        self.outcome = outcome
        self.completed = completed
        self.failed = failed
        self.aborted = aborted
        self.watchdog_events = watchdog_events
        self.recoveries = recoveries
        self.violations = violations
        #: Compliance-rule ids that fired during the run, in
        #: first-occurrence order.
        self.rules_tripped = tuple(rules_tripped)
        #: True when no *mandatory* rule fired — the injected fault and
        #: every watchdog recovery action stayed spec-legal traffic.
        self.recovery_compliant = recovery_compliant
        self.total_energy = total_energy
        self.overhead_energy = overhead_energy
        self.energy_per_txn = energy_per_txn
        self.baseline_energy_per_txn = baseline_energy_per_txn
        self.detail = detail

    @property
    def energy_overhead_ratio(self):
        """Relative growth of energy per completed transaction."""
        if self.baseline_energy_per_txn <= 0:
            return 0.0
        return (self.energy_per_txn / self.baseline_energy_per_txn) - 1.0

    def to_dict(self):
        return {
            "scenario": self.scenario,
            "fault": self.fault,
            "outcome": self.outcome,
            "completed": self.completed,
            "failed": self.failed,
            "aborted": self.aborted,
            "watchdog_events": self.watchdog_events,
            "recoveries": self.recoveries,
            "violations": self.violations,
            "rules_tripped": list(self.rules_tripped),
            "recovery_compliant": self.recovery_compliant,
            "total_energy_j": self.total_energy,
            "overhead_energy_j": self.overhead_energy,
            "energy_per_txn_j": self.energy_per_txn,
            "baseline_energy_per_txn_j": self.baseline_energy_per_txn,
            "energy_overhead_ratio": self.energy_overhead_ratio,
            "detail": self.detail,
        }

    def __repr__(self):
        return "FaultRunResult(%s/%s: %s)" % (
            self.scenario, self.fault, self.outcome,
        )


class CampaignResult:
    """All runs of one campaign, with a renderable report."""

    def __init__(self, runs, duration_us):
        self.runs = list(runs)
        self.duration_us = duration_us

    @property
    def ok(self):
        """True when every faulted run ended contained (no hang or
        crash escaped the resilience stack)."""
        return all(run.outcome in ("completed", "recovered", "degraded")
                   for run in self.runs)

    def summary(self):
        """Human-readable campaign report table."""
        table = TextTable([
            "Scenario", "Fault", "Outcome", "OK txns", "Failed",
            "WD events", "Recoveries", "Rules tripped",
            "Fault-cycle energy", "Energy/txn vs baseline",
        ])
        for run in self.runs:
            rules = ", ".join(run.rules_tripped) or "-"
            if not run.recovery_compliant:
                rules += " [MANDATORY]"
            table.add_row([
                run.scenario,
                run.fault,
                run.outcome,
                run.completed - run.failed,
                run.failed,
                run.watchdog_events,
                run.recoveries,
                rules,
                format_energy(run.overhead_energy),
                "%+.1f %%" % (100.0 * run.energy_overhead_ratio),
            ])
        return table

    def to_dict(self):
        return {
            "duration_us": self.duration_us,
            "ok": self.ok,
            "runs": [run.to_dict() for run in self.runs],
        }


def _classify(system, error_text):
    """Map a finished (or dead) system to a campaign outcome."""
    if error_text is not None:
        return "crashed"
    watchdog = system.watchdog
    failed = system.transactions_failed()
    events = len(watchdog.events) if watchdog is not None else 0
    recoveries = watchdog.recoveries if watchdog is not None else 0
    if events:
        # A momentary HREADY-low end-of-run snapshot is normal (the
        # middle of a two-cycle response); the reliable hang signal is
        # the watchdog detecting hazards it could not recover from.
        return "recovered" if recoveries else "hung"
    if failed:
        return "degraded"
    return "completed"


def _run_one(scenario, fault, seed, duration_us, slave_index,
             trigger_after, retry_limit, retry_backoff, watchdog_kwargs,
             baseline_energy_per_txn, check_protocol="record"):
    overrides = None
    if fault != "none":
        overrides = {slave_index: fault_slave_factory(fault,
                                                      trigger_after)}
    system = build_scenario(
        scenario, seed=seed,
        retry_limit=retry_limit, retry_backoff=retry_backoff,
        slave_overrides=overrides,
        watchdog=True, watchdog_kwargs=watchdog_kwargs,
        check_protocol=check_protocol,
    )
    error_text = None
    try:
        system.run(us(duration_us))
    except Exception as exc:  # contain — the report is the product
        error_text = "%s: %s" % (type(exc).__name__, exc)

    completed = system.transactions_completed()
    failed = system.transactions_failed()
    aborted = sum(master.aborted_transactions
                  for master in system.masters)
    ledger = system.ledger
    total_energy = ledger.total_energy if ledger is not None else 0.0
    overhead = ledger.overhead_energy if ledger is not None else 0.0
    ok_txns = completed - failed
    energy_per_txn = total_energy / ok_txns if ok_txns else 0.0

    watchdog = system.watchdog
    detail = error_text or "; ".join(
        event.rule for event in (watchdog.events if watchdog else [])[:4]
    )
    return FaultRunResult(
        scenario=scenario, fault=fault,
        outcome=_classify(system, error_text),
        completed=completed, failed=failed, aborted=aborted,
        watchdog_events=len(watchdog.events) if watchdog else 0,
        recoveries=watchdog.recoveries if watchdog else 0,
        violations=len(system.checker.violations)
        if system.checker else 0,
        rules_tripped=system.checker.rules_tripped()
        if system.checker else (),
        recovery_compliant=system.checker.mandatory_ok
        if system.checker else True,
        total_energy=total_energy, overhead_energy=overhead,
        energy_per_txn=energy_per_txn,
        baseline_energy_per_txn=baseline_energy_per_txn,
        detail=detail,
    )


def run_fault_campaign(scenarios=("portable-audio-player",
                                  "wireless-modem"),
                       faults=("always-retry", "hung-slave"),
                       seed=1, duration_us=20.0, slave_index=0,
                       trigger_after=16, retry_limit=8, retry_backoff=2,
                       hready_timeout=16, retry_budget=6,
                       split_timeout=64, recover=True,
                       check_protocol="record"):
    """Run every (scenario, fault) combination and report.

    Parameters
    ----------
    scenarios, faults:
        Names from the scenario registry and :data:`FAULT_MODES`.
    slave_index, trigger_after:
        Which slave misbehaves, and after how many healthy transfers.
    retry_limit, retry_backoff:
        Master-side resilience (per-transaction retry budget, idle
        backoff after each RETRY).
    hready_timeout, retry_budget, split_timeout, recover:
        Watchdog configuration.  The default watchdog ``retry_budget``
        sits below the master ``retry_limit`` so retry storms are cut
        by the watchdog while the master budget remains the backstop.
    check_protocol:
        Severity of the per-run compliance engine (default
        ``"record"``: each result reports which rules tripped and
        whether recovery stayed spec-compliant without aborting the
        campaign).

    Returns a :class:`CampaignResult`; simulator exceptions inside a
    run are captured as ``crashed`` outcomes, never raised.
    """
    watchdog_kwargs = {
        "hready_timeout": hready_timeout,
        "retry_budget": retry_budget,
        "split_timeout": split_timeout,
        "recover": recover,
    }
    runs = []
    for scenario in scenarios:
        baseline = _run_one(
            scenario, "none", seed, duration_us, slave_index,
            trigger_after, retry_limit, retry_backoff, watchdog_kwargs,
            baseline_energy_per_txn=0.0, check_protocol=check_protocol,
        )
        baseline.baseline_energy_per_txn = baseline.energy_per_txn
        runs.append(baseline)
        for fault in faults:
            runs.append(_run_one(
                scenario, fault, seed, duration_us, slave_index,
                trigger_after, retry_limit, retry_backoff,
                watchdog_kwargs,
                baseline_energy_per_txn=baseline.energy_per_txn,
                check_protocol=check_protocol,
            ))
    return CampaignResult(runs, duration_us)
