"""ASCII waveform rendering.

A terminal-friendly timing-diagram view of recorded VCD signals — the
quick "what is the bus doing" look a waveform viewer gives, without
leaving the test log.  Scalar signals render as `/``\\` edges on a
two-level trace; vector signals render as value lanes with transition
markers.

::

    clk     |/\\/\\/\\/\\/\\/\\/\\/\\
    HTRANS  |0     >2     >3 >0
    HADDR   |0     >10    >14>0
"""

from __future__ import annotations


def _sample(signal, times):
    return [signal.value_at(t) for t in times]


def _render_scalar(values):
    cells = []
    previous = values[0]
    for value in values:
        if value and not previous:
            cells.append("/")
        elif previous and not value:
            cells.append("\\")
        else:
            cells.append("#" if value else "_")
        previous = value
    return "".join(cells)


def _render_vector(values, cell_width):
    cells = []
    previous = None
    hold = ""
    for value in values:
        if value != previous:
            text = ("%x" % value)[:cell_width - 1]
            hold = (">" + text).ljust(cell_width)[:cell_width]
            cells.append(hold)
        else:
            cells.append(" " * cell_width)
        previous = value
    return "".join(cells)


def render_waveform(vcd, signal_names, t_start=0, t_end=None,
                    step_ps=None, columns=64, cell_width=4):
    """Render selected *signal_names* of a parsed VCD as ASCII.

    Parameters
    ----------
    vcd:
        A :class:`~repro.kernel.vcd_reader.VcdFile`.
    signal_names:
        Names to show, top to bottom.
    t_start, t_end:
        Window in kernel time (defaults to the whole dump).
    step_ps:
        Sampling step; defaults to the window split into *columns*
        samples.
    cell_width:
        Characters per sample for vector lanes.
    """
    if t_end is None:
        t_end = vcd.end_time
    if t_end <= t_start:
        raise ValueError("empty window")
    if step_ps is None:
        step_ps = max(1, (t_end - t_start) // columns)
    times = list(range(t_start, t_end, step_ps))[:columns]

    label_width = max(len(name) for name in signal_names) + 1
    lines = []
    for name in signal_names:
        signal = vcd[name]
        values = _sample(signal, times)
        if signal.width == 1:
            body = _render_scalar(values)
        else:
            body = _render_vector(values, cell_width)
        lines.append("%s|%s" % (name.ljust(label_width), body))
    footer = "%s|%s ps .. %s ps (step %s ps)" % (
        " " * label_width, t_start, t_end, step_ps,
    )
    lines.append(footer)
    return "\n".join(lines)


def render_live_signals(sim, signals, duration_ps, names=None,
                        **kwargs):
    """Convenience: trace *signals* to a temporary VCD while running
    the simulation for *duration_ps*, then render them."""
    import os
    import tempfile

    from ..kernel import VcdTracer, load_vcd

    names = names or [signal.name.split(".")[-1] for signal in signals]
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "live.vcd")
        tracer = VcdTracer(sim, path)
        for signal, name in zip(signals, names):
            tracer.trace(signal, name)
        start = sim.now
        sim.run(until=start + duration_ps)
        tracer.close()
        vcd = load_vcd(path)
        return render_waveform(vcd, names, t_start=start,
                               t_end=start + duration_ps, **kwargs)
