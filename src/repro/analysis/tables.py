"""Text tables for experiment reports (paper Table 1 / Fig. 6 styles)."""

from __future__ import annotations

from ..power.instructions import (
    TABLE1_INSTRUCTIONS,
    is_arbitration,
    is_data_transfer,
)
from ..power.ledger import PAPER_BLOCKS


class TextTable:
    """Minimal fixed-width table formatter.

    >>> t = TextTable(["name", "value"])
    >>> t.add_row(["x", 1])
    >>> print(t.format())        # doctest: +NORMALIZE_WHITESPACE
    name | value
    -----+------
    x    | 1
    """

    def __init__(self, headers):
        self.headers = [str(header) for header in headers]
        self.rows = []

    def add_row(self, cells):
        if len(cells) != len(self.headers):
            raise ValueError("row width mismatch")
        self.rows.append([str(cell) for cell in cells])

    def format(self):
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = []
        header = " | ".join(
            header.ljust(width)
            for header, width in zip(self.headers, widths)
        )
        lines.append(header)
        lines.append("-+-".join("-" * width for width in widths))
        for row in self.rows:
            lines.append(" | ".join(
                cell.ljust(width) for cell, width in zip(row, widths)
            ))
        return "\n".join(lines)

    def __str__(self):
        return self.format()


def format_energy(joules):
    """Engineering-formatted energy string.

    >>> format_energy(14.7e-12)
    '14.70 pJ'
    """
    magnitude = abs(joules)
    if magnitude >= 1e-3:
        return "%.2f mJ" % (joules * 1e3)
    if magnitude >= 1e-6:
        return "%.2f uJ" % (joules * 1e6)
    if magnitude >= 1e-9:
        return "%.2f nJ" % (joules * 1e9)
    if magnitude >= 1e-12:
        return "%.2f pJ" % (joules * 1e12)
    return "%.2f fJ" % (joules * 1e15)


def instruction_energy_table(ledger, instructions=None,
                             include_unlisted=True):
    """Build the paper's Table 1 from a ledger.

    Parameters
    ----------
    instructions:
        Row order; defaults to the paper's Table 1 rows followed (when
        *include_unlisted*) by any other executed instruction sorted by
        descending energy.
    """
    if instructions is None:
        instructions = list(TABLE1_INSTRUCTIONS)
        if include_unlisted:
            extra = sorted(
                (name for name in ledger.instructions
                 if name not in instructions),
                key=lambda name: -ledger.instructions[name].energy,
            )
            instructions.extend(extra)

    table = TextTable([
        "Instruction", "Count", "Average energy",
        "Total energy", "Share",
    ])
    for name in instructions:
        stats = ledger.instruction_stats(name)
        table.add_row([
            name,
            stats.count,
            format_energy(stats.average_energy),
            format_energy(stats.energy),
            "%.2f %%" % (100.0 * ledger.instruction_share(name)),
        ])
    table.add_row([
        "Total simulation energy", ledger.cycles,
        "", format_energy(ledger.total_energy), "100.00 %",
    ])
    return table


def instruction_class_summary(ledger):
    """The paper's headline split: data transfer vs arbitration vs rest."""
    data = ledger.class_share(is_data_transfer)
    arbitration = ledger.class_share(is_arbitration)
    other = max(0.0, 1.0 - data - arbitration)
    table = TextTable(["Instruction class", "Energy share"])
    table.add_row(["data transfer (no handover)", "%.2f %%" % (100 * data)])
    table.add_row(["bus arbitration (handover)",
                   "%.2f %%" % (100 * arbitration)])
    table.add_row(["other (plain idle)", "%.2f %%" % (100 * other)])
    return table


def block_contribution_table(ledger, blocks=PAPER_BLOCKS):
    """Fig. 6: per-sub-block energy contribution."""
    table = TextTable(["Sub-block", "Energy", "Share"])
    ordered = sorted(blocks,
                     key=lambda block: -ledger.block_energy.get(block, 0.0))
    for block in ordered:
        energy = ledger.block_energy.get(block, 0.0)
        table.add_row([
            block, format_energy(energy),
            "%.2f %%" % (100.0 * ledger.block_share(block)),
        ])
    return table


def comparison_table(rows, headers):
    """Generic paper-vs-measured comparison table.

    *rows* is a list of tuples matching *headers*.
    """
    table = TextTable(headers)
    for row in rows:
        table.add_row(row)
    return table
