"""Full reproduction report: run every experiment and render the
paper-vs-measured summary (the content of EXPERIMENTS.md).
"""

from __future__ import annotations

from . import experiments


def run_all(seed=1, quick=False):
    """Run every experiment; returns the list of ExperimentResult.

    ``quick=True`` shrinks run lengths for smoke testing.
    """
    from ..kernel import us
    duration = us(10) if quick else None
    samples = 120 if quick else 400
    results = [
        experiments.run_table1(seed=seed, duration_ps=duration),
        experiments.run_power_figure("TOTAL", seed=seed),
        experiments.run_power_figure("ARB", seed=seed),
        experiments.run_power_figure("M2S", seed=seed),
        experiments.run_fig6(seed=seed, duration_ps=duration),
        experiments.run_overhead(seed=seed, duration_ps=duration,
                                 repeats=1 if quick else 3),
        experiments.run_macromodel_validation(samples=samples),
        experiments.run_granularity_ablation(seed=seed,
                                             duration_ps=duration),
        experiments.run_model_styles_ablation(seed=seed,
                                              duration_ps=duration),
        experiments.run_design_space(seed=seed, duration_ps=duration),
    ]
    return results


def render_report(results):
    """Concatenate experiment summaries into one report string."""
    sections = [result.summary() for result in results]
    passed = sum(1 for result in results if result.passed)
    header = (
        "AMBA AHB system-level power analysis - reproduction report\n"
        "%d/%d experiments passed all shape checks\n"
        % (passed, len(results))
    )
    return header + "\n\n".join(sections)


def main():  # pragma: no cover - CLI convenience
    print(render_report(run_all()))


if __name__ == "__main__":  # pragma: no cover
    main()
