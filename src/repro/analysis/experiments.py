"""One runner per paper artefact (see DESIGN.md §4).

Every function returns an :class:`ExperimentResult` holding formatted
tables, raw metrics and pass/fail *shape checks* — the reproduction
targets are distributional shapes (who dominates, by what factor), not
the paper's absolute joules, since the technology constants behind
Table 1 were never published.
"""

from __future__ import annotations

import time

from ..kernel import us
from ..power import (
    BLOCK_ARB,
    BLOCK_DEC,
    BLOCK_M2S,
    BLOCK_S2M,
    characterize_arbiter,
    characterize_decoder,
    characterize_mux,
    is_arbitration,
    is_data_transfer,
)
from ..workloads import build_paper_testbench
from .plots import plot_power_trace
from .tables import (
    block_contribution_table,
    comparison_table,
    format_energy,
    instruction_class_summary,
    instruction_energy_table,
)

#: Paper Table 1 reference values (average energy per instruction, J).
PAPER_TABLE1_AVERAGES = {
    "IDLE_HO_IDLE_HO": 14.7e-12,
    "IDLE_HO_WRITE": 16.7e-12,
    "READ_WRITE": 19.8e-12,
    "READ_IDLE_HO": 22.4e-12,
    "WRITE_READ": 14.7e-12,
}

#: Paper Table 1 reference energy shares.
PAPER_TABLE1_SHARES = {
    "IDLE_HO_IDLE_HO": 0.1149,
    "IDLE_HO_WRITE": 0.0006,
    "READ_IDLE_HO": 0.0114,
}

#: §6: data transfers ≈ 87 % of energy, arbitration ≈ 11.5 %.
PAPER_DATA_TRANSFER_SHARE = 0.873
PAPER_ARBITRATION_SHARE = 0.115


class ExperimentResult:
    """Outcome of one experiment runner."""

    def __init__(self, name):
        self.name = name
        self.tables = {}
        self.metrics = {}
        self.checks = {}
        self.notes = []

    def check(self, label, passed):
        """Record a named shape check."""
        self.checks[label] = bool(passed)
        return passed

    @property
    def passed(self):
        """True when every shape check passed."""
        return all(self.checks.values())

    def summary(self):
        """Human-readable multi-section report."""
        lines = ["== %s ==" % self.name]
        for label, table in self.tables.items():
            lines.append("")
            lines.append("-- %s --" % label)
            lines.append(str(table))
        if self.metrics:
            lines.append("")
            lines.append("-- metrics --")
            for key in sorted(self.metrics):
                lines.append("%s = %s" % (key, self.metrics[key]))
        if self.checks:
            lines.append("")
            lines.append("-- shape checks --")
            for label in sorted(self.checks):
                lines.append("[%s] %s"
                             % ("PASS" if self.checks[label] else "FAIL",
                                label))
        for note in self.notes:
            lines.append("note: %s" % note)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# E1: Table 1 — instruction energy analysis
# ---------------------------------------------------------------------------

def run_table1(seed=1, duration_ps=None, **testbench_kwargs):
    """Reproduce Table 1 on the paper's 50 µs, 100 MHz run."""
    duration_ps = duration_ps or us(50)
    testbench = build_paper_testbench(seed=seed, **testbench_kwargs)
    testbench.run(duration_ps)
    testbench.assert_protocol_clean()
    ledger = testbench.ledger
    ledger.check_conservation()

    result = ExperimentResult("Table 1: instruction energy analysis")
    result.tables["instruction energies"] = \
        instruction_energy_table(ledger)
    result.tables["instruction classes"] = \
        instruction_class_summary(ledger)

    rows = []
    for name, paper_avg in PAPER_TABLE1_AVERAGES.items():
        stats = ledger.instruction_stats(name)
        rows.append((name, format_energy(paper_avg),
                     format_energy(stats.average_energy)))
    result.tables["paper vs measured (average energy)"] = comparison_table(
        rows, ["Instruction", "Paper avg", "Measured avg"],
    )

    data_share = ledger.class_share(is_data_transfer)
    arb_share = ledger.class_share(is_arbitration)
    result.metrics["data_transfer_share"] = data_share
    result.metrics["arbitration_share"] = arb_share
    result.metrics["total_energy_j"] = ledger.total_energy
    result.metrics["cycles"] = ledger.cycles
    result.metrics["transactions"] = testbench.transactions_completed()

    result.check(
        "data transfers dominate (paper 87.3%, band 80-95%)",
        0.80 <= data_share <= 0.95,
    )
    result.check(
        "arbitration is minor (paper 11.5%, band 5-20%)",
        0.05 <= arb_share <= 0.20,
    )
    transfer_avgs = [
        ledger.instruction_stats(name).average_energy
        for name in ("WRITE_READ", "READ_WRITE")
    ]
    result.check(
        "transfer instruction averages in the paper's pJ decade",
        all(5e-12 <= avg <= 40e-12 for avg in transfer_avgs),
    )
    top_two = sorted(ledger.instructions,
                     key=lambda name: -ledger.instructions[name].energy)[:2]
    result.check(
        "WRITE_READ and READ_WRITE are the top energy consumers",
        set(top_two) == {"WRITE_READ", "READ_WRITE"},
    )
    read_write = ledger.instruction_stats("READ_WRITE").average_energy
    write_read = ledger.instruction_stats("WRITE_READ").average_energy
    result.check(
        "READ_WRITE costs more per execution than WRITE_READ (paper "
        "19.8 vs 14.7 pJ)",
        read_write > write_read,
    )
    result.notes.append(
        "absolute joules depend on unpublished technology constants; "
        "shape targets per DESIGN.md §4",
    )
    result.ledger = ledger
    return result


# ---------------------------------------------------------------------------
# E2-E4: Figures 3-5 — power traces over the first 4 us
# ---------------------------------------------------------------------------

def run_power_figure(block="TOTAL", seed=1, duration_ps=None,
                     window_ns=100, **testbench_kwargs):
    """Reproduce one of Figs. 3-5: a windowed power trace.

    ``block`` is ``"TOTAL"`` (Fig. 3), ``"ARB"`` (Fig. 4) or ``"M2S"``
    (Fig. 5).
    """
    duration_ps = duration_ps or us(4)
    testbench = build_paper_testbench(seed=seed, with_traces=True,
                                      **testbench_kwargs)
    testbench.run(duration_ps)
    testbench.assert_protocol_clean()
    traces = testbench.monitor.traces

    figure_names = {"TOTAL": "Figure 3: total AHB power",
                    "ARB": "Figure 4: arbiter power",
                    "M2S": "Figure 5: M2S multiplexer power"}
    result = ExperimentResult(figure_names.get(block,
                                               "%s power trace" % block))
    trace = traces[block]
    window_ps = window_ns * 1000
    centers, power = trace.windowed(window_ps, t_end=duration_ps)
    result.tables["trace"] = plot_power_trace(
        trace, window_ps, t_end=duration_ps,
        title="%s over the first %.0f us (window %d ns)"
        % (block, duration_ps / 1e6, window_ns),
    )
    result.metrics["mean_power_w"] = float(power.mean())
    result.metrics["peak_power_w"] = float(power.max())
    result.metrics["windows"] = len(power)
    result.metrics["energy_j"] = trace.energy_between(0, duration_ps)

    total_energy = traces["TOTAL"].energy_between(0, duration_ps)
    arb_energy = traces[BLOCK_ARB].energy_between(0, duration_ps)
    m2s_energy = traces[BLOCK_M2S].energy_between(0, duration_ps)
    result.check("trace is non-trivial (power varies)",
                 float(power.max()) > float(power.min()))
    result.check(
        "M2S mux dissipates far more than the arbiter "
        "(the paper's 'evident' Fig. 4 vs Fig. 5 gap)",
        m2s_energy > 4 * arb_energy,
    )
    result.check("block energy bounded by total",
                 trace.energy_between(0, duration_ps)
                 <= total_energy + 1e-18)
    result.trace = trace
    result.windowed = (centers, power)
    return result


# ---------------------------------------------------------------------------
# E5: Figure 6 — sub-block contributions
# ---------------------------------------------------------------------------

def run_fig6(seed=1, duration_ps=None, **testbench_kwargs):
    """Reproduce Fig. 6: per-sub-block share of bus energy."""
    duration_ps = duration_ps or us(50)
    testbench = build_paper_testbench(seed=seed, **testbench_kwargs)
    testbench.run(duration_ps)
    testbench.assert_protocol_clean()
    ledger = testbench.ledger

    result = ExperimentResult("Figure 6: AHB sub-block power contribution")
    result.tables["block contributions"] = block_contribution_table(ledger)
    shares = {block: ledger.block_share(block)
              for block in (BLOCK_M2S, BLOCK_S2M, BLOCK_DEC, BLOCK_ARB)}
    for block, share in shares.items():
        result.metrics["share_%s" % block] = share

    result.check("M2S is the dominant consumer",
                 shares[BLOCK_M2S] == max(shares.values()))
    result.check("data-path muxes dominate control blocks",
                 shares[BLOCK_M2S] + shares[BLOCK_S2M]
                 > 4 * (shares[BLOCK_DEC] + shares[BLOCK_ARB]))
    result.check("arbiter and decoder are each minor (< 10%)",
                 shares[BLOCK_DEC] < 0.10 and shares[BLOCK_ARB] < 0.10)
    result.ledger = ledger
    return result


# ---------------------------------------------------------------------------
# E6: instrumentation overhead (the paper's 'doubling in simulation time')
# ---------------------------------------------------------------------------

def run_overhead(seed=1, duration_ps=None, repeats=3):
    """Measure the simulation-time cost of power analysis.

    The paper reports "a doubling in the simulation time" with the
    POWERTEST instrumentation compiled in.
    """
    duration_ps = duration_ps or us(50)

    def timed(power_analysis, style):
        best = float("inf")
        for _ in range(repeats):
            testbench = build_paper_testbench(
                seed=seed, power_analysis=power_analysis,
                monitor_style=style, checker=False,
            )
            start = time.perf_counter()
            testbench.run(duration_ps)
            best = min(best, time.perf_counter() - start)
        return best

    baseline = timed(False, "none")
    instrumented = timed(True, "global")
    ratio = instrumented / baseline if baseline > 0 else float("inf")

    result = ExperimentResult(
        "Instrumentation overhead (POWERTEST on vs off)")
    result.tables["runtimes"] = comparison_table(
        [("functional only (POWERTEST off)", "%.3f s" % baseline),
         ("with power analysis (global)", "%.3f s" % instrumented),
         ("slowdown", "%.2fx (paper: ~2x)" % ratio)],
        ["Configuration", "Wall-clock"],
    )
    result.metrics["baseline_s"] = baseline
    result.metrics["instrumented_s"] = instrumented
    result.metrics["ratio"] = ratio
    result.check("instrumentation costs measurable but bounded time "
                 "(paper ~2x; accept 1.05-6x)",
                 1.05 <= ratio <= 6.0)
    return result


# ---------------------------------------------------------------------------
# E7: macromodel validation against gate level (the paper's SIS step)
# ---------------------------------------------------------------------------

def run_macromodel_validation(samples=400):
    """Fit and validate the sub-block macromodels against gate level."""
    result = ExperimentResult(
        "Macromodel validation against gate level (SIS substitute)")
    rows = []

    decoder4 = characterize_decoder(4, samples=samples)
    decoder8 = characterize_decoder(8, samples=samples)
    mux_m2s = characterize_mux(3, 32, samples=samples)
    mux_s2m = characterize_mux(4, 32, samples=samples)
    arbiter = characterize_arbiter(3, samples=samples)

    for label, fit in (("decoder n_O=4", decoder4),
                       ("decoder n_O=8", decoder8),
                       ("mux 3x32 (M2S-like)", mux_m2s),
                       ("mux 4x32 (S2M-like)", mux_s2m),
                       ("arbiter 3 masters", arbiter)):
        rows.append((label,
                     "%.1f %%" % (100 * fit.mean_relative_error),
                     "%.2f %%" % (100 * fit.total_energy_error)))
        result.metrics["rel_err_%s" % label.split()[0]] = \
            fit.mean_relative_error

    result.tables["fit quality"] = comparison_table(
        rows, ["Block", "Mean |error| / mean energy", "Total-energy error"],
    )
    result.check("decoder macromodel linear in HD_IN (rel err < 15%)",
                 decoder4.mean_relative_error < 0.15
                 and decoder8.mean_relative_error < 0.15)
    result.check("mux macromodel captures gate-level energy "
                 "(total err < 10%)",
                 mux_m2s.total_energy_error < 0.10
                 and mux_s2m.total_energy_error < 0.10)
    result.check("arbiter FSM model captures gate-level energy "
                 "(total err < 10%)",
                 arbiter.total_energy_error < 0.10)
    result.fits = {
        "decoder4": decoder4, "decoder8": decoder8,
        "mux_m2s": mux_m2s, "mux_s2m": mux_s2m, "arbiter": arbiter,
    }
    return result


# ---------------------------------------------------------------------------
# E8/E9 helpers and ablations
# ---------------------------------------------------------------------------

def characterize_instruction_energies(seed=2, duration_ps=None):
    """Produce the instruction → average-energy table for the local
    monitor style (a characterisation run with the global monitor)."""
    duration_ps = duration_ps or us(50)
    testbench = build_paper_testbench(seed=seed, checker=False)
    testbench.run(duration_ps)
    return {
        name: stats.average_energy
        for name, stats in testbench.ledger.instructions.items()
    }


def run_granularity_ablation(seed=1, duration_ps=None,
                             training_seed=2, window_ns=100):
    """§3 trade-off: instruction-table model vs per-cycle reference.

    The coarse single-number model (one average energy per cycle) and
    the instruction-granularity model are both calibrated on a
    *different* seed, then compared to the per-cycle global monitor on
    the evaluation seed.  Two figures of merit:

    * total-energy error — easy even for the coarse model on a
      statistically stationary workload;
    * windowed-power RMSE — the *time-resolved* accuracy that drives
      hot-spot identification, where granularity genuinely pays.
    """
    import numpy as np

    duration_ps = duration_ps or us(50)
    table = characterize_instruction_energies(seed=training_seed,
                                              duration_ps=duration_ps)

    reference = build_paper_testbench(seed=seed, checker=False,
                                      with_traces=True)
    reference.run(duration_ps)
    ref_energy = reference.total_energy
    ref_cycles = reference.ledger.cycles

    instr_tb = build_paper_testbench(seed=seed, monitor_style="local",
                                     instruction_energies=table,
                                     checker=False, with_traces=True)
    instr_tb.run(duration_ps)
    instr_energy = instr_tb.total_energy

    coarse_per_cycle = sum(
        stats.energy for stats in
        build_paper_testbench(seed=training_seed, checker=False)
        .run(duration_ps).ledger.instructions.values()
    ) / ref_cycles
    coarse_energy = coarse_per_cycle * ref_cycles

    window_ps = window_ns * 1000
    _, p_ref = reference.monitor.traces["TOTAL"].windowed(
        window_ps, t_end=duration_ps)
    _, p_instr = instr_tb.monitor.traces["TOTAL"].windowed(
        window_ps, t_end=duration_ps)
    cycle_s = 1.0 / 100e6
    p_coarse = np.full_like(p_ref, coarse_per_cycle / cycle_s)
    scale = float(p_ref.mean()) or 1.0
    rmse_instr = float(np.sqrt(np.mean((p_instr - p_ref) ** 2))) / scale
    rmse_coarse = float(np.sqrt(np.mean((p_coarse - p_ref) ** 2))) / scale

    result = ExperimentResult(
        "Ablation: model granularity (coarse vs instruction vs cycle)")
    err_instr = abs(instr_energy - ref_energy) / ref_energy
    err_coarse = abs(coarse_energy - ref_energy) / ref_energy
    result.tables["granularity"] = comparison_table(
        [("per-cycle macromodels (reference)",
          format_energy(ref_energy), "-", "-"),
         ("instruction-table (local style)",
          format_energy(instr_energy), "%.2f %%" % (100 * err_instr),
          "%.1f %%" % (100 * rmse_instr)),
         ("single average energy (coarse)",
          format_energy(coarse_energy), "%.2f %%" % (100 * err_coarse),
          "%.1f %%" % (100 * rmse_coarse))],
        ["Model granularity", "Total energy", "Energy error",
         "Windowed-power RMSE"],
    )
    result.metrics["error_instruction"] = err_instr
    result.metrics["error_coarse"] = err_coarse
    result.metrics["rmse_instruction"] = rmse_instr
    result.metrics["rmse_coarse"] = rmse_coarse
    result.check("instruction table within 15% of per-cycle reference",
                 err_instr < 0.15)
    result.check("instruction granularity tracks power over time "
                 "better than the coarse average",
                 rmse_instr < rmse_coarse)
    return result


def run_model_styles_ablation(seed=1, duration_ps=None):
    """Fig. 1 trade-off: private vs local vs global model styles."""
    duration_ps = duration_ps or us(50)
    table = characterize_instruction_energies(seed=seed + 1,
                                              duration_ps=duration_ps)

    outcomes = {}
    for style, kwargs in (
            ("global", {}),
            ("local", {"instruction_energies": table}),
            ("private", {})):
        testbench = build_paper_testbench(
            seed=seed, monitor_style=style, checker=False, **kwargs)
        start = time.perf_counter()
        testbench.run(duration_ps)
        elapsed = time.perf_counter() - start
        outcomes[style] = (testbench.total_energy, elapsed)

    reference_energy = outcomes["global"][0]
    result = ExperimentResult(
        "Ablation: power-model styles (Fig. 1)")
    rows = []
    for style in ("private", "local", "global"):
        energy, elapsed = outcomes[style]
        error = abs(energy - reference_energy) / reference_energy
        rows.append((style, format_energy(energy),
                     "%.2f %%" % (100 * error), "%.3f s" % elapsed))
        result.metrics["energy_%s" % style] = energy
        result.metrics["time_%s" % style] = elapsed
    result.tables["styles"] = comparison_table(
        rows, ["Style", "Total energy", "vs global", "Wall-clock"],
    )
    result.check(
        "all three styles agree on total energy within 40%",
        all(abs(outcomes[style][0] - reference_energy)
            <= 0.40 * reference_energy for style in outcomes),
    )
    result.check(
        "styles rank sensibly (every style produced nonzero energy)",
        all(outcomes[style][0] > 0 for style in outcomes),
    )
    return result


# ---------------------------------------------------------------------------
# E10: design-space exploration (§2 use case)
# ---------------------------------------------------------------------------

def run_design_space(seed=1, duration_ps=None):
    """Architecture exploration driven by the power dimension.

    Sweeps arbitration policy and slave wait states on the paper
    workload; reports energy, completed transactions and energy per
    transaction — the early-phase trade-off analysis the methodology
    exists to enable.
    """
    from ..amba import Arbitration
    duration_ps = duration_ps or us(50)

    rows = []
    outcomes = {}
    for policy in (Arbitration.FIXED_PRIORITY, Arbitration.ROUND_ROBIN,
                   Arbitration.TDMA):
        for waits in (0, 1, 2):
            testbench = build_paper_testbench(
                seed=seed, arbitration=policy,
                wait_states=[waits] * 3, checker=False,
            )
            testbench.run(duration_ps)
            energy = testbench.total_energy
            txns = testbench.transactions_completed()
            per_txn = energy / txns if txns else float("inf")
            label = "%s, %d wait states" % (policy, waits)
            outcomes[(policy, waits)] = (energy, txns, per_txn)
            rows.append((label, format_energy(energy), txns,
                         format_energy(per_txn)))

    result = ExperimentResult("Design-space exploration (energy vs "
                              "architecture)")
    result.tables["sweep"] = comparison_table(
        rows, ["Configuration", "Energy", "Transactions", "Energy/txn"],
    )
    zero_wait = outcomes[(Arbitration.FIXED_PRIORITY, 0)]
    two_wait = outcomes[(Arbitration.FIXED_PRIORITY, 2)]
    result.check("wait states reduce throughput",
                 two_wait[1] < zero_wait[1])
    result.check("every configuration completed work",
                 all(outcome[1] > 0 for outcome in outcomes.values()))
    result.outcomes = outcomes
    return result
