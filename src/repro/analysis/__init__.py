"""Experiment runners, tables and plots for the paper's evaluation."""

from .experiments import (
    PAPER_ARBITRATION_SHARE,
    PAPER_DATA_TRANSFER_SHARE,
    PAPER_TABLE1_AVERAGES,
    PAPER_TABLE1_SHARES,
    ExperimentResult,
    characterize_instruction_energies,
    run_design_space,
    run_fig6,
    run_granularity_ablation,
    run_macromodel_validation,
    run_model_styles_ablation,
    run_overhead,
    run_power_figure,
    run_table1,
)
from .export import (
    ledger_to_csv,
    ledger_to_rows,
    result_to_dict,
    results_to_json,
    run_summary,
    traces_to_csv,
)
from .plots import ascii_plot, plot_power_trace, sparkline
from .report import render_report, run_all
from .waveform import render_live_signals, render_waveform
from .tables import (
    TextTable,
    block_contribution_table,
    comparison_table,
    format_energy,
    instruction_class_summary,
    instruction_energy_table,
)

__all__ = [
    "ExperimentResult",
    "PAPER_ARBITRATION_SHARE",
    "PAPER_DATA_TRANSFER_SHARE",
    "PAPER_TABLE1_AVERAGES",
    "PAPER_TABLE1_SHARES",
    "TextTable",
    "ascii_plot",
    "block_contribution_table",
    "characterize_instruction_energies",
    "comparison_table",
    "format_energy",
    "instruction_class_summary",
    "instruction_energy_table",
    "ledger_to_csv",
    "ledger_to_rows",
    "plot_power_trace",
    "result_to_dict",
    "results_to_json",
    "run_summary",
    "traces_to_csv",
    "render_live_signals",
    "render_report",
    "render_waveform",
    "run_all",
    "run_design_space",
    "run_fig6",
    "run_granularity_ablation",
    "run_macromodel_validation",
    "run_model_styles_ablation",
    "run_overhead",
    "run_power_figure",
    "run_table1",
    "sparkline",
]
