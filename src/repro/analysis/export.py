"""Machine-readable export of experiment results.

Experiment runners return :class:`ExperimentResult` objects whose
tables are human text; downstream tooling (plotting scripts, CI
dashboards, regression trackers) needs structured data.  This module
serialises results to JSON and ledgers/traces to CSV.
"""

from __future__ import annotations

import json

from ..kernel.time import to_seconds


def result_to_dict(result):
    """Convert an :class:`ExperimentResult` into plain data."""
    return {
        "name": result.name,
        "passed": result.passed,
        "metrics": {key: value for key, value in result.metrics.items()},
        "checks": dict(result.checks),
        "notes": list(result.notes),
        "tables": {label: str(table)
                   for label, table in result.tables.items()},
    }


def results_to_json(results, fh=None, indent=2):
    """Serialise a list of results to JSON (returns the string)."""
    payload = {
        "experiments": [result_to_dict(result) for result in results],
        "passed": sum(1 for result in results if result.passed),
        "total": len(results),
    }
    text = json.dumps(payload, indent=indent, sort_keys=True)
    if fh is not None:
        fh.write(text)
    return text


def ledger_to_rows(ledger):
    """Flatten a ledger into (kind, key, count, energy_j, share) rows."""
    rows = []
    for name in sorted(ledger.instructions):
        stats = ledger.instructions[name]
        rows.append(("instruction", name, stats.count, stats.energy,
                     ledger.instruction_share(name)))
    for block in sorted(ledger.block_energy):
        rows.append(("block", block, ledger.cycles,
                     ledger.block_energy[block],
                     ledger.block_share(block)))
    rows.append(("total", "TOTAL", ledger.cycles, ledger.total_energy,
                 1.0 if ledger.total_energy else 0.0))
    return rows


def ledger_to_csv(ledger, fh):
    """Write a ledger as CSV to the open file *fh*."""
    fh.write("kind,key,count,energy_j,share\n")
    for kind, key, count, energy, share in ledger_to_rows(ledger):
        fh.write("%s,%s,%d,%.9e,%.6f\n"
                 % (kind, key, count, energy, share))


def traces_to_csv(traces, window_ps, fh, t_end=None):
    """Write a :class:`TraceSet` as wide CSV (one power column per
    block) to the open file *fh*."""
    names = sorted(traces.names())
    columns = {}
    centers = None
    for name in names:
        centers, power = traces[name].windowed(window_ps, t_end=t_end)
        columns[name] = power
    if centers is None:
        raise ValueError("trace set is empty")
    fh.write("time_s," + ",".join("%s_w" % name for name in names)
             + "\n")
    for index, center in enumerate(centers):
        fh.write("%.9e" % center)
        for name in names:
            fh.write(",%.9e" % columns[name][index])
        fh.write("\n")


def run_summary(system):
    """One-dict summary of a finished :class:`AhbSystem` run."""
    ledger = system.ledger
    elapsed = to_seconds(system.sim.now)
    summary = {
        "simulated_seconds": elapsed,
        "cycles": ledger.cycles if ledger else None,
        "transactions": system.transactions_completed(),
        "handovers": system.bus.arbiter.handover_count,
        "total_energy_j": ledger.total_energy if ledger else None,
        "average_power_w": (ledger.average_power(elapsed)
                            if ledger and elapsed > 0 else None),
        "protocol_violations": (len(system.checker.violations)
                                if system.checker else None),
    }
    if ledger:
        summary["block_shares"] = {
            block: ledger.block_share(block)
            for block in ledger.block_energy
        }
    return summary
