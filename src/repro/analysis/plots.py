"""ASCII plotting for power traces (paper Figs. 3-5).

Terminal-friendly line plots so benchmark output shows the *shape* of
the power-versus-time figures without a graphics stack; traces can also
be exported to CSV via :meth:`repro.power.PowerTrace.to_csv` for
external plotting.
"""

from __future__ import annotations

import numpy as np


def ascii_plot(xs, ys, width=72, height=16, title="", x_label="",
               y_label="", y_unit=""):
    """Render an XY series as an ASCII chart string."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.size == 0 or ys.size == 0:
        return "%s\n(no data)" % title
    if xs.size != ys.size:
        raise ValueError("x/y length mismatch")

    y_min = float(ys.min())
    y_max = float(ys.max())
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min = float(xs.min())
    x_max = float(xs.max())
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    # Bucket samples into columns; draw the column mean.
    columns = np.clip(
        ((xs - x_min) / (x_max - x_min) * (width - 1)).astype(int),
        0, width - 1,
    )
    for column in range(width):
        mask = columns == column
        if not mask.any():
            continue
        value = float(ys[mask].mean())
        row = int(round((value - y_min) / (y_max - y_min) * (height - 1)))
        row = height - 1 - min(max(row, 0), height - 1)
        grid[row][column] = "*"
        # Fill downwards lightly for readability.
        for below in range(row + 1, height):
            if grid[below][column] == " ":
                grid[below][column] = "."

    lines = []
    if title:
        lines.append(title)
    top_label = "%.3g%s" % (y_max, y_unit)
    bottom_label = "%.3g%s" % (y_min, y_unit)
    label_width = max(len(top_label), len(bottom_label))
    for index, row_cells in enumerate(grid):
        if index == 0:
            prefix = top_label.rjust(label_width)
        elif index == height - 1:
            prefix = bottom_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append("%s |%s" % (prefix, "".join(row_cells)))
    lines.append("%s +%s" % (" " * label_width, "-" * width))
    x_line = "%s  %-20s%s" % (
        " " * label_width,
        "%.3g" % x_min,
        ("%.3g %s" % (x_max, x_label)).rjust(width - 20),
    )
    lines.append(x_line)
    if y_label:
        lines.append("y: %s" % y_label)
    return "\n".join(lines)


def plot_power_trace(trace, window_ps, title=None, t_start=0, t_end=None,
                     width=72, height=14):
    """ASCII plot of a :class:`~repro.power.PowerTrace` in milliwatts."""
    centers, power = trace.windowed(window_ps, t_start=t_start,
                                    t_end=t_end)
    return ascii_plot(
        centers * 1e6, power * 1e3, width=width, height=height,
        title=title or ("%s power" % trace.name),
        x_label="us", y_unit=" mW", y_label="window-averaged power [mW]",
    )


def sparkline(values, levels=" .:-=+*#%@"):
    """One-line intensity strip of *values* (for quick summaries)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return ""
    low = float(values.min())
    high = float(values.max())
    if high == low:
        return levels[0] * values.size
    indices = ((values - low) / (high - low)
               * (len(levels) - 1)).astype(int)
    return "".join(levels[index] for index in indices)
