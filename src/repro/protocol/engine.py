"""The runtime AHB compliance engine.

:class:`ComplianceEngine` registers a kernel process on the bus clock
that snapshots the committed shared signals every cycle
(:class:`~repro.protocol.rules.CycleView`) and runs the rule catalogue
of :mod:`repro.protocol.rules` over consecutive snapshots.  Every
violation becomes a structured :class:`ProtocolViolation` carrying the
kernel time, the cycle index, the rule id with its AMBA spec reference,
and a full signal snapshot — enough to diff two runs or feed the
replay shrinker without re-simulating.

Severity is configurable per engine and per rule:

``record``
    Collect the violation silently (campaigns, batch analysis).
``warn``
    Collect, and print the first violation of each rule to stderr.
``raise``
    Raise :class:`ProtocolComplianceError` at the violating cycle —
    the simulation dies exactly where the protocol does.
"""

from __future__ import annotations

import sys

from ..kernel import Module
from .rules import (
    CycleView,
    advisory_rules,
    is_mandatory,
    mandatory_rules,
    rule_info,
)

#: Accepted severity levels, least to most drastic.
SEVERITIES = ("record", "warn", "raise")


class ProtocolComplianceError(AssertionError):
    """Raised in ``raise`` severity at the first violating cycle.

    Subclasses :class:`AssertionError` so existing
    ``assert_protocol_clean``-style callers and test harnesses catch
    it without change.
    """

    def __init__(self, violation):
        super().__init__(str(violation))
        self.violation = violation


class ProtocolViolation:
    """One structured rule violation.

    Attributes
    ----------
    time:
        Kernel time (ps) of the violating cycle.
    cycle:
        Index of the violating cycle, counted from the engine's first
        observed clock edge — the coordinate replay traces compare.
    rule:
        Rule id from the catalogue (e.g. ``"stall-stability"``).
    spec:
        AMBA rev 2.0 section reference, or ``None`` for custom rules.
    message:
        Human-readable description.
    snapshot:
        Committed signal values of the violating cycle (dict).
    """

    __slots__ = ("time", "cycle", "rule", "spec", "message", "snapshot")

    def __init__(self, time, cycle, rule, message, spec=None,
                 snapshot=None):
        self.time = time
        self.cycle = cycle
        self.rule = rule
        self.spec = spec
        self.message = message
        self.snapshot = snapshot or {}

    @property
    def mandatory(self):
        """True when the violated rule is a spec requirement."""
        return is_mandatory(self.rule)

    def to_dict(self):
        """JSON-friendly representation (used by replay traces)."""
        return {
            "time_ps": self.time,
            "cycle": self.cycle,
            "rule": self.rule,
            "spec": self.spec,
            "mandatory": self.mandatory,
            "message": self.message,
            "snapshot": dict(self.snapshot),
        }

    def __repr__(self):
        return "ProtocolViolation(t=%d, %s: %s)" % (
            self.time, self.rule, self.message,
        )


class ComplianceEngine(Module):
    """Runtime protocol-compliance monitor for one AHB bus.

    Parameters
    ----------
    bus:
        The :class:`~repro.amba.bus.AhbBus` to watch.
    severity:
        Global severity: ``"record"``, ``"warn"`` or ``"raise"``.
    severity_overrides:
        Optional ``rule id -> severity`` mapping taking precedence over
        the global severity for individual rules.
    advisory:
        Include the advisory liveness rules (wait-limit,
        retry-livelock, split-release).  The legacy
        :class:`~repro.amba.AhbProtocolChecker` facade disables them to
        keep its historical spec-requirements-only behaviour.
    wait_limit, retry_limit, split_limit:
        Thresholds of the advisory rules (``None`` disables one rule).
        Pick them *below* the watchdog's recovery timeouts so a
        campaign records which liveness bound a fault broke before the
        watchdog repairs it.
    rules:
        Explicit rule instances to use instead of the built-in
        catalogue (the two sets can be combined by passing
        ``mandatory_rules() + [MyRule()]``).
    """

    def __init__(self, sim, name, bus, severity="record",
                 severity_overrides=None, advisory=True, wait_limit=16,
                 retry_limit=4, split_limit=32, rules=None, parent=None):
        super().__init__(sim, name, parent=parent)
        if severity not in SEVERITIES:
            raise ValueError("unknown severity %r (one of %s)"
                             % (severity, ", ".join(SEVERITIES)))
        self.bus = bus
        self.severity = severity
        self.severity_overrides = dict(severity_overrides or {})
        for rule_id, level in self.severity_overrides.items():
            if level not in SEVERITIES:
                raise ValueError("unknown severity %r for rule %r"
                                 % (level, rule_id))
        if rules is None:
            rules = mandatory_rules()
            if advisory:
                rules += advisory_rules(wait_limit=wait_limit,
                                        retry_limit=retry_limit,
                                        split_limit=split_limit)
        self.rules = list(rules)

        #: Recorded :class:`ProtocolViolation` objects, in order.
        self.violations = []
        #: rule id -> violation count.
        self.rule_counts = {}
        self.cycles_checked = 0
        self._prev = None
        self._warned = set()
        self.method(self._on_clk, [bus.clk.posedge], name="check",
                    initialize=False)

    # -- reporting -----------------------------------------------------

    @property
    def ok(self):
        """True when no violation (of any tier) has been recorded."""
        return not self.violations

    @property
    def mandatory_ok(self):
        """True when no *mandatory* (spec-requirement) rule fired —
        the bus traffic, including any watchdog recovery, was legal."""
        return not any(v.mandatory for v in self.violations)

    @property
    def first_violation(self):
        """The earliest recorded violation, or ``None``."""
        return self.violations[0] if self.violations else None

    def rules_tripped(self):
        """Rule ids that fired, in first-occurrence order."""
        seen = []
        for violation in self.violations:
            if violation.rule not in seen:
                seen.append(violation.rule)
        return tuple(seen)

    def raise_if_violations(self, limit=5):
        """Raise :class:`ProtocolComplianceError` summarising the first
        *limit* violations when any were recorded (post-run gate)."""
        if not self.violations:
            return
        first = self.violations[0]
        error = ProtocolComplianceError(first)
        error.args = (
            "protocol violations: %r" % (self.violations[:limit],),
        )
        raise error

    # -- per-cycle evaluation --------------------------------------------

    def _severity_for(self, rule_id):
        return self.severity_overrides.get(rule_id, self.severity)

    def _flag(self, rule_id, message, view):
        try:
            spec = rule_info(rule_id).spec
        except KeyError:
            spec = None
        violation = ProtocolViolation(
            view.time, view.cycle, rule_id, message, spec=spec,
            snapshot=view.snapshot(),
        )
        self.violations.append(violation)
        self.rule_counts[rule_id] = self.rule_counts.get(rule_id, 0) + 1
        severity = self._severity_for(rule_id)
        if severity == "raise":
            raise ProtocolComplianceError(violation)
        if severity == "warn" and rule_id not in self._warned:
            self._warned.add(rule_id)
            print("[%s] %r" % (self.name, violation), file=sys.stderr)

    def _on_clk(self):
        view = CycleView(self.bus, self.cycles_checked, self.sim.now)
        self.cycles_checked += 1
        for rule in self.rules:
            for rule_id, message in rule.check(self._prev, view) or ():
                self._flag(rule_id, message, view)
        self._prev = view

    # -- checkpoint support ---------------------------------------------

    def state_dict(self):
        """Engine + per-rule state.  Rule states are positional: the
        restored engine must have been built with the same rule list."""
        return {
            "violations": [v.to_dict() for v in self.violations],
            "rule_counts": dict(sorted(self.rule_counts.items())),
            "cycles_checked": self.cycles_checked,
            "prev": self._prev.to_state() if self._prev is not None
            else None,
            "warned": sorted(self._warned),
            "rules": [rule.state_dict() for rule in self.rules],
        }

    def load_state_dict(self, state):
        self.violations = [
            ProtocolViolation(
                record["time_ps"], record["cycle"], record["rule"],
                record["message"], spec=record["spec"],
                snapshot=record["snapshot"],
            )
            for record in state["violations"]
        ]
        self.rule_counts = dict(state["rule_counts"])
        self.cycles_checked = state["cycles_checked"]
        prev = state["prev"]
        self._prev = CycleView.from_state(prev) if prev is not None \
            else None
        self._warned = set(state["warned"])
        rule_states = state["rules"]
        if len(rule_states) != len(self.rules):
            raise ValueError(
                "checkpoint has %d rule states, engine has %d rules"
                % (len(rule_states), len(self.rules)))
        for rule, rule_state in zip(self.rules, rule_states):
            rule.load_state_dict(rule_state)

    def __repr__(self):
        return "ComplianceEngine(%r, rules=%d, violations=%d)" % (
            self.name, len(self.rules), len(self.violations),
        )
