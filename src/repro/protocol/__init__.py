"""Runtime AHB protocol-compliance engine.

The package splits into:

* :mod:`repro.protocol.rules` — the rule catalogue: per-cycle assertion
  monitors over committed bus signals, each tagged with its AMBA spec
  rev 2.0 section and a mandatory/advisory tier.
* :mod:`repro.protocol.engine` — :class:`ComplianceEngine`, the kernel
  process that drives the rules every clock cycle and turns findings
  into structured :class:`ProtocolViolation` records with configurable
  severity (record / warn / raise).

The legacy :class:`repro.amba.AhbProtocolChecker` is a thin facade over
this engine.
"""

from .engine import (
    SEVERITIES,
    ComplianceEngine,
    ProtocolComplianceError,
    ProtocolViolation,
)
from .rules import (
    CATALOGUE,
    CycleView,
    Rule,
    RuleInfo,
    advisory_rules,
    is_mandatory,
    mandatory_rules,
    rule_info,
)

__all__ = [
    "CATALOGUE",
    "ComplianceEngine",
    "CycleView",
    "ProtocolComplianceError",
    "ProtocolViolation",
    "Rule",
    "RuleInfo",
    "SEVERITIES",
    "advisory_rules",
    "is_mandatory",
    "mandatory_rules",
    "rule_info",
]
