"""The AHB compliance rule catalogue.

Each rule is a per-cycle assertion monitor over the *committed* shared
bus signals, checking one machine-verifiable guarantee of the AMBA spec
rev 2.0 (ARM IHI 0011A) — the same class of properties "Synthesis of
AMBA AHB from Formal Specification" (Godhal, Chatterjee, Henzinger)
states as LTL guarantees.  Rules come in two tiers:

**mandatory** — spec *requirements*; a violation means the bus traffic
is illegal and any conclusion drawn from the power model is void:

========================  =======  ==========================================
rule id                   spec     guarantee
========================  =======  ==========================================
``hgrant-one-hot``        §3.11.3  exactly one master is granted per cycle
``hsel-one-hot``          §3.10    exactly one slave (incl. default) selected
``alignment``             §3.4     beat addresses aligned to ``HSIZE``
``stall-stability``       §3.9.1   address phase held while ``HREADY`` low
``two-cycle-response``    §3.9.3   ERROR/RETRY/SPLIT take two cycles, the
                                   first with ``HREADY`` low
``idle-okay``             §3.9.1   an IDLE transfer gets a zero-wait OKAY
``grant-handover``        §3.11.1  a new bus owner starts IDLE or NONSEQ,
                                   never SEQ/BUSY
``seq-without-nonseq``    §3.5     a burst opens with NONSEQ
``burst-address``         §3.5.4   SEQ beats carry the architected address
``burst-control``         §3.5.1   control signals constant within a burst
``busy-outside-burst``    §3.4     BUSY only appears inside an open burst
========================  =======  ==========================================

**advisory** — spec recommendations and liveness bounds; individually
every cycle is legal but the unbounded repetition marks a sick system
(the pathologies :mod:`repro.faults.modes` injects):

========================  =======  ==========================================
``wait-limit``            §3.9.1   slaves should insert at most N wait
                                   states (spec recommends 16)
``retry-livelock``        §3.9.3   bounded consecutive RETRYs per master
``split-release``         §3.12    a SPLIT master is eventually released
========================  =======  ==========================================

Rules are stateless where possible; stateful ones (burst tracking,
streak counters) keep their state private and expose ``reset()``.
Every rule's ``check(prev, view)`` receives the previous and current
:class:`CycleView` and yields ``(rule_id, message)`` pairs.
"""

from __future__ import annotations

from ..amba.types import (
    HBURST,
    HRESP,
    HTRANS,
    aligned,
    is_active,
    next_burst_address,
)


class CycleView:
    """Committed values of the bus-visible signals at one rising edge.

    Includes the shared (multiplexed) signals plus the arbitration and
    selection vectors the one-hot and liveness rules need.
    """

    __slots__ = ("cycle", "time", "htrans", "haddr", "hwrite", "hsize",
                 "hburst", "hready", "hresp", "hmaster", "hmaster_d",
                 "hsels", "hgrants", "split_mask", "dactive")

    def __init__(self, bus, cycle, time):
        self.cycle = cycle
        self.time = time
        self.htrans = bus.htrans.value
        self.haddr = bus.haddr.value
        self.hwrite = bus.hwrite.value
        self.hsize = bus.hsize.value
        self.hburst = bus.hburst.value
        self.hready = bus.hready.value
        self.hresp = bus.hresp.value
        self.hmaster = bus.hmaster.value
        self.hmaster_d = bus.hmaster_d.value
        self.hsels = tuple(port.hsel.value for port in bus.slave_ports) \
            + (bus.default_slave_port.hsel.value,)
        self.hgrants = tuple(port.hgrant.value
                             for port in bus.master_ports)
        self.split_mask = bus.arbiter.split_mask.value
        self.dactive = bus.s2m_mux.dactive.value

    def snapshot(self):
        """JSON-friendly dict of the signal values this cycle."""
        return {
            "cycle": self.cycle,
            "time_ps": self.time,
            "HTRANS": self.htrans,
            "HADDR": self.haddr,
            "HWRITE": self.hwrite,
            "HSIZE": self.hsize,
            "HBURST": self.hburst,
            "HREADY": self.hready,
            "HRESP": self.hresp,
            "HMASTER": self.hmaster,
            "HMASTER_D": self.hmaster_d,
            "HSEL": list(self.hsels),
            "HGRANT": list(self.hgrants),
            "split_mask": self.split_mask,
        }

    def to_state(self):
        """Full slot dump for checkpointing (a superset of
        :meth:`snapshot`: includes ``dactive``, which the liveness
        rules consult)."""
        state = {slot: getattr(self, slot) for slot in self.__slots__}
        state["hsels"] = list(self.hsels)
        state["hgrants"] = list(self.hgrants)
        return state

    @classmethod
    def from_state(cls, state):
        """Rebuild a view from :meth:`to_state` output without a bus."""
        view = cls.__new__(cls)
        for slot in cls.__slots__:
            value = state[slot]
            if slot in ("hsels", "hgrants"):
                value = tuple(value)
            setattr(view, slot, value)
        return view


class RuleInfo:
    """Catalogue entry: identity and provenance of one rule id."""

    __slots__ = ("rule_id", "spec", "mandatory", "summary")

    def __init__(self, rule_id, spec, mandatory, summary):
        self.rule_id = rule_id
        self.spec = spec
        self.mandatory = mandatory
        self.summary = summary

    def __repr__(self):
        tier = "mandatory" if self.mandatory else "advisory"
        return "RuleInfo(%s, %s, %s)" % (self.rule_id, self.spec, tier)


#: rule id -> :class:`RuleInfo`, the authoritative catalogue.
CATALOGUE = {info.rule_id: info for info in (
    RuleInfo("hgrant-one-hot", "§3.11.3", True,
             "exactly one master granted per cycle"),
    RuleInfo("hsel-one-hot", "§3.10", True,
             "exactly one slave (incl. default) selected per cycle"),
    RuleInfo("alignment", "§3.4", True,
             "beat address aligned to the transfer size"),
    RuleInfo("stall-stability", "§3.9.1", True,
             "address phase held while HREADY is low"),
    RuleInfo("two-cycle-response", "§3.9.3", True,
             "non-OKAY responses take two cycles, the first with "
             "HREADY low"),
    RuleInfo("idle-okay", "§3.9.1", True,
             "IDLE transfers receive a zero-wait OKAY response"),
    RuleInfo("grant-handover", "§3.11.1", True,
             "a newly granted master starts IDLE or NONSEQ"),
    RuleInfo("seq-without-nonseq", "§3.5", True,
             "a burst opens with a NONSEQ transfer"),
    RuleInfo("burst-address", "§3.5.4", True,
             "SEQ beats carry the architected next address"),
    RuleInfo("burst-control", "§3.5.1", True,
             "control signals unchanged within a burst"),
    RuleInfo("busy-outside-burst", "§3.4", True,
             "BUSY appears only inside an open burst"),
    RuleInfo("wait-limit", "§3.9.1", False,
             "slaves insert a bounded number of wait states"),
    RuleInfo("retry-livelock", "§3.9.3", False,
             "bounded consecutive RETRY completions per master"),
    RuleInfo("split-release", "§3.12", False,
             "a split-masked master is eventually released"),
)}


def rule_info(rule_id):
    """Return the :class:`RuleInfo` for *rule_id* (KeyError if unknown)."""
    return CATALOGUE[rule_id]


def is_mandatory(rule_id):
    """True when *rule_id* is a spec requirement (not advisory).

    Unknown ids count as mandatory so user-registered custom rules
    fail safe.
    """
    info = CATALOGUE.get(rule_id)
    return True if info is None else info.mandatory


class Rule:
    """Base class of a per-cycle assertion monitor.

    ``emits`` names every rule id the monitor can flag (one monitor may
    guard several related catalogue entries, e.g. burst sequencing).
    """

    emits = ()

    def reset(self):
        """Discard accumulated state (new run on the same engine)."""

    def state_dict(self):
        """Checkpointable private state (empty for stateless rules)."""
        return {}

    def load_state_dict(self, state):
        """Restore :meth:`state_dict` output (no-op when stateless)."""

    def check(self, prev, view):  # pragma: no cover - interface
        """Yield ``(rule_id, message)`` for every violation this cycle.

        *prev* is the previous :class:`CycleView` (``None`` on the
        first checked cycle); *view* is the current one.
        """
        raise NotImplementedError


class SingleGrantRule(Rule):
    """HGRANT one-hot across masters (§3.11.3): the single-grant
    invariant — the bus has exactly one owner every cycle."""

    emits = ("hgrant-one-hot",)

    def check(self, prev, view):
        if sum(1 for grant in view.hgrants if grant) != 1:
            yield ("hgrant-one-hot",
                   "HGRANT vector %r is not one-hot" % (view.hgrants,))


class SingleSelectRule(Rule):
    """HSEL one-hot across slaves including the default slave (§3.10)."""

    emits = ("hsel-one-hot",)

    def check(self, prev, view):
        if sum(1 for sel in view.hsels if sel) != 1:
            yield ("hsel-one-hot",
                   "HSEL vector %r is not one-hot" % (view.hsels,))


class AlignmentRule(Rule):
    """Active transfers carry size-aligned addresses (§3.4)."""

    emits = ("alignment",)

    def check(self, prev, view):
        if is_active(HTRANS(view.htrans)) and \
                not aligned(view.haddr, view.hsize):
            yield ("alignment",
                   "address %#x unaligned for HSIZE=%d"
                   % (view.haddr, view.hsize))


class TwoCycleResponseRule(Rule):
    """Non-OKAY responses follow the two-cycle protocol (§3.9.3): the
    final (``HREADY=1``) response cycle must be preceded by at least
    one ``HREADY=0`` cycle carrying the same response."""

    emits = ("two-cycle-response",)

    def check(self, prev, view):
        if view.hresp == int(HRESP.OKAY) or not view.hready:
            return
        if prev is None or prev.hready or prev.hresp != view.hresp:
            yield ("two-cycle-response",
                   "final %s cycle not preceded by a wait cycle with "
                   "the same response" % HRESP(view.hresp).name)


class StallStabilityRule(Rule):
    """Address/control stable while the bus is stalled (§3.9.1), except
    for the spec-sanctioned cancel to IDLE during a non-OKAY response
    cycle (§3.9.3)."""

    emits = ("stall-stability",)

    def check(self, prev, view):
        if prev is None or prev.hready:
            return
        cancelled = (view.htrans == int(HTRANS.IDLE)
                     and prev.hresp != int(HRESP.OKAY))
        if cancelled:
            return
        held = (view.htrans == prev.htrans and view.haddr == prev.haddr
                and view.hwrite == prev.hwrite
                and view.hsize == prev.hsize
                and view.hburst == prev.hburst)
        if not held:
            yield ("stall-stability",
                   "address phase changed while HREADY low "
                   "(HTRANS %d->%d, HADDR %#x->%#x)"
                   % (prev.htrans, view.htrans, prev.haddr, view.haddr))


class IdleResponseRule(Rule):
    """An accepted IDLE transfer must receive a zero-wait OKAY response
    in its data phase (§3.9.1)."""

    emits = ("idle-okay",)

    def check(self, prev, view):
        if prev is None or not prev.hready:
            return
        if prev.htrans != int(HTRANS.IDLE):
            return
        if not view.hready or view.hresp != int(HRESP.OKAY):
            yield ("idle-okay",
                   "IDLE transfer answered HREADY=%d/%s instead of a "
                   "zero-wait OKAY"
                   % (view.hready, HRESP(view.hresp).name))


class GrantHandoverRule(Rule):
    """HTRANS legality per grant state (§3.11.1): the first address
    phase a master presents after taking bus ownership must be IDLE or
    NONSEQ — a burst never continues across an ownership change."""

    emits = ("grant-handover",)

    def check(self, prev, view):
        if prev is None or not prev.hready:
            return
        if view.hmaster == prev.hmaster:
            return
        if view.htrans in (int(HTRANS.SEQ), int(HTRANS.BUSY)):
            yield ("grant-handover",
                   "new owner M%d drove %s in its first address phase"
                   % (view.hmaster, HTRANS(view.htrans).name))


class BurstSequenceRule(Rule):
    """Burst structure across accepted address phases (§3.5): NONSEQ
    opens a burst; SEQ beats carry the architected next address with
    unchanged control; BUSY only appears inside an open burst."""

    emits = ("seq-without-nonseq", "burst-address", "burst-control",
             "busy-outside-burst")

    def __init__(self):
        self.reset()

    def reset(self):
        self._in_burst = False
        self._burst_addr = None
        self._burst_ctrl = None

    def check(self, prev, view):
        if prev is None or not prev.hready:
            return  # the previous address phase was not accepted
        htrans = HTRANS(view.htrans)
        if htrans == HTRANS.NONSEQ:
            self._in_burst = True
            self._burst_addr = view.haddr
            self._burst_ctrl = (view.hwrite, view.hsize, view.hburst,
                                view.hmaster)
        elif htrans == HTRANS.SEQ:
            if not self._in_burst:
                yield ("seq-without-nonseq",
                       "SEQ transfer with no open burst")
                return
            expected = next_burst_address(
                self._burst_addr, HBURST(self._burst_ctrl[2]),
                self._burst_ctrl[1],
            )
            if view.haddr != expected:
                yield ("burst-address",
                       "SEQ address %#x, expected %#x"
                       % (view.haddr, expected))
            ctrl = (view.hwrite, view.hsize, view.hburst, view.hmaster)
            if ctrl != self._burst_ctrl:
                yield ("burst-control",
                       "control changed mid-burst: %r -> %r"
                       % (self._burst_ctrl, ctrl))
            self._burst_addr = view.haddr
        elif htrans == HTRANS.BUSY:
            if not self._in_burst:
                yield ("busy-outside-burst",
                       "BUSY transfer with no open burst")
        else:  # IDLE
            self._in_burst = False

    def state_dict(self):
        return {
            "in_burst": self._in_burst,
            "burst_addr": self._burst_addr,
            "burst_ctrl": list(self._burst_ctrl)
            if self._burst_ctrl is not None else None,
        }

    def load_state_dict(self, state):
        self._in_burst = state["in_burst"]
        self._burst_addr = state["burst_addr"]
        ctrl = state["burst_ctrl"]
        self._burst_ctrl = tuple(ctrl) if ctrl is not None else None


class WaitLimitRule(Rule):
    """Bounded wait-state runs (§3.9.1 recommends at most 16).

    Flags once per stall episode, when the run of consecutive
    ``HREADY=0`` cycles first exceeds *limit*.
    """

    emits = ("wait-limit",)

    def __init__(self, limit=16):
        self.limit = int(limit)
        self.reset()

    def reset(self):
        self._streak = 0

    def check(self, prev, view):
        if view.hready:
            self._streak = 0
            return
        self._streak += 1
        if self._streak == self.limit + 1:
            yield ("wait-limit",
                   "HREADY low for more than %d consecutive cycles "
                   "(data-phase owner M%d)"
                   % (self.limit, view.hmaster_d))

    def state_dict(self):
        return {"streak": self._streak}

    def load_state_dict(self, state):
        self._streak = state["streak"]


class RetryLivelockRule(Rule):
    """Bounded consecutive RETRY completions per master (§3.9.3 makes
    unbounded retrying legal — which is exactly why a livelock needs a
    monitor).  Flags once per streak when it first exceeds *limit*.
    """

    emits = ("retry-livelock",)

    def __init__(self, limit=4):
        self.limit = int(limit)
        self.reset()

    def reset(self):
        self._counts = {}

    def check(self, prev, view):
        if not view.hready or not view.dactive:
            # No data phase completed this cycle; the streak holds.
            return
        owner = view.hmaster_d
        if view.hresp == int(HRESP.RETRY):
            count = self._counts.get(owner, 0) + 1
            self._counts[owner] = count
            if count == self.limit + 1:
                yield ("retry-livelock",
                       "master M%d saw more than %d consecutive RETRY "
                       "completions" % (owner, self.limit))
        else:
            self._counts[owner] = 0

    def state_dict(self):
        return {"counts": {str(owner): count for owner, count
                           in sorted(self._counts.items())}}

    def load_state_dict(self, state):
        self._counts = {int(owner): count for owner, count
                        in state["counts"].items()}


class SplitReleaseRule(Rule):
    """A split-masked master must eventually be released (§3.12).

    Flags once per parked episode, when a master has sat in the
    arbiter's split mask for more than *limit* cycles.
    """

    emits = ("split-release",)

    def __init__(self, limit=32):
        self.limit = int(limit)
        self.reset()

    def reset(self):
        self._ages = {}

    def check(self, prev, view):
        mask = view.split_mask
        for index in list(self._ages):
            if not (mask >> index) & 1:
                del self._ages[index]
        bit = 0
        while mask >> bit:
            if (mask >> bit) & 1:
                age = self._ages.get(bit, 0) + 1
                self._ages[bit] = age
                if age == self.limit + 1:
                    yield ("split-release",
                           "master M%d split-masked for more than %d "
                           "cycles" % (bit, self.limit))
            bit += 1

    def state_dict(self):
        return {"ages": {str(bit): age for bit, age
                         in sorted(self._ages.items())}}

    def load_state_dict(self, state):
        self._ages = {int(bit): age for bit, age
                      in state["ages"].items()}


def mandatory_rules():
    """Fresh instances of every mandatory (spec-requirement) rule."""
    return [
        SingleGrantRule(),
        SingleSelectRule(),
        AlignmentRule(),
        TwoCycleResponseRule(),
        StallStabilityRule(),
        IdleResponseRule(),
        GrantHandoverRule(),
        BurstSequenceRule(),
    ]


def advisory_rules(wait_limit=16, retry_limit=4, split_limit=32):
    """Fresh instances of the advisory (liveness-bound) rules.

    Any limit passed as ``None`` disables that rule.
    """
    rules = []
    if wait_limit is not None:
        rules.append(WaitLimitRule(wait_limit))
    if retry_limit is not None:
        rules.append(RetryLivelockRule(retry_limit))
    if split_limit is not None:
        rules.append(SplitReleaseRule(split_limit))
    return rules
