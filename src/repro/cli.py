"""Command-line interface.

::

    python -m repro.cli list
    python -m repro.cli run table1 --seed 3
    python -m repro.cli run fig5
    python -m repro.cli report --json results.json
    python -m repro.cli scenario wireless-modem --duration-us 50

Every command prints human-readable tables; ``--json`` additionally
writes machine-readable results.
"""

from __future__ import annotations

import argparse
import sys

from .analysis import experiments as _experiments
from .analysis.export import results_to_json, run_summary
from .analysis.report import render_report, run_all
from .kernel import us

#: Experiment name → zero-config runner.
EXPERIMENTS = {
    "table1": lambda seed: _experiments.run_table1(seed=seed),
    "fig3": lambda seed: _experiments.run_power_figure("TOTAL",
                                                       seed=seed),
    "fig4": lambda seed: _experiments.run_power_figure("ARB", seed=seed),
    "fig5": lambda seed: _experiments.run_power_figure("M2S", seed=seed),
    "fig6": lambda seed: _experiments.run_fig6(seed=seed),
    "overhead": lambda seed: _experiments.run_overhead(seed=seed),
    "validation": lambda seed: _experiments.run_macromodel_validation(),
    "granularity": lambda seed: _experiments.run_granularity_ablation(
        seed=seed),
    "styles": lambda seed: _experiments.run_model_styles_ablation(
        seed=seed),
    "design-space": lambda seed: _experiments.run_design_space(
        seed=seed),
}


def _cmd_list(args):
    print("experiments:")
    for name in sorted(EXPERIMENTS):
        print("  %s" % name)
    from .workloads import SCENARIOS
    print("scenarios:")
    for name in sorted(SCENARIOS):
        print("  %s" % name)
    return 0


def _cmd_run(args):
    runner = EXPERIMENTS.get(args.experiment)
    if runner is None:
        print("unknown experiment %r; try 'list'" % args.experiment,
              file=sys.stderr)
        return 2
    result = runner(args.seed)
    print(result.summary())
    if args.json:
        with open(args.json, "w") as fh:
            results_to_json([result], fh)
        print("wrote %s" % args.json)
    return 0 if result.passed else 1


def _cmd_report(args):
    results = run_all(seed=args.seed, quick=args.quick)
    print(render_report(results))
    if args.json:
        with open(args.json, "w") as fh:
            results_to_json(results, fh)
        print("wrote %s" % args.json)
    return 0 if all(result.passed for result in results) else 1


def _cmd_scenario(args):
    import json as _json

    from .workloads import build_scenario
    system = build_scenario(args.name, seed=args.seed)
    system.run(us(args.duration_us))
    system.assert_protocol_clean()
    summary = run_summary(system)
    print(_json.dumps(summary, indent=2, sort_keys=True))
    return 0


def build_parser():
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AMBA AHB system-level power analysis "
                    "(DATE 2003 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and scenarios") \
        .set_defaults(fn=_cmd_list)

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment")
    run_parser.add_argument("--seed", type=int, default=1)
    run_parser.add_argument("--json", help="also write JSON results")
    run_parser.set_defaults(fn=_cmd_run)

    report_parser = sub.add_parser("report",
                                   help="run every experiment")
    report_parser.add_argument("--seed", type=int, default=1)
    report_parser.add_argument("--quick", action="store_true",
                               help="shortened runs for smoke testing")
    report_parser.add_argument("--json", help="also write JSON results")
    report_parser.set_defaults(fn=_cmd_report)

    scenario_parser = sub.add_parser(
        "scenario", help="simulate a named SoC scenario")
    scenario_parser.add_argument("name")
    scenario_parser.add_argument("--seed", type=int, default=1)
    scenario_parser.add_argument("--duration-us", type=float,
                                 default=50.0)
    scenario_parser.set_defaults(fn=_cmd_scenario)
    return parser


def main(argv=None):
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
