"""Command-line interface.

::

    python -m repro.cli list
    python -m repro.cli run table1 --seed 3
    python -m repro.cli run fig5
    python -m repro.cli report --json results.json
    python -m repro.cli scenario wireless-modem --duration-us 50 \\
        --check-protocol raise
    python -m repro.cli faults --fault always-retry --fault hung-slave \\
        --record campaign.trace.json
    python -m repro.cli faults --jobs 4 --timeout 30 \\
        --journal campaign.jsonl
    python -m repro.cli faults --jobs 4 --timeout 30 \\
        --journal campaign.jsonl --resume
    python -m repro.cli faults --jobs 4 --journal campaign.jsonl \\
        --checkpoint-dir checkpoints/ --checkpoint-interval 500
    python -m repro.cli scenario wireless-modem --digest-interval 500 \\
        --record run.trace.json
    python -m repro.cli replay campaign.trace.json --shrink
    python -m repro.cli fuzz --corpus corpus/ --budget 1000 --seed 7 \\
        --jobs 4 --coverage-out coverage.json
    python -m repro.cli telemetry --duration-us 20 \\
        --trace-out trace.json --json metrics.json

Every command prints human-readable tables; ``--json`` additionally
writes machine-readable results.
"""

from __future__ import annotations

import argparse
import sys

from .analysis import experiments as _experiments
from .analysis.export import results_to_json, run_summary
from .analysis.report import render_report, run_all

#: Experiment name → zero-config runner.
EXPERIMENTS = {
    "table1": lambda seed: _experiments.run_table1(seed=seed),
    "fig3": lambda seed: _experiments.run_power_figure("TOTAL",
                                                       seed=seed),
    "fig4": lambda seed: _experiments.run_power_figure("ARB", seed=seed),
    "fig5": lambda seed: _experiments.run_power_figure("M2S", seed=seed),
    "fig6": lambda seed: _experiments.run_fig6(seed=seed),
    "overhead": lambda seed: _experiments.run_overhead(seed=seed),
    "validation": lambda seed: _experiments.run_macromodel_validation(),
    "granularity": lambda seed: _experiments.run_granularity_ablation(
        seed=seed),
    "styles": lambda seed: _experiments.run_model_styles_ablation(
        seed=seed),
    "design-space": lambda seed: _experiments.run_design_space(
        seed=seed),
}


def _cmd_list(args):
    print("experiments:")
    for name in sorted(EXPERIMENTS):
        print("  %s" % name)
    from .workloads import SCENARIOS
    print("scenarios:")
    for name in sorted(SCENARIOS):
        print("  %s" % name)
    return 0


def _cmd_run(args):
    runner = EXPERIMENTS.get(args.experiment)
    if runner is None:
        print("unknown experiment %r; try 'list'" % args.experiment,
              file=sys.stderr)
        return 2
    result = runner(args.seed)
    print(result.summary())
    if args.json:
        with open(args.json, "w") as fh:
            results_to_json([result], fh)
        print("wrote %s" % args.json)
    return 0 if result.passed else 1


def _cmd_report(args):
    results = run_all(seed=args.seed, quick=args.quick)
    print(render_report(results))
    if args.json:
        with open(args.json, "w") as fh:
            results_to_json(results, fh)
        print("wrote %s" % args.json)
    return 0 if all(result.passed for result in results) else 1


def _cmd_scenario(args):
    import json as _json

    from .replay import ReplayTrace, RunSpec, execute
    spec = RunSpec(
        args.name, seed=args.seed, duration_us=args.duration_us,
        retry_limit=None, retry_backoff=0, watchdog=False,
        check_protocol=args.check_protocol, tier=args.tier,
    )
    plan = None
    if args.digest_interval:
        if args.tier == "tlm":
            print("--digest-interval is cycle-tier only; ignored for "
                  "--tier tlm", file=sys.stderr)
        else:
            from .state import CheckpointPlan
            plan = CheckpointPlan(interval_cycles=args.digest_interval)
    system, outcome = execute(spec, checkpoint=plan)
    if outcome.outcome == "crashed":
        print(outcome.detail, file=sys.stderr)
        return 1
    if args.tier == "tlm":
        # run_summary reads signal-level state; the TLM tier reports
        # its own transaction-level figures.
        summary = {
            "scenario": args.name,
            "tier": "tlm",
            "bus_cycles": system.clk.cycles,
            "transactions_completed": system.transactions_completed(),
            "transactions_failed": system.transactions_failed(),
            "handovers": system.handover_count,
            "mean_latency_cycles": system.mean_latency_cycles(),
            "total_energy_j": system.ledger.total_energy,
            "overhead_energy_j": system.ledger.overhead_energy,
        }
    else:
        system.assert_protocol_clean()
        summary = run_summary(system)
    print(_json.dumps(summary, indent=2, sort_keys=True))
    if args.record:
        trace = ReplayTrace()
        trace.append(spec, outcome)
        trace.save(args.record)
        # status note on stderr: stdout stays a single JSON document
        print("recorded 1 run to %s" % args.record, file=sys.stderr)
    return 0


def _cmd_faults(args):
    import json as _json

    from .faults import FAULT_MODES, run_fault_campaign
    from .workloads import SCENARIOS
    if args.scenario is None:
        args.scenario = ["portable-audio-player", "wireless-modem"]
    if args.fault is None:
        args.fault = ["always-retry", "hung-slave"]
    for fault in args.fault:
        if fault not in FAULT_MODES:
            print("unknown fault mode %r (available: %s)"
                  % (fault, ", ".join(sorted(FAULT_MODES))),
                  file=sys.stderr)
            return 2
    for scenario in args.scenario:
        if scenario not in SCENARIOS:
            print("unknown scenario %r (available: %s)"
                  % (scenario, ", ".join(sorted(SCENARIOS))),
                  file=sys.stderr)
            return 2
    if args.resume and not args.journal:
        print("--resume needs --journal PATH", file=sys.stderr)
        return 2
    result = run_fault_campaign(
        scenarios=tuple(args.scenario), faults=tuple(args.fault),
        seed=args.seed, duration_us=args.duration_us,
        slave_index=args.slave_index,
        trigger_after=args.trigger_after,
        retry_limit=args.retry_limit,
        retry_backoff=args.retry_backoff,
        hready_timeout=args.hready_timeout,
        retry_budget=args.retry_budget,
        recover=not args.no_recover,
        check_protocol=args.check_protocol,
        tier=args.tier,
        engine=args.engine,
        jobs=args.jobs, timeout=args.timeout,
        journal=args.journal, resume=args.resume,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_interval=args.checkpoint_interval,
    )
    print(result.summary().format())
    if args.metrics:
        metrics = result.metrics()
        print()
        print(metrics.summary_table().format())
    if result.resumed:
        print("resumed: %d run(s) restored from %s"
              % (result.resumed, args.journal), file=sys.stderr)
    if result.degraded:
        print("pool degraded: repeated worker failures; remaining "
              "runs executed in-process", file=sys.stderr)
    if args.json:
        with open(args.json, "w") as fh:
            _json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        print("wrote %s" % args.json)
    if args.record:
        from .replay import ReplayTrace, RunOutcome, RunSpec
        trace = ReplayTrace()
        for run in result.runs:
            if run.spec is None or run.fingerprint is None:
                continue
            trace.append(RunSpec.from_dict(run.spec),
                         RunOutcome(**run.fingerprint))
        trace.save(args.record)
        print("recorded %d runs to %s" % (len(trace), args.record))
    if result.interrupted:
        import signal as _signal
        print("campaign INTERRUPTED: journal flushed%s"
              % ("; finish it with --resume --journal %s"
                 % args.journal if args.journal else ""),
              file=sys.stderr)
        # Conventional codes: 128 + signal number (130 for SIGINT,
        # 143 for SIGTERM).
        if result.interrupt_signal == _signal.SIGTERM:
            return 143
        return 130
    if not result.ok:
        bad = result.failures
        print("campaign FAILED: %d run(s) ended unrecovered (%s)"
              % (len(bad),
                 ", ".join("%s/%s=%s" % (run.scenario, run.fault,
                                         run.outcome)
                           for run in bad)),
              file=sys.stderr)
    return 0 if result.ok else 1


def _cmd_tlm(args):
    import json as _json

    from .tlm import (
        CalibrationTable,
        calibrate,
        load_default_table,
        validate_table,
    )
    if args.tlm_command == "calibrate":
        kwargs = {}
        if args.table_version is not None:
            kwargs["version"] = args.table_version
        if args.seed:
            kwargs["seeds"] = tuple(args.seed)
        table = calibrate(
            scenarios=args.scenario,
            duration_us=args.duration_us, **kwargs,
        )
        table.save(args.out)
        print("wrote %s" % args.out)
        print("digest: %s" % table.digest())
        print("scenarios: %s"
              % ", ".join(table.provenance["scenarios"]))
        return 0
    # validate
    table = (CalibrationTable.load(args.table) if args.table
             else load_default_table())
    bound = dict(table.error_bound)
    if args.energy_bound is not None:
        bound["energy_pct"] = args.energy_bound
    if args.latency_bound is not None:
        bound["latency_cycles"] = args.latency_bound
    report = validate_table(
        table, scenarios=args.scenario, seed=args.seed,
        duration_us=args.duration_us, bound=bound,
    )
    print(report.summary())
    if args.json:
        with open(args.json, "w") as fh:
            _json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        print("wrote %s" % args.json, file=sys.stderr)
    return 0 if report.passed else 1


def _cmd_fuzz(args):
    import json as _json

    from .fuzz import FuzzConfig, run_fuzz_campaign
    from .workloads import SCENARIOS
    for scenario in args.scenario or ():
        if scenario not in SCENARIOS:
            print("unknown scenario %r (available: %s)"
                  % (scenario, ", ".join(sorted(SCENARIOS))),
                  file=sys.stderr)
            return 2
    config = FuzzConfig(
        budget=args.budget, seed=args.seed, jobs=args.jobs,
        timeout=args.timeout, scenarios=args.scenario,
        duration_us=args.duration_us, batch_size=args.batch,
        shrink=not args.no_shrink,
        reproducer_dir=args.reproducers,
        coverage_out=args.coverage_out,
        max_sim_us=args.sim_budget_us,
        wall_budget_s=args.time_budget,
        resume=args.resume,
        warm_start=args.warm_start,
        engine=args.engine,
    )
    report = run_fuzz_campaign(args.corpus, config)
    print(report.summary())
    if args.json:
        with open(args.json, "w") as fh:
            _json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        print("wrote %s" % args.json, file=sys.stderr)
    if report.interrupted:
        print("fuzz campaign INTERRUPTED: state flushed; continue "
              "with --resume", file=sys.stderr)
        return 130
    if report.unshrunk:
        print("fuzz campaign FAILED: %d failure(s) without a minimal "
              "reproducer (%s)"
              % (len(report.unshrunk),
                 ", ".join(failure["signature"]
                           for failure in report.unshrunk)),
              file=sys.stderr)
        return 1
    return 0


def _cmd_telemetry(args):
    import json as _json

    from .kernel import us
    from .telemetry import Telemetry, validate_chrome_trace
    from .workloads import SCENARIOS, build_scenario
    from .workloads.testbench import build_paper_testbench

    telemetry = Telemetry(
        trace_signals=tuple(args.trace_signal or ()),
        energy_counter_every=args.energy_every,
    )
    if args.scenario:
        if args.scenario not in SCENARIOS:
            print("unknown scenario %r (available: %s)"
                  % (args.scenario, ", ".join(sorted(SCENARIOS))),
                  file=sys.stderr)
            return 2
        system = build_scenario(args.scenario, seed=args.seed,
                                telemetry=telemetry)
        label = args.scenario
    else:
        system = build_paper_testbench(seed=args.seed,
                                       telemetry=telemetry)
        label = "paper testbench (Table 1 configuration)"
    system.run(us(args.duration_us))
    telemetry.finalize()

    print("telemetry: %s, %.1f us simulated, %d trace events%s"
          % (label, args.duration_us, len(telemetry.tracer),
             " (%d dropped)" % telemetry.tracer.dropped
             if telemetry.tracer.dropped else ""),
          file=sys.stderr)
    print(telemetry.summary().format())
    if args.trace_out:
        telemetry.tracer.write_chrome(args.trace_out,
                                      timebase=args.timebase)
        problems = validate_chrome_trace(args.trace_out)
        if problems:
            for problem in problems:
                print("trace validation: %s" % problem,
                      file=sys.stderr)
            return 1
        print("wrote %s (%s timebase; load it at "
              "https://ui.perfetto.dev)"
              % (args.trace_out, args.timebase), file=sys.stderr)
    if args.jsonl:
        telemetry.tracer.write_jsonl(args.jsonl)
        print("wrote %s" % args.jsonl, file=sys.stderr)
    if args.json:
        with open(args.json, "w") as fh:
            _json.dump(telemetry.snapshot(), fh, indent=2,
                       sort_keys=True)
        print("wrote %s" % args.json, file=sys.stderr)
    return 0


def _cmd_replay(args):
    import json as _json

    from .replay import ReplayTrace, shrink
    trace = ReplayTrace.load(args.trace)
    if not len(trace):
        print("trace %s holds no runs" % args.trace, file=sys.stderr)
        return 2
    index = args.index
    if index is None:
        # Default to the first recorded failure, else the first run.
        index = next((position
                      for position, (_, outcome) in enumerate(trace)
                      if outcome.failing), 0)
    if not 0 <= index < len(trace):
        print("index %d out of range (trace holds %d runs)"
              % (index, len(trace)), file=sys.stderr)
        return 2
    spec, recorded, actual, match = trace.replay(index)
    print("replaying run %d: %r" % (index, spec))
    print("bit-exact: %s" % ("yes" if match else "NO"))
    digest_report = None
    if recorded.digests:
        from .replay import verify_digests
        digest_report = verify_digests(spec, recorded.digests)
        print("state digests: %s" % digest_report.describe())
    if not match:
        recorded_fp = recorded.fingerprint()
        actual_fp = actual.fingerprint()
        for field in sorted(recorded_fp):
            if recorded_fp[field] != actual_fp[field]:
                print("  %s: recorded %r, replayed %r"
                      % (field, recorded_fp[field], actual_fp[field]),
                      file=sys.stderr)
    report = {
        "index": index,
        "match": match,
        "recorded": recorded.fingerprint(),
        "replayed": actual.fingerprint(),
    }
    if digest_report is not None:
        report["digests"] = {
            "match": digest_report.match,
            "entries_compared": digest_report.entries_compared,
            "first_divergence": digest_report.first_divergence,
            "detail": digest_report.detail,
        }
        match = match and digest_report.match
    shrunk = None
    if args.shrink:
        if not actual.failing:
            print("run %d is not failing; nothing to shrink" % index,
                  file=sys.stderr)
        else:
            shrunk = shrink(spec)
            print(shrunk.summary())
            report["shrink"] = {
                "executions": shrunk.executions,
                "steps": shrunk.steps,
                "minimal_spec": shrunk.spec.to_dict(),
                "minimal_outcome": shrunk.outcome.fingerprint(),
            }
            if args.out:
                minimal = ReplayTrace()
                minimal.append(shrunk.spec, shrunk.outcome)
                minimal.save(args.out)
                print("wrote minimal reproducer to %s" % args.out)
    if args.json:
        with open(args.json, "w") as fh:
            _json.dump(report, fh, indent=2, sort_keys=True)
        print("wrote %s" % args.json)
    return 0 if match else 1


def build_parser():
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AMBA AHB system-level power analysis "
                    "(DATE 2003 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and scenarios") \
        .set_defaults(fn=_cmd_list)

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment")
    run_parser.add_argument("--seed", type=int, default=1)
    run_parser.add_argument("--json", help="also write JSON results")
    run_parser.set_defaults(fn=_cmd_run)

    report_parser = sub.add_parser("report",
                                   help="run every experiment")
    report_parser.add_argument("--seed", type=int, default=1)
    report_parser.add_argument("--quick", action="store_true",
                               help="shortened runs for smoke testing")
    report_parser.add_argument("--json", help="also write JSON results")
    report_parser.set_defaults(fn=_cmd_report)

    scenario_parser = sub.add_parser(
        "scenario", help="simulate a named SoC scenario")
    scenario_parser.add_argument("name")
    scenario_parser.add_argument("--seed", type=int, default=1)
    scenario_parser.add_argument("--duration-us", type=float,
                                 default=50.0)
    scenario_parser.add_argument(
        "--check-protocol", choices=("record", "warn", "raise"),
        default="record",
        help="compliance-engine severity (raise dies at the first "
             "violating cycle)")
    scenario_parser.add_argument(
        "--record", metavar="PATH",
        help="write the run's replay trace (spec + outcome "
             "fingerprint) to PATH")
    scenario_parser.add_argument(
        "--digest-interval", type=int, default=0, metavar="CYCLES",
        help="record a state digest every CYCLES bus cycles into the "
             "replay trace; 'repro replay' then verifies full state "
             "equivalence at every interval (0 disables)")
    scenario_parser.add_argument(
        "--tier", choices=("cycle", "tlm"), default="cycle",
        help="execution tier: signal-accurate kernel simulation "
             "(cycle) or the calibrated transaction-level model (tlm)")
    scenario_parser.set_defaults(fn=_cmd_scenario)

    faults_parser = sub.add_parser(
        "faults",
        help="run a fault-injection campaign over named scenarios")
    faults_parser.add_argument(
        "--scenario", action="append",
        default=None, metavar="NAME",
        help="scenario to attack (repeatable; default: "
             "portable-audio-player and wireless-modem)")
    faults_parser.add_argument(
        "--fault", action="append", default=None, metavar="MODE",
        help="fault mode to inject (repeatable; default: "
             "always-retry and hung-slave)")
    faults_parser.add_argument("--seed", type=int, default=1)
    faults_parser.add_argument("--duration-us", type=float,
                               default=20.0)
    faults_parser.add_argument("--slave-index", type=int, default=0,
                               help="which slave misbehaves")
    faults_parser.add_argument("--trigger-after", type=int, default=16,
                               help="healthy transfers before the "
                                    "fault bites")
    faults_parser.add_argument("--retry-limit", type=int, default=8,
                               help="master per-transaction retry "
                                    "budget")
    faults_parser.add_argument("--retry-backoff", type=int, default=2,
                               help="idle cycles after each RETRY")
    faults_parser.add_argument("--hready-timeout", type=int,
                               default=16,
                               help="watchdog bus-stall window")
    faults_parser.add_argument("--retry-budget", type=int, default=6,
                               help="watchdog consecutive-RETRY "
                                    "budget")
    faults_parser.add_argument("--no-recover", action="store_true",
                               help="detect only, take no recovery "
                                    "action")
    faults_parser.add_argument(
        "--check-protocol", choices=("record", "warn", "raise"),
        default="record",
        help="compliance-engine severity during campaign runs")
    faults_parser.add_argument(
        "--tier", choices=("cycle", "tlm"), default="cycle",
        help="execution tier for every campaign run (seeds derive "
             "identically on both, so a tlm survey can be confirmed "
             "cycle-accurately run for run)")
    faults_parser.add_argument(
        "--engine", choices=("interpreted", "compiled", "auto"),
        default="interpreted",
        help="kernel engine for cycle-tier runs: the delta-cycle "
             "interpreter, the levelized compiled engine "
             "(repro.compiled; bit-identical, faster), or auto "
             "(compiled when the design compiles, else interpreted)")
    faults_parser.add_argument(
        "--record", metavar="PATH",
        help="write a replay trace of every campaign run to PATH")
    faults_parser.add_argument("--json",
                               help="also write JSON results")
    faults_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the supervised executor "
             "(default 1: in-process serial execution)")
    faults_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-run wall-clock deadline; a run over budget is "
             "classified 'timeout' (its worker is killed if hung)")
    faults_parser.add_argument(
        "--journal", metavar="PATH",
        help="append-only JSONL journal of the campaign (crash/"
             "quarantine RunSpec artefacts are written next to it)")
    faults_parser.add_argument(
        "--resume", action="store_true",
        help="load --journal first: skip completed runs, re-dispatch "
             "in-flight ones (with --checkpoint-dir, interrupted runs "
             "resume mid-run from their newest checkpoint)")
    faults_parser.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="checkpoint every run's full simulation state under "
             "DIR/<run-id>/; killed or timed-out attempts resume from "
             "the newest checkpoint instead of restarting")
    faults_parser.add_argument(
        "--checkpoint-interval", type=int, default=1000,
        metavar="CYCLES",
        help="bus-clock cycles between checkpoints (default 1000)")
    faults_parser.add_argument(
        "--metrics", action="store_true",
        help="also print the merged campaign telemetry summary "
             "(throughput, outcome rates, energy totals)")
    faults_parser.set_defaults(fn=_cmd_faults)

    tlm_parser = sub.add_parser(
        "tlm",
        help="transaction-level tier: calibrate or cross-validate "
             "the energy/latency table")
    tlm_sub = tlm_parser.add_subparsers(dest="tlm_command",
                                        required=True)
    tlm_cal = tlm_sub.add_parser(
        "calibrate",
        help="fit a calibration table from cycle-accurate reference "
             "runs")
    tlm_cal.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="scenario to calibrate on (repeatable; default: every "
             "named scenario)")
    tlm_cal.add_argument("--seed", type=int, action="append",
                         default=None,
                         help="calibration seed (repeatable; default "
                              "1 3 4 — keep the held-out validation "
                              "seed 2 out of this set)")
    tlm_cal.add_argument("--duration-us", type=float, default=200.0)
    tlm_cal.add_argument("--out", required=True, metavar="PATH",
                         help="write the fitted table JSON to PATH "
                              "(the committed artefact lives at "
                              "src/repro/tlm/tables/default.json)")
    tlm_cal.add_argument("--table-version", type=int, default=None,
                         help="table version stamp (default: the "
                              "current TABLE_VERSION)")
    tlm_cal.set_defaults(fn=_cmd_tlm)

    tlm_val = tlm_sub.add_parser(
        "validate",
        help="replay scenarios on both tiers and gate on the table's "
             "declared error bound (exit 1 when exceeded)")
    tlm_val.add_argument(
        "--table", metavar="PATH", default=None,
        help="table to validate (default: the committed table)")
    tlm_val.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="scenario to cross-validate (repeatable; default: the "
             "table's calibration scenarios)")
    tlm_val.add_argument("--seed", type=int, default=2,
                         help="held-out validation seed")
    tlm_val.add_argument("--duration-us", type=float, default=40.0)
    tlm_val.add_argument("--energy-bound", type=float, default=None,
                         metavar="PCT",
                         help="override the table's total-energy "
                              "error bound (percent)")
    tlm_val.add_argument("--latency-bound", type=float, default=None,
                         metavar="CYCLES",
                         help="override the table's mean-latency "
                              "error bound (bus cycles)")
    tlm_val.add_argument("--json",
                         help="write the validation report JSON")
    tlm_val.set_defaults(fn=_cmd_tlm)

    replay_parser = sub.add_parser(
        "replay",
        help="re-execute a recorded run bit-exactly; optionally "
             "shrink it to a minimal reproducer")
    replay_parser.add_argument("trace", help="replay trace JSON file")
    replay_parser.add_argument(
        "--index", type=int, default=None,
        help="which recorded run to replay (default: the first "
             "failing one)")
    replay_parser.add_argument(
        "--shrink", action="store_true",
        help="delta-debug the fault schedule and trim the stimulus "
             "to a minimal reproducer")
    replay_parser.add_argument(
        "--out", metavar="PATH",
        help="with --shrink: write the minimal reproducer trace")
    replay_parser.add_argument("--json",
                               help="also write a JSON report")
    replay_parser.set_defaults(fn=_cmd_replay)

    fuzz_parser = sub.add_parser(
        "fuzz",
        help="run a coverage-guided protocol fuzz campaign: mutate "
             "traffic/fault genomes, steer by novel coverage, shrink "
             "every new failure into a reproducer")
    fuzz_parser.add_argument(
        "--corpus", required=True, metavar="DIR",
        help="corpus directory (created if missing; holds genomes, "
             "coverage.json and the resumable state.json)")
    fuzz_parser.add_argument(
        "--budget", type=int, default=100, metavar="N",
        help="total candidate executions (cumulative across --resume)")
    fuzz_parser.add_argument("--seed", type=int, default=1,
                             help="base seed — the campaign's only "
                                  "entropy source")
    fuzz_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="supervised-executor worker processes (corpus evolution "
             "is bit-identical for any value)")
    fuzz_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-run wall-clock budget for candidate executions")
    fuzz_parser.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="scenario seeding an empty corpus (repeatable; default: "
             "every registered scenario)")
    fuzz_parser.add_argument("--duration-us", type=float, default=20.0,
                             help="simulated window of seed genomes")
    fuzz_parser.add_argument("--batch", type=int, default=8,
                             metavar="N",
                             help="candidates generated per executor "
                                  "batch")
    fuzz_parser.add_argument(
        "--resume", action="store_true",
        help="restore the corpus state.json and continue the campaign")
    fuzz_parser.add_argument(
        "--warm-start", action="store_true",
        help="warm-start mutated candidates from shared scenario-"
             "prefix checkpoints (CORPUS/warmstart); corpus evolution "
             "stays bit-identical to a cold campaign")
    fuzz_parser.add_argument(
        "--engine", choices=("interpreted", "compiled", "auto"),
        default="interpreted",
        help="kernel engine stamped into seed genomes (mutation "
             "preserves it); outcomes and corpus evolution are "
             "engine-independent")
    fuzz_parser.add_argument(
        "--no-shrink", action="store_true",
        help="record failures without ddmin-minimising them "
             "(every failure then gates the exit code)")
    fuzz_parser.add_argument(
        "--reproducers", metavar="DIR",
        help="where shrunk reproducer traces + generated regression "
             "tests go (default: CORPUS/reproducers)")
    fuzz_parser.add_argument(
        "--coverage-out", metavar="PATH",
        help="also write the final coverage map to PATH")
    fuzz_parser.add_argument(
        "--sim-budget-us", type=float, default=None, metavar="US",
        help="stop once this much simulated time has been spent")
    fuzz_parser.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="stop starting new batches after this many host seconds "
             "(CI smoke-test bound; makes the corpus host-dependent)")
    fuzz_parser.add_argument("--json",
                             help="also write the campaign report "
                                  "as JSON")
    fuzz_parser.set_defaults(fn=_cmd_fuzz)

    telemetry_parser = sub.add_parser(
        "telemetry",
        help="run one instrumented simulation and export metrics "
             "plus a Perfetto-loadable trace")
    telemetry_parser.add_argument(
        "--scenario", metavar="NAME", default=None,
        help="named SoC scenario (default: the paper's Table 1 "
             "testbench)")
    telemetry_parser.add_argument("--seed", type=int, default=1)
    telemetry_parser.add_argument("--duration-us", type=float,
                                  default=20.0)
    telemetry_parser.add_argument(
        "--trace-out", metavar="PATH",
        help="write Chrome trace-event JSON (open in "
             "ui.perfetto.dev or chrome://tracing)")
    telemetry_parser.add_argument(
        "--timebase", choices=("sim", "wall"), default="sim",
        help="trace timestamps: simulated time (bus/power timeline) "
             "or host wall-clock (CPU profile)")
    telemetry_parser.add_argument(
        "--jsonl", metavar="PATH",
        help="also write the compact JSONL event stream")
    telemetry_parser.add_argument(
        "--json", metavar="PATH",
        help="also write the metrics registry snapshot as JSON")
    telemetry_parser.add_argument(
        "--trace-signal", action="append", metavar="NAME",
        help="bus signal to trace at commit granularity "
             "(repeatable, e.g. htrans; expensive)")
    telemetry_parser.add_argument(
        "--energy-every", type=int, default=1, metavar="N",
        help="emit per-block energy counter samples every N power "
             "cycles (0 disables)")
    telemetry_parser.set_defaults(fn=_cmd_telemetry)
    return parser


def main(argv=None):
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
