"""Low-power bus encodings and their evaluation.

The methodology's purpose is to *drive choices*: "the analysis and
choice between different design architectures driven by functional,
timing and power constraints".  The classic bus-level power knobs are
encodings that trade wires/logic for switching activity:

* **bus-invert** (Stan & Burleson, 1995): when more than half the bus
  would toggle, send the complement plus one invert line — worst-case
  transitions drop from ``w`` to ``w/2 + 1``;
* **Gray code** for sequential addresses: one bit toggles per
  increment instead of an average of ~2;
* **T0**: sequential addresses are signalled with a "keep counting"
  line and the address bus frozen — zero address-bus transitions for
  streams.

Each encoder transforms a word sequence; :func:`evaluate_encoding`
replays recorded bus values through an encoder and prices both
sequences with the mux macromodel, so the energy verdict uses exactly
the same cost model as the rest of the library.
"""

from __future__ import annotations

from .hamming import hamming
from .macromodels import MuxEnergyModel
from .parameters import PAPER_TECHNOLOGY


class BusEncoder:
    """Base interface: stateful word-sequence transcoder."""

    #: Extra control wires the encoding adds to the bus.
    extra_lines = 0

    def reset(self):
        """Return to the initial encoder state."""

    def encode(self, value):  # pragma: no cover - interface
        """Return the wire pattern for *value* (int, may include the
        extra control lines in its high bits)."""
        raise NotImplementedError

    def encoded_width(self, width):
        """Total wires used for a *width*-bit payload."""
        return width + self.extra_lines


class IdentityEncoder(BusEncoder):
    """No encoding (the baseline)."""

    def encode(self, value):
        return value


class BusInvertEncoder(BusEncoder):
    """Bus-invert coding: complement the word when that halves toggles.

    The invert line rides as bit ``width`` of the encoded pattern.
    """

    extra_lines = 1

    def __init__(self, width):
        if width < 1:
            raise ValueError("width must be positive")
        self.width = width
        self._mask = (1 << width) - 1
        self._previous = 0
        self._invert = 0

    def reset(self):
        self._previous = 0
        self._invert = 0

    def encode(self, value):
        value &= self._mask
        inverted_value = value ^ self._mask
        # Cost of each option = payload toggles + invert-line toggle.
        plain_cost = (bin(value ^ self._previous).count("1")
                      + self._invert)          # invert line falls to 0
        inverted_cost = (bin(inverted_value ^ self._previous).count("1")
                         + (1 - self._invert))  # invert line rises to 1
        if inverted_cost < plain_cost:
            self._invert = 1
            pattern = inverted_value
        else:
            self._invert = 0
            pattern = value
        self._previous = pattern
        return pattern | (self._invert << self.width)


class GrayEncoder(BusEncoder):
    """Binary-reflected Gray code (for address buses)."""

    def encode(self, value):
        return value ^ (value >> 1)


class T0Encoder(BusEncoder):
    """T0 coding: freeze the bus for in-sequence addresses.

    When the new address equals ``previous + stride`` the address wires
    are held and only the INC control line is raised; receivers count
    locally.  The INC line rides above the payload bits.
    """

    extra_lines = 1

    def __init__(self, width, stride=4):
        self.width = width
        self.stride = stride
        self._mask = (1 << width) - 1
        self._previous_value = None
        self._wires = 0

    def reset(self):
        self._previous_value = None
        self._wires = 0

    def encode(self, value):
        value &= self._mask
        if self._previous_value is not None and \
                value == (self._previous_value + self.stride) \
                & self._mask:
            inc = 1  # wires frozen, INC asserted
        else:
            inc = 0
            self._wires = value
        self._previous_value = value
        return self._wires | (inc << self.width)


class EncodingEvaluation:
    """Outcome of :func:`evaluate_encoding`."""

    def __init__(self, name, width, baseline_transitions,
                 encoded_transitions, baseline_energy, encoded_energy,
                 words):
        self.name = name
        self.width = width
        self.baseline_transitions = baseline_transitions
        self.encoded_transitions = encoded_transitions
        self.baseline_energy = baseline_energy
        self.encoded_energy = encoded_energy
        self.words = words

    @property
    def transition_savings(self):
        """Fractional reduction in wire transitions."""
        if self.baseline_transitions == 0:
            return 0.0
        return 1.0 - (self.encoded_transitions
                      / self.baseline_transitions)

    @property
    def energy_savings(self):
        """Fractional reduction in modelled mux energy."""
        if self.baseline_energy == 0:
            return 0.0
        return 1.0 - self.encoded_energy / self.baseline_energy

    def __repr__(self):
        return ("EncodingEvaluation(%s: transitions %+0.1f%%, "
                "energy %+0.1f%%)"
                % (self.name, -100 * self.transition_savings,
                   -100 * self.energy_savings))


def sequence_transitions(values, width):
    """Total pairwise Hamming transitions of a word sequence."""
    total = 0
    previous = 0
    for value in values:
        total += hamming(previous, value, width=width)
        previous = value
    return total


def evaluate_encoding(values, width, encoder, n_mux_inputs=3,
                      params=PAPER_TECHNOLOGY, name=None):
    """Price an encoder against the identity baseline.

    Parameters
    ----------
    values:
        The recorded word sequence (e.g. successive HWDATA or HADDR
        values of a run).
    width:
        Payload width in bits.
    encoder:
        A :class:`BusEncoder` (its state is reset first).
    n_mux_inputs:
        Bus legs of the mux model used for pricing.

    Returns an :class:`EncodingEvaluation`.
    """
    values = list(values)
    encoder.reset()
    encoded = [encoder.encode(value) for value in values]
    encoded_width = encoder.encoded_width(width)

    base_transitions = sequence_transitions(values, width)
    enc_transitions = sequence_transitions(encoded, encoded_width)

    base_model = MuxEnergyModel(n_mux_inputs, width, params)
    enc_model = MuxEnergyModel(n_mux_inputs, encoded_width, params)
    previous_base = 0
    previous_enc = 0
    base_energy = 0.0
    enc_energy = 0.0
    for value, pattern in zip(values, encoded):
        hd_base = hamming(previous_base, value, width=width)
        hd_enc = hamming(previous_enc, pattern, width=encoded_width)
        base_energy += base_model.energy(hd_base, 0, hd_out=hd_base)
        enc_energy += enc_model.energy(hd_enc, 0, hd_out=hd_enc)
        previous_base = value
        previous_enc = pattern
    return EncodingEvaluation(
        name or type(encoder).__name__, width,
        base_transitions, enc_transitions,
        base_energy, enc_energy, len(values),
    )
