"""Statistical (simulation-free) average-power estimation.

The paper's related work ([2] Nemani & Najm, "Towards a high-level
power estimation capability") estimates power from signal statistics
instead of cycle simulation.  Because every macromodel in this library
is (piecewise) linear in its Hamming-distance inputs, the *expected*
per-cycle energy follows directly from per-cycle activity expectations:

    E[energy/cycle] = model(E[HD terms], rates of discrete events)

:class:`WorkloadStatistics` captures those expectations — measured from
a short calibration run (``from_monitor``) or written down analytically
from workload parameters (``from_traffic_parameters``) — and
:func:`estimate_average_power` turns them into watts per block.  The
test suite validates the estimate against full simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ledger import BLOCK_ARB, BLOCK_DEC, BLOCK_M2S, BLOCK_S2M
from .macromodels import (
    ArbiterEnergyModel,
    DecoderEnergyModel,
    MuxEnergyModel,
)
from .parameters import PAPER_TECHNOLOGY


@dataclass
class WorkloadStatistics:
    """Expected per-cycle bus activity.

    Attributes
    ----------
    m2s_hd:
        Mean bit changes per cycle across the M2S multiplexer outputs
        (address + control + write data).
    s2m_hd:
        Mean bit changes per cycle across the S2M outputs (read data +
        response + ready).
    request_hd:
        Mean bit changes per cycle on the request/lock inputs.
    decode_hd:
        Mean bit changes per cycle of the decoder input code.
    decode_change_rate:
        Fraction of cycles in which the decoder input changed at all
        (drives the one-hot output term of the decoder model).
    dsel_hd:
        Mean bit changes per cycle of the read-mux select.
    handover_rate:
        Bus handovers per cycle.
    transfer_fraction, write_fraction:
        Descriptive workload identity (not needed by the linear
        estimate itself, but useful for reports and scaling).
    """

    m2s_hd: float
    s2m_hd: float
    request_hd: float
    decode_hd: float
    decode_change_rate: float
    dsel_hd: float
    handover_rate: float
    transfer_fraction: float = 0.0
    write_fraction: float = 0.0

    def __post_init__(self):
        for field_name in ("m2s_hd", "s2m_hd", "request_hd", "decode_hd",
                           "decode_change_rate", "dsel_hd",
                           "handover_rate"):
            if getattr(self, field_name) < 0:
                raise ValueError("%s must be non-negative" % field_name)

    # -- constructors --------------------------------------------------

    @classmethod
    def from_monitor(cls, monitor):
        """Measure statistics from a (short) instrumented run."""
        cycles = monitor.ledger.cycles
        if cycles == 0:
            raise ValueError("monitor has not observed any cycles")
        transfer_cycles = monitor.transfer_cycles
        return cls(
            m2s_hd=monitor._m2s_out.bit_change_count() / cycles,
            s2m_hd=monitor._s2m_out.bit_change_count() / cycles,
            request_hd=monitor._arb_in.bit_change_count() / cycles,
            decode_hd=monitor.decode_hd_total / cycles,
            decode_change_rate=monitor.decode_change_count / cycles,
            dsel_hd=monitor.dsel_hd_total / cycles,
            handover_rate=monitor.handover_total / cycles,
            transfer_fraction=transfer_cycles / cycles,
            write_fraction=(monitor.write_cycles / transfer_cycles
                            if transfer_cycles else 0.0),
        )

    @classmethod
    def from_traffic_parameters(cls, transfer_fraction, write_fraction,
                                data_width=32, address_entropy_bits=6.0,
                                handover_rate=0.02, n_slaves=3,
                                locality=0.8):
        """Analytic statistics from first-principles workload knobs.

        Random data toggles half its bits per new word; addresses
        toggle ``address_entropy_bits``; control contributes ~2 bits
        per transfer boundary.  Reads swing the read-data bus, writes
        the write-data bus — each once per transfer of its kind.
        """
        if not 0 <= transfer_fraction <= 1:
            raise ValueError("transfer_fraction must be in [0, 1]")
        if not 0 <= write_fraction <= 1:
            raise ValueError("write_fraction must be in [0, 1]")
        data_hd = data_width / 2.0
        write_rate = transfer_fraction * write_fraction
        read_rate = transfer_fraction * (1.0 - write_fraction)
        region_change = transfer_fraction * (1 - locality) \
            * (n_slaves - 1) / max(1, n_slaves)
        import math
        decode_bits = max(1, math.ceil(math.log2(n_slaves + 1)))
        return cls(
            m2s_hd=(transfer_fraction * address_entropy_bits
                    + write_rate * data_hd
                    + transfer_fraction * 2.0
                    + handover_rate * address_entropy_bits),
            s2m_hd=read_rate * data_hd + handover_rate,
            request_hd=4.0 * handover_rate,
            decode_hd=region_change * decode_bits / 2.0,
            decode_change_rate=region_change,
            dsel_hd=region_change * decode_bits / 2.0 + handover_rate,
            handover_rate=handover_rate,
            transfer_fraction=transfer_fraction,
            write_fraction=write_fraction,
        )

    def scaled_utilisation(self, factor):
        """What-if: scale all traffic-driven activity by *factor*.

        Models a workload that issues ``factor``× the transfers per
        cycle (clamped to the physical 100 % bus ceiling elsewhere).
        """
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return WorkloadStatistics(
            m2s_hd=self.m2s_hd * factor,
            s2m_hd=self.s2m_hd * factor,
            request_hd=self.request_hd * factor,
            decode_hd=self.decode_hd * factor,
            decode_change_rate=min(1.0,
                                   self.decode_change_rate * factor),
            dsel_hd=self.dsel_hd * factor,
            handover_rate=self.handover_rate * factor,
            transfer_fraction=min(1.0, self.transfer_fraction * factor),
            write_fraction=self.write_fraction,
        )


class PowerEstimate:
    """Result of :func:`estimate_average_power`."""

    def __init__(self, block_power, frequency_hz):
        self.block_power = dict(block_power)
        self.frequency_hz = frequency_hz

    @property
    def total_power(self):
        """Total estimated average power (watts)."""
        return sum(self.block_power.values())

    def energy_per_cycle(self):
        """Expected energy per bus cycle (joules)."""
        return self.total_power / self.frequency_hz

    def __repr__(self):
        return "PowerEstimate(%.3f mW @ %.0f MHz)" % (
            self.total_power * 1e3, self.frequency_hz / 1e6,
        )


def estimate_average_power(stats, config, frequency_hz,
                           params=PAPER_TECHNOLOGY):
    """Predict average bus power without simulating.

    Parameters
    ----------
    stats:
        A :class:`WorkloadStatistics`.
    config:
        The :class:`~repro.amba.config.AhbConfig` sizing the blocks.
    frequency_hz:
        Bus clock frequency.

    Returns a :class:`PowerEstimate` with the same four-block
    decomposition the simulation ledger uses, so estimate and
    measurement are directly comparable.
    """
    n_slaves_total = config.n_slaves + 1
    m2s = MuxEnergyModel(config.n_masters,
                         config.addr_width + config.data_width + 13,
                         params)
    s2m = MuxEnergyModel(n_slaves_total, config.data_width + 3, params)
    decoder = DecoderEnergyModel(n_slaves_total, params)
    arbiter = ArbiterEnergyModel(config.n_masters, params)

    # Expected per-cycle energies: the mux and arbiter models are
    # linear in their HD inputs; the decoder's output term keys on the
    # *rate* of input changes (E[1{HD>=1}] = change rate).
    e_m2s = m2s.energy(hd_in=stats.m2s_hd, hd_sel=stats.handover_rate,
                       hd_out=stats.m2s_hd)
    e_s2m = s2m.energy(hd_in=stats.s2m_hd, hd_sel=stats.dsel_hd,
                       hd_out=stats.s2m_hd)
    e_dec = (params.half_cv2
             * (decoder.input_coeff * params.c_pd * stats.decode_hd
                + decoder.output_coeff * params.c_o
                * stats.decode_change_rate))
    e_arb = (arbiter.idle_energy()
             + params.half_cv2 * params.c_pd * arbiter.request_coeff
             * stats.request_hd
             + stats.handover_rate * params.half_cv2
             * (params.c_pd * arbiter.handover_coeff
                + params.c_o * 2.0))

    block_power = {
        BLOCK_M2S: e_m2s * frequency_hz,
        BLOCK_S2M: e_s2m * frequency_hz,
        BLOCK_DEC: e_dec * frequency_hz,
        BLOCK_ARB: e_arb * frequency_hz,
    }
    return PowerEstimate(block_power, frequency_hz)
