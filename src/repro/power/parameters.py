"""Technology parameters for the energy macromodels.

The paper's macromodels are parameterised by the supply voltage
``V_DD``, the equivalent node capacitance ``C_PD`` and the output load
``C_O``; the paper itself never reports the concrete values of its
0.35 µm-era target process.  This module exposes them as an explicit
:class:`TechnologyParameters` value object with presets, calibrated so
that the default configuration lands per-instruction energies in the
paper's published 14.7–22.4 pJ band (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TechnologyParameters:
    """Process/operating-point constants used by every macromodel.

    Attributes
    ----------
    vdd:
        Supply voltage, volts.
    c_pd:
        Equivalent capacitance of one internal node, farads (the
        paper's ``C_PD``).
    c_o:
        Capacitance of one block output node, farads (the paper's
        ``C_O``) — output nodes drive longer wires and more fanout.
    c_clk:
        Clock-pin capacitance charged per flip-flop per cycle, farads.
    name:
        Preset label for reports.
    """

    vdd: float = 3.3
    c_pd: float = 15e-15
    c_o: float = 100e-15
    c_clk: float = 8e-15
    name: str = "generic-0.35um"

    def __post_init__(self):
        if self.vdd <= 0:
            raise ValueError("vdd must be positive")
        for label in ("c_pd", "c_o", "c_clk"):
            if getattr(self, label) < 0:
                raise ValueError("%s must be non-negative" % label)

    @property
    def half_cv2(self):
        """``½·V_DD²`` — multiply by capacitance for one toggle's energy."""
        return 0.5 * self.vdd * self.vdd

    def node_energy(self, toggles=1):
        """Energy of *toggles* internal-node transitions (joules)."""
        return toggles * self.c_pd * self.half_cv2

    def output_energy(self, toggles=1):
        """Energy of *toggles* output-node transitions (joules)."""
        return toggles * self.c_o * self.half_cv2

    def scaled(self, vdd=None, **caps):
        """Return a copy with selected fields replaced."""
        fields = {
            "vdd": self.vdd if vdd is None else vdd,
            "c_pd": caps.get("c_pd", self.c_pd),
            "c_o": caps.get("c_o", self.c_o),
            "c_clk": caps.get("c_clk", self.c_clk),
            "name": caps.get("name", self.name + "-scaled"),
        }
        return TechnologyParameters(**fields)


#: The calibration used by the paper-reproduction experiments.
PAPER_TECHNOLOGY = TechnologyParameters()

#: A representative later node, for design-space exploration examples.
TECH_180NM = TechnologyParameters(
    vdd=1.8, c_pd=6e-15, c_o=20e-15, c_clk=3e-15, name="generic-0.18um",
)

#: Matches the gate-level library defaults so macromodel-vs-netlist
#: validation compares like with like.
GATE_LEVEL_TECHNOLOGY = TechnologyParameters(
    vdd=1.8, c_pd=12e-15, c_o=10e-15, c_clk=5e-15, name="gate-level",
)
