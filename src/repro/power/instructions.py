"""The bus instruction set (paper §5.2, behavioural decomposition).

Four *activity modes* cover the AHB behaviour exercised by the paper's
testbench — ``IDLE``, ``READ``, ``WRITE`` and ``IDLE_HO`` (idle with
bus handover) — and an *instruction* is a permissible transition
between two consecutive cycles' modes, named ``<FROM>_<TO>`` exactly as
in the paper's ``power_fsm`` listing (``WRITE_READ``,
``IDLE_HO_IDLE_HO``, ...).
"""

from __future__ import annotations

from enum import Enum

from ..amba.types import HTRANS


class BusMode(Enum):
    """Activity mode of one bus cycle."""

    IDLE = "IDLE"
    IDLE_HO = "IDLE_HO"
    READ = "READ"
    WRITE = "WRITE"

    def __str__(self):
        return self.value


def classify_mode(htrans, hwrite, handover):
    """Classify one cycle's activity mode.

    Parameters
    ----------
    htrans:
        The bus ``HTRANS`` value during the cycle.
    hwrite:
        The bus ``HWRITE`` value during the cycle.
    handover:
        ``True`` when the cycle is part of a bus handover — ownership
        changed at the cycle boundary or a grant change is pending.

    BUSY cycles burn no data-path energy beyond idle and are folded
    into IDLE, matching the coarse four-mode decomposition.
    """
    transfer = HTRANS(htrans) in (HTRANS.NONSEQ, HTRANS.SEQ)
    if transfer:
        return BusMode.WRITE if hwrite else BusMode.READ
    return BusMode.IDLE_HO if handover else BusMode.IDLE


def instruction_name(previous, current):
    """The paper's instruction naming: ``<FROM>_<TO>``.

    >>> instruction_name(BusMode.WRITE, BusMode.READ)
    'WRITE_READ'
    >>> instruction_name(BusMode.IDLE_HO, BusMode.IDLE_HO)
    'IDLE_HO_IDLE_HO'
    """
    return "%s_%s" % (previous.value, current.value)


#: Every mode transition, i.e. the complete instruction alphabet.
ALL_INSTRUCTIONS = tuple(
    instruction_name(src, dst)
    for src in BusMode for dst in BusMode
)

#: The transitions the paper's power_fsm listing enumerates (§5.4).
PAPER_FSM_INSTRUCTIONS = (
    "IDLE_IDLE",
    "IDLE_IDLE_HO",
    "IDLE_WRITE",
    "IDLE_HO_IDLE_HO",
    "IDLE_HO_IDLE",
    "IDLE_HO_WRITE",
    "READ_WRITE",
    "READ_IDLE",
    "READ_IDLE_HO",
    "WRITE_READ",
)

#: The rows of the paper's Table 1.
TABLE1_INSTRUCTIONS = (
    "IDLE_HO_IDLE_HO",
    "IDLE_HO_WRITE",
    "READ_WRITE",
    "READ_IDLE_HO",
    "WRITE_READ",
)

#: Instructions that move data with no handover involvement — the
#: paper's "data transfer instructions" (≈ 87 % of total energy).
DATA_TRANSFER_INSTRUCTIONS = tuple(
    name for name in ALL_INSTRUCTIONS
    if name.endswith(("_READ", "_WRITE")) and not name.startswith("IDLE_HO")
)

#: Instructions attributable to bus arbitration (handover involved).
ARBITRATION_INSTRUCTIONS = tuple(
    name for name in ALL_INSTRUCTIONS
    if "IDLE_HO" in name
)


def current_mode_of(instruction):
    """The destination mode of *instruction* (its ``_<TO>`` suffix).

    >>> current_mode_of("WRITE_READ")
    <BusMode.READ: 'READ'>
    >>> current_mode_of("READ_IDLE_HO")
    <BusMode.IDLE_HO: 'IDLE_HO'>
    """
    if instruction.endswith("IDLE_HO"):
        return BusMode.IDLE_HO
    if instruction.endswith("READ"):
        return BusMode.READ
    if instruction.endswith("WRITE"):
        return BusMode.WRITE
    if instruction.endswith("IDLE"):
        return BusMode.IDLE
    raise ValueError("not an instruction name: %r" % instruction)


def previous_mode_of(instruction):
    """The source mode of *instruction* (its ``<FROM>_`` prefix)."""
    suffix = current_mode_of(instruction).value
    prefix = instruction[:-(len(suffix) + 1)]
    for mode in BusMode:
        if mode.value == prefix:
            return mode
    raise ValueError("not an instruction name: %r" % instruction)


def is_data_transfer(name):
    """True for the paper's "data transfer with no handover" class."""
    return name in DATA_TRANSFER_INSTRUCTIONS


def is_arbitration(name):
    """True for instructions involving a bus handover."""
    return name in ARBITRATION_INSTRUCTIONS
