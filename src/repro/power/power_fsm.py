"""The paper's ``power_fsm`` (§5.4).

A finite-state machine over the four bus activity modes whose
transitions are the instruction set.  Every cycle it receives the
observed mode plus the per-block energies computed by the macromodels,
classifies the executed instruction, and dispatches the energy to the
ledger, the power traces and (optionally) a data file — "the energy
value output in a data file" of the paper's listing.
"""

from __future__ import annotations

from ..kernel.time import to_seconds
from .instructions import BusMode, instruction_name
from .ledger import EnergyLedger


class PowerFsm:
    """Instruction classifier and energy dispatcher.

    Parameters
    ----------
    ledger:
        The :class:`~repro.power.ledger.EnergyLedger` to charge.
    traces:
        Optional :class:`~repro.power.power_trace.TraceSet`; per-block
        traces plus a ``TOTAL`` trace are recorded when present.
    datafile:
        Optional open file object; one ``time_s instruction energy_j``
        line is written per cycle, like the paper's output file.
    """

    def __init__(self, ledger=None, traces=None, datafile=None,
                 tracer=None):
        self.ledger = ledger if ledger is not None else EnergyLedger()
        self.traces = traces
        self.datafile = datafile
        #: Optional telemetry hook (e.g.
        #: :class:`repro.telemetry.PowerTracer`); its ``on_step`` is
        #: called once per cycle.  Costs one ``None`` check when unset.
        self.tracer = tracer
        self.state = BusMode.IDLE
        self.instruction_log = None
        self.cycles = 0

    def enable_logging(self):
        """Keep an in-memory list of (time_ps, instruction, energy)."""
        if self.instruction_log is None:
            self.instruction_log = []

    def step(self, time_ps, mode, block_energies, response=None):
        """Advance one cycle.

        Parameters
        ----------
        time_ps:
            Kernel time of the cycle boundary.
        mode:
            The observed :class:`~repro.power.instructions.BusMode`.
        block_energies:
            Mapping block key → joules for this cycle.
        response:
            Optional bus response tag (``"OKAY"``/``"RETRY"``/...) for
            the ledger's fault-overhead accounting.

        Returns the executed instruction name.
        """
        instruction = instruction_name(self.state, mode)
        self.state = mode
        total = self.ledger.charge_cycle(instruction, block_energies,
                                         response=response)
        if self.traces is not None:
            self.traces.record(time_ps, block_energies)
            self.traces.record(time_ps, {"TOTAL": total})
        if self.datafile is not None:
            self.datafile.write(
                "%.9e %s %.6e\n"
                % (to_seconds(time_ps), instruction, total)
            )
        if self.instruction_log is not None:
            self.instruction_log.append((time_ps, instruction, total))
        if self.tracer is not None:
            self.tracer.on_step(time_ps, mode, instruction,
                                block_energies, total, response)
        self.cycles += 1
        return instruction

    def reset(self, mode=BusMode.IDLE):
        """Reset the FSM state (ledger contents are preserved)."""
        self.state = mode

    # -- checkpoint support ---------------------------------------------

    def state_dict(self):
        """FSM state (the ledger checkpoints separately; traces,
        datafile and tracer are append-only sinks left alone)."""
        return {
            "state": self.state.value,
            "cycles": self.cycles,
            "instruction_log": [list(entry) for entry
                                in self.instruction_log]
            if self.instruction_log is not None else None,
        }

    def load_state_dict(self, state):
        self.state = BusMode(state["state"])
        self.cycles = state["cycles"]
        log = state["instruction_log"]
        self.instruction_log = [tuple(entry) for entry in log] \
            if log is not None else None
