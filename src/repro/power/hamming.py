"""Hamming-distance and switching-activity utilities.

The paper characterises instructions by "the switching-activity, the
probability of a signal or the Hamming distance between two successive
data" — these are the corresponding primitives.
"""

from __future__ import annotations


def hamming(a, b, width=None):
    """Hamming distance between two non-negative integers.

    When *width* is given, both values are masked to it first (a bus
    only has that many wires).

    >>> hamming(0b1010, 0b0110)
    2
    """
    if width is not None:
        mask = (1 << width) - 1
        a &= mask
        b &= mask
    return bin(a ^ b).count("1")


def hamming_sequence(values, width=None):
    """Pairwise Hamming distances along a value sequence.

    >>> hamming_sequence([0, 1, 3, 3])
    [1, 1, 0]
    """
    values = list(values)
    return [hamming(a, b, width=width)
            for a, b in zip(values, values[1:])]


def total_transitions(values, width=None):
    """Sum of pairwise Hamming distances along a sequence."""
    return sum(hamming_sequence(values, width=width))


def transition_density(values, width):
    """Average fraction of bus bits toggling per step.

    Returns 0 for sequences shorter than two values.
    """
    values = list(values)
    if len(values) < 2 or width <= 0:
        return 0.0
    return total_transitions(values, width=width) / (
        (len(values) - 1) * width
    )


def signal_probability(values, width):
    """Per-bit probability of observing a 1 across *values*.

    Returns a list of *width* floats (LSB first).
    """
    values = list(values)
    if not values:
        return [0.0] * width
    counts = [0] * width
    for value in values:
        for bit in range(width):
            if (value >> bit) & 1:
                counts[bit] += 1
    return [count / len(values) for count in counts]


def expected_hamming_uniform(width):
    """Expected Hamming distance between two independent uniform words.

    Each bit differs with probability ½, so the expectation is
    ``width / 2`` — the usual back-of-envelope for random data buses.
    """
    return width / 2.0
