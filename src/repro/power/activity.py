"""The paper's ``Activity`` class: dynamic I/O signal monitoring.

Section 5.3 instruments the bus model with "a specialized object class
... for the dynamic monitoring and the storage of the activity of the
I/O signals of the different blocks", exposing ``bit_change_count`` and
``store_activity``.  :class:`Activity` is that class: it watches a
named group of kernel signals, and on every :meth:`sample` computes the
per-signal Hamming distance against the previously stored values and
accumulates switching statistics.
"""

from __future__ import annotations

from .hamming import hamming


class ActivitySample:
    """Result of one :meth:`Activity.sample` call."""

    __slots__ = ("per_signal", "total")

    def __init__(self, per_signal):
        self.per_signal = per_signal
        self.total = sum(per_signal.values())

    def hd(self, signal):
        """Hamming distance observed on *signal* in this sample."""
        return self.per_signal.get(signal, 0)

    def __repr__(self):
        return "ActivitySample(total=%d)" % self.total


class Activity:
    """Switching-activity monitor over a group of signals.

    Parameters
    ----------
    name:
        Group label ("m2s_inputs", "slave_outputs", ...).
    signals:
        Iterable of kernel :class:`~repro.kernel.signal.Signal`; each
        signal's ``width`` bounds the Hamming computation.

    Usage pattern (one call per bus event / clock cycle)::

        activity = Activity("bus", bus.shared_signals())
        ...
        sample = activity.sample()      # HD vs previous cycle
        total_bits = activity.bit_change_count()
    """

    def __init__(self, name, signals):
        self.name = name
        self.signals = tuple(signals)
        self._stored = {signal: signal.value for signal in self.signals}
        self._bit_changes = 0
        self._transitions_per_signal = {signal: 0
                                        for signal in self.signals}
        self.samples_taken = 0
        self._ones_accumulator = {signal: 0 for signal in self.signals}

    # -- the paper's interface -------------------------------------------

    def bit_change_count(self):
        """Cumulative number of bit changes observed so far."""
        return self._bit_changes

    def store_activity(self):
        """Store the current signal values as the new reference.

        Returns the stored mapping (signal → value).  Normally called
        implicitly by :meth:`sample`; exposed separately to match the
        paper's two-method interface, e.g. to re-baseline after reset.
        """
        for signal in self.signals:
            self._stored[signal] = signal.value
        return dict(self._stored)

    # -- sampling ------------------------------------------------------------

    def sample(self):
        """Measure HD of each signal against the stored values, update
        statistics, and store the new values.  Returns an
        :class:`ActivitySample`."""
        per_signal = {}
        stored = self._stored
        for signal in self.signals:
            new = signal.value
            old = stored[signal]
            if new == old:
                distance = 0
            else:
                distance = hamming(old, new, width=signal.width)
            per_signal[signal] = distance
            stored[signal] = new
            self._transitions_per_signal[signal] += distance
            self._ones_accumulator[signal] += bin(
                new & ((1 << signal.width) - 1)
            ).count("1")
        sample = ActivitySample(per_signal)
        self._bit_changes += sample.total
        self.samples_taken += 1
        return sample

    # -- statistics -------------------------------------------------------------

    def transition_count(self, signal):
        """Cumulative bit transitions seen on *signal*."""
        return self._transitions_per_signal[signal]

    def transition_density(self, signal):
        """Average fraction of *signal*'s bits toggling per sample."""
        if not self.samples_taken or signal.width == 0:
            return 0.0
        return (self._transitions_per_signal[signal]
                / (self.samples_taken * signal.width))

    def signal_probability(self, signal):
        """Average fraction of *signal*'s bits at 1 across samples."""
        if not self.samples_taken or signal.width == 0:
            return 0.0
        return (self._ones_accumulator[signal]
                / (self.samples_taken * signal.width))

    def summary(self):
        """Per-signal statistics dict for reports."""
        return {
            signal.name: {
                "transitions": self._transitions_per_signal[signal],
                "density": self.transition_density(signal),
                "probability": self.signal_probability(signal),
            }
            for signal in self.signals
        }

    # -- checkpoint support ---------------------------------------------

    def state_dict(self):
        """Per-signal accumulators keyed by signal *name* (the dicts
        themselves are keyed by Signal objects, which do not survive
        serialization)."""
        return {
            "stored": {signal.name: self._stored[signal]
                       for signal in self.signals},
            "bit_changes": self._bit_changes,
            "transitions": {
                signal.name: self._transitions_per_signal[signal]
                for signal in self.signals
            },
            "ones": {signal.name: self._ones_accumulator[signal]
                     for signal in self.signals},
            "samples_taken": self.samples_taken,
        }

    def load_state_dict(self, state):
        by_name = {signal.name: signal for signal in self.signals}
        if set(by_name) != set(state["stored"]):
            raise ValueError(
                "activity group %r signal set changed since checkpoint"
                % self.name)
        self._stored = {by_name[name]: value
                        for name, value in state["stored"].items()}
        self._bit_changes = state["bit_changes"]
        self._transitions_per_signal = {
            by_name[name]: count
            for name, count in state["transitions"].items()
        }
        self._ones_accumulator = {
            by_name[name]: count
            for name, count in state["ones"].items()
        }
        self.samples_taken = state["samples_taken"]

    def __repr__(self):
        return "Activity(%r, signals=%d, bit_changes=%d)" % (
            self.name, len(self.signals), self._bit_changes,
        )
