"""Power analysis of the APB subsystem (methodology generality).

The paper stresses the approach "could be reused for different IP
typologies".  This module applies the global-monitor recipe to the
AHB→APB bridge of :mod:`repro.amba.apb`: activity monitoring on the
APB signals, macromodels for the bridge's data path, and per-access
instruction accounting (``SETUP``/``ENABLE``/``IDLE`` cycles instead of
bus transfers).

The APB's power character differs from the AHB's on purpose: it is a
low-bandwidth peripheral bus, so its energy is dominated by the
bridge's registers and the occasional register access — which is
exactly what this monitor shows.
"""

from __future__ import annotations

from ..kernel import Module
from .activity import Activity
from .ledger import EnergyLedger
from .macromodels import MuxEnergyModel, RegisterEnergyModel
from .parameters import PAPER_TECHNOLOGY

#: Block keys used by the APB ledger.
BLOCK_APB_BRIDGE = "BRIDGE"
BLOCK_APB_BUS = "APB_BUS"


class ApbPowerMonitor(Module):
    """Global-style power monitor for an :class:`ApbBridge` segment.

    Instructions: ``IDLE`` (no APB activity), ``SETUP`` (PSEL without
    PENABLE), ``ENABLE_READ`` / ``ENABLE_WRITE`` (access completes).
    Energy: the bridge's address/data/control registers clock every
    cycle; the APB wires charge per observed toggle.
    """

    def __init__(self, sim, name, bridge, params=PAPER_TECHNOLOGY,
                 parent=None):
        super().__init__(sim, name, parent=parent)
        self.bridge = bridge
        self.params = params
        data_width = bridge.pwdata.width

        # Bridge-side registers: PADDR + PWDATA + PWRITE/PENABLE + PSELs
        register_bits = (bridge.paddr.width + data_width + 2
                         + len(bridge.apb_ports))
        self.bridge_model = RegisterEnergyModel(register_bits, params)
        # The PRDATA return path is a small read mux over peripherals.
        self.rdata_model = MuxEnergyModel(
            max(2, len(bridge.apb_ports)), data_width, params)

        wires = [bridge.paddr, bridge.pwrite, bridge.penable,
                 bridge.pwdata]
        for port in bridge.apb_ports:
            wires.append(port.psel)
            wires.append(port.prdata)
        self._activity = Activity("apb", wires)

        self.ledger = EnergyLedger(blocks=(BLOCK_APB_BRIDGE,
                                           BLOCK_APB_BUS))
        self.method(self._on_clk, [bridge.clk.posedge], name="monitor",
                    initialize=False)

    def _classify(self):
        bridge = self.bridge
        selected = any(port.psel.value for port in bridge.apb_ports)
        if not selected:
            return "IDLE"
        if not bridge.penable.value:
            return "SETUP"
        return "ENABLE_WRITE" if bridge.pwrite.value else "ENABLE_READ"

    def _on_clk(self):
        sample = self._activity.sample()
        bridge = self.bridge
        register_hd = (
            sample.hd(bridge.paddr) + sample.hd(bridge.pwdata)
            + sample.hd(bridge.pwrite) + sample.hd(bridge.penable)
            + sum(sample.hd(port.psel) for port in bridge.apb_ports)
        )
        rdata_hd = sum(sample.hd(port.prdata)
                       for port in bridge.apb_ports)
        energies = {
            BLOCK_APB_BRIDGE: self.bridge_model.energy(register_hd),
            BLOCK_APB_BUS: self.rdata_model.energy(
                rdata_hd, 0, hd_out=rdata_hd),
        }
        instruction = self._classify()
        self.ledger.charge_cycle(instruction, energies)

    @property
    def total_energy(self):
        """Total accounted APB-segment energy (joules)."""
        return self.ledger.total_energy

    def access_energy(self):
        """Mean energy per completed APB access (joules)."""
        accesses = (self.ledger.instruction_stats("ENABLE_READ").count
                    + self.ledger.instruction_stats(
                        "ENABLE_WRITE").count)
        if not accesses:
            return 0.0
        active = (self.ledger.total_energy
                  - self.ledger.instruction_stats("IDLE").energy)
        return active / accesses
