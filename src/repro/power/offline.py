"""Offline power analysis from recorded waveforms.

A complementary flow to the live monitors: run the functional model
once with VCD tracing (no power code at all — the fastest simulation
mode), then replay the waveform through the macromodels as many times
as needed — different technology parameters, voltage corners, or model
coefficients — without re-simulating.

Use :func:`trace_bus` to dump the canonical signal set during
simulation and :class:`OfflinePowerAnalyzer` to replay it.
"""

from __future__ import annotations

from ..amba.types import HTRANS
from ..kernel import VcdTracer
from ..kernel.vcd_reader import load_vcd
from .hamming import hamming
from .instructions import classify_mode
from .ledger import (
    BLOCK_ARB,
    BLOCK_DEC,
    BLOCK_M2S,
    BLOCK_S2M,
    EnergyLedger,
)
from .macromodels import (
    ArbiterEnergyModel,
    DecoderEnergyModel,
    MuxEnergyModel,
)
from .monitors import _decoder_shift
from .parameters import PAPER_TECHNOLOGY
from .power_fsm import PowerFsm

#: Canonical VCD names used by :func:`trace_bus` / the analyzer.
M2S_SIGNALS = ("HTRANS", "HADDR", "HWRITE", "HSIZE", "HBURST", "HPROT",
               "HWDATA")
S2M_SIGNALS = ("HRDATA", "HRESP", "HREADY")


def trace_bus(sim, bus, path):
    """Open a VCD tracer dumping the signal set the offline analyzer
    needs; returns the :class:`~repro.kernel.trace.VcdTracer` (close it
    after the run)."""
    tracer = VcdTracer(sim, path, timescale="1ps")
    shared = dict(zip(
        M2S_SIGNALS + S2M_SIGNALS,
        (bus.htrans, bus.haddr, bus.hwrite, bus.hsize, bus.hburst,
         bus.hprot, bus.hwdata, bus.hrdata, bus.hresp, bus.hready),
    ))
    for name, signal in shared.items():
        tracer.trace(signal, name)
    tracer.trace(bus.hmaster, "HMASTER")
    tracer.trace(bus.s2m_mux.dsel, "DSEL")
    for index, port in enumerate(bus.master_ports):
        tracer.trace(port.hbusreq, "HBUSREQ%d" % index)
        tracer.trace(port.hlock, "HLOCK%d" % index)
    return tracer


class OfflinePowerAnalyzer:
    """Replays a recorded bus waveform through the macromodels.

    Parameters mirror :class:`~repro.power.monitors.GlobalPowerMonitor`
    so offline and live analyses are directly comparable.

    Parameters
    ----------
    config:
        The :class:`~repro.amba.config.AhbConfig` of the recorded bus.
    params:
        Technology parameters to evaluate under (vary freely between
        replays of the same dump).
    """

    def __init__(self, config, params=PAPER_TECHNOLOGY):
        self.config = config
        self.params = params
        n_slaves_total = config.n_slaves + 1
        self.m2s_model = MuxEnergyModel(
            config.n_masters, config.addr_width + config.data_width + 13,
            params)
        self.s2m_model = MuxEnergyModel(
            n_slaves_total, config.data_width + 3, params)
        self.decoder_model = DecoderEnergyModel(n_slaves_total, params)
        self.arbiter_model = ArbiterEnergyModel(config.n_masters, params)
        self.decoder_shift = _decoder_shift(config.address_map)

    def _signal_widths(self):
        cfg = self.config
        return {
            "HTRANS": 2, "HADDR": cfg.addr_width, "HWRITE": 1,
            "HSIZE": 3, "HBURST": 3, "HPROT": 4,
            "HWDATA": cfg.data_width, "HRDATA": cfg.data_width,
            "HRESP": 2, "HREADY": 1, "HMASTER": 4, "DSEL": 8,
        }

    def analyze(self, vcd, clock_period_ps, first_edge_ps,
                t_end=None):
        """Replay *vcd* and return the resulting
        :class:`~repro.power.ledger.EnergyLedger`."""
        widths = self._signal_widths()
        request_names = []
        for index in range(self.config.n_masters):
            for stem in ("HBUSREQ%d", "HLOCK%d"):
                name = stem % index
                if name in vcd:
                    request_names.append(name)
                    widths[name] = 1

        missing = [name for name in
                   M2S_SIGNALS + S2M_SIGNALS + ("HMASTER", "DSEL")
                   if name not in vcd]
        if missing:
            raise ValueError(
                "VCD lacks required signals: %s (record with "
                "repro.power.offline.trace_bus)" % ", ".join(missing))

        ledger = EnergyLedger()
        fsm = PowerFsm(ledger)
        previous = {name: 0 for name in widths}
        default_master = self.config.default_master

        for sample_time in vcd.sample_times(clock_period_ps,
                                            first_edge_ps, t_end=t_end):
            current = {name: vcd[name].value_at(sample_time)
                       for name in widths}

            hd_m2s = sum(
                hamming(previous[name], current[name],
                        width=widths[name])
                for name in M2S_SIGNALS)
            hd_s2m = sum(
                hamming(previous[name], current[name],
                        width=widths[name])
                for name in S2M_SIGNALS)
            hd_req = sum(
                hamming(previous[name], current[name], width=1)
                for name in request_names)
            hd_decode = hamming(
                previous["HADDR"] >> self.decoder_shift,
                current["HADDR"] >> self.decoder_shift,
                width=self.decoder_model.n_inputs)
            hd_dsel = hamming(previous["DSEL"], current["DSEL"],
                              width=8)
            handover = current["HMASTER"] != previous["HMASTER"]

            energies = {
                BLOCK_M2S: self.m2s_model.energy(
                    hd_in=hd_m2s, hd_sel=1 if handover else 0,
                    hd_out=hd_m2s),
                BLOCK_S2M: self.s2m_model.energy(
                    hd_in=hd_s2m, hd_sel=hd_dsel, hd_out=hd_s2m),
                BLOCK_DEC: self.decoder_model.energy(hd_decode),
                BLOCK_ARB: self.arbiter_model.energy(hd_req, handover),
            }
            mode = classify_mode(
                current["HTRANS"], current["HWRITE"],
                handover=handover
                or current["HMASTER"] == default_master,
            )
            fsm.step(sample_time, mode, energies)
            previous = current
        return ledger

    def analyze_file(self, path, clock_period_ps, first_edge_ps,
                     t_end=None):
        """Convenience: :func:`load_vcd` then :meth:`analyze`."""
        return self.analyze(load_vcd(path), clock_period_ps,
                            first_edge_ps, t_end=t_end)
