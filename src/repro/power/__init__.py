"""System-level power analysis methodology (the paper's contribution).

Activity monitoring (§5.3), energy macromodels (§5.1), the bus
instruction set and ``power_fsm`` (§5.2/§5.4), the three power-model
styles of Fig. 1, energy/power bookkeeping, and gate-level
characterisation (§3).
"""

from .activity import Activity, ActivitySample
from .apb_monitor import ApbPowerMonitor
from .characterize import (
    CharacterizationResult,
    characterize_arbiter,
    characterize_decoder,
    characterize_mux,
    fit_linear_model,
)
from .dpm import (
    ClockGateController,
    GatingEvaluation,
    evaluate_gating_policy,
)
from .encoding import (
    BusEncoder,
    BusInvertEncoder,
    EncodingEvaluation,
    GrayEncoder,
    IdentityEncoder,
    T0Encoder,
    evaluate_encoding,
)
from .hamming import (
    expected_hamming_uniform,
    hamming,
    hamming_sequence,
    signal_probability,
    total_transitions,
    transition_density,
)
from .instructions import (
    ALL_INSTRUCTIONS,
    ARBITRATION_INSTRUCTIONS,
    DATA_TRANSFER_INSTRUCTIONS,
    PAPER_FSM_INSTRUCTIONS,
    TABLE1_INSTRUCTIONS,
    BusMode,
    classify_mode,
    current_mode_of,
    instruction_name,
    is_arbitration,
    is_data_transfer,
    previous_mode_of,
)
from .ledger import (
    BLOCK_ARB,
    BLOCK_DEC,
    BLOCK_M2S,
    BLOCK_S2M,
    PAPER_BLOCKS,
    EnergyLedger,
    InstructionStats,
)
from .macromodels import (
    ArbiterEnergyModel,
    DecoderEnergyModel,
    FittedMacromodel,
    MuxEnergyModel,
    RegisterEnergyModel,
)
from .monitors import (
    GlobalPowerMonitor,
    LocalPowerMonitor,
    PrivatePowerMonitor,
)
from .offline import OfflinePowerAnalyzer, trace_bus
from .parameters import (
    GATE_LEVEL_TECHNOLOGY,
    PAPER_TECHNOLOGY,
    TECH_180NM,
    TechnologyParameters,
)
from .power_fsm import PowerFsm
from .power_trace import PowerTrace, TraceSet
from .statistical import (
    PowerEstimate,
    WorkloadStatistics,
    estimate_average_power,
)

__all__ = [
    "ALL_INSTRUCTIONS",
    "ARBITRATION_INSTRUCTIONS",
    "Activity",
    "ActivitySample",
    "ApbPowerMonitor",
    "ArbiterEnergyModel",
    "BLOCK_ARB",
    "BusEncoder",
    "BusInvertEncoder",
    "BLOCK_DEC",
    "BLOCK_M2S",
    "BLOCK_S2M",
    "BusMode",
    "CharacterizationResult",
    "ClockGateController",
    "DATA_TRANSFER_INSTRUCTIONS",
    "DecoderEnergyModel",
    "EncodingEvaluation",
    "EnergyLedger",
    "FittedMacromodel",
    "GrayEncoder",
    "IdentityEncoder",
    "GATE_LEVEL_TECHNOLOGY",
    "GatingEvaluation",
    "GlobalPowerMonitor",
    "InstructionStats",
    "LocalPowerMonitor",
    "MuxEnergyModel",
    "OfflinePowerAnalyzer",
    "PAPER_BLOCKS",
    "PAPER_FSM_INSTRUCTIONS",
    "PAPER_TECHNOLOGY",
    "PowerEstimate",
    "PowerFsm",
    "PowerTrace",
    "PrivatePowerMonitor",
    "RegisterEnergyModel",
    "T0Encoder",
    "TABLE1_INSTRUCTIONS",
    "TECH_180NM",
    "TechnologyParameters",
    "TraceSet",
    "WorkloadStatistics",
    "characterize_arbiter",
    "characterize_decoder",
    "characterize_mux",
    "classify_mode",
    "current_mode_of",
    "estimate_average_power",
    "evaluate_encoding",
    "evaluate_gating_policy",
    "expected_hamming_uniform",
    "fit_linear_model",
    "hamming",
    "hamming_sequence",
    "instruction_name",
    "is_arbitration",
    "is_data_transfer",
    "previous_mode_of",
    "signal_probability",
    "total_transitions",
    "trace_bus",
    "transition_density",
]
