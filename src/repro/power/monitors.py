"""The three power-model styles of the paper's Fig. 1.

* :class:`GlobalPowerMonitor` — "a further specific module:
  communicating properly with the other modules it can characterize the
  energetic behavior of the entire system".  A separate kernel module,
  sensitive to the bus clock, that observes the shared bus signals,
  evaluates the sub-block macromodels every cycle and drives the
  power FSM.  This is the reference model used for all paper
  experiments.

* :class:`LocalPowerMonitor` — "a particular process added to those
  already present in the module ... a system activity monitor".  It
  watches only the activity *mode* and charges a pre-characterised
  average energy per instruction: cheaper, coarser.

* :class:`PrivatePowerMonitor` — "characterize each process in terms
  of energy so that a process is considered as a single, atomic
  instruction ... very accurate ... highly intrusive and with a deep
  impact on simulation speed".  It hooks every sub-block I/O signal
  commit (event granularity, not cycle granularity) and charges
  switched capacitance per individual transition.

Omitting a monitor reproduces the paper's ``POWERTEST`` compile switch:
no instrumentation code runs at all.
"""

from __future__ import annotations

import math

from ..amba.types import HRESP, HTRANS
from ..kernel import Module
from .activity import Activity
from .hamming import hamming
from .instructions import classify_mode, instruction_name
from .ledger import (
    BLOCK_ARB,
    BLOCK_DEC,
    BLOCK_M2S,
    BLOCK_S2M,
    EnergyLedger,
    PAPER_BLOCKS,
)
from .macromodels import (
    ArbiterEnergyModel,
    DecoderEnergyModel,
    MuxEnergyModel,
)
from .parameters import PAPER_TECHNOLOGY
from .power_fsm import PowerFsm
from .power_trace import TraceSet


def _decoder_shift(address_map):
    """Bit position where slave regions start to differ.

    The physical decoder only looks at address bits above the region
    granularity; Hamming activity below that bit is data-path, not
    decode, activity.
    """
    sizes = [region.size for region in address_map]
    if not sizes:
        return 0
    return int(math.floor(math.log2(min(sizes))))


class GlobalPowerMonitor(Module):
    """Cycle-accurate, macromodel-driven power analysis (global style).

    Parameters
    ----------
    bus:
        The :class:`~repro.amba.bus.AhbBus` under analysis.
    params:
        Technology constants for the macromodels.
    with_traces:
        Record per-block :class:`PowerTrace` data (needed for the
        Fig. 3–5 experiments; costs memory on long runs).
    datafile:
        Optional open file for the per-cycle energy log.
    """

    def __init__(self, sim, name, bus, params=PAPER_TECHNOLOGY,
                 with_traces=False, datafile=None, parent=None,
                 with_clock_tree=False, clock_tree_flops=None,
                 clock_gate=None, wake_penalty_factor=2.0):
        super().__init__(sim, name, parent=parent)
        self.bus = bus
        self.params = params
        cfg = bus.config

        # Optional bus-wide clock-tree block ("CLK"): the pipeline
        # registers of masters, slaves and fabric, charged every
        # ungated cycle.  Off by default so the paper's four-block
        # Fig. 6 decomposition is reproduced unchanged; the DPM
        # extension (repro.power.dpm) turns it on together with a
        # ClockGateController.
        if clock_gate is not None and not with_clock_tree:
            raise ValueError(
                "clock gating needs with_clock_tree=True (gating only "
                "affects the clock-tree block)")
        self.clock_gate = clock_gate
        self.wake_penalty_factor = wake_penalty_factor
        if with_clock_tree:
            if clock_tree_flops is None:
                clock_tree_flops = cfg.n_masters * 80 + cfg.n_slaves * 40
            self._clock_tree_energy = (
                params.half_cv2 * params.c_clk * clock_tree_flops)
            self.clock_tree_flops = clock_tree_flops
        else:
            self._clock_tree_energy = None
            self.clock_tree_flops = 0
        self._was_gated = False

        n_masters = cfg.n_masters
        n_slaves_total = cfg.n_slaves + 1  # incl. default slave
        m2s_width = (cfg.addr_width + cfg.data_width + 13)
        s2m_width = cfg.data_width + 3

        self.m2s_model = MuxEnergyModel(n_masters, m2s_width, params)
        self.s2m_model = MuxEnergyModel(n_slaves_total, s2m_width, params)
        self.decoder_model = DecoderEnergyModel(n_slaves_total, params)
        self.arbiter_model = ArbiterEnergyModel(n_masters, params)

        self._m2s_out = Activity(
            "m2s_out",
            (bus.htrans, bus.haddr, bus.hwrite, bus.hsize, bus.hburst,
             bus.hprot, bus.hwdata),
        )
        self._s2m_out = Activity(
            "s2m_out", (bus.hrdata, bus.hresp, bus.hready),
        )
        request_signals = []
        for port in bus.master_ports:
            request_signals.append(port.hbusreq)
            request_signals.append(port.hlock)
        self._arb_in = Activity("arb_in", request_signals)

        self._decoder_shift = _decoder_shift(cfg.address_map)
        self._prev_haddr = bus.haddr.value
        self._prev_owner = bus.hmaster.value
        self._prev_dsel = bus.s2m_mux.dsel.value

        traces = TraceSet(PAPER_BLOCKS + ("TOTAL",)) if with_traces else None
        self.ledger = EnergyLedger()
        self.fsm = PowerFsm(self.ledger, traces=traces, datafile=datafile)
        self.traces = traces

        # Aggregate activity counters consumed by
        # repro.power.statistical.WorkloadStatistics.from_monitor.
        self.decode_hd_total = 0
        self.decode_change_count = 0
        self.dsel_hd_total = 0
        self.handover_total = 0
        self.transfer_cycles = 0
        self.write_cycles = 0

        #: Energy chargeback: joules attributed to each master index
        #: (the cycle's address-phase owner pays for the cycle).
        self.master_energy = [0.0] * cfg.n_masters

        self.method(self._on_clk, [bus.clk.posedge], name="monitor",
                    initialize=False)

    # -- per-cycle analysis ----------------------------------------------

    def _on_clk(self):
        bus = self.bus

        m2s_sample = self._m2s_out.sample()
        s2m_sample = self._s2m_out.sample()
        arb_sample = self._arb_in.sample()

        owner = bus.hmaster.value
        handover_done = owner != self._prev_owner
        grant_pending = bus.arbiter._grant_idx.value != owner
        # Cycles parked on the default master are handover territory:
        # the default master never transfers, so the next real transfer
        # necessarily involves a grant change (the paper's IDLE_HO
        # periods span whole idle windows, see DESIGN.md).
        parked = owner == bus.config.default_master
        self._prev_owner = owner

        haddr = bus.haddr.value
        hd_decode = hamming(
            self._prev_haddr >> self._decoder_shift,
            haddr >> self._decoder_shift,
            width=self.decoder_model.n_inputs,
        )
        self._prev_haddr = haddr

        dsel = bus.s2m_mux.dsel.value
        hd_dsel = hamming(self._prev_dsel, dsel, width=8)
        self._prev_dsel = dsel

        hd_owner_code = 1 if handover_done else 0

        self.decode_hd_total += hd_decode
        if hd_decode:
            self.decode_change_count += 1
        self.dsel_hd_total += hd_dsel
        if handover_done:
            self.handover_total += 1
        if bus.htrans.value in (int(HTRANS.NONSEQ), int(HTRANS.SEQ)):
            self.transfer_cycles += 1
            if bus.hwrite.value:
                self.write_cycles += 1

        energies = {
            BLOCK_M2S: self.m2s_model.energy(
                hd_in=m2s_sample.total,
                hd_sel=hd_owner_code,
                hd_out=m2s_sample.total,
            ),
            BLOCK_S2M: self.s2m_model.energy(
                hd_in=s2m_sample.total,
                hd_sel=hd_dsel,
                hd_out=s2m_sample.total,
            ),
            BLOCK_DEC: self.decoder_model.energy(hd_decode),
            BLOCK_ARB: self.arbiter_model.energy(
                arb_sample.total, handover_done,
            ),
        }
        if self._clock_tree_energy is not None:
            energies["CLK"] = self._clock_tree_cycle_energy()

        mode = classify_mode(
            bus.htrans.value, bus.hwrite.value,
            handover=handover_done or grant_pending or parked,
        )
        self.fsm.step(self.sim.now, mode, energies,
                      response=HRESP(bus.hresp.value).name)
        self.master_energy[owner] += sum(energies.values())

    def master_energy_shares(self):
        """Fraction of total energy attributed to each master index."""
        total = sum(self.master_energy)
        if total == 0:
            return [0.0] * len(self.master_energy)
        return [energy / total for energy in self.master_energy]

    def _clock_tree_cycle_energy(self):
        """Clock-tree charge for this cycle, honouring clock gating."""
        gated_now = (self.clock_gate is not None
                     and bool(self.clock_gate.gated.value))
        if gated_now:
            energy = 0.0
        else:
            energy = self._clock_tree_energy
            if self._was_gated:
                # wake-up: the gated tree recharges and the enable
                # latches toggle across the whole distribution
                energy += (self.wake_penalty_factor
                           * self._clock_tree_energy)
        self._was_gated = gated_now
        return energy

    # -- results ------------------------------------------------------------

    @property
    def total_energy(self):
        """Total accounted energy so far (joules)."""
        return self.ledger.total_energy

    def activity_summary(self):
        """Switching statistics of all monitored signal groups."""
        return {
            "m2s_out": self._m2s_out.summary(),
            "s2m_out": self._s2m_out.summary(),
            "arb_in": self._arb_in.summary(),
        }

    # -- checkpoint support ---------------------------------------------

    def state_dict(self):
        """Monitor, FSM, ledger and activity-group state.

        Power *traces* (when enabled) are append-only history and are
        NOT checkpointed — a restored run continues recording from the
        restore point; see docs/RESILIENCE.md.
        """
        return {
            "was_gated": self._was_gated,
            "prev_haddr": self._prev_haddr,
            "prev_owner": self._prev_owner,
            "prev_dsel": self._prev_dsel,
            "decode_hd_total": self.decode_hd_total,
            "decode_change_count": self.decode_change_count,
            "dsel_hd_total": self.dsel_hd_total,
            "handover_total": self.handover_total,
            "transfer_cycles": self.transfer_cycles,
            "write_cycles": self.write_cycles,
            "master_energy": list(self.master_energy),
            "ledger": self.ledger.state_dict(),
            "fsm": self.fsm.state_dict(),
            "m2s_out": self._m2s_out.state_dict(),
            "s2m_out": self._s2m_out.state_dict(),
            "arb_in": self._arb_in.state_dict(),
        }

    def load_state_dict(self, state):
        self._was_gated = state["was_gated"]
        self._prev_haddr = state["prev_haddr"]
        self._prev_owner = state["prev_owner"]
        self._prev_dsel = state["prev_dsel"]
        self.decode_hd_total = state["decode_hd_total"]
        self.decode_change_count = state["decode_change_count"]
        self.dsel_hd_total = state["dsel_hd_total"]
        self.handover_total = state["handover_total"]
        self.transfer_cycles = state["transfer_cycles"]
        self.write_cycles = state["write_cycles"]
        self.master_energy = list(state["master_energy"])
        self.ledger.load_state_dict(state["ledger"])
        self.fsm.load_state_dict(state["fsm"])
        self._m2s_out.load_state_dict(state["m2s_out"])
        self._s2m_out.load_state_dict(state["s2m_out"])
        self._arb_in.load_state_dict(state["arb_in"])


class LocalPowerMonitor(Module):
    """Instruction-table power analysis (local style).

    Only the activity mode is observed; each executed instruction is
    charged a fixed average energy from *instruction_energies* (a dict
    ``name -> joules``, typically produced by a characterisation run of
    the global monitor via
    :meth:`GlobalPowerMonitor.ledger.instructions`).  Unknown
    instructions fall back to *default_energy*.
    """

    def __init__(self, sim, name, bus, instruction_energies,
                 default_energy=0.0, with_traces=False, parent=None):
        super().__init__(sim, name, parent=parent)
        self.bus = bus
        self.instruction_energies = dict(instruction_energies)
        self.default_energy = default_energy
        self.ledger = EnergyLedger(blocks=("BUS",))
        traces = TraceSet(("BUS", "TOTAL")) if with_traces else None
        self.traces = traces
        self.fsm = PowerFsm(self.ledger, traces=traces)
        self._prev_owner = bus.hmaster.value
        self.method(self._on_clk, [bus.clk.posedge], name="monitor",
                    initialize=False)

    def _on_clk(self):
        bus = self.bus
        owner = bus.hmaster.value
        handover_done = owner != self._prev_owner
        grant_pending = bus.arbiter._grant_idx.value != owner
        parked = owner == bus.config.default_master
        self._prev_owner = owner
        mode = classify_mode(
            bus.htrans.value, bus.hwrite.value,
            handover=handover_done or grant_pending or parked,
        )
        # Peek the instruction the FSM will classify so its table
        # energy can be charged in the same step.
        name = instruction_name(self.fsm.state, mode)
        energy = self.instruction_energies.get(name, self.default_energy)
        self.fsm.step(self.sim.now, mode, {"BUS": energy},
                      response=HRESP(bus.hresp.value).name)

    @property
    def total_energy(self):
        """Total accounted energy so far (joules)."""
        return self.ledger.total_energy

    # -- checkpoint support ---------------------------------------------

    def state_dict(self):
        return {
            "prev_owner": self._prev_owner,
            "ledger": self.ledger.state_dict(),
            "fsm": self.fsm.state_dict(),
        }

    def load_state_dict(self, state):
        self._prev_owner = state["prev_owner"]
        self.ledger.load_state_dict(state["ledger"])
        self.fsm.load_state_dict(state["fsm"])


class PrivatePowerMonitor(Module):
    """Event-granularity power analysis (private style).

    Watches every individual signal commit on the sub-block interfaces
    and charges switched capacitance per transition: internal-node
    capacitance scaled by a per-block path depth, plus output load on
    the block output nets.  The most accurate and the slowest style —
    each signal change costs a Python callback inside the kernel's
    update phase.
    """

    def __init__(self, sim, name, bus, params=PAPER_TECHNOLOGY,
                 parent=None):
        super().__init__(sim, name, parent=parent)
        self.bus = bus
        self.params = params
        cfg = bus.config
        self.ledger = EnergyLedger()
        self.fsm = PowerFsm(self.ledger)
        self._pending = {block: 0.0 for block in PAPER_BLOCKS}
        self._prev_owner = bus.hmaster.value

        n_slaves_total = cfg.n_slaves + 1
        m2s_depth = 1 + math.ceil(math.log2(cfg.n_masters))
        s2m_depth = 1 + math.ceil(math.log2(n_slaves_total))
        dec_cost = (self.params.c_pd
                    * math.ceil(math.log2(n_slaves_total)))

        watch_plan = [
            (BLOCK_M2S, bus.htrans, m2s_depth),
            (BLOCK_M2S, bus.haddr, m2s_depth),
            (BLOCK_M2S, bus.hwrite, m2s_depth),
            (BLOCK_M2S, bus.hsize, m2s_depth),
            (BLOCK_M2S, bus.hburst, m2s_depth),
            (BLOCK_M2S, bus.hprot, m2s_depth),
            (BLOCK_M2S, bus.hwdata, m2s_depth),
            (BLOCK_S2M, bus.hrdata, s2m_depth),
            (BLOCK_S2M, bus.hresp, s2m_depth),
            (BLOCK_S2M, bus.hready, s2m_depth),
        ]
        half_cv2 = params.half_cv2
        for block, signal, depth in watch_plan:
            per_bit = half_cv2 * (params.c_pd * depth + params.c_o)
            signal.add_watcher(self._make_watcher(block, per_bit))

        for port in bus.slave_ports:
            port.hsel.add_watcher(
                self._make_watcher(BLOCK_DEC, half_cv2 * (dec_cost
                                                          + params.c_o))
            )
        bus.default_slave_port.hsel.add_watcher(
            self._make_watcher(BLOCK_DEC, half_cv2 * (dec_cost
                                                      + params.c_o))
        )
        for port in bus.master_ports:
            port.hgrant.add_watcher(
                self._make_watcher(BLOCK_ARB,
                                   half_cv2 * (params.c_pd + params.c_o))
            )
            port.hbusreq.add_watcher(
                self._make_watcher(BLOCK_ARB, half_cv2 * params.c_pd * 2)
            )

        self.method(self._on_clk, [bus.clk.posedge], name="monitor",
                    initialize=False)

    def _make_watcher(self, block, per_bit_energy):
        pending = self._pending

        def watcher(signal, old, new):
            pending[block] += per_bit_energy * hamming(
                old, new, width=signal.width,
            )
        return watcher

    def _on_clk(self):
        bus = self.bus
        owner = bus.hmaster.value
        handover_done = owner != self._prev_owner
        grant_pending = bus.arbiter._grant_idx.value != owner
        parked = owner == bus.config.default_master
        self._prev_owner = owner
        mode = classify_mode(
            bus.htrans.value, bus.hwrite.value,
            handover=handover_done or grant_pending or parked,
        )
        energies = dict(self._pending)
        # Arbiter clock tree burns every cycle.
        energies[BLOCK_ARB] += (
            self.params.half_cv2 * self.params.c_clk
            * (bus.config.n_masters + 8)
        )
        for block in self._pending:
            self._pending[block] = 0.0
        self.fsm.step(self.sim.now, mode, energies,
                      response=HRESP(bus.hresp.value).name)

    @property
    def total_energy(self):
        """Total accounted energy so far (joules)."""
        return self.ledger.total_energy

    # -- checkpoint support ---------------------------------------------

    def state_dict(self):
        return {
            "pending": dict(sorted(self._pending.items())),
            "prev_owner": self._prev_owner,
            "ledger": self.ledger.state_dict(),
            "fsm": self.fsm.state_dict(),
        }

    def load_state_dict(self, state):
        # The watcher closures hold a reference to the _pending dict:
        # mutate it in place, never rebind it.
        self._pending.clear()
        self._pending.update(state["pending"])
        self._prev_owner = state["prev_owner"]
        self.ledger.load_state_dict(state["ledger"])
        self.fsm.load_state_dict(state["fsm"])
