"""Analytic energy macromodels of the AHB sub-blocks (paper §5.1).

Each model turns per-cycle switching observations (Hamming distances,
handover events) into dynamic energy in joules.  The shapes come from
the gate-level structure of each block; the constants are exposed so
:mod:`repro.power.characterize` can refit them against the gate-level
netlists of :mod:`repro.gatelevel` — the same derive-then-validate loop
the paper ran with SIS.

Decoder
-------
The paper gives the decoder model explicitly for a one-hot NOT/AND
decoder with ``n_O`` outputs and ``n_I = ceil(log2(n_O))`` inputs::

    E_DEC = (V_DD²/2) · (n_I · n_O · C_PD · HD_IN  +  2 · HD_OUT · C_O)

with ``HD_OUT = 1`` iff ``HD_IN ≥ 1`` — when the input code changes, a
one-hot output changes exactly two bits (one falls, one rises), hence
the factor 2 on the output term.

Multiplexer
-----------
``E_MUX = f(w, n, HD_IN, HD_SEL)`` in the paper.  For the AND-OR tree
of :func:`repro.gatelevel.synth.synth_mux`, an output-bit toggle walks
``1 + ceil(log2 n)`` internal nodes (its AND leg plus the OR-tree path)
and a select change re-decodes two one-hot minterms.

Arbiter
-------
"A simple FSM ... of a simplified version of the arbiter": a clock
term for the grant/owner registers, a request-activity term for the
priority chain, and a handover term (two grant flops plus the
``HMASTER`` register toggling).
"""

from __future__ import annotations

import math

from .parameters import PAPER_TECHNOLOGY


class DecoderEnergyModel:
    """The paper's parametric decoder macromodel.

    Parameters
    ----------
    n_outputs:
        Decoder outputs = user slaves + the default slave.
    params:
        :class:`~repro.power.parameters.TechnologyParameters`.
    input_coeff, output_coeff:
        Override the structural constants (used after refitting against
        gate level); defaults are the paper's ``n_I·n_O`` and ``2``.
    """

    def __init__(self, n_outputs, params=PAPER_TECHNOLOGY,
                 input_coeff=None, output_coeff=None):
        if n_outputs < 2:
            raise ValueError("decoder needs at least two outputs")
        self.n_outputs = n_outputs
        self.n_inputs = max(1, math.ceil(math.log2(n_outputs)))
        self.params = params
        self.input_coeff = (self.n_inputs * self.n_outputs
                            if input_coeff is None else input_coeff)
        self.output_coeff = 2.0 if output_coeff is None else output_coeff

    def energy(self, hd_in):
        """Energy of one cycle whose input code changed by *hd_in* bits."""
        if hd_in < 0:
            raise ValueError("negative Hamming distance")
        hd_out = 1 if hd_in >= 1 else 0
        params = self.params
        return params.half_cv2 * (
            self.input_coeff * params.c_pd * hd_in
            + self.output_coeff * hd_out * params.c_o
        )

    def max_energy(self):
        """Energy when every input bit toggles (worst case)."""
        return self.energy(self.n_inputs)

    def __repr__(self):
        return "DecoderEnergyModel(n_out=%d, n_in=%d)" % (
            self.n_outputs, self.n_inputs,
        )


class MuxEnergyModel:
    """Macromodel of a ``width``-bit ``n_inputs``-leg multiplexer.

    ``energy(hd_in, hd_sel, hd_out=None)`` — per paper §5.1 the inputs
    are the bus width ``w``, the leg count ``n`` and the Hamming
    distances of the data and select inputs.  ``hd_out`` may be passed
    when the monitor observes the output bus directly; otherwise it is
    estimated (equal to ``hd_in`` with a stable select, half the width
    on a select change, the legs being uncorrelated).
    """

    def __init__(self, n_inputs, width, params=PAPER_TECHNOLOGY,
                 path_coeff=None, select_coeff=None, output_coeff=1.0):
        if n_inputs < 2:
            raise ValueError("multiplexer needs at least two legs")
        if width < 1:
            raise ValueError("width must be positive")
        self.n_inputs = n_inputs
        self.width = width
        self.n_select = max(1, math.ceil(math.log2(n_inputs)))
        self.params = params
        #: Internal nodes walked per output-bit toggle (AND leg + OR
        #: tree path).
        self.path_coeff = (1.0 + math.ceil(math.log2(n_inputs))
                           if path_coeff is None else path_coeff)
        #: Internal nodes switched per select-bit toggle (one-hot
        #: re-decode: two minterm trees).
        self.select_coeff = (2.0 * self.n_select
                             if select_coeff is None else select_coeff)
        self.output_coeff = output_coeff

    def estimate_hd_out(self, hd_in, hd_sel):
        """Expected output Hamming distance when not observed."""
        if hd_sel == 0:
            return min(hd_in, self.width)
        return self.width / 2.0

    def energy(self, hd_in, hd_sel, hd_out=None):
        """Energy of one cycle of multiplexer activity (joules)."""
        if hd_in < 0 or hd_sel < 0:
            raise ValueError("negative Hamming distance")
        if hd_out is None:
            hd_out = self.estimate_hd_out(hd_in, hd_sel)
        params = self.params
        internal = (self.path_coeff * hd_out
                    + self.select_coeff * hd_sel)
        return params.half_cv2 * (
            params.c_pd * internal
            + self.output_coeff * params.c_o * hd_out
        )

    def __repr__(self):
        return "MuxEnergyModel(n=%d, w=%d)" % (self.n_inputs, self.width)


class ArbiterEnergyModel:
    """FSM energy model of a simplified arbiter.

    ``energy(hd_req, handover)`` charges:

    * a constant clock term — the grant one-hot register (``n``
      flops), the 4-bit ``HMASTER`` register and its delayed copy are
      clocked every cycle whether or not anything moves;
    * a request-activity term — each toggling ``HBUSREQx``/``HLOCKx``
      input re-evaluates part of the priority chain;
    * a handover term — two grant flops toggle (one-hot) and the
      ``HMASTER``/``HMASTER_D`` registers and their fanout switch.
    """

    #: HMASTER + HMASTER_D register width.
    OWNER_REGISTER_BITS = 8

    def __init__(self, n_masters, params=PAPER_TECHNOLOGY,
                 request_coeff=2.0, handover_coeff=None):
        if n_masters < 1:
            raise ValueError("arbiter needs at least one master")
        self.n_masters = n_masters
        self.params = params
        self.n_flops = n_masters + self.OWNER_REGISTER_BITS
        self.request_coeff = request_coeff
        #: Internal nodes switched on a handover; the grant lines are
        #: block outputs so they get C_O below.
        self.handover_coeff = (4.0 + math.ceil(math.log2(max(2, n_masters)))
                               if handover_coeff is None else handover_coeff)

    def idle_energy(self):
        """Per-cycle clock-tree energy (always burned)."""
        return self.params.half_cv2 * self.params.c_clk * self.n_flops

    def energy(self, hd_req, handover):
        """Energy of one arbiter cycle (joules).

        Parameters
        ----------
        hd_req:
            Bit changes across the request/lock inputs this cycle.
        handover:
            ``True`` when bus ownership changed at the cycle boundary.
        """
        if hd_req < 0:
            raise ValueError("negative Hamming distance")
        params = self.params
        total = self.idle_energy()
        total += params.half_cv2 * params.c_pd * self.request_coeff * hd_req
        if handover:
            total += params.half_cv2 * (
                params.c_pd * self.handover_coeff
                + params.c_o * 2.0  # two one-hot grant outputs toggle
            )
        return total

    def __repr__(self):
        return "ArbiterEnergyModel(n_masters=%d)" % self.n_masters


class RegisterEnergyModel:
    """Pipeline/interface register bank model (methodology extension).

    Used by examples that apply the methodology to other IP blocks: a
    *width*-bit register charges its clock pins every cycle and
    ``C_PD`` per stored-bit toggle.
    """

    def __init__(self, width, params=PAPER_TECHNOLOGY):
        if width < 1:
            raise ValueError("width must be positive")
        self.width = width
        self.params = params

    def energy(self, hd, clocked=True):
        """Energy of one cycle with *hd* stored bits toggling."""
        if hd < 0:
            raise ValueError("negative Hamming distance")
        params = self.params
        total = params.half_cv2 * params.c_pd * hd
        if clocked:
            total += params.half_cv2 * params.c_clk * self.width
        return total


class FittedMacromodel:
    """A linear macromodel produced by characterisation.

    ``energy = intercept + Σ coefficients[k] · features[k]`` — the
    output of :func:`repro.power.characterize.fit_linear_model`.
    """

    def __init__(self, feature_names, coefficients, intercept=0.0):
        if len(feature_names) != len(coefficients):
            raise ValueError("feature/coefficient length mismatch")
        self.feature_names = tuple(feature_names)
        self.coefficients = tuple(float(c) for c in coefficients)
        self.intercept = float(intercept)

    def energy(self, **features):
        """Evaluate the model; unknown feature names raise KeyError."""
        unknown = set(features) - set(self.feature_names)
        if unknown:
            raise KeyError("unknown features: %s" % ", ".join(unknown))
        total = self.intercept
        for name, coeff in zip(self.feature_names, self.coefficients):
            total += coeff * features.get(name, 0.0)
        return total

    def __repr__(self):
        terms = " + ".join(
            "%.3e*%s" % (coeff, name)
            for name, coeff in zip(self.feature_names, self.coefficients)
        )
        return "FittedMacromodel(%.3e + %s)" % (self.intercept, terms)
