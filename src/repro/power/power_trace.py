"""Power-versus-time traces (paper Figs. 3–5).

The monitors append per-cycle energy events to a :class:`PowerTrace`;
:meth:`PowerTrace.windowed` then averages them into power samples over
fixed windows, which is how the paper's power plots are produced from
cycle energies.
"""

from __future__ import annotations

import numpy as np

from ..kernel.time import to_seconds


class PowerTrace:
    """Timestamped energy events for one block (or the whole bus).

    Parameters
    ----------
    name:
        Trace label ("TOTAL", "ARB", "M2S", ...).
    """

    def __init__(self, name):
        self.name = name
        self._times = []
        self._energies = []

    def record(self, time_ps, energy):
        """Append one event: *energy* joules spent at *time_ps*."""
        if energy < 0:
            raise ValueError("negative energy event")
        self._times.append(time_ps)
        self._energies.append(energy)

    def __len__(self):
        return len(self._times)

    @property
    def total_energy(self):
        """Sum of all recorded energy (joules)."""
        return float(sum(self._energies))

    @property
    def times(self):
        """Event times as a numpy array (picoseconds)."""
        return np.asarray(self._times, dtype=np.int64)

    @property
    def energies(self):
        """Event energies as a numpy array (joules)."""
        return np.asarray(self._energies, dtype=np.float64)

    def _select(self, t_start, t_end):
        """Events inside the half-open window ``[t_start, t_end)``.

        The single source of window-selection truth shared by
        :meth:`windowed` and :meth:`energy_between`: an event exactly
        on ``t_start`` is **included**, one exactly on ``t_end`` is
        **excluded**.
        """
        times = self.times
        if not len(times):
            return times, self.energies
        mask = (times >= t_start) & (times < t_end)
        return times[mask], self.energies[mask]

    def windowed(self, window_ps, t_start=0, t_end=None):
        """Average power per window.

        Returns ``(centers_s, power_w)`` — window-centre times in
        seconds and mean power in watts.  Empty windows report zero
        power.
        """
        if window_ps <= 0:
            raise ValueError("window must be positive")
        times = self.times
        if t_end is None:
            t_end = int(times.max()) + window_ps if len(times) else window_ps
        n_windows = max(1, int(np.ceil((t_end - t_start) / window_ps)))
        edges = t_start + np.arange(n_windows + 1) * window_ps
        sums = np.zeros(n_windows)
        selected_times, selected_energies = self._select(
            t_start, int(edges[-1]))
        if len(selected_times):
            indices = ((selected_times - t_start)
                       // window_ps).astype(int)
            np.add.at(sums, indices, selected_energies)
        centers = (edges[:-1] + edges[1:]) / 2.0
        window_seconds = to_seconds(window_ps)
        return (centers * 1e-12, sums / window_seconds)

    def energy_between(self, t_start, t_end):
        """Energy recorded in ``[t_start, t_end)`` picoseconds."""
        _, energies = self._select(t_start, t_end)
        return float(energies.sum())

    def mean_power(self):
        """Average power over the span of recorded events (watts)."""
        times = self.times
        if len(times) < 2:
            return 0.0
        span = to_seconds(int(times.max() - times.min()))
        if span <= 0:
            return 0.0
        return self.total_energy / span

    def peak_power(self, window_ps):
        """Maximum windowed power (watts)."""
        _, power = self.windowed(window_ps)
        return float(power.max()) if len(power) else 0.0

    def to_csv(self, path, window_ps):
        """Write ``time_s,power_w`` rows of the windowed trace."""
        centers, power = self.windowed(window_ps)
        with open(path, "w") as fh:
            fh.write("time_s,power_w\n")
            for t, p in zip(centers, power):
                fh.write("%.9e,%.9e\n" % (t, p))

    def __repr__(self):
        return "PowerTrace(%r, events=%d, total=%.3e J)" % (
            self.name, len(self), self.total_energy,
        )


class TraceSet:
    """A bundle of named power traces sharing a time base."""

    def __init__(self, names):
        self.traces = {name: PowerTrace(name) for name in names}

    def __getitem__(self, name):
        return self.traces[name]

    def record(self, time_ps, energies):
        """Record a dict of block → energy at *time_ps*."""
        for name, energy in energies.items():
            trace = self.traces.get(name)
            if trace is None:
                trace = self.traces[name] = PowerTrace(name)
            trace.record(time_ps, energy)

    def names(self):
        """Trace labels currently present."""
        return tuple(self.traces)
