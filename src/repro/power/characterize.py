"""IP characterisation: fitting macromodels from gate level (paper §3).

"Once the instruction set has been identified, it is necessary to
characterize each instruction in terms of dissipated power ... it could
be necessary to run lower-level simulations."  This module runs the
gate-level netlists of :mod:`repro.gatelevel` under random stimulus,
extracts (Hamming-distance feature, measured energy) pairs and fits
linear macromodels by least squares — the derive-and-validate loop the
paper performed with SIS.
"""

from __future__ import annotations

import random

import numpy as np

from ..gatelevel import (
    GateLevelSimulator,
    hamming_int,
    synth_mux,
    synth_one_hot_decoder,
    synth_priority_arbiter,
)
from .macromodels import FittedMacromodel


class CharacterizationResult:
    """A fitted macromodel plus its validation statistics."""

    def __init__(self, model, measured, predicted, feature_names):
        self.model = model
        self.measured = np.asarray(measured)
        self.predicted = np.asarray(predicted)
        self.feature_names = tuple(feature_names)

    @property
    def rmse(self):
        """Root-mean-square error (joules)."""
        return float(np.sqrt(np.mean(
            (self.measured - self.predicted) ** 2
        )))

    @property
    def mean_relative_error(self):
        """Mean |error| / mean measured energy — the headline accuracy
        figure for macromodel-vs-gate-level validation."""
        scale = float(np.mean(np.abs(self.measured)))
        if scale == 0:
            return 0.0
        return float(np.mean(np.abs(self.measured - self.predicted))
                     / scale)

    @property
    def total_energy_error(self):
        """Relative error of the *summed* energy (what a long
        simulation accumulates)."""
        total = float(self.measured.sum())
        if total == 0:
            return 0.0
        return abs(float(self.predicted.sum()) - total) / total

    def __repr__(self):
        return ("CharacterizationResult(rmse=%.3e, rel_err=%.2f%%, "
                "total_err=%.2f%%)"
                % (self.rmse, 100 * self.mean_relative_error,
                   100 * self.total_energy_error))


def fit_linear_model(feature_rows, energies, feature_names,
                     fit_intercept=True):
    """Least-squares fit of ``energy ≈ intercept + Σ c_k · feature_k``.

    Negative fitted coefficients are clamped at zero and the fit is
    repeated without the clamped features, keeping the macromodel
    physically meaningful (capacitances cannot be negative).
    """
    rows = np.asarray(feature_rows, dtype=float)
    target = np.asarray(energies, dtype=float)
    if rows.ndim != 2 or rows.shape[0] != target.shape[0]:
        raise ValueError("feature matrix / energy length mismatch")
    n_features = rows.shape[1]
    if len(feature_names) != n_features:
        raise ValueError("feature name count mismatch")

    active = list(range(n_features))
    while True:
        columns = rows[:, active]
        if fit_intercept:
            design = np.hstack([columns, np.ones((rows.shape[0], 1))])
        else:
            design = columns
        solution, *_ = np.linalg.lstsq(design, target, rcond=None)
        coeffs = solution[:len(active)]
        intercept = float(solution[-1]) if fit_intercept else 0.0
        negative = [index for index, value in zip(active, coeffs)
                    if value < 0]
        if not negative:
            break
        active = [index for index in active if index not in negative]
        if not active:
            coeffs = []
            intercept = float(np.mean(target)) if fit_intercept else 0.0
            break

    full = [0.0] * n_features
    for index, value in zip(active, coeffs):
        full[index] = float(value)
    return FittedMacromodel(feature_names, full,
                            intercept=max(0.0, intercept))


def characterize_decoder(n_outputs, vdd=1.8, samples=400, seed=1):
    """Fit ``E_DEC ≈ a·HD_IN + b·HD_OUT`` from the gate-level decoder.

    Returns a :class:`CharacterizationResult`.  The fitted shape should
    (and does — see the validation bench) match the paper's linear
    macromodel.
    """
    netlist = synth_one_hot_decoder(n_outputs)
    simulator = GateLevelSimulator(netlist, vdd=vdd)
    rng = random.Random(seed)

    rows, energies = [], []
    previous = 0
    simulator.step_ints(a=0)
    for _ in range(samples):
        code = rng.randrange(n_outputs)
        result = simulator.step_ints(a=code)
        hd_in = hamming_int(previous, code)
        hd_out = 1 if hd_in else 0
        rows.append([hd_in, hd_out])
        energies.append(result.energy)
        previous = code
    model = fit_linear_model(rows, energies, ("hd_in", "hd_out"),
                             fit_intercept=False)
    predicted = [model.energy(hd_in=row[0], hd_out=row[1])
                 for row in rows]
    return CharacterizationResult(model, energies, predicted,
                                  ("hd_in", "hd_out"))


def characterize_mux(n_inputs, width, vdd=1.8, samples=500, seed=2,
                     select_change_probability=0.2):
    """Fit ``E_MUX ≈ a·HD_OUT + b·HD_SEL`` from the gate-level mux."""
    netlist = synth_mux(n_inputs, width)
    simulator = GateLevelSimulator(netlist, vdd=vdd)
    rng = random.Random(seed)

    legs = [0] * n_inputs
    select = 0
    simulator.step_ints(**{"d%d" % i: 0 for i in range(n_inputs)}, s=0)
    feature_rows, energies = [], []
    prev_select = 0
    prev_out = 0
    for _ in range(samples):
        if rng.random() < select_change_probability:
            select = rng.randrange(n_inputs)
        # Toggle a random subset of the selected leg's bits.
        flip = rng.getrandbits(width) & rng.getrandbits(width)
        legs[select] ^= flip
        result = simulator.step_ints(
            **{"d%d" % i: legs[i] for i in range(n_inputs)}, s=select,
        )
        new_out = legs[select]
        hd_out = hamming_int(prev_out, new_out)
        hd_sel = hamming_int(prev_select, select)
        feature_rows.append([hd_out, hd_sel])
        energies.append(result.energy)
        prev_select = select
        prev_out = new_out
    model = fit_linear_model(feature_rows, energies,
                             ("hd_out", "hd_sel"), fit_intercept=False)
    predicted = [model.energy(hd_out=row[0], hd_sel=row[1])
                 for row in feature_rows]
    return CharacterizationResult(model, energies, predicted,
                                  ("hd_out", "hd_sel"))


def characterize_arbiter(n_requesters, vdd=1.8, samples=500, seed=3):
    """Fit ``E_ARB ≈ a·HD_REQ + b·handover + c`` from gate level."""
    netlist = synth_priority_arbiter(n_requesters)
    simulator = GateLevelSimulator(netlist, vdd=vdd)
    rng = random.Random(seed)

    rows, energies = [], []
    prev_req = 0
    prev_grant = simulator.output_int()
    for _ in range(samples):
        req = rng.getrandbits(n_requesters)
        result = simulator.step_ints(req=req)
        grant = simulator.output_int()
        hd_req = hamming_int(prev_req, req)
        handover = 1 if grant != prev_grant else 0
        rows.append([hd_req, handover])
        energies.append(result.energy)
        prev_req = req
        prev_grant = grant
    model = fit_linear_model(rows, energies, ("hd_req", "handover"),
                             fit_intercept=True)
    predicted = [model.energy(hd_req=row[0], handover=row[1])
                 for row in rows]
    return CharacterizationResult(model, energies, predicted,
                                  ("hd_req", "handover"))
