"""Energy accounting.

The :class:`EnergyLedger` is the single sink every power model charges
into.  It keeps three mutually consistent views:

* **per block** — the paper's structural decomposition (M2S, DEC, ARB,
  S2M, Fig. 6);
* **per instruction** — the behavioural decomposition (Table 1);
* **total** — the sum, with the invariant that all three agree (the
  test suite checks conservation with hypothesis).
"""

from __future__ import annotations


#: Canonical sub-block keys, in the paper's Fig. 6 order.
BLOCK_M2S = "M2S"
BLOCK_DEC = "DEC"
BLOCK_ARB = "ARB"
BLOCK_S2M = "S2M"
PAPER_BLOCKS = (BLOCK_M2S, BLOCK_DEC, BLOCK_ARB, BLOCK_S2M)


class InstructionStats:
    """Count and energy accumulated for one instruction."""

    __slots__ = ("count", "energy")

    def __init__(self):
        self.count = 0
        self.energy = 0.0

    @property
    def average_energy(self):
        """Mean energy per execution (joules); 0 when never executed."""
        if not self.count:
            return 0.0
        return self.energy / self.count

    def __repr__(self):
        return "InstructionStats(count=%d, energy=%.3e J)" % (
            self.count, self.energy,
        )


class EnergyLedger:
    """Per-block and per-instruction energy bookkeeping."""

    def __init__(self, blocks=PAPER_BLOCKS):
        self.block_energy = {block: 0.0 for block in blocks}
        self.instructions = {}
        #: Energy per bus response kind (``"OKAY"``, ``"RETRY"``,
        #: ``"ERROR"``, ``"SPLIT"``) for cycles tagged by the monitor.
        #: Non-OKAY buckets are the energy cost of fault handling —
        #: retry re-issues, error recovery, split parking.
        self.response_energy = {}
        self.total_energy = 0.0
        self.cycles = 0

    # -- charging ----------------------------------------------------------

    def charge_cycle(self, instruction, block_energies, response=None):
        """Account one cycle: *block_energies* maps block → joules.

        The cycle's total is attributed to *instruction* (a string such
        as ``"WRITE_READ"``); unknown blocks are added on the fly so
        extended decompositions (e.g. an APB bridge block) just work.
        *response* optionally tags the cycle with the bus response kind
        shown during it (fault/overhead accounting).
        """
        cycle_total = 0.0
        for block, energy in block_energies.items():
            if energy < 0:
                raise ValueError(
                    "negative energy %r for block %r" % (energy, block)
                )
            self.block_energy[block] = (
                self.block_energy.get(block, 0.0) + energy
            )
            cycle_total += energy
        stats = self.instructions.get(instruction)
        if stats is None:
            stats = self.instructions[instruction] = InstructionStats()
        stats.count += 1
        stats.energy += cycle_total
        if response is not None:
            self.response_energy[response] = (
                self.response_energy.get(response, 0.0) + cycle_total
            )
        self.total_energy += cycle_total
        self.cycles += 1
        return cycle_total

    def charge_bulk(self, instruction, count, block_energies,
                    response=None):
        """Account *count* identical cycles in one update.

        Equivalent to calling :meth:`charge_cycle` *count* times with
        the same arguments, but O(blocks) instead of O(count) — the
        transaction-level tier charges whole mode runs through this
        path.  Returns the total energy charged (joules).
        """
        if count < 0:
            raise ValueError("negative cycle count %r" % count)
        if count == 0:
            return 0.0
        cycle_total = 0.0
        for block, energy in block_energies.items():
            if energy < 0:
                raise ValueError(
                    "negative energy %r for block %r" % (energy, block)
                )
            self.block_energy[block] = (
                self.block_energy.get(block, 0.0) + energy * count
            )
            cycle_total += energy
        total = cycle_total * count
        stats = self.instructions.get(instruction)
        if stats is None:
            stats = self.instructions[instruction] = InstructionStats()
        stats.count += count
        stats.energy += total
        if response is not None:
            self.response_energy[response] = (
                self.response_energy.get(response, 0.0) + total
            )
        self.total_energy += total
        self.cycles += count
        return total

    # -- queries --------------------------------------------------------------

    def instruction_stats(self, instruction):
        """Stats for *instruction* (zeros when never executed)."""
        return self.instructions.get(instruction, InstructionStats())

    def block_share(self, block):
        """Fraction of total energy attributed to *block*."""
        if self.total_energy == 0:
            return 0.0
        return self.block_energy.get(block, 0.0) / self.total_energy

    def instruction_share(self, instruction):
        """Fraction of total energy attributed to *instruction*."""
        if self.total_energy == 0:
            return 0.0
        return self.instruction_stats(instruction).energy / self.total_energy

    def class_share(self, predicate):
        """Energy fraction of instructions satisfying *predicate(name)*."""
        if self.total_energy == 0:
            return 0.0
        energy = sum(stats.energy
                     for name, stats in self.instructions.items()
                     if predicate(name))
        return energy / self.total_energy

    @property
    def overhead_energy(self):
        """Energy of cycles tagged with a non-OKAY response (joules).

        The direct cost of fault handling on the bus: RETRY/SPLIT
        response cycles plus ERROR recovery cycles.  Zero when the run
        was fault-free or the monitor did not tag responses.
        """
        return sum(energy
                   for response, energy in self.response_energy.items()
                   if response != "OKAY")

    def response_share(self, response):
        """Fraction of total energy spent in *response*-tagged cycles."""
        if self.total_energy == 0:
            return 0.0
        return self.response_energy.get(response, 0.0) / self.total_energy

    def block_breakdown(self):
        """Dict block → (energy, share), sorted by descending energy."""
        items = sorted(self.block_energy.items(),
                       key=lambda item: item[1], reverse=True)
        return {block: (energy, self.block_share(block))
                for block, energy in items}

    def average_power(self, elapsed_seconds):
        """Mean power over *elapsed_seconds* (watts)."""
        if elapsed_seconds <= 0:
            raise ValueError("elapsed time must be positive")
        return self.total_energy / elapsed_seconds

    def check_conservation(self, tolerance=1e-9):
        """Verify Σblocks == Σinstructions == total (relative tolerance).

        Returns True; raises ``AssertionError`` with details otherwise.
        """
        block_sum = sum(self.block_energy.values())
        instr_sum = sum(stats.energy
                        for stats in self.instructions.values())
        scale = max(abs(self.total_energy), 1e-30)
        if abs(block_sum - self.total_energy) > tolerance * scale:
            raise AssertionError(
                "block sum %.6e != total %.6e"
                % (block_sum, self.total_energy)
            )
        if abs(instr_sum - self.total_energy) > tolerance * scale:
            raise AssertionError(
                "instruction sum %.6e != total %.6e"
                % (instr_sum, self.total_energy)
            )
        return True

    # -- checkpoint support ---------------------------------------------

    def state_dict(self):
        return {
            "block_energy": dict(sorted(self.block_energy.items())),
            "instructions": {
                name: [stats.count, stats.energy]
                for name, stats in sorted(self.instructions.items())
            },
            "response_energy": dict(
                sorted(self.response_energy.items())),
            "total_energy": self.total_energy,
            "cycles": self.cycles,
        }

    def load_state_dict(self, state):
        self.block_energy = dict(state["block_energy"])
        self.instructions = {}
        for name, (count, energy) in state["instructions"].items():
            stats = self.instructions[name] = InstructionStats()
            stats.count = count
            stats.energy = energy
        self.response_energy = dict(state["response_energy"])
        self.total_energy = state["total_energy"]
        self.cycles = state["cycles"]

    def __repr__(self):
        return "EnergyLedger(cycles=%d, total=%.3e J)" % (
            self.cycles, self.total_energy,
        )
