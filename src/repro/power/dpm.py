"""Dynamic power management (paper §4 extension).

The paper notes the power-analysis code stays out of synthesis "unless
it is necessary to develop a dynamic power management for a run-time
energy optimization of the system".  This module develops exactly that:
a clock-gate controller that uses the same activity information the
power FSM observes to gate the bus clock tree during idle windows, plus
an evaluator that quantifies the savings a gating policy would deliver
on a recorded instruction stream.

The controller is *functional* (it runs inside the simulation and its
decisions are visible cycle by cycle); the energy effect is modelled by
the :class:`~repro.power.monitors.GlobalPowerMonitor` when constructed
with ``clock_gate=`` and ``with_clock_tree=True``.
"""

from __future__ import annotations

from ..amba.types import HTRANS
from ..kernel import Module
from .instructions import BusMode, current_mode_of


class ClockGateController(Module):
    """Idle-window clock gating for the AHB clock tree.

    Gating policy: after ``idle_threshold`` consecutive cycles with no
    active transfer and no pending bus request, assert :attr:`gated`;
    de-assert it the moment any master requests the bus (one wake-up
    cycle of extra clock-tree charge is modelled by the monitor).

    Parameters
    ----------
    bus:
        The :class:`~repro.amba.bus.AhbBus` whose activity is watched.
    idle_threshold:
        Consecutive quiet cycles before the clock gates.
    """

    def __init__(self, sim, name, bus, idle_threshold=4, parent=None):
        super().__init__(sim, name, parent=parent)
        if idle_threshold < 1:
            raise ValueError("idle threshold must be at least 1 cycle")
        self.bus = bus
        self.idle_threshold = int(idle_threshold)
        self.gated = self.signal("gated", init=0, width=1)
        self._idle_streak = 0
        #: Statistics.
        self.gated_cycles = 0
        self.gate_events = 0
        self.wake_events = 0
        self.method(self._on_clk, [bus.clk.posedge], name="policy",
                    initialize=False)

    def _bus_quiet(self):
        if self.bus.htrans.value != int(HTRANS.IDLE):
            return False
        return not any(port.hbusreq.value
                       for port in self.bus.master_ports)

    def _on_clk(self):
        if self.gated.value:
            self.gated_cycles += 1
        if self._bus_quiet():
            self._idle_streak += 1
            if self._idle_streak >= self.idle_threshold and \
                    not self.gated.value:
                self.gated.write(1)
                self.gate_events += 1
        else:
            self._idle_streak = 0
            if self.gated.value:
                self.gated.write(0)
                self.wake_events += 1

    @property
    def gated_fraction(self):
        """Fraction of elapsed cycles spent gated (approximate)."""
        cycles = self.bus.clk.cycles
        if not cycles:
            return 0.0
        return self.gated_cycles / cycles


class GatingEvaluation:
    """Outcome of :func:`evaluate_gating_policy`."""

    def __init__(self, idle_threshold, baseline_energy, gated_energy,
                 gated_cycles, wake_events, total_cycles):
        self.idle_threshold = idle_threshold
        self.baseline_energy = baseline_energy
        self.gated_energy = gated_energy
        self.gated_cycles = gated_cycles
        self.wake_events = wake_events
        self.total_cycles = total_cycles

    @property
    def savings(self):
        """Energy saved (joules)."""
        return self.baseline_energy - self.gated_energy

    @property
    def savings_fraction(self):
        """Savings relative to the baseline clock-tree energy."""
        if self.baseline_energy == 0:
            return 0.0
        return self.savings / self.baseline_energy

    def __repr__(self):
        return ("GatingEvaluation(threshold=%d, saves %.1f%% of the "
                "clock tree, %d wakes)"
                % (self.idle_threshold, 100 * self.savings_fraction,
                   self.wake_events))


def evaluate_gating_policy(instruction_log, idle_threshold,
                           clock_tree_energy_per_cycle,
                           wake_penalty_factor=2.0):
    """What-if analysis of a gating threshold on a recorded run.

    Parameters
    ----------
    instruction_log:
        ``[(time_ps, instruction_name, energy), ...]`` as produced by
        :meth:`PowerFsm.enable_logging` — the per-cycle activity record.
    idle_threshold:
        Candidate gating threshold in cycles.
    clock_tree_energy_per_cycle:
        Joules the ungated clock tree burns each cycle.
    wake_penalty_factor:
        Extra clock-tree charges on each wake-up cycle.

    Returns a :class:`GatingEvaluation`.  Replaying the log applies the
    same policy as :class:`ClockGateController`, so the what-if numbers
    match a live controller run on the same stimulus.
    """
    quiet_modes = (BusMode.IDLE, BusMode.IDLE_HO)
    streak = 0
    gated = False
    gated_cycles = 0
    wake_events = 0
    for _, instruction, _ in instruction_log:
        quiet = current_mode_of(instruction) in quiet_modes
        if gated:
            gated_cycles += 1
        if quiet:
            streak += 1
            if streak >= idle_threshold and not gated:
                gated = True
        else:
            streak = 0
            if gated:
                gated = False
                wake_events += 1

    total_cycles = len(instruction_log)
    baseline = clock_tree_energy_per_cycle * total_cycles
    gated_energy = (
        clock_tree_energy_per_cycle * (total_cycles - gated_cycles)
        + wake_events * wake_penalty_factor
        * clock_tree_energy_per_cycle
    )
    return GatingEvaluation(idle_threshold, baseline, gated_energy,
                            gated_cycles, wake_events, total_cycles)
