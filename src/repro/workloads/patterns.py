"""Traffic sources.

Each source implements :class:`~repro.amba.master.TrafficSource` and is
pulled by a master BFM whenever it runs out of work.  All randomness is
seeded explicitly, so every workload is reproducible.

* :class:`PaperWriteReadSource` — the paper's testbench policy: masters
  "execute WRITE-READ noninterruptible sequences and IDLE commands, for
  a random number of times; only in this period a bus handover can
  occur".
* :class:`RandomSource` — uniform random single transfers.
* :class:`DmaBurstSource` — fixed-length burst traffic (a DMA engine).
* :class:`CpuLikeSource` — read-dominated traffic with spatial
  locality, modelling an instruction/data fetch mix.
"""

from __future__ import annotations

import random

from ..amba.master import TrafficSource
from ..amba.transactions import AhbTransaction
from ..amba.types import HBURST, HSIZE, burst_beats, size_bytes
from ..state.rng import load_rng_state, rng_state


class BoundedSource(TrafficSource):
    """Common bookkeeping: issue budget and generated-transaction log."""

    def __init__(self, seed=0, max_transactions=None):
        self.rng = random.Random(seed)
        self.max_transactions = max_transactions
        self.issued = 0

    def exhausted(self):
        """True once the issue budget is spent."""
        return (self.max_transactions is not None
                and self.issued >= self.max_transactions)

    def next_transaction(self, now):
        if self.exhausted():
            return None
        txn = self._generate(now)
        if txn is not None:
            self.issued += 1
        return txn

    def _generate(self, now):  # pragma: no cover - interface
        raise NotImplementedError

    def state_dict(self):
        return {"rng": rng_state(self.rng), "issued": self.issued}

    def load_state_dict(self, state):
        load_rng_state(self.rng, state["rng"])
        self.issued = state["issued"]


class PaperWriteReadSource(BoundedSource):
    """WRITE–READ atomic pairs separated by random IDLE gaps.

    A *sequence* is 1..``max_pairs`` back-to-back WRITE–READ pairs to
    random addresses of the configured regions (back-to-back transfers
    keep ``HTRANS`` active, so the arbiter cannot hand the bus over
    mid-sequence — the paper's "non-interruptible" property).  Between
    sequences the master idles for a random number of cycles, releasing
    the bus; handovers happen only there.

    Parameters
    ----------
    regions:
        List of ``(base, size)`` address windows to target.
    max_pairs:
        Upper bound of the per-sequence pair count (uniform 1..N).
    idle_range:
        ``(lo, hi)`` bounds of the inter-sequence idle gap in cycles.
    locality:
        Probability that consecutive pairs target the same slave
        region — masters in a SoC have slave affinity (a CPU hits its
        RAM, a DMA engine its peripheral), which keeps decoder and
        read-mux thrash realistic.
    """

    def __init__(self, regions, seed=0, max_transactions=None,
                 max_pairs=4, idle_range=(1, 6), hsize=HSIZE.WORD,
                 locality=0.8):
        super().__init__(seed=seed, max_transactions=max_transactions)
        if not regions:
            raise ValueError("need at least one address region")
        self.regions = list(regions)
        self.max_pairs = max_pairs
        self.idle_range = idle_range
        self.hsize = HSIZE(hsize)
        self.locality = locality
        self._region = self.regions[0]
        self._pending = []
        self.pairs_generated = 0

    def _random_address(self):
        if self.rng.random() >= self.locality:
            self._region = self.rng.choice(self.regions)
        base, size = self._region
        step = size_bytes(self.hsize)
        offset = self.rng.randrange(0, size // step) * step
        return base + offset

    def _new_sequence(self):
        pairs = self.rng.randint(1, self.max_pairs)
        idle_gap = self.rng.randint(*self.idle_range)
        for pair_index in range(pairs):
            address = self._random_address()
            data = self.rng.getrandbits(8 * size_bytes(self.hsize))
            write = AhbTransaction(
                True, address, data=[data], hsize=self.hsize,
                idle_cycles_before=idle_gap if pair_index == 0 else 0,
            )
            read = AhbTransaction(False, address, hsize=self.hsize)
            self._pending.append(write)
            self._pending.append(read)
            self.pairs_generated += 1

    def _generate(self, now):
        if not self._pending:
            self._new_sequence()
        return self._pending.pop(0)

    def state_dict(self):
        from ..amba.transactions import txn_state
        state = super().state_dict()
        state["region"] = list(self._region)
        state["pending"] = [txn_state(txn) for txn in self._pending]
        state["pairs_generated"] = self.pairs_generated
        return state

    def load_state_dict(self, state):
        from ..amba.transactions import txn_from_state
        super().load_state_dict(state)
        self._region = tuple(state["region"])
        self._pending = [txn_from_state(txn)
                         for txn in state["pending"]]
        self.pairs_generated = state["pairs_generated"]


class RandomSource(BoundedSource):
    """Independent uniform random single transfers (50 % writes)."""

    def __init__(self, regions, seed=0, max_transactions=None,
                 write_fraction=0.5, idle_range=(0, 3),
                 hsize=HSIZE.WORD):
        super().__init__(seed=seed, max_transactions=max_transactions)
        self.regions = list(regions)
        self.write_fraction = write_fraction
        self.idle_range = idle_range
        self.hsize = HSIZE(hsize)

    def _generate(self, now):
        base, size = self.rng.choice(self.regions)
        step = size_bytes(self.hsize)
        address = base + self.rng.randrange(0, size // step) * step
        idle = self.rng.randint(*self.idle_range)
        if self.rng.random() < self.write_fraction:
            data = self.rng.getrandbits(8 * step)
            return AhbTransaction(True, address, data=[data],
                                  hsize=self.hsize,
                                  idle_cycles_before=idle)
        return AhbTransaction(False, address, hsize=self.hsize,
                              idle_cycles_before=idle)


class DmaBurstSource(BoundedSource):
    """Fixed-length burst traffic: alternating write and read bursts."""

    def __init__(self, regions, seed=0, max_transactions=None,
                 burst=HBURST.INCR8, idle_range=(2, 10),
                 hsize=HSIZE.WORD):
        super().__init__(seed=seed, max_transactions=max_transactions)
        self.regions = list(regions)
        self.burst = HBURST(burst)
        self.idle_range = idle_range
        self.hsize = HSIZE(hsize)
        self._write_next = True

    def _generate(self, now):
        beats = burst_beats(self.burst) or 8
        step = size_bytes(self.hsize)
        span = beats * step
        base, size = self.rng.choice(self.regions)
        if size < span:
            raise ValueError("region smaller than one burst")
        address = base + self.rng.randrange(0, size // span) * span
        idle = self.rng.randint(*self.idle_range)
        write = self._write_next
        self._write_next = not self._write_next
        if write:
            data = [self.rng.getrandbits(8 * step) for _ in range(beats)]
            return AhbTransaction(True, address, data=data,
                                  hburst=self.burst, hsize=self.hsize,
                                  idle_cycles_before=idle)
        return AhbTransaction(False, address, hburst=self.burst,
                              hsize=self.hsize, idle_cycles_before=idle)

    def state_dict(self):
        state = super().state_dict()
        state["write_next"] = self._write_next
        return state

    def load_state_dict(self, state):
        super().load_state_dict(state)
        self._write_next = state["write_next"]


class CpuLikeSource(BoundedSource):
    """Read-dominated traffic with spatial locality.

    80 % reads; addresses random-walk within a region with occasional
    jumps, approximating instruction fetch plus stack/data traffic.
    """

    def __init__(self, regions, seed=0, max_transactions=None,
                 read_fraction=0.8, jump_probability=0.1,
                 idle_range=(0, 2), hsize=HSIZE.WORD):
        super().__init__(seed=seed, max_transactions=max_transactions)
        self.regions = list(regions)
        self.read_fraction = read_fraction
        self.jump_probability = jump_probability
        self.idle_range = idle_range
        self.hsize = HSIZE(hsize)
        base, size = self.regions[0]
        self._cursor = base
        self._region = (base, size)

    def _generate(self, now):
        step = size_bytes(self.hsize)
        base, size = self._region
        if self.rng.random() < self.jump_probability:
            self._region = self.rng.choice(self.regions)
            base, size = self._region
            self._cursor = base + \
                self.rng.randrange(0, size // step) * step
        address = self._cursor
        self._cursor += step
        if self._cursor >= base + size:
            self._cursor = base
        idle = self.rng.randint(*self.idle_range)
        if self.rng.random() < self.read_fraction:
            return AhbTransaction(False, address, hsize=self.hsize,
                                  idle_cycles_before=idle)
        data = self.rng.getrandbits(8 * step)
        return AhbTransaction(True, address, data=[data],
                              hsize=self.hsize,
                              idle_cycles_before=idle)

    def state_dict(self):
        state = super().state_dict()
        state["cursor"] = self._cursor
        state["region"] = list(self._region)
        return state

    def load_state_dict(self, state):
        super().load_state_dict(state)
        self._cursor = state["cursor"]
        self._region = tuple(state["region"])


class ReplaySource(BoundedSource):
    """Replays an explicit list of transactions (trace replay)."""

    def __init__(self, transactions):
        super().__init__(seed=0, max_transactions=len(transactions))
        self._transactions = list(transactions)

    def _generate(self, now):
        if not self._transactions:
            return None
        return self._transactions.pop(0)

    def state_dict(self):
        from ..amba.transactions import txn_state
        state = super().state_dict()
        state["transactions"] = [txn_state(txn)
                                 for txn in self._transactions]
        return state

    def load_state_dict(self, state):
        from ..amba.transactions import txn_from_state
        super().load_state_dict(state)
        self._transactions = [txn_from_state(txn)
                              for txn in state["transactions"]]
