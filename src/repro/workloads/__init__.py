"""Traffic generation and assembled testbenches."""

from .patterns import (
    BoundedSource,
    CpuLikeSource,
    DmaBurstSource,
    PaperWriteReadSource,
    RandomSource,
    ReplaySource,
)
from .scenarios import (
    SCENARIO_PLANS,
    SCENARIOS,
    ScenarioPlan,
    build_scenario,
    plan_scenario,
    portable_audio_player,
    portable_videogame,
    wireless_modem,
)
from .testbench import (
    MONITOR_STYLES,
    AhbSystem,
    build_paper_testbench,
    slave_regions,
)

__all__ = [
    "AhbSystem",
    "BoundedSource",
    "CpuLikeSource",
    "DmaBurstSource",
    "MONITOR_STYLES",
    "PaperWriteReadSource",
    "RandomSource",
    "ReplaySource",
    "SCENARIOS",
    "SCENARIO_PLANS",
    "ScenarioPlan",
    "build_paper_testbench",
    "build_scenario",
    "plan_scenario",
    "portable_audio_player",
    "portable_videogame",
    "slave_regions",
    "wireless_modem",
]
