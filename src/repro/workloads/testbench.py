"""Assembled AHB systems, including the paper's testbench.

:class:`AhbSystem` wires a complete simulatable system: clock, bus,
masters with traffic sources, memory slaves, optional protocol checker
and optional power monitor.  :func:`build_paper_testbench` instantiates
the exact configuration of the paper's §5: "two master modules, a
simple default master and three slave modules connected through the
AMBA AHB bus" running WRITE–READ non-interruptible sequences and IDLE
commands at 100 MHz.
"""

from __future__ import annotations

from ..amba import (
    AhbBus,
    AhbConfig,
    AhbMaster,
    AhbWatchdog,
    Arbitration,
    DefaultMaster,
    MemorySlave,
)
from ..amba.transactions import TxnIdCounterState
from ..kernel import Clock, MHz, Simulator
from ..protocol import ComplianceEngine
from ..power import (
    GlobalPowerMonitor,
    LocalPowerMonitor,
    PAPER_TECHNOLOGY,
    PrivatePowerMonitor,
)
from .patterns import PaperWriteReadSource

#: Monitor style names accepted by :class:`AhbSystem`.
MONITOR_STYLES = ("global", "local", "private", "none")


class AhbSystem:
    """A complete, runnable AHB system.

    Parameters
    ----------
    sources:
        One traffic source per *active* master (the default master is
        created on top of these).
    n_slaves, wait_states:
        Memory slaves and their per-slave wait states.
    frequency_hz:
        Bus clock frequency (the paper uses 100 MHz).
    power_analysis:
        ``False`` reproduces the paper's ``POWERTEST``-off build: no
        instrumentation is constructed at all.
    monitor_style:
        ``"global"`` (reference), ``"local"``, ``"private"`` or
        ``"none"``.
    instruction_energies:
        Required for the local style: instruction → joules table.
    with_traces:
        Record per-block power traces (global style only).
    checker:
        Attach a :class:`~repro.protocol.ComplianceEngine` watching the
        bus (the full rule catalogue, advisory liveness bounds
        included).
    check_protocol:
        Engine severity: ``"record"`` (default — collect violations
        for post-run inspection), ``"warn"`` or ``"raise"`` (die at
        the first violating cycle).
    protocol_kwargs:
        Extra keyword arguments forwarded to the engine
        (``advisory``, ``wait_limit``, ``retry_limit``,
        ``split_limit``, ``severity_overrides``, ``rules``).
    retry_limit, retry_backoff:
        Resilience knobs forwarded to every active
        :class:`~repro.amba.AhbMaster` (bounded retry budget and
        post-RETRY idle backoff).
    slave_overrides:
        Optional mapping ``index -> factory``; the factory is called as
        ``factory(sim, name, clk, port, bus, base=..., wait_states=...)``
        and replaces the stock :class:`~repro.amba.MemorySlave` at that
        index (fault-injection campaigns swap in misbehaving slaves
        this way).
    watchdog, watchdog_kwargs:
        Attach an :class:`~repro.amba.AhbWatchdog` observing the bus
        and all active masters; *watchdog_kwargs* forwards timeouts and
        the ``recover`` switch.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry` bundle; when given
        (and enabled) its kernel, bus and power hooks are installed on
        the assembled system.  ``None`` — the default — constructs no
        instrumentation at all.
    """

    def __init__(self, sources, n_slaves=3, wait_states=None,
                 region_size=0x1000, data_width=32,
                 frequency_hz=MHz(100),
                 arbitration=Arbitration.FIXED_PRIORITY,
                 power_analysis=True, monitor_style="global",
                 instruction_energies=None, params=PAPER_TECHNOLOGY,
                 with_traces=False, datafile=None, checker=True,
                 check_protocol="record", protocol_kwargs=None,
                 retry_limit=None, retry_backoff=0,
                 slave_overrides=None, watchdog=False,
                 watchdog_kwargs=None, telemetry=None):
        if monitor_style not in MONITOR_STYLES:
            raise ValueError("unknown monitor style %r" % monitor_style)
        n_active = len(sources)
        if n_active < 1:
            raise ValueError("need at least one active master")
        n_masters = n_active + 1  # plus the default master

        self.sim = Simulator()
        self.clk = Clock.from_frequency(self.sim, "clk", frequency_hz)
        self.config = AhbConfig.with_uniform_map(
            n_masters=n_masters, n_slaves=n_slaves,
            region_size=region_size, data_width=data_width,
            arbitration=arbitration, default_master=n_masters - 1,
        )
        self.bus = AhbBus(self.sim, "ahb", self.clk, self.config)

        self.masters = [
            AhbMaster(self.sim, "master%d" % index, self.clk,
                      self.bus.master_ports[index], self.bus,
                      source=source, retry_limit=retry_limit,
                      retry_backoff=retry_backoff)
            for index, source in enumerate(sources)
        ]
        self.default_master = DefaultMaster(
            self.sim, "default_master", self.clk,
            self.bus.master_ports[n_masters - 1], self.bus,
        )

        if wait_states is None:
            wait_states = [0] * n_slaves
        if slave_overrides is None:
            slave_overrides = {}
        self.slaves = []
        for index in range(n_slaves):
            factory = slave_overrides.get(index, MemorySlave)
            self.slaves.append(factory(
                self.sim, "slave%d" % index, self.clk,
                self.bus.slave_ports[index], self.bus,
                base=self.config.slave_base(index),
                wait_states=wait_states[index],
            ))

        self.checker = None
        if checker:
            self.checker = ComplianceEngine(
                self.sim, "checker", self.bus, severity=check_protocol,
                **(protocol_kwargs or {})
            )

        self.watchdog = None
        if watchdog:
            self.watchdog = AhbWatchdog(
                self.sim, "watchdog", self.bus,
                masters={index: master
                         for index, master in enumerate(self.masters)},
                **(watchdog_kwargs or {})
            )

        self.monitor = None
        if power_analysis and monitor_style != "none":
            if monitor_style == "global":
                self.monitor = GlobalPowerMonitor(
                    self.sim, "power_monitor", self.bus, params=params,
                    with_traces=with_traces, datafile=datafile,
                )
            elif monitor_style == "local":
                if instruction_energies is None:
                    raise ValueError(
                        "local monitor style needs instruction_energies"
                    )
                self.monitor = LocalPowerMonitor(
                    self.sim, "power_monitor", self.bus,
                    instruction_energies, with_traces=with_traces,
                )
            else:
                self.monitor = PrivatePowerMonitor(
                    self.sim, "power_monitor", self.bus, params=params,
                )

        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.instrument(self)

        self._register_state_providers()

    # -- checkpointing ---------------------------------------------------

    def _register_state_providers(self):
        """Register every stateful component with the kernel.

        Providers are restored in registration order; the transaction
        id counter goes last because restoring masters and sources
        constructs transactions (consuming counter ids) before the
        counter itself is overwritten with the captured value.
        """
        sim = self.sim
        sim.register_state("clk", self.clk)
        sim.register_state("bus.arbiter", self.bus.arbiter)
        sim.register_state("bus.s2m_mux", self.bus.s2m_mux)
        for index, master in enumerate(self.masters):
            sim.register_state("master%d" % index, master)
            source = master.source
            if source is not None and hasattr(source, "state_dict"):
                sim.register_state("master%d.source" % index, source)
        sim.register_state("default_master", self.default_master)
        for index, slave in enumerate(self.slaves):
            sim.register_state("slave%d" % index, slave)
        if self.checker is not None:
            sim.register_state("checker", self.checker)
        if self.watchdog is not None:
            sim.register_state("watchdog", self.watchdog)
        if self.monitor is not None:
            sim.register_state("power_monitor", self.monitor)
        sim.register_state("txn_ids", TxnIdCounterState())

    def snapshot(self):
        """Capture the system state as a :class:`repro.state.Snapshot`.

        Must be called at a quiescent point (after :meth:`run` has
        returned).  Power *traces* and telemetry sinks are append-only
        history and are not part of the captured state.
        """
        from ..state import Snapshot
        return Snapshot(
            self.sim.snapshot(),
            meta={"cycle": self.clk.cycles, "time_ps": self.sim.now},
        )

    def restore(self, snapshot):
        """Restore a :meth:`snapshot` (or a raw state tree); the system
        must have been elaborated identically.  Returns self."""
        tree = getattr(snapshot, "tree", snapshot)
        self.sim.restore(tree)
        return self

    # -- execution ------------------------------------------------------

    def run(self, duration_ps, wall_clock_budget=None):
        """Advance the simulation by *duration_ps* and return self.

        ``wall_clock_budget`` (host seconds) is forwarded to the kernel
        so supervised runs can enforce per-run deadlines cooperatively.
        """
        self.sim.run(until=self.sim.now + duration_ps,
                     wall_clock_budget=wall_clock_budget)
        return self

    # -- results ------------------------------------------------------------

    @property
    def ledger(self):
        """The power monitor's energy ledger (None when power is off)."""
        if self.monitor is None:
            return None
        return self.monitor.ledger

    @property
    def total_energy(self):
        """Total accounted bus energy (joules)."""
        if self.monitor is None:
            return 0.0
        return self.monitor.total_energy

    def assert_protocol_clean(self):
        """Raise if the compliance engine recorded any violation."""
        if self.checker is not None:
            self.checker.raise_if_violations()

    def transactions_completed(self):
        """Total transactions completed across the active masters."""
        return sum(len(master.completed) for master in self.masters)

    def transactions_failed(self):
        """Transactions that completed with ``error=True`` (bus errors
        and aborted/retry-exhausted transfers)."""
        return sum(1 for master in self.masters
                   for txn in master.completed if txn.error)


def slave_regions(config, scale=1.0):
    """The mapped ``(base, size)`` windows of *config*'s slaves.

    ``scale`` < 1 restricts traffic to a prefix of each region (useful
    to concentrate addresses and raise decoder activity).
    """
    return [(region.base, max(4, int(region.size * scale)))
            for region in config.address_map]


def build_paper_testbench(seed=0, power_analysis=True,
                          monitor_style="global", with_traces=False,
                          max_pairs=14, idle_range=(8, 24), locality=0.8,
                          wait_states=None, params=PAPER_TECHNOLOGY,
                          arbitration=Arbitration.FIXED_PRIORITY,
                          instruction_energies=None,
                          datafile=None, checker=True, telemetry=None):
    """The paper's testbench: 2 masters + default master, 3 slaves.

    Both masters run :class:`PaperWriteReadSource` with distinct seeds;
    slaves are zero-wait memories (the paper's simplified bus);
    the clock is 100 MHz.  The default ``max_pairs``/``idle_range``
    are calibrated so the instruction energy distribution reproduces
    Table 1's headline split (data transfers ≈ 87 %, arbitration
    ≈ 11.5 % — see EXPERIMENTS.md).
    """
    n_slaves = 3
    region_size = 0x1000
    regions = [(index * region_size, region_size)
               for index in range(n_slaves)]
    sources = [
        PaperWriteReadSource(regions, seed=seed * 1000 + index,
                             max_pairs=max_pairs, idle_range=idle_range,
                             locality=locality)
        for index in range(2)
    ]
    return AhbSystem(
        sources, n_slaves=n_slaves, region_size=region_size,
        wait_states=wait_states, frequency_hz=MHz(100),
        arbitration=arbitration, power_analysis=power_analysis,
        monitor_style=monitor_style, params=params,
        instruction_energies=instruction_energies,
        with_traces=with_traces, datafile=datafile, checker=checker,
        telemetry=telemetry,
    )
