"""Named SoC scenarios.

The paper's introduction motivates the methodology with "laptop and
palmtop computers, cellular telephones, wireless modems and portable
videogames".  These builders assemble representative multi-master
systems for those device classes so examples and benchmarks can speak
about realistic platforms instead of abstract traffic knobs.

Every scenario returns an :class:`~repro.workloads.testbench.AhbSystem`
with the global power monitor attached.

Every builder additionally accepts the **traffic-shape overrides** the
fuzz engine mutates (all JSON-able, all defaulting to the scenario's
canonical shape):

``dma_burst``
    ``HBURST`` code for the scenario's DMA-class master (burst
    reshaping);
``idle_scale``
    multiplier applied to every source's idle-gap range (traffic
    density);
``wait_states`` / ``arbitration``
    forwarded to :class:`~repro.workloads.testbench.AhbSystem`,
    overriding the scenario default instead of conflicting with it.
"""

from __future__ import annotations

from ..amba import Arbitration
from ..amba.types import HBURST
from ..kernel import MHz
from .patterns import CpuLikeSource, DmaBurstSource, RandomSource
from .testbench import AhbSystem


def _regions(n_slaves, region_size=0x1000):
    return [(index * region_size, region_size)
            for index in range(n_slaves)]


def _scaled_idle(idle_range, scale):
    """*idle_range* stretched/compressed by *scale* (lo <= hi kept)."""
    lo, hi = idle_range
    lo = max(0, int(round(lo * scale)))
    hi = max(lo, int(round(hi * scale)))
    return (lo, hi)


def _burst(dma_burst, default):
    return default if dma_burst is None else HBURST(dma_burst)


def portable_audio_player(seed=0, frequency_hz=MHz(100), dma_burst=None,
                          idle_scale=1.0, **system_kwargs):
    """A palmtop audio player.

    * CPU master: read-dominated, high-locality control code;
    * audio DMA master: steady 8-beat bursts shuttling PCM buffers.

    Three slaves: code ROM / work RAM / audio buffer RAM.
    """
    regions = _regions(3)
    cpu = CpuLikeSource([regions[0], regions[1]], seed=seed,
                        read_fraction=0.85,
                        idle_range=_scaled_idle((0, 4), idle_scale))
    dma = DmaBurstSource([regions[2]], seed=seed + 1,
                         burst=_burst(dma_burst, HBURST.INCR8),
                         idle_range=_scaled_idle((6, 20), idle_scale))
    return AhbSystem([cpu, dma], n_slaves=3,
                     frequency_hz=frequency_hz, **system_kwargs)


def wireless_modem(seed=0, frequency_hz=MHz(100), dma_burst=None,
                   idle_scale=1.0, **system_kwargs):
    """A cellular/wireless baseband.

    * protocol CPU with moderate locality;
    * RX DMA: bursty WRAP4 frames into the packet RAM;
    * slow shared RAM (1 wait state) modelling an embedded macro.
    """
    regions = _regions(3)
    cpu = CpuLikeSource([regions[0]], seed=seed, read_fraction=0.7,
                        jump_probability=0.2,
                        idle_range=_scaled_idle((0, 6), idle_scale))
    rx_dma = DmaBurstSource([regions[1], regions[2]], seed=seed + 1,
                            burst=_burst(dma_burst, HBURST.WRAP4),
                            idle_range=_scaled_idle((2, 30), idle_scale))
    system_kwargs.setdefault("wait_states", [0, 1, 1])
    system_kwargs.setdefault("arbitration", Arbitration.ROUND_ROBIN)
    return AhbSystem([cpu, rx_dma], n_slaves=3,
                     frequency_hz=frequency_hz,
                     **system_kwargs)


def portable_videogame(seed=0, frequency_hz=MHz(100), dma_burst=None,
                       idle_scale=1.0, **system_kwargs):
    """A handheld videogame.

    * game-logic CPU;
    * sprite/frame DMA with long INCR16 bursts;
    * input/misc master with sparse random accesses.
    """
    regions = _regions(3)
    cpu = CpuLikeSource([regions[0], regions[1]], seed=seed,
                        read_fraction=0.75,
                        idle_range=_scaled_idle((0, 3), idle_scale))
    gfx_dma = DmaBurstSource([regions[2]], seed=seed + 1,
                             burst=_burst(dma_burst, HBURST.INCR16),
                             idle_range=_scaled_idle((1, 10), idle_scale))
    io_master = RandomSource([regions[1]], seed=seed + 2,
                             write_fraction=0.3,
                             idle_range=_scaled_idle((10, 50),
                                                     idle_scale))
    return AhbSystem([cpu, gfx_dma, io_master], n_slaves=3,
                     frequency_hz=frequency_hz, **system_kwargs)


#: Registry used by examples and benchmarks.
SCENARIOS = {
    "portable-audio-player": portable_audio_player,
    "wireless-modem": wireless_modem,
    "portable-videogame": portable_videogame,
}


def build_scenario(name, seed=0, **kwargs):
    """Instantiate scenario *name* from :data:`SCENARIOS`."""
    try:
        builder = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            "unknown scenario %r (available: %s)"
            % (name, ", ".join(sorted(SCENARIOS)))
        ) from None
    return builder(seed=seed, **kwargs)
