"""Named SoC scenarios.

The paper's introduction motivates the methodology with "laptop and
palmtop computers, cellular telephones, wireless modems and portable
videogames".  These builders assemble representative multi-master
systems for those device classes so examples and benchmarks can speak
about realistic platforms instead of abstract traffic knobs.

Every scenario is described by a :class:`ScenarioPlan` — the traffic
sources plus the bus configuration knobs — which both execution tiers
consume: :meth:`ScenarioPlan.build` elaborates the cycle-accurate
:class:`~repro.workloads.testbench.AhbSystem`, while the
transaction-level tier (:mod:`repro.tlm`) interprets the same plan
without touching the kernel.  Sources are constructed in a fixed order
with explicitly derived seeds, so the stimulus stream both tiers pull
is identical transaction-for-transaction.

Every builder additionally accepts the **traffic-shape overrides** the
fuzz engine mutates (all JSON-able, all defaulting to the scenario's
canonical shape):

``dma_burst``
    ``HBURST`` code for the scenario's DMA-class master (burst
    reshaping);
``idle_scale``
    multiplier applied to every source's idle-gap range (traffic
    density);
``wait_states`` / ``arbitration``
    forwarded to :class:`~repro.workloads.testbench.AhbSystem`,
    overriding the scenario default instead of conflicting with it.
"""

from __future__ import annotations

from ..amba import Arbitration
from ..amba.types import HBURST
from ..kernel import MHz
from .patterns import CpuLikeSource, DmaBurstSource, RandomSource
from .testbench import AhbSystem


def _regions(n_slaves, region_size=0x1000):
    return [(index * region_size, region_size)
            for index in range(n_slaves)]


def _scaled_idle(idle_range, scale):
    """*idle_range* stretched/compressed by *scale* (lo <= hi kept)."""
    lo, hi = idle_range
    lo = max(0, int(round(lo * scale)))
    hi = max(lo, int(round(hi * scale)))
    return (lo, hi)


def _burst(dma_burst, default):
    return default if dma_burst is None else HBURST(dma_burst)


class ScenarioPlan:
    """Assembly recipe of a named scenario, shared by both tiers.

    ``sources`` is the ordered list of per-master traffic sources (the
    default master is implicit); ``system_kwargs`` carries whatever
    extra keyword arguments the caller wants forwarded to
    :class:`~repro.workloads.testbench.AhbSystem` — including the
    scenario's own ``wait_states``/``arbitration`` defaults.  The
    resolver properties expose the knobs the transaction-level tier
    needs without elaborating a kernel system.
    """

    def __init__(self, sources, n_slaves=3, frequency_hz=MHz(100),
                 system_kwargs=None):
        self.sources = list(sources)
        self.n_slaves = n_slaves
        self.frequency_hz = frequency_hz
        self.system_kwargs = dict(system_kwargs or {})

    @property
    def wait_states(self):
        """Per-slave wait states with the zero-wait default applied."""
        wait_states = self.system_kwargs.get("wait_states")
        if wait_states is None:
            return [0] * self.n_slaves
        return list(wait_states)

    @property
    def arbitration(self):
        return self.system_kwargs.get("arbitration",
                                      Arbitration.FIXED_PRIORITY)

    @property
    def region_size(self):
        return self.system_kwargs.get("region_size", 0x1000)

    def build(self):
        """Elaborate the cycle-accurate system from this plan."""
        return AhbSystem(self.sources, n_slaves=self.n_slaves,
                         frequency_hz=self.frequency_hz,
                         **self.system_kwargs)


def portable_audio_player_plan(seed=0, frequency_hz=MHz(100),
                               dma_burst=None, idle_scale=1.0,
                               **system_kwargs):
    """Plan for :func:`portable_audio_player`."""
    regions = _regions(3)
    cpu = CpuLikeSource([regions[0], regions[1]], seed=seed,
                        read_fraction=0.85,
                        idle_range=_scaled_idle((0, 4), idle_scale))
    dma = DmaBurstSource([regions[2]], seed=seed + 1,
                         burst=_burst(dma_burst, HBURST.INCR8),
                         idle_range=_scaled_idle((6, 20), idle_scale))
    return ScenarioPlan([cpu, dma], n_slaves=3,
                        frequency_hz=frequency_hz,
                        system_kwargs=system_kwargs)


def portable_audio_player(seed=0, frequency_hz=MHz(100), dma_burst=None,
                          idle_scale=1.0, **system_kwargs):
    """A palmtop audio player.

    * CPU master: read-dominated, high-locality control code;
    * audio DMA master: steady 8-beat bursts shuttling PCM buffers.

    Three slaves: code ROM / work RAM / audio buffer RAM.
    """
    return portable_audio_player_plan(
        seed=seed, frequency_hz=frequency_hz, dma_burst=dma_burst,
        idle_scale=idle_scale, **system_kwargs).build()


def wireless_modem_plan(seed=0, frequency_hz=MHz(100), dma_burst=None,
                        idle_scale=1.0, **system_kwargs):
    """Plan for :func:`wireless_modem`."""
    regions = _regions(3)
    cpu = CpuLikeSource([regions[0]], seed=seed, read_fraction=0.7,
                        jump_probability=0.2,
                        idle_range=_scaled_idle((0, 6), idle_scale))
    rx_dma = DmaBurstSource([regions[1], regions[2]], seed=seed + 1,
                            burst=_burst(dma_burst, HBURST.WRAP4),
                            idle_range=_scaled_idle((2, 30), idle_scale))
    system_kwargs.setdefault("wait_states", [0, 1, 1])
    system_kwargs.setdefault("arbitration", Arbitration.ROUND_ROBIN)
    return ScenarioPlan([cpu, rx_dma], n_slaves=3,
                        frequency_hz=frequency_hz,
                        system_kwargs=system_kwargs)


def wireless_modem(seed=0, frequency_hz=MHz(100), dma_burst=None,
                   idle_scale=1.0, **system_kwargs):
    """A cellular/wireless baseband.

    * protocol CPU with moderate locality;
    * RX DMA: bursty WRAP4 frames into the packet RAM;
    * slow shared RAM (1 wait state) modelling an embedded macro.
    """
    return wireless_modem_plan(
        seed=seed, frequency_hz=frequency_hz, dma_burst=dma_burst,
        idle_scale=idle_scale, **system_kwargs).build()


def portable_videogame_plan(seed=0, frequency_hz=MHz(100),
                            dma_burst=None, idle_scale=1.0,
                            **system_kwargs):
    """Plan for :func:`portable_videogame`."""
    regions = _regions(3)
    cpu = CpuLikeSource([regions[0], regions[1]], seed=seed,
                        read_fraction=0.75,
                        idle_range=_scaled_idle((0, 3), idle_scale))
    gfx_dma = DmaBurstSource([regions[2]], seed=seed + 1,
                             burst=_burst(dma_burst, HBURST.INCR16),
                             idle_range=_scaled_idle((1, 10), idle_scale))
    io_master = RandomSource([regions[1]], seed=seed + 2,
                             write_fraction=0.3,
                             idle_range=_scaled_idle((10, 50),
                                                     idle_scale))
    return ScenarioPlan([cpu, gfx_dma, io_master], n_slaves=3,
                        frequency_hz=frequency_hz,
                        system_kwargs=system_kwargs)


def portable_videogame(seed=0, frequency_hz=MHz(100), dma_burst=None,
                       idle_scale=1.0, **system_kwargs):
    """A handheld videogame.

    * game-logic CPU;
    * sprite/frame DMA with long INCR16 bursts;
    * input/misc master with sparse random accesses.
    """
    return portable_videogame_plan(
        seed=seed, frequency_hz=frequency_hz, dma_burst=dma_burst,
        idle_scale=idle_scale, **system_kwargs).build()


#: Registry used by examples and benchmarks.
SCENARIOS = {
    "portable-audio-player": portable_audio_player,
    "wireless-modem": wireless_modem,
    "portable-videogame": portable_videogame,
}

#: Plan builders mirroring :data:`SCENARIOS` (same names, same seeds).
SCENARIO_PLANS = {
    "portable-audio-player": portable_audio_player_plan,
    "wireless-modem": wireless_modem_plan,
    "portable-videogame": portable_videogame_plan,
}


def build_scenario(name, seed=0, **kwargs):
    """Instantiate scenario *name* from :data:`SCENARIOS`."""
    try:
        builder = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            "unknown scenario %r (available: %s)"
            % (name, ", ".join(sorted(SCENARIOS)))
        ) from None
    return builder(seed=seed, **kwargs)


def plan_scenario(name, seed=0, **kwargs):
    """The :class:`ScenarioPlan` of scenario *name* (no elaboration)."""
    try:
        builder = SCENARIO_PLANS[name]
    except KeyError:
        raise KeyError(
            "unknown scenario %r (available: %s)"
            % (name, ", ".join(sorted(SCENARIO_PLANS)))
        ) from None
    return builder(seed=seed, **kwargs)
