"""Named SoC scenarios.

The paper's introduction motivates the methodology with "laptop and
palmtop computers, cellular telephones, wireless modems and portable
videogames".  These builders assemble representative multi-master
systems for those device classes so examples and benchmarks can speak
about realistic platforms instead of abstract traffic knobs.

Every scenario returns an :class:`~repro.workloads.testbench.AhbSystem`
with the global power monitor attached.
"""

from __future__ import annotations

from ..amba import Arbitration
from ..amba.types import HBURST
from ..kernel import MHz
from .patterns import CpuLikeSource, DmaBurstSource, RandomSource
from .testbench import AhbSystem


def _regions(n_slaves, region_size=0x1000):
    return [(index * region_size, region_size)
            for index in range(n_slaves)]


def portable_audio_player(seed=0, frequency_hz=MHz(100), **system_kwargs):
    """A palmtop audio player.

    * CPU master: read-dominated, high-locality control code;
    * audio DMA master: steady 8-beat bursts shuttling PCM buffers.

    Three slaves: code ROM / work RAM / audio buffer RAM.
    """
    regions = _regions(3)
    cpu = CpuLikeSource([regions[0], regions[1]], seed=seed,
                        read_fraction=0.85, idle_range=(0, 4))
    dma = DmaBurstSource([regions[2]], seed=seed + 1,
                         burst=HBURST.INCR8, idle_range=(6, 20))
    return AhbSystem([cpu, dma], n_slaves=3,
                     frequency_hz=frequency_hz, **system_kwargs)


def wireless_modem(seed=0, frequency_hz=MHz(100), **system_kwargs):
    """A cellular/wireless baseband.

    * protocol CPU with moderate locality;
    * RX DMA: bursty WRAP4 frames into the packet RAM;
    * slow shared RAM (1 wait state) modelling an embedded macro.
    """
    regions = _regions(3)
    cpu = CpuLikeSource([regions[0]], seed=seed, read_fraction=0.7,
                        jump_probability=0.2, idle_range=(0, 6))
    rx_dma = DmaBurstSource([regions[1], regions[2]], seed=seed + 1,
                            burst=HBURST.WRAP4, idle_range=(2, 30))
    return AhbSystem([cpu, rx_dma], n_slaves=3,
                     wait_states=[0, 1, 1],
                     frequency_hz=frequency_hz,
                     arbitration=Arbitration.ROUND_ROBIN,
                     **system_kwargs)


def portable_videogame(seed=0, frequency_hz=MHz(100), **system_kwargs):
    """A handheld videogame.

    * game-logic CPU;
    * sprite/frame DMA with long INCR16 bursts;
    * input/misc master with sparse random accesses.
    """
    regions = _regions(3)
    cpu = CpuLikeSource([regions[0], regions[1]], seed=seed,
                        read_fraction=0.75, idle_range=(0, 3))
    gfx_dma = DmaBurstSource([regions[2]], seed=seed + 1,
                             burst=HBURST.INCR16, idle_range=(1, 10))
    io_master = RandomSource([regions[1]], seed=seed + 2,
                             write_fraction=0.3, idle_range=(10, 50))
    return AhbSystem([cpu, gfx_dma, io_master], n_slaves=3,
                     frequency_hz=frequency_hz, **system_kwargs)


#: Registry used by examples and benchmarks.
SCENARIOS = {
    "portable-audio-player": portable_audio_player,
    "wireless-modem": wireless_modem,
    "portable-videogame": portable_videogame,
}


def build_scenario(name, seed=0, **kwargs):
    """Instantiate scenario *name* from :data:`SCENARIOS`."""
    try:
        builder = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            "unknown scenario %r (available: %s)"
            % (name, ", ".join(sorted(SCENARIOS)))
        ) from None
    return builder(seed=seed, **kwargs)
