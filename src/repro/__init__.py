"""repro — system-level power analysis of the AMBA AHB bus.

Reproduction of Caldari et al., "System-Level Power Analysis Methodology
Applied to the AMBA AHB Bus" (DATE 2003).

Subpackages
-----------
``repro.kernel``
    Event-driven delta-cycle simulation kernel (SystemC substitute).
``repro.amba``
    Cycle-accurate AMBA AHB bus model (arbiter, decoder, muxes,
    masters, slaves, protocol checker, APB bridge).
``repro.gatelevel``
    Gate-level netlists, synthesis generators and a switching-activity
    energy simulator (Berkeley SIS substitute).
``repro.power``
    The paper's contribution: activity monitoring, energy macromodels,
    the bus instruction set and power FSM, power-model styles, energy
    ledger and power traces.
``repro.workloads``
    Traffic patterns and the paper's 2-master/3-slave testbench.
``repro.analysis``
    Tables, ASCII plots and one experiment runner per paper artefact.
``repro.faults``
    Fault injection (signal-level and behavioural), the bus watchdog's
    campaign driver, and resilience/energy-overhead reporting.
``repro.protocol``
    Runtime AHB compliance engine: per-cycle assertion monitors with
    AMBA-spec rule references and configurable severity.
``repro.replay``
    Deterministic record/replay of runs from their provenance, plus a
    delta-debugging failure shrinker.
"""

__version__ = "1.0.0"

from .amba import (  # noqa: E402
    AhbBus,
    AhbConfig,
    AhbMaster,
    AhbProtocolChecker,
    AhbTransaction,
    AhbWatchdog,
    Arbitration,
    DefaultMaster,
    MemorySlave,
)
from .faults import FaultInjector, run_fault_campaign  # noqa: E402
from .kernel import Clock, MHz, Module, Signal, Simulator, ns, us  # noqa: E402
from .power import (  # noqa: E402
    Activity,
    ArbiterEnergyModel,
    DecoderEnergyModel,
    EnergyLedger,
    GlobalPowerMonitor,
    LocalPowerMonitor,
    MuxEnergyModel,
    PAPER_TECHNOLOGY,
    PowerFsm,
    PrivatePowerMonitor,
    TechnologyParameters,
)
from .protocol import ComplianceEngine, ProtocolViolation  # noqa: E402
from .replay import (  # noqa: E402
    ReplayTrace,
    RunOutcome,
    RunSpec,
    execute,
    shrink,
)
from .workloads import AhbSystem, build_paper_testbench  # noqa: E402

__all__ = [
    "Activity",
    "AhbBus",
    "AhbConfig",
    "AhbMaster",
    "AhbProtocolChecker",
    "AhbSystem",
    "AhbTransaction",
    "AhbWatchdog",
    "ArbiterEnergyModel",
    "Arbitration",
    "Clock",
    "ComplianceEngine",
    "DecoderEnergyModel",
    "DefaultMaster",
    "EnergyLedger",
    "FaultInjector",
    "GlobalPowerMonitor",
    "LocalPowerMonitor",
    "MHz",
    "MemorySlave",
    "Module",
    "MuxEnergyModel",
    "PAPER_TECHNOLOGY",
    "PowerFsm",
    "PrivatePowerMonitor",
    "ProtocolViolation",
    "ReplayTrace",
    "RunOutcome",
    "RunSpec",
    "Signal",
    "Simulator",
    "TechnologyParameters",
    "build_paper_testbench",
    "execute",
    "ns",
    "run_fault_campaign",
    "shrink",
    "us",
]
