"""Coverage-guided protocol fuzzing.

Closes the loop between the compliance oracle (:mod:`repro.protocol`),
the supervised executor (:mod:`repro.exec`), the ddmin shrinker
(:mod:`repro.replay.shrink`) and telemetry-style coverage signals:

* :mod:`repro.fuzz.coverage` — per-run coverage probe (rule arms,
  bus/power FSM transition pairs, latency buckets) and the campaign
  :class:`CoverageMap`;
* :mod:`repro.fuzz.mutators` — structured mutators over
  RunSpec-encodable genomes;
* :mod:`repro.fuzz.corpus` — deterministic, seed-stable corpus store;
* :mod:`repro.fuzz.engine` — the campaign loop: mutate, execute under
  budget, admit novel coverage, shrink novel failures into committed
  reproducer regression tests;
* :mod:`repro.fuzz.warmstart` — shared scenario-prefix checkpoints so
  mutated siblings skip re-simulating their common prefix.

See ``docs/RESILIENCE.md`` §6 for the workflow.
"""

from .corpus import Corpus, CorpusEntry, entry_id_for
from .coverage import CoverageMap, CoverageProbe
from .engine import (
    FuzzCampaign,
    FuzzConfig,
    FuzzReport,
    run_fuzz_campaign,
    write_reproducer,
)
from .mutators import MUTATOR_NAMES, MUTATORS, mutate
from .warmstart import WarmStartCache, prefix_horizon_ps, prefix_signature

__all__ = [
    "Corpus",
    "CorpusEntry",
    "CoverageMap",
    "CoverageProbe",
    "FuzzCampaign",
    "FuzzConfig",
    "FuzzReport",
    "MUTATORS",
    "MUTATOR_NAMES",
    "WarmStartCache",
    "entry_id_for",
    "mutate",
    "prefix_horizon_ps",
    "prefix_signature",
    "run_fuzz_campaign",
    "write_reproducer",
]
