"""Deterministic, seed-stable fuzz corpus store.

A corpus is a directory of JSON files, one per admitted genome:

* ``<entry_id>.json`` — the genome's :class:`~repro.replay.RunSpec`,
  its observed coverage keys and its provenance (parent entry, mutator
  name, admission index);
* ``coverage.json`` — the campaign-wide
  :class:`~repro.fuzz.coverage.CoverageMap`;
* ``state.json`` — the engine's resumable campaign state (RNG state,
  budget accounting, seen failure signatures).

Entry ids are the first 16 hex digits of the SHA-256 of the spec's
canonical JSON identity (:meth:`RunSpec.key`), admission order is the
persisted ``index``, and every file is written with sorted keys — so
two campaigns from the same base seed and seed corpus leave
byte-identical directories, regardless of worker count (the
reproducibility contract ``tests/test_fuzz_engine.py`` locks in).
"""

from __future__ import annotations

import hashlib
import json
import os

from ..replay import RunSpec
from ..state import atomic_write_json

#: Corpus entry file format marker.
FORMAT = "repro-fuzz-corpus/1"

#: Directory files that are not corpus entries.
RESERVED = ("state.json", "coverage.json", "report.json")


def entry_id_for(spec):
    """Stable content-derived identity of a genome."""
    return hashlib.sha256(
        spec.key().encode("utf-8")).hexdigest()[:16]


class CorpusEntry:
    """One admitted genome with coverage and mutation provenance."""

    __slots__ = ("spec", "coverage", "parent", "mutator", "novel",
                 "outcome", "index")

    def __init__(self, spec, coverage=(), parent=None, mutator=None,
                 novel=(), outcome=None, index=0):
        self.spec = spec
        #: Sorted coverage keys the genome's execution produced.
        self.coverage = list(coverage)
        #: Entry id of the genome this one was mutated from (None for
        #: campaign seeds).
        self.parent = parent
        #: Mutator name that produced it (None for campaign seeds).
        self.mutator = mutator
        #: Coverage keys that were novel at admission time.
        self.novel = list(novel)
        #: Campaign outcome class of the admitting execution.
        self.outcome = outcome
        #: Admission sequence number (drives deterministic ordering).
        self.index = index

    @property
    def entry_id(self):
        return entry_id_for(self.spec)

    def to_dict(self):
        return {
            "format": FORMAT,
            "id": self.entry_id,
            "index": self.index,
            "parent": self.parent,
            "mutator": self.mutator,
            "outcome": self.outcome,
            "coverage": list(self.coverage),
            "novel": list(self.novel),
            "spec": self.spec.to_dict(),
        }

    @classmethod
    def from_dict(cls, data):
        if data.get("format") != FORMAT:
            raise ValueError("not a %s corpus entry (format=%r)"
                             % (FORMAT, data.get("format")))
        return cls(
            RunSpec.from_dict(data["spec"]),
            coverage=data.get("coverage", ()),
            parent=data.get("parent"),
            mutator=data.get("mutator"),
            novel=data.get("novel", ()),
            outcome=data.get("outcome"),
            index=data.get("index", 0),
        )

    def __repr__(self):
        return "CorpusEntry(%s, mutator=%s, |coverage|=%d)" % (
            self.entry_id, self.mutator, len(self.coverage))


class Corpus:
    """The on-disk corpus: admitted entries in admission order."""

    def __init__(self, root):
        self.root = root
        #: entry id -> :class:`CorpusEntry`.
        self.entries = {}
        #: Entry ids in admission order.
        self.order = []

    def __len__(self):
        return len(self.order)

    def __contains__(self, entry_id):
        return entry_id in self.entries

    def __iter__(self):
        """Entries in admission order."""
        return (self.entries[entry_id] for entry_id in self.order)

    @property
    def next_index(self):
        if not self.order:
            return 0
        return self.entries[self.order[-1]].index + 1

    def add(self, entry, persist=True):
        """Admit *entry* (stamping its admission index); ``False`` if an
        identical genome is already in the corpus."""
        entry_id = entry.entry_id
        if entry_id in self.entries:
            return False
        entry.index = self.next_index
        self.entries[entry_id] = entry
        self.order.append(entry_id)
        if persist:
            self._write(entry)
        return True

    def _write(self, entry):
        # Atomic: a worker killed mid-admission must never leave a
        # truncated entry file that breaks the next Corpus.load.
        path = os.path.join(self.root, entry.entry_id + ".json")
        atomic_write_json(path, entry.to_dict())

    @classmethod
    def load(cls, root):
        """Load every entry file under *root* (missing directory ⇒
        empty corpus), ordered by persisted admission index."""
        corpus = cls(root)
        if not os.path.isdir(root):
            return corpus
        entries = []
        for name in sorted(os.listdir(root)):
            if not name.endswith(".json") or name in RESERVED:
                continue
            with open(os.path.join(root, name)) as fh:
                entries.append(CorpusEntry.from_dict(json.load(fh)))
        entries.sort(key=lambda entry: entry.index)
        for entry in entries:
            entry_id = entry.entry_id
            corpus.entries[entry_id] = entry
            corpus.order.append(entry_id)
        return corpus
