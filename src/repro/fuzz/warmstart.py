"""Shared scenario-prefix checkpoints for fuzz candidates.

Mutated children mostly differ from their parent *late* in the run:
``duration_jitter`` only moves the end of the window, ``fault_shift``
moves a signal-fault window that usually opens well after time zero.
Until the first signal fault opens its window, all such siblings pass
through bit-identical simulation states — so the first sibling to
execute can leave a checkpoint of that shared prefix behind, and every
later sibling restores it instead of re-simulating from cycle 0.

Soundness rests on the same exactness contract the checkpoint layer
proves everywhere else (restore is digest-identical to straight
execution), plus a conservative *prefix signature*: two specs may
share a prefix checkpoint only when every input that can influence the
simulation **before the first signal-fault window opens** is identical:

* scenario, seed and every traffic/resilience/protocol knob;
* the full behavioural fault schedule (broken slaves are swapped in at
  elaboration and count transfers from cycle 0);
* the *number* of signal faults (the injector's checkpoint state is
  positional) and the injector seed.

``duration_us`` and the signal faults' windows/parameters are
deliberately **excluded** — they cannot act before the horizon.  A
prefix checkpoint is usable by a sibling only while it predates that
sibling's own horizon (strictly before the earliest signal-fault
``start_ps``) and does not overshoot its duration; otherwise the
sibling simply cold-starts.

Cache layout: one :class:`~repro.state.CheckpointStore` directory per
signature, holding a single content-addressed snapshot and no digest
stream (streams are per-run records; concurrent workers appending to a
shared one would interleave).  Writes are atomic, so concurrent
producers of the same signature at worst write the same bytes twice.
"""

from __future__ import annotations

import hashlib
import os

from ..kernel import us
from ..state import CheckpointStore, canonical_json

#: Don't bother producing a prefix checkpoint below this many cycles —
#: the restore overhead would rival the simulation it saves.
MIN_WARM_CYCLES = 64


def prefix_signature(spec):
    """Hex signature of everything that shapes the pre-fault prefix."""
    behavioural = [fault.to_dict() for fault in spec.faults
                   if fault.kind == "behavioural"]
    signal_count = len(spec.faults) - len(behavioural)
    identity = {
        "scenario": spec.scenario,
        "seed": spec.seed,
        "retry_limit": spec.retry_limit,
        "retry_backoff": spec.retry_backoff,
        "watchdog": spec.watchdog,
        "watchdog_kwargs": dict(spec.watchdog_kwargs),
        "check_protocol": spec.check_protocol,
        "protocol_kwargs": dict(spec.protocol_kwargs),
        "scenario_kwargs": dict(spec.scenario_kwargs),
        "behavioural": behavioural,
        "signal_fault_count": signal_count,
        "injector_seed": spec.injector_seed if signal_count else None,
    }
    return hashlib.sha256(
        canonical_json(identity).encode("utf-8")).hexdigest()[:16]


def prefix_horizon_ps(spec, duration_ps):
    """Latest kernel time a shared prefix checkpoint may be taken at
    (exclusive) for *spec*: strictly before the earliest signal-fault
    window opens, never past the end of the run."""
    horizon = duration_ps
    for fault in spec.faults:
        if fault.kind != "behavioural":
            horizon = min(horizon, int(fault.start_ps))
    return horizon


class WarmStartCache:
    """Directory of shared prefix checkpoints, one store per signature."""

    def __init__(self, root):
        self.root = root

    def store_for(self, spec):
        """The signature-keyed store shared by *spec*'s siblings."""
        return CheckpointStore(
            os.path.join(self.root, prefix_signature(spec)), keep=1)

    def plan(self, spec):
        """The JSON-able warm-start instruction executed by
        :func:`repro.replay.execute` (None when warm-starting *spec*
        can never pay off: the horizon is immediately at time zero)."""
        horizon = prefix_horizon_ps(spec, us(spec.duration_us))
        if horizon <= 0:
            return None
        return {"dir": self.store_for(spec).root, "horizon_ps": horizon}
