"""Structured mutators over RunSpec-encodable fuzz genomes.

The genome **is** a :class:`~repro.replay.RunSpec`: scenario name plus
traffic-shape overrides (``scenario_kwargs``), resilience knobs, seeds
and the fault schedule.  Every mutator is a pure function
``(spec, rng) -> RunSpec | None`` — ``None`` means "not applicable to
this genome" (e.g. deleting a fault from an empty schedule) and the
engine redraws.  All randomness comes from the passed ``rng`` so a
campaign's evolution is a pure function of its base seed.

Catalogue (see ``docs/RESILIENCE.md`` §6):

========================  =============================================
``burst-reshape``         DMA master burst kind (SINGLE … INCR16)
``wait-jitter``           per-slave wait-state vector
``arbitration-flip``      fixed-priority / round-robin / TDMA
``idle-scale``            traffic density (idle-gap multiplier)
``fault-insert``          add a behavioural or signal-level fault
``fault-delete``          drop one scheduled fault
``fault-shift``           retime one scheduled fault
``duration-jitter``       stretch/compress the simulated window
``seed-drift``            new stimulus or injector seed
``resilience-knobs``      retry limit/backoff, watchdog thresholds
========================  =============================================
"""

from __future__ import annotations

from ..amba import Arbitration
from ..faults.campaign import FAULT_MODES
from ..replay.trace import SIGNAL_KINDS, FaultEntry

#: Bus signal attribute -> bit width, for signal-level fault targets.
SIGNAL_WIDTHS = {
    "htrans": 2,
    "haddr": 32,
    "hwrite": 1,
    "hsize": 3,
    "hburst": 3,
    "hwdata": 32,
}

#: Schedule-length ceiling — keeps genomes shrinkable and runs bounded.
MAX_FAULTS = 4

#: Simulated-duration clamp (µs).
MIN_DURATION_US = 5.0
MAX_DURATION_US = 60.0

_IDLE_SCALES = (0.0, 0.25, 0.5, 1.0, 2.0, 4.0)
_DURATION_FACTORS = (0.5, 0.75, 1.25, 1.5)

#: Picoseconds per microsecond (fault windows are kernel-time ps).
_PS_PER_US = 1_000_000


def _set_kwarg(spec, key, value):
    kwargs = dict(spec.scenario_kwargs)
    if kwargs.get(key) == value:
        return None
    kwargs[key] = value
    return spec.replace(scenario_kwargs=kwargs)


def burst_reshape(spec, rng):
    """Reshape the scenario's DMA burst kind (HBURST code 0..7)."""
    return _set_kwarg(spec, "dma_burst", rng.randrange(8))


def wait_jitter(spec, rng):
    """Redraw the per-slave wait-state vector (0..3 cycles each)."""
    waits = [rng.randrange(4) for _ in range(3)]
    return _set_kwarg(spec, "wait_states", waits)


def arbitration_flip(spec, rng):
    """Switch the arbiter policy."""
    return _set_kwarg(spec, "arbitration", rng.choice(Arbitration.ALL))


def idle_scale(spec, rng):
    """Stretch or compress every source's idle gaps."""
    return _set_kwarg(spec, "idle_scale", rng.choice(_IDLE_SCALES))


def fault_insert(spec, rng):
    """Schedule one more behavioural or signal-level fault."""
    if len(spec.faults) >= MAX_FAULTS:
        return None
    if rng.random() < 0.5:
        entry = FaultEntry.behavioural(
            rng.choice(sorted(FAULT_MODES)),
            slave=rng.randrange(3),
            trigger_after=rng.randrange(256),
        )
    else:
        signal = rng.choice(sorted(SIGNAL_WIDTHS))
        duration_ps = int(spec.duration_us * _PS_PER_US)
        start = rng.randrange(max(1, duration_ps // 2))
        entry = FaultEntry.signal_fault(
            rng.choice(SIGNAL_KINDS), signal,
            bit=rng.randrange(SIGNAL_WIDTHS[signal]),
            value=rng.randrange(2),
            cycles=rng.randrange(1, 5),
            start_ps=start,
            end_ps=start + rng.randrange(1, duration_ps // 2 + 1),
        )
    faults = [fault.to_dict() for fault in spec.faults]
    faults.append(entry.to_dict())
    return spec.replace(faults=faults)


def fault_delete(spec, rng):
    """Unschedule one fault."""
    if not spec.faults:
        return None
    faults = [fault.to_dict() for fault in spec.faults]
    faults.pop(rng.randrange(len(faults)))
    return spec.replace(faults=faults)


def fault_shift(spec, rng):
    """Retime one fault (arming delay or injection window)."""
    if not spec.faults:
        return None
    faults = [fault.to_dict() for fault in spec.faults]
    entry = faults[rng.randrange(len(faults))]
    if entry["kind"] == "behavioural":
        entry["trigger_after"] = rng.randrange(256)
    else:
        duration_ps = int(spec.duration_us * _PS_PER_US)
        shift = rng.randrange(duration_ps // 4 + 1)
        entry["start_ps"] = shift
        if entry.get("end_ps") is not None:
            width = max(1, entry["end_ps"] - entry.get("start_ps", 0))
            entry["end_ps"] = shift + width
    return spec.replace(faults=faults)


def duration_jitter(spec, rng):
    """Stretch/compress the simulated window (clamped)."""
    factor = rng.choice(_DURATION_FACTORS)
    duration = min(MAX_DURATION_US,
                   max(MIN_DURATION_US, spec.duration_us * factor))
    if duration == spec.duration_us:
        return None
    return spec.replace(duration_us=duration)


def seed_drift(spec, rng):
    """Redraw the stimulus seed (or, 1-in-4, the injector seed)."""
    if rng.random() < 0.25:
        return spec.replace(injector_seed=rng.randrange(1 << 16))
    return spec.replace(seed=rng.randrange(1, 1 << 16))


def resilience_knobs(spec, rng):
    """Perturb retry policy and watchdog thresholds."""
    knobs = dict(spec.watchdog_kwargs)
    knobs["hready_timeout"] = rng.choice((4, 8, 16, 32))
    knobs["retry_budget"] = rng.choice((2, 4, 6, 12))
    knobs["split_timeout"] = rng.choice((16, 32, 64, 128))
    knobs.setdefault("recover", True)
    return spec.replace(
        retry_limit=rng.choice((1, 2, 4, 8, 16)),
        retry_backoff=rng.choice((1, 2, 4)),
        watchdog_kwargs=knobs,
    )


#: The catalogue, in documentation order (names are stable — they are
#: recorded in corpus entry provenance).
MUTATORS = (
    ("burst-reshape", burst_reshape),
    ("wait-jitter", wait_jitter),
    ("arbitration-flip", arbitration_flip),
    ("idle-scale", idle_scale),
    ("fault-insert", fault_insert),
    ("fault-delete", fault_delete),
    ("fault-shift", fault_shift),
    ("duration-jitter", duration_jitter),
    ("seed-drift", seed_drift),
    ("resilience-knobs", resilience_knobs),
)

MUTATOR_NAMES = tuple(name for name, _ in MUTATORS)


def mutate(spec, rng, attempts=8):
    """Apply one applicable mutator drawn from *rng*.

    Returns ``(mutator_name, new_spec)``.  Inapplicable or no-op draws
    are retried up to *attempts* times, then fall back to ``seed-drift``
    (always applicable), so the engine never stalls on a degenerate
    genome.
    """
    for _ in range(attempts):
        name, mutator = MUTATORS[rng.randrange(len(MUTATORS))]
        mutated = mutator(spec, rng)
        if mutated is not None:
            return name, mutated
    return "seed-drift", seed_drift(spec, rng)
