"""Coverage-guided fuzz campaign engine.

Closes the loop between three existing subsystems:

* the **compliance oracle** (:mod:`repro.protocol`) classifies each
  mutated run and contributes rule-arm coverage;
* the **supervised executor** (:mod:`repro.exec`) runs candidate
  genomes under per-run wall-clock budgets with crash/hang isolation;
* the **ddmin shrinker** (:mod:`repro.replay.shrink`) minimises every
  novel failure into a reproducer artefact plus a generated regression
  test.

The campaign loop is classic coverage-guided fuzzing over
RunSpec-encodable genomes: select a corpus parent (rarity-weighted by
the campaign :class:`~repro.fuzz.coverage.CoverageMap`), apply one
structured mutator (:mod:`repro.fuzz.mutators`), execute the batch
through :func:`repro.exec.execute_campaign`, admit candidates whose
coverage keys are novel, and shrink every *new* failure signature.

Determinism contract: the engine's RNG is drawn **only** in the
batch-generation step, batch composition never depends on worker
count, and batch results are folded in generation order — so the
corpus evolution, the coverage map and the saved RNG state are
bit-identical for serial and ``--jobs N`` campaigns with the same base
seed (``tests/test_fuzz_engine.py`` locks this in).
"""

from __future__ import annotations

import json
import os
import random
import re
import time

from ..exec import ExecutorConfig, execute_campaign
from ..faults.campaign import CampaignRun
from ..replay import RunOutcome, RunSpec, campaign_spec
from ..replay.shrink import failure_signature, shrink
from ..replay.trace import ReplayTrace
from ..state import atomic_write_json
from ..workloads import SCENARIOS
from .corpus import Corpus, CorpusEntry, entry_id_for
from .coverage import CoverageMap
from .mutators import mutate

#: Campaign state file format marker.
STATE_FORMAT = "repro-fuzz-state/1"

#: Outcomes that mean the run never produced a usable fingerprint —
#: they count as (unshrinkable) infrastructure failures.
INFRA_FAILURES = ("quarantined", "worker-crashed")


class FuzzConfig:
    """Knobs of one fuzz campaign.

    Parameters
    ----------
    budget:
        Total candidate executions the campaign may spend (seed-corpus
        executions included; cumulative across ``--resume``).
    seed:
        Base seed — the campaign's only entropy source.
    jobs, timeout:
        Forwarded to the supervised executor: worker processes, and the
        per-run wall-clock budget in host seconds.
    scenarios:
        Scenario names seeding an empty corpus (default: the full
        registry, sorted).
    seed_specs:
        Extra :class:`~repro.replay.RunSpec` genomes executed alongside
        the scenario seeds when the corpus starts empty — the way to
        inject a known (or suspected) violating genome and let the
        campaign shrink it into a reproducer.
    duration_us:
        Simulated window of the seed genomes.
    batch_size:
        Candidates generated per executor batch.  Fixed — never derived
        from ``jobs`` — so corpus evolution is worker-count invariant.
    shrink, min_shrink_duration_us:
        Auto-shrink novel failures (and the shrinker's duration floor).
    reproducer_dir:
        Where reproducer JSON + generated regression tests go
        (default: ``<corpus>/reproducers``).
    coverage_out:
        Optional extra path for the final coverage map (the corpus dir
        always keeps its own ``coverage.json``).
    max_sim_us, max_energy_j:
        Campaign-level simulated-time / simulated-energy budgets:
        generation stops once the accumulated totals exceed them.
    wall_budget_s:
        Host-side campaign budget: no new batch starts after this many
        seconds (per-run determinism is unaffected; the corpus then
        depends on host speed, so leave unset when reproducibility of
        the *whole* directory matters).
    resume:
        Restore ``state.json`` (RNG state, budgets, seen failure
        signatures) and continue the campaign.
    warm_start:
        Warm-start mutated candidates from shared scenario-prefix
        checkpoints (``<corpus>/warmstart/``, see
        :mod:`repro.fuzz.warmstart`): siblings that differ from their
        parent only after the first signal-fault window opens skip
        re-simulating the common prefix.  Corpus evolution stays
        bit-identical to a cold campaign — the probe's coverage state
        is checkpointed along with the simulation.
    engine:
        Kernel engine stamped into the seed genomes (mutation
        preserves it), so a whole campaign can run on the compiled
        engine — see :class:`repro.replay.RunSpec.ENGINES`.  Either
        engine yields bit-identical outcomes and coverage, so corpus
        evolution is engine-independent.
    """

    def __init__(self, budget=100, seed=1, jobs=1, timeout=None,
                 scenarios=None, seed_specs=(), duration_us=20.0,
                 batch_size=8, shrink=True, min_shrink_duration_us=0.5,
                 reproducer_dir=None, coverage_out=None,
                 max_sim_us=None, max_energy_j=None,
                 wall_budget_s=None, resume=False, warm_start=False,
                 engine="interpreted"):
        self.budget = max(1, int(budget))
        self.seed = int(seed)
        self.jobs = max(1, int(jobs))
        self.timeout = timeout
        self.scenarios = tuple(scenarios or sorted(SCENARIOS))
        self.seed_specs = tuple(seed_specs)
        self.duration_us = float(duration_us)
        self.batch_size = max(1, int(batch_size))
        self.shrink = shrink
        self.min_shrink_duration_us = min_shrink_duration_us
        self.reproducer_dir = reproducer_dir
        self.coverage_out = coverage_out
        self.max_sim_us = max_sim_us
        self.max_energy_j = max_energy_j
        self.wall_budget_s = wall_budget_s
        self.resume = resume
        self.warm_start = warm_start
        self.engine = engine


class FuzzReport:
    """What one :func:`run_fuzz_campaign` invocation produced."""

    def __init__(self, config):
        self.config = config
        #: Cumulative candidate executions (across resumes).
        self.executions = 0
        #: Extra executions spent inside the shrinker (not budgeted).
        self.shrink_executions = 0
        #: Entries admitted by this invocation / corpus total.
        self.admitted = 0
        self.corpus_size = 0
        #: Coverage keys first seen by this invocation / map total.
        self.novel_keys = 0
        self.coverage_keys = 0
        #: Failure dicts (signature, reproducer paths, shrink stats).
        self.failures = []
        #: Runs classified ``timeout`` (budget too tight, not a bug).
        self.timeouts = 0
        #: Accumulated simulated time / energy (campaign budget meters).
        self.sim_us = 0.0
        self.energy_j = 0.0
        self.wall_time_s = 0.0
        self.interrupted = False
        self.resumed = False

    @property
    def unshrunk(self):
        """Failures with no minimal reproducer — these gate CI."""
        return [failure for failure in self.failures
                if not failure["shrunk"]]

    @property
    def ok(self):
        """True when nothing needs human attention: every discovered
        failure was shrunk into a reproducer and the campaign was not
        interrupted."""
        return not self.unshrunk and not self.interrupted

    def coverage_groups(self):
        """key-class prefix -> distinct keys, for the coverage report."""
        groups = {}
        for key in self._coverage_counts:
            prefix = key.split(":", 1)[0]
            groups[prefix] = groups.get(prefix, 0) + 1
        return dict(sorted(groups.items()))

    _coverage_counts = ()

    def attach_coverage(self, coverage_map):
        self._coverage_counts = dict(coverage_map.counts)
        self.coverage_keys = len(coverage_map)

    def summary(self):
        lines = [
            "fuzz campaign: %d/%d executions (%d in shrinker), "
            "%.1f us simulated, %.3e J"
            % (self.executions, self.config.budget,
               self.shrink_executions, self.sim_us, self.energy_j),
            "corpus: %d entries (%d admitted now); coverage: %d keys "
            "(%d novel now)"
            % (self.corpus_size, self.admitted, self.coverage_keys,
               self.novel_keys),
        ]
        for prefix, count in self.coverage_groups().items():
            lines.append("  coverage[%s]: %d" % (prefix, count))
        if self.timeouts:
            lines.append("timeouts: %d (per-run budget too tight?)"
                         % self.timeouts)
        for failure in self.failures:
            status = ("shrunk -> %s" % failure["reproducer"]
                      if failure["shrunk"] else "UNSHRUNK")
            lines.append("failure %s: %s"
                         % (failure["signature"], status))
        if not self.failures:
            lines.append("no failures discovered")
        if self.interrupted:
            lines.append("INTERRUPTED — resume with --resume")
        return "\n".join(lines)

    def to_dict(self):
        return {
            "budget": self.config.budget,
            "seed": self.config.seed,
            "jobs": self.config.jobs,
            "executions": self.executions,
            "shrink_executions": self.shrink_executions,
            "admitted": self.admitted,
            "corpus_size": self.corpus_size,
            "novel_keys": self.novel_keys,
            "coverage_keys": self.coverage_keys,
            "coverage_groups": self.coverage_groups(),
            "failures": list(self.failures),
            "timeouts": self.timeouts,
            "sim_us": self.sim_us,
            "energy_j": self.energy_j,
            "wall_time_s": self.wall_time_s,
            "interrupted": self.interrupted,
            "resumed": self.resumed,
            "ok": self.ok,
        }


def _slug(signature):
    """Filesystem/module-safe name of a failure signature tuple."""
    text = "_".join(str(part) for part in signature)
    return re.sub(r"[^a-z0-9]+", "_", text.lower()).strip("_")


def _signature_assertion(signature):
    """The reproduction assert of a generated regression test."""
    if signature[0] == "rule":
        return ('    assert %r in actual.rules_tripped, \\\n'
                '        "expected rule %s to trip"' %
                (signature[1], signature[1]))
    if signature[0] == "non-compliant":
        return ('    assert not actual.recovery_compliant, \\\n'
                '        "expected a mandatory-rule violation"')
    return ('    assert actual.outcome == %r, \\\n'
            '        "expected outcome %s"'
            % (signature[1], signature[1]))


def write_reproducer(directory, signature, shrink_result):
    """Persist a shrunk failure as ``(trace JSON, generated test)``.

    The JSON is a single-run :class:`~repro.replay.ReplayTrace` of the
    minimal spec and its recorded outcome; the test replays it and
    asserts both the pinned failure signature and the bit-exact
    fingerprint, so committing the pair under ``tests/reproducers/``
    turns the finding into a tier-1 regression test.
    """
    os.makedirs(directory, exist_ok=True)
    slug = _slug(signature)
    trace_name = "repro_%s.json" % slug
    trace_path = os.path.join(directory, trace_name)
    trace = ReplayTrace()
    trace.append(shrink_result.spec, shrink_result.outcome)
    trace.save(trace_path)
    test_path = os.path.join(directory, "test_repro_%s.py" % slug)
    body = '''\
"""Auto-generated fuzz reproducer regression test.

Failure signature: %(signature)s
Produced by `repro fuzz` (repro.fuzz.engine.write_reproducer); the
sibling JSON file is the minimal shrunk RunSpec with its recorded
outcome.  Regenerate rather than edit.
"""

import os

from repro.replay import ReplayTrace

_TRACE = os.path.join(os.path.dirname(__file__), %(trace_name)r)


def test_repro_%(slug)s():
    trace = ReplayTrace.load(_TRACE)
    spec, recorded, actual, match = trace.replay(0)
%(assertion)s
    assert match, "replay diverged from the recorded fingerprint"
''' % {
        "signature": " ".join(str(part) for part in signature),
        "trace_name": trace_name,
        "slug": slug,
        "assertion": _signature_assertion(signature),
    }
    with open(test_path, "w") as fh:
        fh.write(body)
    return trace_path, test_path


class FuzzCampaign:
    """One coverage-guided campaign over a corpus directory."""

    def __init__(self, corpus_root, config=None):
        self.root = corpus_root
        self.config = config or FuzzConfig()
        self.report = FuzzReport(self.config)
        self.corpus = None
        self.coverage = None
        self.rng = None
        #: Failure-signature keys already shrunk (persisted in state).
        self.seen_failures = set()

    # -- paths ----------------------------------------------------------

    @property
    def state_path(self):
        return os.path.join(self.root, "state.json")

    @property
    def coverage_path(self):
        return os.path.join(self.root, "coverage.json")

    @property
    def reproducer_dir(self):
        return (self.config.reproducer_dir
                or os.path.join(self.root, "reproducers"))

    # -- state ----------------------------------------------------------

    def _load_state(self):
        with open(self.state_path) as fh:
            state = json.load(fh)
        if state.get("format") != STATE_FORMAT:
            raise ValueError("%s is not a %s state file (format=%r)"
                             % (self.state_path, STATE_FORMAT,
                                state.get("format")))
        if state.get("seed") != self.config.seed:
            raise ValueError(
                "corpus %s was evolved with --seed %s; refusing to "
                "resume with --seed %s (corpus evolution is a pure "
                "function of the base seed)"
                % (self.root, state.get("seed"), self.config.seed))
        self.report.executions = state["executions"]
        self.report.sim_us = state["sim_us"]
        self.report.energy_j = state["energy_j"]
        self.report.shrink_executions = state.get(
            "shrink_executions", 0)
        self.seen_failures = set(state.get("failures", ()))
        rng_state = state["rng_state"]
        self.rng.setstate((rng_state[0], tuple(rng_state[1]),
                           rng_state[2]))
        self.report.resumed = True

    def _save_state(self):
        os.makedirs(self.root, exist_ok=True)
        state = {
            "format": STATE_FORMAT,
            "seed": self.config.seed,
            "scenarios": list(self.config.scenarios),
            "duration_us": self.config.duration_us,
            "executions": self.report.executions,
            "sim_us": self.report.sim_us,
            "energy_j": self.report.energy_j,
            "shrink_executions": self.report.shrink_executions,
            "failures": sorted(self.seen_failures),
            "rng_state": list(self.rng.getstate()),
        }
        # Atomic: a campaign killed mid-save must leave either the old
        # complete state.json or the new one, never a truncated file
        # that poisons the next --resume.
        atomic_write_json(self.state_path, state)
        self.coverage.save(self.coverage_path)

    # -- budget ---------------------------------------------------------

    def _remaining(self):
        return self.config.budget - self.report.executions

    def _exhausted(self, started):
        config = self.config
        if self._remaining() <= 0:
            return True
        if config.max_sim_us is not None \
                and self.report.sim_us >= config.max_sim_us:
            return True
        if config.max_energy_j is not None \
                and self.report.energy_j >= config.max_energy_j:
            return True
        if config.wall_budget_s is not None \
                and time.monotonic() - started >= config.wall_budget_s:
            return True
        return False

    # -- candidate generation -------------------------------------------

    def _seed_batch(self):
        """Generation-0 genomes: one clean run per scenario."""
        specs = [campaign_spec(scenario, "none", seed=self.config.seed,
                               duration_us=self.config.duration_us,
                               engine=self.config.engine)
                 for scenario in self.config.scenarios]
        specs.extend(self.config.seed_specs)
        return [(entry_id_for(spec), spec, None, None)
                for spec in specs[:self._remaining()]]

    def _select_parent(self, entries):
        """Rarity-weighted draw: genomes holding rare coverage keys
        breed more."""
        weights = [1.0 + self.coverage.rarity(entry.coverage)
                   for entry in entries]
        pick = self.rng.random() * sum(weights)
        for entry, weight in zip(entries, weights):
            pick -= weight
            if pick < 0:
                return entry
        return entries[-1]

    def _generate_batch(self):
        """Mutate up to ``batch_size`` novel candidates.  All RNG use
        happens here, in the supervisor, before any execution."""
        limit = min(self.config.batch_size, self._remaining())
        entries = list(self.corpus)
        taken = set(self.corpus.entries)
        batch = []
        attempts = 0
        while len(batch) < limit and attempts < limit * 20:
            attempts += 1
            parent = self._select_parent(entries)
            mutator, spec = mutate(parent.spec, self.rng)
            entry_id = entry_id_for(spec)
            if entry_id in taken:
                continue
            taken.add(entry_id)
            batch.append((entry_id, spec, parent.entry_id, mutator))
        return batch

    # -- execution & folding --------------------------------------------

    def _execute_batch(self, batch):
        runs = [CampaignRun(entry_id, spec.scenario, "fuzz", spec)
                for entry_id, spec, _, _ in batch]
        exec_config = ExecutorConfig(
            jobs=self.config.jobs, timeout=self.config.timeout,
            collect_coverage=True, artefact_dir=self.root,
            warm_start_dir=(os.path.join(self.root, "warmstart")
                            if self.config.warm_start else None))
        return execute_campaign(runs, exec_config)

    def _fold_batch(self, batch, exec_report, admit_all=False):
        """Fold batch results **in generation order** — the step that
        makes corpus evolution independent of worker scheduling."""
        for entry_id, spec, parent, mutator in batch:
            result = exec_report.results.get(entry_id)
            if result is None:  # interrupted before this run finished
                self.report.interrupted = True
                break
            self.report.executions += 1
            self.report.sim_us += spec.duration_us
            self.report.energy_j += result.total_energy
            keys = result.coverage or []
            novel = self.coverage.add(keys)
            self.report.novel_keys += len(novel)
            if admit_all or novel:
                admitted = self.corpus.add(CorpusEntry(
                    spec, coverage=keys, parent=parent,
                    mutator=mutator, novel=novel,
                    outcome=result.outcome))
                if admitted:
                    self.report.admitted += 1
            self._check_failure(result)
        if exec_report.interrupted:
            self.report.interrupted = True

    def _check_failure(self, result):
        if result.outcome == "timeout":
            self.report.timeouts += 1
            return
        outcome = (RunOutcome(**result.fingerprint)
                   if result.fingerprint else None)
        if outcome is not None and outcome.failing:
            self._handle_failure(result, outcome)
        elif result.outcome in INFRA_FAILURES:
            self.report.failures.append({
                "signature": "outcome|%s" % result.outcome,
                "entry": entry_id_for(RunSpec.from_dict(result.spec)),
                "scenario": result.scenario,
                "shrunk": False,
                "reproducer": None,
                "test": None,
                "detail": result.detail,
            })

    def _handle_failure(self, result, outcome):
        signature = failure_signature(outcome)
        key = "|".join(str(part) for part in signature)
        if key in self.seen_failures:
            return
        self.seen_failures.add(key)
        spec = RunSpec.from_dict(result.spec)
        failure = {
            "signature": key,
            "entry": entry_id_for(spec),
            "scenario": result.scenario,
            "shrunk": False,
            "reproducer": None,
            "test": None,
            "detail": result.detail,
        }
        if self.config.shrink:
            try:
                shrunk = shrink(
                    spec,
                    min_duration_us=self.config.min_shrink_duration_us)
            except ValueError as exc:
                failure["detail"] = "shrink failed: %s" % exc
            else:
                self.report.shrink_executions += shrunk.executions
                trace_path, test_path = write_reproducer(
                    self.reproducer_dir, signature, shrunk)
                failure.update(
                    shrunk=True, reproducer=trace_path, test=test_path,
                    shrink_runs=shrunk.executions,
                    original_faults=len(spec.faults),
                    minimal_faults=len(shrunk.spec.faults),
                    original_duration_us=spec.duration_us,
                    minimal_duration_us=shrunk.spec.duration_us,
                )
        self.report.failures.append(failure)

    # -- main loop ------------------------------------------------------

    def run(self):
        started = time.monotonic()
        config = self.config
        self.rng = random.Random(config.seed)
        self.corpus = Corpus.load(self.root)
        resuming = (config.resume
                    and os.path.exists(self.state_path))
        if resuming:
            self.coverage = (CoverageMap.load(self.coverage_path)
                             if os.path.exists(self.coverage_path)
                             else CoverageMap())
            self._load_state()
        else:
            # Fresh campaign over a (possibly pre-seeded) corpus: the
            # map is rebuilt from the entries' recorded coverage.
            self.coverage = CoverageMap()
            for entry in self.corpus:
                self.coverage.add(entry.coverage)
        if not self.corpus and not self._exhausted(started):
            batch = self._seed_batch()
            self._fold_batch(batch, self._execute_batch(batch),
                             admit_all=True)
        while not self.report.interrupted \
                and not self._exhausted(started) and len(self.corpus):
            batch = self._generate_batch()
            if not batch:
                break
            self._fold_batch(batch, self._execute_batch(batch))
        self._save_state()
        if config.coverage_out:
            self.coverage.save(config.coverage_out)
        self.report.corpus_size = len(self.corpus)
        self.report.attach_coverage(self.coverage)
        self.report.wall_time_s = time.monotonic() - started
        return self.report


def run_fuzz_campaign(corpus_root, config=None):
    """Run one fuzz campaign over *corpus_root*; return the
    :class:`FuzzReport`."""
    return FuzzCampaign(corpus_root, config).run()
