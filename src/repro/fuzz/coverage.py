"""Coverage signals steering the fuzz campaign.

A fuzz run is interesting when it exercises *behaviour* the corpus has
not exhibited before.  Behaviour is abstracted into a set of string
**coverage keys**, all derived from deterministic simulation-domain
quantities (never host time), so the key set — like the run fingerprint
— is a pure function of the :class:`~repro.replay.RunSpec`:

``rule:<rule_id>``
    a compliance-rule arm fired (the oracle's 14-rule catalogue);
``mandatory-broken``
    at least one spec-requirement rule fired;
``outcome:<class>``
    the campaign outcome classification of the run;
``bus:<HTRANS>-><HTRANS>``
    committed HTRANS state-transition pairs on consecutive bus cycles;
``burst:<HBURST>``
    burst kinds observed on active transfers;
``resp:<HRESP>``
    non-OKAY response kinds observed;
``power:<MODE>-><MODE>``
    power-FSM state-transition pairs (the paper's §5.2 bus-activity
    machine);
``lat:m<i>:le<N>``
    per-master transaction latency, power-of-two cycle buckets.

:class:`CoverageProbe` installs the observe-only hooks on an assembled
system (via :func:`repro.replay.execute`'s ``instrument`` callback) and
extracts the key set afterwards; :class:`CoverageMap` is the campaign-
wide accumulation the engine steers by.
"""

from __future__ import annotations

import json

from ..amba.types import HBURST, HRESP, HTRANS, is_active
from ..kernel import Module

#: Coverage-map file format marker.
FORMAT = "repro-fuzz-coverage/1"


class _BusCoverageMonitor(Module):
    """Observe-only per-cycle monitor: HTRANS transition pairs, burst
    kinds and non-OKAY response kinds on the committed bus signals."""

    def __init__(self, sim, name, clk, bus, keys, parent=None):
        super().__init__(sim, name, parent=parent)
        self.bus = bus
        self.keys = keys
        self._prev_htrans = None
        self.method(self._on_clk, [clk.posedge], name="cover",
                    initialize=False)

    def _on_clk(self):
        bus = self.bus
        htrans = bus.htrans.value
        if self._prev_htrans is not None \
                and htrans != self._prev_htrans:
            self.keys.add("bus:%s->%s" % (HTRANS(self._prev_htrans).name,
                                          HTRANS(htrans).name))
        self._prev_htrans = htrans
        if is_active(htrans):
            self.keys.add("burst:%s" % HBURST(bus.hburst.value).name)
        hresp = bus.hresp.value
        if hresp != int(HRESP.OKAY):
            self.keys.add("resp:%s" % HRESP(hresp).name)


class _PowerCoverage:
    """Power-FSM tracer hook recording state-transition pairs.

    Chains to any tracer already attached so telemetry and coverage can
    coexist on one monitor.
    """

    def __init__(self, keys, chained=None):
        self.keys = keys
        self.chained = chained
        self._prev = None

    def on_step(self, time_ps, mode, instruction, block_energies,
                total, response):
        if self._prev is not None and mode is not self._prev:
            self.keys.add("power:%s->%s" % (self._prev.name, mode.name))
        self._prev = mode
        if self.chained is not None:
            self.chained.on_step(time_ps, mode, instruction,
                                 block_energies, total, response)


def _latency_bucket(cycles):
    """Power-of-two bucket label covering *cycles* (``le1``, ``le2``,
    ``le4`` …)."""
    bound = 1
    while cycles > bound:
        bound *= 2
    return "le%d" % bound


class CoverageProbe:
    """One run's coverage collector.

    ``install`` is handed to :func:`repro.replay.execute` as the
    ``instrument`` callback; ``coverage_keys`` condenses the observed
    behaviour plus the run outcome into the sorted key list.
    """

    def __init__(self):
        self.keys = set()
        self._installed = False
        self._monitor = None
        self._power = None

    def install(self, system):
        """Attach the bus monitor and power-FSM hook to *system*."""
        self._installed = True
        self._monitor = _BusCoverageMonitor(
            system.sim, "fuzz_coverage", system.clk, system.bus,
            self.keys)
        if system.monitor is not None:
            fsm = system.monitor.fsm
            self._power = _PowerCoverage(self.keys, chained=fsm.tracer)
            fsm.tracer = self._power
        # The probe is itself checkpointable state: mid-run snapshots
        # (periodic checkpoints, shared warm-start prefixes) capture
        # the keys observed so far plus the monitors' edge-detection
        # state, so a restored run accumulates the exact key set a
        # straight run would have — coverage-guided corpus evolution
        # stays bit-identical whether or not a prefix was skipped.
        system.sim.register_state("fuzz_coverage", self)

    def state_dict(self):
        return {
            "keys": sorted(self.keys),
            "bus_prev": self._monitor._prev_htrans
            if self._monitor is not None else None,
            "power_prev": self._power._prev.name
            if self._power is not None and self._power._prev is not None
            else None,
        }

    def load_state_dict(self, state):
        from ..power.instructions import BusMode
        self.keys.clear()
        self.keys.update(state["keys"])
        if self._monitor is not None:
            self._monitor._prev_htrans = state["bus_prev"]
        if self._power is not None:
            self._power._prev = (BusMode[state["power_prev"]]
                                 if state["power_prev"] is not None
                                 else None)

    def coverage_keys(self, system, outcome):
        """The sorted coverage key list of one executed run."""
        keys = set(self.keys)
        keys.add("outcome:%s" % outcome.outcome)
        for rule in outcome.rules_tripped or ():
            keys.add("rule:%s" % rule)
        if not outcome.recovery_compliant:
            keys.add("mandatory-broken")
        if system is not None:
            period = system.clk.period
            for index, master in enumerate(system.masters):
                for txn in master.completed:
                    if txn.issue_time is None \
                            or txn.complete_time is None:
                        continue
                    cycles = max(1, round(
                        (txn.complete_time - txn.issue_time) / period))
                    keys.add("lat:m%d:%s"
                             % (index, _latency_bucket(cycles)))
        return sorted(keys)


class CoverageMap:
    """Campaign-wide coverage accumulation: key -> hit count."""

    def __init__(self, counts=None):
        self.counts = dict(counts or {})

    def __len__(self):
        return len(self.counts)

    def __contains__(self, key):
        return key in self.counts

    def add(self, keys):
        """Fold one run's *keys* in; return the sorted novel subset."""
        new = sorted(key for key in keys if key not in self.counts)
        for key in keys:
            self.counts[key] = self.counts.get(key, 0) + 1
        return new

    def rarity(self, keys):
        """Inverse-frequency score of *keys* (rarer coverage scores
        higher; used to weight corpus-entry selection)."""
        return sum(1.0 / self.counts[key] for key in keys
                   if key in self.counts)

    def to_dict(self):
        return {"format": FORMAT,
                "coverage": dict(sorted(self.counts.items()))}

    @classmethod
    def from_dict(cls, data):
        if data.get("format") != FORMAT:
            raise ValueError("not a %s coverage map (format=%r)"
                             % (FORMAT, data.get("format")))
        return cls(data.get("coverage", {}))

    def save(self, path):
        # Atomic for the same reason as state.json: coverage.json is
        # loaded on --resume and must never be seen half-written.
        from ..state import atomic_write_json
        atomic_write_json(path, self.to_dict())

    @classmethod
    def load(cls, path):
        with open(path) as fh:
            return cls.from_dict(json.load(fh))
