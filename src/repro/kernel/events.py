"""Events and processes: the kernel's unit of concurrency.

The design mirrors SystemC's simulation semantics:

* an :class:`Event` is a named synchronisation point that processes can
  be *statically* sensitive to (method processes) or *dynamically* wait
  on (thread processes);
* a :class:`MethodProcess` is a plain callable re-run whenever one of
  the events in its sensitivity list fires (``SC_METHOD``);
* a :class:`ThreadProcess` is a Python generator that ``yield``-s wait
  specifications — an event, a signal, an integer delay or a collection
  meaning *wait for any* (``SC_THREAD`` with dynamic sensitivity).

Events can be notified with a *delta* delay (fires at the end of the
current delta cycle) or a *timed* delay in kernel time units.
"""

from __future__ import annotations

from .errors import SimulationError


class Event:
    """A notifiable synchronisation point.

    Parameters
    ----------
    sim:
        The owning :class:`~repro.kernel.simulator.Simulator`.
    name:
        Diagnostic name used in error messages and traces.
    """

    __slots__ = ("sim", "name", "_static_waiters", "_dynamic_waiters")

    def __init__(self, sim, name="event"):
        self.sim = sim
        self.name = name
        self._static_waiters = []
        self._dynamic_waiters = []
        register = getattr(sim, "_register_event", None)
        if register is not None:
            register(self)

    def __repr__(self):
        return "Event(%r)" % self.name

    @property
    def static_waiters(self):
        """Tuple of processes statically sensitive to this event.

        Exposed for static analysis (the :mod:`repro.compiled` graph
        extractor); the kernel itself keeps using the internal list.
        """
        return tuple(self._static_waiters)

    def notify(self, delay=None):
        """Schedule this event to fire.

        ``delay=None`` requests a *delta* notification: the event fires
        in the update phase of the current delta cycle.  An integer
        ``delay >= 0`` requests a timed notification that many kernel
        time units in the future.
        """
        if delay is None:
            self.sim._schedule_delta_event(self)
        else:
            if delay < 0:
                raise ValueError("negative event delay: %r" % delay)
            self.sim._schedule_timed_event(self, int(delay))

    def _add_static(self, process):
        """Register *process* as statically sensitive to this event."""
        self._static_waiters.append(process)

    def _add_dynamic(self, process):
        """Register *process* for a one-shot wake-up on the next firing."""
        self._dynamic_waiters.append(process)

    def _remove_dynamic(self, process):
        """Drop a one-shot registration (used by wait-any cleanup)."""
        try:
            self._dynamic_waiters.remove(process)
        except ValueError:
            pass

    def _fire(self, runnable):
        """Collect every process woken by this event into *runnable*."""
        for process in self._static_waiters:
            runnable.append(process)
        if self._dynamic_waiters:
            woken = self._dynamic_waiters
            self._dynamic_waiters = []
            for process in woken:
                process._dynamic_wake(self, runnable)


class Process:
    """Common bookkeeping shared by method and thread processes.

    ``run_fn`` is the callable the scheduler dispatches; it defaults to
    the process's own ``_run`` and exists as an instance slot so tools
    (e.g. :class:`~repro.kernel.stats.SimulationProfiler`) can wrap it.
    """

    __slots__ = ("sim", "name", "terminated", "run_fn")

    def __init__(self, sim, name):
        self.sim = sim
        self.name = name
        self.terminated = False
        self.run_fn = self._run

    def _run(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def _dynamic_wake(self, event, runnable):  # pragma: no cover
        raise NotImplementedError

    def __repr__(self):
        return "%s(%r)" % (type(self).__name__, self.name)


class MethodProcess(Process):
    """A callable re-evaluated whenever its sensitivity list fires.

    Method processes model combinational logic: they must run to
    completion, may read and write signals, but cannot suspend.
    """

    __slots__ = ("fn", "sensitivity", "writes")

    def __init__(self, sim, name, fn, sensitivity, initialize=True,
                 writes=None):
        super().__init__(sim, name)
        self.fn = fn
        #: Resolved static sensitivity, kept as a reusable tuple of
        #: :class:`Event` objects instead of being discarded into the
        #: events' waiter lists — static analysis reads it back and the
        #: tuple is shared rather than rebuilt per query.
        events = tuple(_as_event(trigger) for trigger in sensitivity)
        self.sensitivity = events
        #: Optional declared write set: the signals this process may
        #: write, as a tuple, or ``None`` when undeclared.  Purely
        #: metadata — the kernel never enforces it; the compiler
        #: requires it for combinational processes.
        self.writes = tuple(writes) if writes is not None else None
        for event in events:
            event._add_static(self)
        if initialize:
            sim._make_runnable(self)

    def _run(self):
        self.fn()

    def _dynamic_wake(self, event, runnable):
        raise SimulationError(
            "method process %r cannot wait dynamically" % self.name
        )


class ThreadProcess(Process):
    """A generator-based process with dynamic waits.

    The generator function is called once at elaboration; each ``yield``
    suspends the process on a wait specification:

    ``int``
        resume after that many kernel time units;
    :class:`Event` or signal
        resume when it fires / changes;
    ``list`` / ``tuple`` / ``set`` of the above
        resume when **any** of them fires.

    Returning (or raising ``StopIteration``) terminates the process.
    """

    __slots__ = ("_gen", "_pending_events")

    def __init__(self, sim, name, generator_fn):
        super().__init__(sim, name)
        self._gen = generator_fn()
        self._pending_events = ()
        sim._make_runnable(self)

    def _run(self):
        try:
            wait_spec = next(self._gen)
        except StopIteration:
            self.terminated = True
            return
        self._suspend_on(wait_spec)

    def _suspend_on(self, wait_spec):
        """Arm the wake-up condition described by *wait_spec*."""
        if isinstance(wait_spec, int):
            if wait_spec < 0:
                raise SimulationError(
                    "thread %r yielded a negative delay %r"
                    % (self.name, wait_spec)
                )
            self.sim._schedule_timed_wake(self, wait_spec)
            return
        if isinstance(wait_spec, (list, tuple, set, frozenset)):
            events = tuple(_as_event(item) for item in wait_spec)
            if not events:
                raise SimulationError(
                    "thread %r yielded an empty wait list" % self.name
                )
        else:
            events = (_as_event(wait_spec),)
        self._pending_events = events
        for event in events:
            event._add_dynamic(self)

    def _dynamic_wake(self, event, runnable):
        for pending in self._pending_events:
            if pending is not event:
                pending._remove_dynamic(self)
        self._pending_events = ()
        runnable.append(self)


def _as_event(trigger):
    """Coerce a wait/sensitivity item into an :class:`Event`.

    Accepts events directly and anything exposing a ``changed`` event
    attribute (signals); this keeps call sites free of adapter noise:
    ``yield self.clk.posedge`` and ``yield some_signal`` both work.
    """
    if isinstance(trigger, Event):
        return trigger
    changed = getattr(trigger, "changed", None)
    if isinstance(changed, Event):
        return changed
    raise TypeError(
        "cannot wait on %r: expected an Event or a Signal" % (trigger,)
    )
