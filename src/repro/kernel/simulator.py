"""The discrete-event simulator.

Implements the classic two-phase (evaluate/update) delta-cycle scheduler
used by SystemC and VHDL simulators:

1. **Evaluate** — run every runnable process.  Processes read committed
   signal values, stage writes, notify events and schedule timed waits.
2. **Update** — commit staged signal values and fire delta-notified
   events; every process woken by those events becomes runnable for the
   next delta cycle.
3. When no process is runnable the simulator advances time to the next
   timed entry (a thread wake-up or a timed event notification).

The scheduler is deterministic: processes are evaluated in the order
they became runnable and timed entries are tie-broken by insertion
sequence number.
"""

from __future__ import annotations

import heapq
import time as _time

from .errors import (
    DeltaCycleLimitError,
    ProcessError,
    SimulationError,
    StateError,
    WallClockDeadlineError,
)
from .events import Event, MethodProcess, ThreadProcess
from .time import format_time


class Simulator:
    """Owner of simulated time, processes, signals and events.

    Typical use::

        sim = Simulator()
        clk = Clock(sim, "clk", period=ns(10))
        dut = MyModule(sim, "dut", clk)
        sim.run(until=us(50))

    Parameters
    ----------
    max_delta_cycles:
        Safety limit on delta cycles within one time step; exceeding it
        raises :class:`DeltaCycleLimitError` (combinational loop guard).
    """

    def __init__(self, max_delta_cycles=10_000):
        self.now = 0
        self.max_delta_cycles = max_delta_cycles
        self._runnable = []
        self._update_queue = []
        self._delta_events = []
        self._timed = []
        self._sequence = 0
        self._signals = []
        self._processes = []
        self._stop_requested = False
        self._running = False
        self.delta_count = 0
        self._observer = None
        self._events = []
        self._state_providers = {}
        self._scheduler = None
        # Reused evaluate/update-phase lists: `_settle_deltas`
        # ping-pongs the runnable list and the update queue with these
        # spares instead of allocating fresh lists every delta cycle.
        self._spare_runnable = []
        self._spare_updates = []

    # -- construction hooks (used by Signal / Module / processes) ------

    def _register_signal(self, signal):
        self._signals.append(signal)

    def _register_event(self, event):
        self._events.append(event)

    def _make_runnable(self, process):
        self._runnable.append(process)

    def _schedule_update(self, signal):
        self._update_queue.append(signal)

    def _schedule_delta_event(self, event):
        self._delta_events.append(event)

    def _next_seq(self):
        self._sequence += 1
        return self._sequence

    def _schedule_timed_event(self, event, delay):
        heapq.heappush(
            self._timed, (self.now + delay, self._next_seq(), "event", event)
        )

    def _schedule_timed_wake(self, process, delay):
        heapq.heappush(
            self._timed, (self.now + delay, self._next_seq(), "wake", process)
        )

    # -- public construction API ---------------------------------------

    def event(self, name="event"):
        """Create a standalone :class:`Event` owned by this simulator."""
        return Event(self, name)

    def add_method(self, fn, sensitivity, name=None, initialize=True,
                   writes=None):
        """Register a method process (combinational callback).

        ``sensitivity`` is an iterable of events or signals; the process
        re-runs whenever any of them fires.  With ``initialize=True``
        (the default, as in SystemC) the process also runs once at
        simulation start so outputs reach a consistent initial state.
        ``writes`` optionally declares the set of signals the process
        may write — metadata the kernel ignores but the
        :mod:`repro.compiled` static analyser requires to levelize
        combinational processes.
        """
        process = MethodProcess(
            self,
            name or getattr(fn, "__qualname__", "method"),
            fn,
            sensitivity,
            initialize=initialize,
            writes=writes,
        )
        self._processes.append(process)
        return process

    def add_thread(self, generator_fn, name=None):
        """Register a thread process from a generator function."""
        process = ThreadProcess(
            self, name or getattr(generator_fn, "__qualname__", "thread"),
            generator_fn,
        )
        self._processes.append(process)
        return process

    # -- pluggable scheduler ---------------------------------------------

    def install_scheduler(self, scheduler):
        """Install an alternative run-loop implementation.

        *scheduler* exposes ``run(sim, until, max_time_steps,
        wall_clock_budget)`` and is offered every :meth:`run` call; it
        either executes the run (mutating the simulator state exactly
        as the built-in loop would, returning ``True``) or declines by
        returning ``False``, in which case the built-in delta-cycle
        loop handles the call.  At most one scheduler is installed at a
        time; the :mod:`repro.compiled` engine is the only current
        implementation.
        """
        if self._scheduler is not None:
            raise SimulationError(
                "a scheduler is already installed; uninstall it first")
        self._scheduler = scheduler

    def uninstall_scheduler(self, scheduler=None):
        """Remove the installed scheduler (no-op when none matches)."""
        if scheduler is None or self._scheduler is scheduler:
            self._scheduler = None

    @property
    def scheduler(self):
        """The installed alternative scheduler, or None."""
        return self._scheduler

    # -- observation -----------------------------------------------------

    def attach_observer(self, observer):
        """Install a kernel observer (at most one at a time).

        The observer receives ``on_process(process, now, seconds)``
        after every process activation (*seconds* is host wall-clock
        time spent inside the process) and ``on_settle(now, deltas)``
        after each time step that executed at least one delta cycle.
        The scheduler only pays the timing overhead while an observer
        is attached; with none, the hot loop is branch-identical to an
        unobserved kernel.
        """
        if self._observer is not None:
            raise SimulationError(
                "an observer is already attached; detach it first")
        self._observer = observer

    def detach_observer(self, observer=None):
        """Remove the attached observer (no-op when none matches)."""
        if observer is None or self._observer is observer:
            self._observer = None

    @property
    def observer(self):
        """The attached kernel observer, or None."""
        return self._observer

    # -- state capture / restore ----------------------------------------

    def register_state(self, path, provider):
        """Register a component state provider under *path*.

        *provider* exposes ``state_dict() -> dict`` (JSON-able) and
        ``load_state_dict(state)``.  Providers are captured and restored
        in registration order, so a provider whose restore depends on
        another's (e.g. a global counter reset) registers after it.
        """
        if path in self._state_providers:
            raise StateError("duplicate state provider path %r" % path)
        if not hasattr(provider, "state_dict") or \
                not hasattr(provider, "load_state_dict"):
            raise StateError(
                "state provider %r must define state_dict() and "
                "load_state_dict()" % path)
        self._state_providers[path] = provider
        return provider

    @property
    def state_providers(self):
        """Mapping of registered state paths to providers (read-only)."""
        return dict(self._state_providers)

    def _assert_quiescent(self, verb):
        if self._running:
            raise StateError("cannot %s while the simulator is running; "
                             "call between run() chunks" % verb)
        if self._runnable or self._update_queue or self._delta_events:
            raise StateError(
                "cannot %s at a non-quiescent point: %d runnable "
                "process(es), %d staged signal(s), %d pending delta "
                "event(s)" % (verb, len(self._runnable),
                              len(self._update_queue),
                              len(self._delta_events)))
        staged = [signal.name for signal in self._signals if signal._staged]
        if staged:
            raise StateError(
                "cannot %s with staged signal writes pending: %s"
                % (verb, ", ".join(staged[:5])))

    def snapshot(self):
        """Capture the full simulation state as a plain JSON-able tree.

        Must be called at a quiescent point — after :meth:`run` has
        returned — where no delta activity is pending; anywhere else
        raises :class:`StateError`.  The tree has a ``kernel`` section
        (time, counters, signal values, the pending timed queue,
        process termination flags) and a ``components`` section with
        one ``state_dict()`` per registered provider.
        """
        self._assert_quiescent("snapshot")
        signals = {}
        drivers = {}
        for signal in self._signals:
            if signal.name in signals:
                raise StateError(
                    "duplicate signal name %r; snapshots need unique "
                    "signal names" % signal.name)
            signals[signal.name] = signal._value
            if signal._next != signal._value:
                # Committed and driven values only diverge under an
                # active injection hook; the healthy driver value must
                # survive the restore or clearing the fault would
                # recommit the corrupted value.
                drivers[signal.name] = signal._next
        timed = []
        for entry_time, seq, kind, payload in sorted(
                self._timed, key=lambda entry: entry[:2]):
            timed.append([entry_time, seq, kind, payload.name])
        kernel = {
            "now": self.now,
            "sequence": self._sequence,
            "delta_count": self.delta_count,
            "signals": signals,
            "drivers": drivers,
            "timed": timed,
            "terminated": sorted(process.name
                                 for process in self._processes
                                 if process.terminated),
        }
        components = {
            path: provider.state_dict()
            for path, provider in self._state_providers.items()
        }
        return {"kernel": kernel, "components": components}

    def restore(self, tree):
        """Load a :meth:`snapshot` tree into this (elaborated) simulator.

        The simulator must have been elaborated identically to the one
        the snapshot was taken from (same signals, processes and state
        providers); mismatches raise :class:`StateError`.  Any pending
        activity — the initial runnables of a fresh elaboration, or the
        stale schedule of a simulator being rewound — is discarded and
        replaced by the snapshot's timed queue.  Thread processes other
        than those re-armed by their owning provider (e.g.
        :class:`~repro.kernel.clock.Clock`) are not repositioned.
        """
        if self._running:
            raise StateError("cannot restore while the simulator is "
                             "running")
        kernel = tree["kernel"]

        # Discard pending activity from elaboration or a previous run.
        self._runnable.clear()
        self._update_queue.clear()
        self._delta_events.clear()
        for event in self._events:
            event._dynamic_waiters.clear()

        # Signals: the snapshot and the elaborated design must agree
        # on the exact signal set.
        by_name = {}
        for signal in self._signals:
            if signal.name in by_name:
                raise StateError("duplicate signal name %r" % signal.name)
            by_name[signal.name] = signal
        snap_signals = kernel["signals"]
        missing = sorted(set(snap_signals) - set(by_name))
        extra = sorted(set(by_name) - set(snap_signals))
        if missing or extra:
            raise StateError(
                "snapshot does not match the elaborated design: "
                "%d signal(s) only in snapshot (%s), %d only in design "
                "(%s)" % (len(missing), ", ".join(missing[:3]),
                          len(extra), ", ".join(extra[:3])))
        for name, value in snap_signals.items():
            signal = by_name[name]
            signal._value = value
            signal._next = value
            signal._staged = False
            signal._inject = None  # providers reinstall active faults
        for name, next_value in kernel.get("drivers", {}).items():
            if name not in by_name:
                raise StateError(
                    "driver value for unknown signal %r" % name)
            by_name[name]._next = next_value

        # Processes: termination flags and dynamic-wait cleanup.
        processes = {}
        ambiguous = set()
        for process in self._processes:
            if process.name in processes:
                ambiguous.add(process.name)
            processes[process.name] = process
        terminated = set(kernel.get("terminated", ()))
        unknown = terminated - set(processes)
        if unknown:
            raise StateError("snapshot terminates unknown process(es): %s"
                             % ", ".join(sorted(unknown)[:5]))
        for process in self._processes:
            process.terminated = process.name in terminated
            if isinstance(process, ThreadProcess):
                process._pending_events = ()

        # Timed queue: resolve names back to processes / events.
        events = {}
        ambiguous_events = set()
        for event in self._events:
            if event.name in events:
                ambiguous_events.add(event.name)
            events[event.name] = event
        timed = []
        for entry_time, seq, kind, name in kernel["timed"]:
            if kind == "wake":
                if name in ambiguous:
                    raise StateError(
                        "timed wake for ambiguous process name %r" % name)
                payload = processes.get(name)
                if payload is None:
                    raise StateError(
                        "timed wake for unknown process %r" % name)
            elif kind == "event":
                if name in ambiguous_events:
                    raise StateError(
                        "timed notify for ambiguous event name %r" % name)
                payload = events.get(name)
                if payload is None:
                    raise StateError(
                        "timed notify for unknown event %r" % name)
            else:
                raise StateError("unknown timed entry kind %r" % kind)
            timed.append((int(entry_time), int(seq), kind, payload))
        heapq.heapify(timed)
        self._timed = timed

        self.now = int(kernel["now"])
        self._sequence = int(kernel["sequence"])
        self.delta_count = int(kernel.get("delta_count", 0))
        self._stop_requested = False

        # Component providers, in registration order.
        components = tree.get("components", {})
        snap_paths = set(components)
        have_paths = set(self._state_providers)
        if snap_paths != have_paths:
            raise StateError(
                "snapshot component set does not match registered "
                "providers: only in snapshot %s; only registered %s"
                % (sorted(snap_paths - have_paths)[:3],
                   sorted(have_paths - snap_paths)[:3]))
        for path, provider in self._state_providers.items():
            provider.load_state_dict(components[path])
        return self.now

    # -- execution ------------------------------------------------------

    def stop(self):
        """Request the current :meth:`run` call to return at the next
        delta boundary (usable from inside processes)."""
        self._stop_requested = True

    def run(self, until=None, max_time_steps=None,
            wall_clock_budget=None):
        """Advance the simulation.

        Parameters
        ----------
        until:
            Absolute kernel time at which to stop.  Timed activity
            scheduled strictly after ``until`` is left pending and the
            clock :attr:`now` is set to ``until``.  ``None`` runs until
            no timed activity remains (event starvation).
        max_time_steps:
            Optional cap on the number of distinct time points
            processed, as an extra runaway guard for tests.
        wall_clock_budget:
            Optional host wall-clock budget in seconds.  Checked
            cooperatively between time steps; exceeding it raises
            :class:`WallClockDeadlineError` so supervised runs honour
            per-run deadlines even without process isolation.

        Returns the kernel time at which the run stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        if self._scheduler is not None:
            self._running = True
            try:
                handled = self._scheduler.run(
                    self, until, max_time_steps, wall_clock_budget)
            finally:
                self._running = False
            if handled:
                return self.now
        self._running = True
        self._stop_requested = False
        try:
            return self._run_interpreted(
                until, max_time_steps, wall_clock_budget)
        finally:
            self._running = False

    def _run_interpreted(self, until, max_time_steps, wall_clock_budget,
                         wall_start=None):
        """The built-in delta-cycle loop.

        Callers hold ``_running`` and have already cleared
        ``_stop_requested``.  An installed scheduler that has to hand a
        partially executed run back (e.g. on encountering a timed entry
        it cannot handle) calls this directly, passing its own
        ``wall_start`` so the wall-clock budget spans the whole run.
        """
        steps = 0
        if wall_start is None and wall_clock_budget is not None:
            wall_start = _time.monotonic()
        # Hot loop: bind the per-iteration lookups once.  ``_timed`` is
        # only rebound by restore(), which cannot run while running.
        settle = self._settle_deltas
        dispatch = self._dispatch_timed
        timed = self._timed
        monotonic = _time.monotonic
        while True:
            settle()
            if self._stop_requested:
                break
            if wall_start is not None:
                elapsed = monotonic() - wall_start
                if elapsed > wall_clock_budget:
                    raise WallClockDeadlineError(
                        elapsed, wall_clock_budget, self.now)
            if not timed:
                break
            next_time = timed[0][0]
            if until is not None and next_time > until:
                self.now = until
                break
            self.now = next_time
            dispatch(next_time)
            steps += 1
            if max_time_steps is not None and steps >= max_time_steps:
                break
        return self.now

    # -- scheduler internals ---------------------------------------------

    def _settle_deltas(self):
        """Run evaluate/update cycles until no process is runnable.

        The runnable list and the update queue each ping-pong between
        two reused list objects (no per-delta list allocation), and the
        update phase is inlined so the per-delta cost is a handful of
        local operations plus the process bodies themselves.
        """
        deltas = 0
        observer = self._observer
        max_deltas = self.max_delta_cycles
        spare = self._spare_runnable
        if spare is self._runnable:  # torn state after a process error
            spare = []
        update_spare = self._spare_updates
        if update_spare is self._update_queue:
            update_spare = []
        while self._runnable or self._update_queue or self._delta_events:
            deltas += 1
            self.delta_count += 1
            if deltas > max_deltas:
                suspects = sorted({process.name
                                   for process in self._runnable
                                   if not process.terminated})
                raise DeltaCycleLimitError(
                    "exceeded %d delta cycles at %s; probable zero-delay "
                    "combinational loop"
                    % (max_deltas, format_time(self.now)),
                    process_names=suspects,
                )
            runnable = self._runnable
            self._runnable = next_runnable = spare
            for process in runnable:
                if process.terminated:
                    continue
                try:
                    if observer is None:
                        process.run_fn()
                    else:
                        started = _time.perf_counter()
                        process.run_fn()
                        observer.on_process(
                            process, self.now,
                            _time.perf_counter() - started)
                except (SimulationError, KeyboardInterrupt):
                    raise
                except Exception as exc:
                    raise ProcessError(process.name, exc) from exc
            runnable.clear()
            spare = runnable
            # Update phase, inlined from _update_phase: commit staged
            # signals, then fire delta-notified events.
            updates = self._update_queue
            if updates:
                self._update_queue = update_spare
                for signal in updates:
                    signal._commit(next_runnable)
                updates.clear()
                update_spare = updates
            if self._delta_events:
                fired, self._delta_events = self._delta_events, []
                for event in fired:
                    event._fire(next_runnable)
            if self._stop_requested:
                break
        self._spare_runnable = spare
        self._spare_updates = update_spare
        if observer is not None and deltas:
            observer.on_settle(self.now, deltas)

    def _update_phase(self):
        """Commit staged signals and fire delta events."""
        next_runnable = self._runnable
        if self._update_queue:
            updates, self._update_queue = self._update_queue, []
            for signal in updates:
                signal._commit(next_runnable)
        if self._delta_events:
            fired, self._delta_events = self._delta_events, []
            for event in fired:
                event._fire(next_runnable)

    def _dispatch_timed(self, at_time):
        """Pop every timed entry scheduled for *at_time*."""
        while self._timed and self._timed[0][0] == at_time:
            _, _, kind, payload = heapq.heappop(self._timed)
            if kind == "wake":
                if not payload.terminated:
                    self._runnable.append(payload)
            else:
                payload._fire(self._runnable)

    # -- introspection ----------------------------------------------------

    @property
    def signals(self):
        """Tuple of every signal registered with this simulator."""
        return tuple(self._signals)

    @property
    def processes(self):
        """Tuple of every process registered with this simulator."""
        return tuple(self._processes)

    def __repr__(self):
        return "Simulator(now=%s, processes=%d, signals=%d)" % (
            format_time(self.now),
            len(self._processes),
            len(self._signals),
        )
