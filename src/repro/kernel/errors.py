"""Exception hierarchy for the simulation kernel.

All kernel-raised exceptions derive from :class:`KernelError` so that
callers can catch simulation problems without masking unrelated bugs.
"""


class KernelError(Exception):
    """Base class for every error raised by :mod:`repro.kernel`."""


class SimulationError(KernelError):
    """An error detected while the simulation is running."""


class DeltaCycleLimitError(SimulationError):
    """Too many delta cycles elapsed without time advancing.

    This almost always indicates a zero-delay combinational feedback
    loop: a set of method processes that keep re-triggering each other
    through signal writes that never reach a fixed point.
    ``process_names`` lists the processes still runnable in the final
    delta cycle — the loop's suspects.
    """

    def __init__(self, message, process_names=()):
        self.process_names = tuple(process_names)
        if self.process_names:
            message += "; runnable processes: %s" \
                % ", ".join(self.process_names)
        super().__init__(message)


class ProcessError(SimulationError):
    """A user process raised an exception during evaluation."""

    def __init__(self, process_name, original):
        super().__init__(
            "process %r raised %s: %s"
            % (process_name, type(original).__name__, original)
        )
        self.process_name = process_name
        self.original = original


class WallClockDeadlineError(SimulationError):
    """The run exceeded its host wall-clock budget.

    Raised cooperatively by :meth:`Simulator.run` between time steps
    when a ``wall_clock_budget`` was given, so a supervised run that is
    making kernel progress — just too slowly — can be classified as a
    timeout without killing the hosting process.  ``elapsed`` and
    ``budget`` are host seconds; ``sim_time`` is the kernel time
    reached when the budget expired.
    """

    def __init__(self, elapsed, budget, sim_time):
        self.elapsed = elapsed
        self.budget = budget
        self.sim_time = sim_time
        super().__init__(
            "wall-clock budget exhausted: %.3f s elapsed against a "
            "%.3f s budget (simulated time reached: %d ps)"
            % (elapsed, budget, sim_time)
        )


class ElaborationError(KernelError):
    """The model is structurally invalid (bad binding, duplicate names, ...)."""


class StateError(KernelError):
    """A snapshot or restore operation is invalid.

    Raised when state is captured at a non-quiescent point (mid-delta,
    staged signal writes pending) or when a snapshot does not match the
    elaborated design it is being restored into (different signal sets,
    unresolvable process or event names, missing state providers).
    """


class TracingError(KernelError):
    """A waveform tracing operation failed."""
