"""Simulation-time units.

The kernel keeps time as an integer count of **picoseconds**.  Integer
time makes event ordering exact (no floating-point ties) and is the same
choice SystemC makes with ``sc_time``'s integral femtosecond counter.

Helper constructors are provided for the usual engineering units::

    from repro.kernel.time import ns, us, MHz

    period = ns(10)          # 10 ns  -> 10_000 ps
    horizon = us(50)         # 50 us  -> 50_000_000 ps
    period = clock_period(MHz(100))   # 10_000 ps
"""

from __future__ import annotations

#: Number of picoseconds per unit.
PS = 1
NS = 1_000
US = 1_000_000
MS = 1_000_000_000
S = 1_000_000_000_000


def ps(value: float) -> int:
    """Return *value* picoseconds as integer kernel time."""
    return int(round(value * PS))


def ns(value: float) -> int:
    """Return *value* nanoseconds as integer kernel time."""
    return int(round(value * NS))


def us(value: float) -> int:
    """Return *value* microseconds as integer kernel time."""
    return int(round(value * US))


def ms(value: float) -> int:
    """Return *value* milliseconds as integer kernel time."""
    return int(round(value * MS))


def seconds(value: float) -> int:
    """Return *value* seconds as integer kernel time."""
    return int(round(value * S))


def Hz(value: float) -> float:
    """Identity helper so call sites read ``clock_period(Hz(1e8))``."""
    return float(value)


def kHz(value: float) -> float:
    """Return *value* kilohertz in hertz."""
    return float(value) * 1e3


def MHz(value: float) -> float:
    """Return *value* megahertz in hertz."""
    return float(value) * 1e6


def GHz(value: float) -> float:
    """Return *value* gigahertz in hertz."""
    return float(value) * 1e9


def clock_period(frequency_hz: float) -> int:
    """Return the clock period, in kernel time, of *frequency_hz*.

    >>> clock_period(MHz(100))
    10000
    """
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive, got %r" % frequency_hz)
    return int(round(S / frequency_hz))


def to_seconds(kernel_time: int) -> float:
    """Convert integer kernel time (ps) to floating-point seconds."""
    return kernel_time / S


def to_ns(kernel_time: int) -> float:
    """Convert integer kernel time (ps) to floating-point nanoseconds."""
    return kernel_time / NS


def to_us(kernel_time: int) -> float:
    """Convert integer kernel time (ps) to floating-point microseconds."""
    return kernel_time / US


def format_time(kernel_time: int) -> str:
    """Render kernel time with an auto-selected engineering unit.

    >>> format_time(10_000)
    '10.000 ns'
    """
    magnitude = abs(kernel_time)
    if magnitude >= S:
        return "%.3f s" % (kernel_time / S)
    if magnitude >= MS:
        return "%.3f ms" % (kernel_time / MS)
    if magnitude >= US:
        return "%.3f us" % (kernel_time / US)
    if magnitude >= NS:
        return "%.3f ns" % (kernel_time / NS)
    return "%d ps" % kernel_time
