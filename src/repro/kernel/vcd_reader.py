"""VCD (value change dump) reader.

The counterpart of :class:`~repro.kernel.trace.VcdTracer`: parses a VCD
file back into per-signal change lists so recorded waveforms can be
analysed offline (see :mod:`repro.power.offline`).  Supports the subset
VcdTracer emits plus the common constructs other simulators produce
(nested scopes, ``x``/``z`` literals, ``$dumpvars`` blocks, real
timestamps in any declared timescale).
"""

from __future__ import annotations

from bisect import bisect_right

_TIMESCALE_UNITS = {
    "s": 10**12, "ms": 10**9, "us": 10**6, "ns": 10**3, "ps": 1,
    "fs": None,  # sub-picosecond: rejected below
}


class VcdParseError(ValueError):
    """Malformed VCD input."""


class VcdSignal:
    """One recorded signal: ordered ``(time_ps, value)`` changes."""

    __slots__ = ("name", "width", "_times", "_values")

    def __init__(self, name, width):
        self.name = name
        self.width = width
        self._times = []
        self._values = []

    def _record(self, time_ps, value):
        if self._times and self._times[-1] == time_ps:
            self._values[-1] = value
        else:
            self._times.append(time_ps)
            self._values.append(value)

    def value_at(self, time_ps):
        """Committed value at *time_ps* (last change at or before it).

        Returns 0 before the first recorded change.
        """
        index = bisect_right(self._times, time_ps)
        if index == 0:
            return 0
        return self._values[index - 1]

    @property
    def changes(self):
        """List of ``(time_ps, value)`` tuples."""
        return list(zip(self._times, self._values))

    @property
    def final_value(self):
        """The last recorded value (0 if never changed)."""
        return self._values[-1] if self._values else 0

    def __len__(self):
        return len(self._times)

    def __repr__(self):
        return "VcdSignal(%r, width=%d, changes=%d)" % (
            self.name, self.width, len(self),
        )


class VcdFile:
    """A parsed VCD: signals by (scoped) name plus file metadata."""

    def __init__(self):
        self.signals = {}
        self.timescale_ps = 1
        self.end_time = 0

    def __getitem__(self, name):
        return self.signals[name]

    def __contains__(self, name):
        return name in self.signals

    def names(self):
        """Sorted signal names present in the dump."""
        return sorted(self.signals)

    def sample_times(self, period_ps, first_edge_ps, t_end=None):
        """Cycle sampling instants: just before each clock edge.

        The power replay reads each cycle's settled values immediately
        before the edge that ends it, mirroring what a clocked monitor
        observes at that edge.
        """
        if t_end is None:
            t_end = self.end_time
        times = []
        edge = first_edge_ps + period_ps
        while edge <= t_end:
            times.append(edge - 1)
            edge += period_ps
        return times


def _parse_value(token, width):
    token = token.lower()
    if token[0] == "b":
        bits = token[1:]
        bits = bits.replace("x", "0").replace("z", "0")
        return int(bits, 2) if bits else 0
    if token in ("x", "z"):
        return 0
    return int(token, 2)


def read_vcd(fh):
    """Parse VCD from the open text file *fh* into a :class:`VcdFile`."""
    vcd = VcdFile()
    by_ident = {}
    scopes = []
    now = 0
    in_header = True

    tokens_iter = iter(fh.read().split("\n"))
    for raw_line in tokens_iter:
        line = raw_line.strip()
        if not line:
            continue
        if in_header:
            if line.startswith("$timescale"):
                body = line
                while "$end" not in body:
                    body += " " + next(tokens_iter).strip()
                spec = body.replace("$timescale", "") \
                    .replace("$end", "").strip()
                magnitude = "".join(ch for ch in spec if ch.isdigit())
                unit = spec[len(magnitude):].strip()
                scale = _TIMESCALE_UNITS.get(unit)
                if scale is None:
                    raise VcdParseError(
                        "unsupported timescale %r" % spec)
                vcd.timescale_ps = int(magnitude or "1") * scale
            elif line.startswith("$scope"):
                parts = line.split()
                scopes.append(parts[2] if len(parts) > 2 else "?")
            elif line.startswith("$upscope"):
                if scopes:
                    scopes.pop()
            elif line.startswith("$var"):
                parts = line.split()
                if len(parts) < 6:
                    raise VcdParseError("malformed $var: %r" % line)
                width = int(parts[2])
                ident = parts[3]
                name = parts[4]
                if parts[5].startswith("[") and parts[5] != "$end":
                    name += parts[5]
                signal = VcdSignal(name, width)
                by_ident[ident] = signal
                if name in vcd.signals:
                    name = ".".join(scopes + [name])
                    signal.name = name
                vcd.signals[name] = signal
            elif line.startswith("$enddefinitions"):
                in_header = False
            continue

        if line.startswith("#"):
            now = int(line[1:]) * vcd.timescale_ps
            vcd.end_time = max(vcd.end_time, now)
        elif line.startswith("$"):
            continue  # $dumpvars / $end wrappers
        elif line[0] in "01xXzZ":
            ident = line[1:]
            signal = by_ident.get(ident)
            if signal is None:
                raise VcdParseError("unknown identifier %r" % ident)
            signal._record(now, _parse_value(line[0], 1))
        elif line[0] in "bB":
            value_token, _, ident = line.partition(" ")
            ident = ident.strip()
            signal = by_ident.get(ident)
            if signal is None:
                raise VcdParseError("unknown identifier %r" % ident)
            signal._record(now, _parse_value(value_token,
                                             signal.width))
        elif line[0] in "rR":
            continue  # real values: not used by this library
        else:
            raise VcdParseError("unexpected line: %r" % line)
    return vcd


def load_vcd(path):
    """Parse the VCD file at *path*."""
    with open(path) as fh:
        return read_vcd(fh)
