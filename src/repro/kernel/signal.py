"""Signals: the kernel's communication primitive.

A :class:`Signal` carries a value between processes with SystemC
evaluate/update semantics: ``write`` stages a *next* value which only
becomes visible in the update phase at the end of the current delta
cycle.  Every process evaluated in a given delta therefore observes a
consistent snapshot, which is what makes register-transfer style models
race-free.

Three events are exposed per signal:

* ``changed`` — the committed value differs from the previous one;
* ``posedge`` — the value went from falsy to truthy;
* ``negedge`` — the value went from truthy to falsy.
"""

from __future__ import annotations

from .events import Event


class Signal:
    """A single-driver, delta-delayed value holder.

    Parameters
    ----------
    sim:
        Owning simulator.
    name:
        Hierarchical diagnostic name.
    init:
        Initial committed value (default ``0``).
    width:
        Bit width used for waveform tracing and activity monitoring of
        integer-valued signals.  ``1`` models a wire; wider values model
        buses.  Purely informational for the kernel itself.
    """

    __slots__ = (
        "sim",
        "name",
        "width",
        "_value",
        "_next",
        "_staged",
        "changed",
        "_posedge",
        "_negedge",
        "_watchers",
        "_inject",
    )

    def __init__(self, sim, name="signal", init=0, width=1):
        self.sim = sim
        self.name = name
        self.width = width
        self._value = init
        self._next = init
        self._staged = False
        self.changed = Event(sim, name + ".changed")
        self._posedge = None
        self._negedge = None
        self._watchers = None
        self._inject = None
        sim._register_signal(self)

    # -- value access -------------------------------------------------

    @property
    def value(self):
        """The committed value visible to every process this delta."""
        return self._value

    def read(self):
        """Return the committed value (alias of :attr:`value`)."""
        return self._value

    def write(self, value):
        """Stage *value* to be committed in the next update phase.

        Writing the already-committed value is a no-op and produces no
        ``changed`` event, matching SystemC's ``sc_signal`` behaviour.
        Such writes are dropped before staging (RTL-style models
        re-drive unchanged outputs every cycle; ~85% of all writes in
        the paper testbench), *except* while an injection hook is armed
        — the hook must see every commit so stateful fault models keep
        their timing.
        """
        if value == self._next and (self._staged or self._inject is None):
            # Unstaged + no hook implies _value == _next (every commit
            # path restores that invariant), so staging would commit a
            # no-change value: skip the update-queue round trip.
            return
        self._next = value
        if not self._staged:
            self._staged = True
            self.sim._schedule_update(self)

    def force(self, value):
        """Immediately overwrite the committed value.

        Only for testbench initialisation *before* the simulation runs;
        no events fire.  Inside processes use :meth:`write`.
        """
        self._value = value
        self._next = value

    # -- fault injection -----------------------------------------------

    def set_injection(self, fn):
        """Install a commit-time corruption hook (fault injection).

        ``fn(value) -> value`` is applied to every staged value before
        it is committed, so *every* observer — processes, watchers,
        tracers — sees the corrupted value, exactly as if the physical
        net were faulty.  The driver keeps writing the healthy value;
        clearing the hook restores it on the next commit.
        """
        self._inject = fn
        # Restage the driver's value so the hook takes effect even when
        # the driver has nothing new to write this cycle.
        self.write(self._next)

    def clear_injection(self):
        """Remove the injection hook and recommit the healthy value."""
        self._inject = None
        # Stage unconditionally: the committed value may still hold the
        # corrupted level, which write()'s no-op fast path cannot see
        # (it compares against the *driven* value).
        if not self._staged:
            self._staged = True
            self.sim._schedule_update(self)

    @property
    def injected(self):
        """True while an injection hook is installed."""
        return self._inject is not None

    # -- edge events (lazily created) ----------------------------------

    @property
    def posedge(self):
        """Event fired when the committed value rises (falsy → truthy)."""
        if self._posedge is None:
            self._posedge = Event(self.sim, self.name + ".posedge")
        return self._posedge

    @property
    def negedge(self):
        """Event fired when the committed value falls (truthy → falsy)."""
        if self._negedge is None:
            self._negedge = Event(self.sim, self.name + ".negedge")
        return self._negedge

    @property
    def watchers(self):
        """Tuple of registered commit watchers (sensitivity metadata).

        Exposed for static analysis; registration stays through
        :meth:`add_watcher`.
        """
        return tuple(self._watchers or ())

    def edge_events(self):
        """The ``(posedge, negedge)`` events created so far.

        Unlike the :attr:`posedge` / :attr:`negedge` properties this
        never *creates* an event — entries are ``None`` when no process
        ever sensitised on that edge, which is exactly what a static
        analyser needs to know.
        """
        return self._posedge, self._negedge

    def add_watcher(self, callback):
        """Register ``callback(signal, old, new)`` to run on each commit.

        Watchers run during the update phase and must not write signals;
        they exist for tracing and activity monitoring.
        """
        if self._watchers is None:
            self._watchers = []
        self._watchers.append(callback)

    # -- kernel hooks ---------------------------------------------------

    def _commit(self, runnable):
        """Commit the staged value and fire edge events into *runnable*."""
        self._staged = False
        old = self._value
        new = self._next
        if self._inject is not None:
            new = self._inject(new)
        if new == old:
            return
        self._value = new
        self.changed._fire(runnable)
        if self._posedge is not None and not old and new:
            self._posedge._fire(runnable)
        if self._negedge is not None and old and not new:
            self._negedge._fire(runnable)
        if self._watchers is not None:
            for callback in self._watchers:
                callback(self, old, new)

    def __repr__(self):
        return "Signal(%r, value=%r)" % (self.name, self._value)

    def __bool__(self):
        raise TypeError(
            "truth-testing a Signal is ambiguous; use sig.value "
            "(signal %r)" % self.name
        )
