"""Value-change-dump (VCD) waveform tracing.

:class:`VcdTracer` records committed value changes of selected signals
into an IEEE-1364 VCD file that can be opened with GTKWave or any other
waveform viewer.  Tracing hooks into :meth:`Signal.add_watcher`, so it
adds no overhead to untraced signals and never perturbs simulation
semantics.
"""

from __future__ import annotations

from .errors import TracingError

_IDENT_ALPHABET = (
    "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    "[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~"
)


def _identifier(index):
    """Return the VCD short identifier for the *index*-th variable."""
    base = len(_IDENT_ALPHABET)
    digits = []
    index += 1
    while index:
        index, rem = divmod(index - 1, base)
        digits.append(_IDENT_ALPHABET[rem])
    return "".join(reversed(digits))


def _format_value(value, width):
    """Render *value* as a VCD scalar or vector token."""
    if width == 1:
        return "%d" % (1 if value else 0)
    if value < 0:
        value &= (1 << width) - 1
    return "b%s " % format(value, "b")


class VcdTracer:
    """Streams signal changes into a VCD file.

    Typical use::

        tracer = VcdTracer(sim, "waves.vcd", timescale="1ps")
        tracer.trace(bus.haddr, "HADDR")
        ...
        sim.run(until=us(4))
        tracer.close()

    The tracer may also be used as a context manager.
    """

    def __init__(self, sim, path, timescale="1ps", date="", comment=""):
        self.sim = sim
        self.path = path
        self._fh = open(path, "w")
        self._vars = []
        self._header_written = False
        self._last_time = None
        self._timescale = timescale
        self._date = date
        self._comment = comment
        self._closed = False

    def trace(self, signal, name=None):
        """Register *signal* for tracing under display name *name*."""
        if self._header_written:
            raise TracingError(
                "cannot add traces after the first value was recorded"
            )
        ident = _identifier(len(self._vars))
        display = name or signal.name
        self._vars.append((signal, display, ident))
        signal.add_watcher(
            lambda sig, old, new, ident=ident: self._record(ident, sig, new)
        )
        return ident

    def _write_header(self):
        fh = self._fh
        if self._date:
            fh.write("$date %s $end\n" % self._date)
        if self._comment:
            fh.write("$comment %s $end\n" % self._comment)
        fh.write("$timescale %s $end\n" % self._timescale)
        fh.write("$scope module top $end\n")
        for signal, display, ident in self._vars:
            safe = display.replace(" ", "_")
            fh.write("$var wire %d %s %s $end\n" % (signal.width, ident, safe))
        fh.write("$upscope $end\n$enddefinitions $end\n")
        fh.write("$dumpvars\n")
        for signal, _, ident in self._vars:
            fh.write(
                "%s%s\n" % (_format_value(signal.value, signal.width), ident)
            )
        fh.write("$end\n")
        self._header_written = True
        self._last_time = 0

    def _record(self, ident, signal, new):
        if self._closed:
            return
        if not self._header_written:
            self._write_header()
        now = self.sim.now
        if now != self._last_time:
            self._fh.write("#%d\n" % now)
            self._last_time = now
        self._fh.write("%s%s\n" % (_format_value(new, signal.width), ident))

    def flush(self):
        """Flush buffered VCD output to disk."""
        if not self._header_written:
            self._write_header()
        self._fh.flush()

    def close(self):
        """Finalise and close the VCD file (idempotent)."""
        if self._closed:
            return
        if not self._header_written:
            self._write_header()
        self._fh.write("#%d\n" % self.sim.now)
        self._fh.close()
        self._closed = True

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False
