"""Clock generation.

A :class:`Clock` owns a 1-bit signal toggled with a fixed period and
duty cycle.  Sequential processes are sensitised on
:attr:`Clock.posedge` (or :attr:`negedge`), exactly like an RTL design.
"""

from __future__ import annotations

from .signal import Signal
from .time import clock_period


class Clock:
    """A free-running clock driving a dedicated signal.

    Parameters
    ----------
    sim:
        Owning simulator.
    name:
        Signal name (the underlying signal is ``<name>``).
    period:
        Clock period in kernel time units (picoseconds).
    duty:
        Fraction of the period spent high, in ``(0, 1)``.
    start_low:
        When ``True`` (default) the first rising edge happens at
        ``t = period - high_time``; the signal starts low so that reset
        and initialisation logic can run before the first edge.
    """

    def __init__(self, sim, name, period, duty=0.5, start_low=True):
        if period <= 0:
            raise ValueError("clock period must be positive: %r" % period)
        if not 0.0 < duty < 1.0:
            raise ValueError("duty cycle must be in (0, 1): %r" % duty)
        self.sim = sim
        self.name = name
        self.period = int(period)
        self.high_time = max(1, int(round(self.period * duty)))
        self.low_time = self.period - self.high_time
        if self.low_time <= 0:
            raise ValueError(
                "duty cycle %r leaves no low time at period %d"
                % (duty, self.period)
            )
        self.signal = Signal(sim, name, init=0, width=1)
        self._start_low = start_low
        self.cycles = 0
        self._process = sim.add_thread(self._drive, name=name + ".driver")

    @classmethod
    def from_frequency(cls, sim, name, frequency_hz, **kwargs):
        """Build a clock from a frequency in hertz (see
        :func:`repro.kernel.time.clock_period`)."""
        return cls(sim, name, clock_period(frequency_hz), **kwargs)

    @property
    def posedge(self):
        """Rising-edge event of the clock signal."""
        return self.signal.posedge

    @property
    def negedge(self):
        """Falling-edge event of the clock signal."""
        return self.signal.negedge

    @property
    def value(self):
        """Current committed clock level (0 or 1)."""
        return self.signal.value

    def _drive(self):
        if self._start_low:
            yield self.low_time
        while True:
            self.signal.write(1)
            self.cycles += 1
            yield self.high_time
            self.signal.write(0)
            yield self.low_time

    # -- checkpoint support ---------------------------------------------

    def state_dict(self):
        """Snapshot state: the edge counter.

        The driver generator's park position is fully determined by the
        committed clock level (high ⇒ the next resume drives the
        falling edge, low ⇒ the rising edge), so it needs no explicit
        serialization — :meth:`load_state_dict` re-arms a fresh
        generator positioned from the restored signal value.
        """
        return {"cycles": self.cycles}

    def load_state_dict(self, state):
        self.cycles = int(state["cycles"])
        if self.signal.value:
            self._process._gen = self._resume_from_high()
        else:
            self._process._gen = self._resume_from_low()

    def _resume_from_high(self):
        """Continuation of :meth:`_drive` parked after a rising edge."""
        while True:
            self.signal.write(0)
            yield self.low_time
            self.signal.write(1)
            self.cycles += 1
            yield self.high_time

    def _resume_from_low(self):
        """Continuation of :meth:`_drive` parked after a falling edge
        (or still before the first rising edge)."""
        while True:
            self.signal.write(1)
            self.cycles += 1
            yield self.high_time
            self.signal.write(0)
            yield self.low_time

    def __repr__(self):
        return "Clock(%r, period=%d ps)" % (self.name, self.period)
