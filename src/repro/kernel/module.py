"""Hierarchical modules.

A :class:`Module` is a named container of signals and processes, the
Python analogue of ``sc_module``.  Subclasses create signals and child
modules in ``__init__`` and register behaviour with :meth:`method` and
:meth:`thread`.
"""

from __future__ import annotations

from .errors import ElaborationError
from .signal import Signal


class Module:
    """Base class for hierarchical hardware models.

    Parameters
    ----------
    sim:
        Owning simulator.
    name:
        Instance name.  Hierarchical names are formed by joining parent
        and child names with ``.`` when a parent is supplied.
    parent:
        Optional enclosing :class:`Module`.
    """

    def __init__(self, sim, name, parent=None):
        self.sim = sim
        self.basename = name
        self.parent = parent
        self.children = []
        if parent is not None:
            if any(child.basename == name for child in parent.children):
                raise ElaborationError(
                    "duplicate child name %r under %r" % (name, parent.name)
                )
            parent.children.append(self)
            self.name = parent.name + "." + name
        else:
            self.name = name

    # -- construction helpers -------------------------------------------

    def signal(self, name, init=0, width=1):
        """Create a signal scoped under this module's name."""
        return Signal(self.sim, self.name + "." + name, init=init, width=width)

    def method(self, fn, sensitivity, name=None, initialize=True,
               writes=None):
        """Register a combinational method process on this module.

        ``writes`` optionally declares the signals the process may
        write (static-analysis metadata, see
        :meth:`~repro.kernel.simulator.Simulator.add_method`).
        """
        return self.sim.add_method(
            fn,
            sensitivity,
            name=self.name + "." + (name or fn.__name__),
            initialize=initialize,
            writes=writes,
        )

    def thread(self, generator_fn, name=None):
        """Register a thread process on this module."""
        return self.sim.add_thread(
            generator_fn, name=self.name + "." + (name or generator_fn.__name__)
        )

    # -- hierarchy walking ------------------------------------------------

    def iter_modules(self):
        """Yield this module and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.iter_modules()

    def find(self, relative_name):
        """Return the descendant whose name relative to this module is
        ``relative_name`` (dot separated), or raise ``KeyError``."""
        target = self.name + "." + relative_name
        for module in self.iter_modules():
            if module.name == target:
                return module
        raise KeyError(relative_name)

    def __repr__(self):
        return "%s(%r)" % (type(self).__name__, self.name)
