"""Signal-level fault injection.

Power emulation and resilience studies treat abnormal operating modes
as first-class measurement targets: what does a glitched control line
or a stuck-at net cost in energy, and does the system survive it?  This
module provides the kernel half of that capability — corruption of
:class:`~repro.kernel.signal.Signal` values at commit time, so every
observer (processes, watchers, tracers, power monitors) sees the
faulty value exactly as if the physical net were broken.

Three fault kinds are provided:

* :class:`StuckAtFault` — a named bit held at 0 or 1 while the fault
  is active (a manufacturing/latch-up defect);
* :class:`BitFlipFault` — a named bit inverted for a single cycle
  (an SEU-style soft error);
* :class:`GlitchFault` — the whole signal forced to a value for a
  short burst of cycles (a transient glitch on the net).

Activation is driven by the :class:`FaultInjector`, a clocked module
that arms each fault inside its ``[start, end)`` time window, either
deterministically or per-cycle with a seeded RNG, so every campaign is
reproducible.
"""

from __future__ import annotations

import random


class SignalFault:
    """Base class: one fault bound to one signal.

    Parameters
    ----------
    signal:
        The :class:`~repro.kernel.signal.Signal` to corrupt.
    start, end:
        Activation window in kernel time (ps).  ``start`` defaults to
        0; ``end=None`` leaves the fault armed forever.
    probability:
        ``None`` (default) arms the fault deterministically for the
        whole window (persistent kinds) or once at window entry
        (transient kinds).  A float ``p`` instead rolls the injector's
        seeded RNG every cycle inside the window and triggers a
        transient burst with probability ``p``.
    """

    #: Cycles a triggered burst lasts; ``None`` means "as long as the
    #: window is open" (persistent fault).
    duration = None

    def __init__(self, signal, start=0, end=None, probability=None):
        self.signal = signal
        self.start = int(start)
        self.end = None if end is None else int(end)
        self.probability = probability
        #: Number of distinct activations so far.
        self.fires = 0
        #: Cycles the fault has actually been corrupting the signal.
        self.active_cycles = 0
        self._remaining = 0
        self._active = False
        self._fired_once = False

    def corrupt(self, value):  # pragma: no cover - interface
        """Return the corrupted version of *value*."""
        raise NotImplementedError

    def in_window(self, now):
        """True when kernel time *now* falls inside the fault window."""
        if now < self.start:
            return False
        return self.end is None or now < self.end

    @property
    def active(self):
        """True while the fault is currently corrupting its signal."""
        return self._active

    def __repr__(self):
        return "%s(%s, window=[%s, %s), fires=%d)" % (
            type(self).__name__, self.signal.name, self.start,
            "inf" if self.end is None else self.end, self.fires,
        )


class StuckAtFault(SignalFault):
    """Bit *bit* of the signal held at *stuck_value* while active."""

    duration = None  # persistent: holds for the whole window

    def __init__(self, signal, bit, stuck_value=0, **kwargs):
        super().__init__(signal, **kwargs)
        self.bit = int(bit)
        self.stuck_value = 1 if stuck_value else 0

    def corrupt(self, value):
        mask = 1 << self.bit
        if self.stuck_value:
            return value | mask
        return value & ~mask


class BitFlipFault(SignalFault):
    """Bit *bit* of the signal inverted for exactly one cycle."""

    duration = 1

    def __init__(self, signal, bit, **kwargs):
        super().__init__(signal, **kwargs)
        self.bit = int(bit)

    def corrupt(self, value):
        return value ^ (1 << self.bit)


class GlitchFault(SignalFault):
    """The whole signal forced to *value* for *cycles* cycles."""

    def __init__(self, signal, value, cycles=1, **kwargs):
        super().__init__(signal, **kwargs)
        self.value = value
        self.duration = max(1, int(cycles))

    def corrupt(self, value):
        return self.value


class FaultInjector:
    """Clocked scheduler applying faults to their signals.

    Not a :class:`~repro.kernel.module.Module` subclass on purpose: the
    injector is test equipment, not part of the design hierarchy, and
    keeping it outside the module tree means adding it never perturbs
    hierarchical names or module walks.

    Parameters
    ----------
    sim:
        Owning simulator.
    clk:
        Clock whose rising edge paces fault evaluation.
    seed:
        Seed for the per-cycle probability rolls; every campaign run
        with the same seed injects the same faults at the same times.
    """

    def __init__(self, sim, clk, seed=0, name="fault_injector"):
        self.sim = sim
        self.clk = clk
        self.name = name
        self.rng = random.Random(seed)
        self.faults = []
        #: Total fault activations across all faults.
        self.injections = 0
        sim.add_method(self._on_clk, [clk.posedge],
                       name=name + ".schedule", initialize=False)

    def add(self, fault):
        """Register *fault* with the scheduler; returns the fault."""
        self.faults.append(fault)
        return fault

    # -- convenience constructors ---------------------------------------

    def stuck_at(self, signal, bit, stuck_value=0, **kwargs):
        """Register a :class:`StuckAtFault` on *signal*."""
        return self.add(StuckAtFault(signal, bit, stuck_value, **kwargs))

    def bit_flip(self, signal, bit, **kwargs):
        """Register a :class:`BitFlipFault` on *signal*."""
        return self.add(BitFlipFault(signal, bit, **kwargs))

    def glitch(self, signal, value, cycles=1, **kwargs):
        """Register a :class:`GlitchFault` on *signal*."""
        return self.add(GlitchFault(signal, value, cycles, **kwargs))

    # -- scheduling -----------------------------------------------------

    def _on_clk(self):
        now = self.sim.now
        dirty = set()
        for fault in self.faults:
            if self._step_fault(fault, now):
                dirty.add(fault.signal)
        for signal in dirty:
            self._refresh_signal(signal)

    def _step_fault(self, fault, now):
        """Advance one fault's activation state; True when it changed."""
        was_active = fault._active
        in_window = fault.in_window(now)

        if fault.duration is None:
            # Persistent fault: active exactly while armed.
            armed = in_window and (
                fault.probability is None
                or fault._active
                or self.rng.random() < fault.probability
            )
            fault._active = armed
        else:
            # Transient fault: bursts of `duration` cycles.
            if fault._remaining > 0:
                fault._remaining -= 1
                fault._active = fault._remaining > 0
            elif in_window and self._should_trigger(fault):
                fault._remaining = fault.duration
                fault._active = True
                fault._fired_once = True
            else:
                fault._active = False

        if fault._active:
            fault.active_cycles += 1
            if not was_active:
                fault.fires += 1
                self.injections += 1
        return fault._active != was_active

    def _should_trigger(self, fault):
        if fault.probability is not None:
            return self.rng.random() < fault.probability
        return not fault._fired_once

    def _refresh_signal(self, signal):
        """Reinstall the composite corruption hook for *signal*."""
        active = [fault for fault in self.faults
                  if fault.signal is signal and fault._active]
        if not active:
            signal.clear_injection()
        elif len(active) == 1:
            signal.set_injection(active[0].corrupt)
        else:
            def composite(value, _chain=tuple(active)):
                for fault in _chain:
                    value = fault.corrupt(value)
                return value
            signal.set_injection(composite)

    def active_faults(self):
        """The faults currently corrupting their signals."""
        return [fault for fault in self.faults if fault._active]

    # -- checkpoint support ---------------------------------------------

    def state_dict(self):
        """Scheduler + per-fault activation state.

        Fault states are positional: the restored injector must carry
        the same fault list (same kinds, same order) as the one the
        snapshot was taken from — guaranteed when both are built from
        the same :class:`~repro.replay.trace.RunSpec`.
        """
        from ..state.rng import rng_state
        return {
            "rng": rng_state(self.rng),
            "injections": self.injections,
            "faults": [
                {
                    "fires": fault.fires,
                    "active_cycles": fault.active_cycles,
                    "remaining": fault._remaining,
                    "active": fault._active,
                    "fired_once": fault._fired_once,
                }
                for fault in self.faults
            ],
        }

    def load_state_dict(self, state):
        from ..state.rng import load_rng_state
        load_rng_state(self.rng, state["rng"])
        self.injections = state["injections"]
        fault_states = state["faults"]
        if len(fault_states) != len(self.faults):
            raise ValueError(
                "checkpoint has %d fault states, injector has %d faults"
                % (len(fault_states), len(self.faults)))
        signals = set()
        for fault, fault_state in zip(self.faults, fault_states):
            fault.fires = fault_state["fires"]
            fault.active_cycles = fault_state["active_cycles"]
            fault._remaining = fault_state["remaining"]
            fault._active = fault_state["active"]
            fault._fired_once = fault_state["fired_once"]
            signals.add(fault.signal)
        # Reinstall the corruption hooks directly: the kernel restore
        # cleared every signal's _inject, and the committed values
        # already reflect any active corruption, so going through
        # set_injection (which restages the driver value) would corrupt
        # a second time for non-idempotent faults such as BitFlipFault.
        for signal in signals:
            active = [fault for fault in self.faults
                      if fault.signal is signal and fault._active]
            if not active:
                signal._inject = None
            elif len(active) == 1:
                signal._inject = active[0].corrupt
            else:
                def composite(value, _chain=tuple(active)):
                    for fault in _chain:
                        value = fault.corrupt(value)
                    return value
                signal._inject = composite

    def __repr__(self):
        return "FaultInjector(faults=%d, injections=%d)" % (
            len(self.faults), self.injections,
        )
