"""An event-driven, delta-cycle simulation kernel (SystemC substitute).

The kernel provides everything the AMBA AHB model and the power
methodology need from SystemC 2.0 / IPsim:

* :class:`Simulator` — evaluate/update delta-cycle scheduler;
* :class:`Signal` — delta-delayed values with edge events;
* :class:`Module` — hierarchical containers of signals and processes;
* :class:`Clock` — free-running clock generator;
* :class:`Event` — notifiable synchronisation points;
* :class:`VcdTracer` — IEEE-1364 waveform dumping;
* :mod:`repro.kernel.time` — integer picosecond time helpers.
"""

from .clock import Clock
from .errors import (
    DeltaCycleLimitError,
    ElaborationError,
    KernelError,
    ProcessError,
    SimulationError,
    StateError,
    TracingError,
    WallClockDeadlineError,
)
from .events import Event, MethodProcess, ThreadProcess
from .faults import (
    BitFlipFault,
    FaultInjector,
    GlitchFault,
    SignalFault,
    StuckAtFault,
)
from .module import Module
from .signal import Signal
from .simulator import Simulator
from .stats import ProcessProfile, SimulationProfiler
from .trace import VcdTracer
from .vcd_reader import VcdFile, VcdParseError, VcdSignal, load_vcd, read_vcd
from .time import (
    GHz,
    Hz,
    MHz,
    clock_period,
    format_time,
    kHz,
    ms,
    ns,
    ps,
    seconds,
    to_ns,
    to_seconds,
    to_us,
    us,
)

__all__ = [
    "BitFlipFault",
    "Clock",
    "DeltaCycleLimitError",
    "ElaborationError",
    "Event",
    "FaultInjector",
    "GHz",
    "GlitchFault",
    "Hz",
    "KernelError",
    "MHz",
    "MethodProcess",
    "Module",
    "SignalFault",
    "StuckAtFault",
    "ProcessError",
    "ProcessProfile",
    "SimulationProfiler",
    "Signal",
    "SimulationError",
    "Simulator",
    "StateError",
    "ThreadProcess",
    "TracingError",
    "WallClockDeadlineError",
    "VcdFile",
    "VcdParseError",
    "VcdSignal",
    "VcdTracer",
    "clock_period",
    "load_vcd",
    "read_vcd",
    "format_time",
    "kHz",
    "ms",
    "ns",
    "ps",
    "seconds",
    "to_ns",
    "to_seconds",
    "to_us",
    "us",
]
