"""Simulation profiling.

:class:`SimulationProfiler` wraps a simulator's processes to count
activations and measure per-process wall-clock time, so model authors
can see where simulation time goes — the observability behind the
paper's concern that instrumentation "does not have to ... [impact]
the simulation speed" more than necessary.

The profiler is strictly opt-in and adds one function-call layer per
process activation while enabled.
"""

from __future__ import annotations

import time


class ProcessProfile:
    """Activation statistics of one process."""

    __slots__ = ("name", "activations", "total_seconds")

    def __init__(self, name):
        self.name = name
        self.activations = 0
        self.total_seconds = 0.0

    @property
    def mean_seconds(self):
        """Average wall-clock seconds per activation."""
        if not self.activations:
            return 0.0
        return self.total_seconds / self.activations

    def __repr__(self):
        return "ProcessProfile(%r, n=%d, total=%.4fs)" % (
            self.name, self.activations, self.total_seconds,
        )


class SimulationProfiler:
    """Per-process activation/time profiler for a simulator.

    Usage::

        profiler = SimulationProfiler(sim)
        profiler.install()
        sim.run(until=us(50))
        profiler.uninstall()
        print(profiler.report())
    """

    def __init__(self, simulator):
        self.simulator = simulator
        self.profiles = {}
        self._original_runs = {}
        self._installed = False
        self._start_deltas = None
        self._start_time = None

    def install(self):
        """Start profiling every currently-registered process."""
        if self._installed:
            raise RuntimeError("profiler already installed")
        for process in self.simulator.processes:
            profile = self.profiles.setdefault(
                process.name, ProcessProfile(process.name))
            self._wrap(process, profile)
        self._installed = True
        self._start_deltas = self.simulator.delta_count
        self._start_time = time.perf_counter()
        return self

    def _wrap(self, process, profile):
        original = process.run_fn
        self._original_runs[id(process)] = (process, original)

        def wrapped():
            begin = time.perf_counter()
            try:
                original()
            finally:
                profile.total_seconds += time.perf_counter() - begin
                profile.activations += 1

        process.run_fn = wrapped

    def uninstall(self):
        """Stop profiling and restore the original process bodies."""
        if not self._installed:
            return
        for process, original in self._original_runs.values():
            process.run_fn = original
        self._original_runs.clear()
        self._installed = False

    # -- results ------------------------------------------------------

    @property
    def total_activations(self):
        """Sum of activations across all profiled processes."""
        return sum(profile.activations
                   for profile in self.profiles.values())

    @property
    def deltas_observed(self):
        """Delta cycles executed while the profiler was active."""
        return self.simulator.delta_count - (self._start_deltas or 0)

    def hottest(self, count=10):
        """The *count* most time-consuming processes, descending."""
        return sorted(self.profiles.values(),
                      key=lambda profile: -profile.total_seconds)[:count]

    def report(self, count=15):
        """Formatted profile table."""
        lines = ["%-48s %12s %14s %12s"
                 % ("process", "activations", "total [ms]",
                    "mean [us]")]
        for profile in self.hottest(count):
            lines.append("%-48s %12d %14.3f %12.3f" % (
                profile.name[:48], profile.activations,
                profile.total_seconds * 1e3,
                profile.mean_seconds * 1e6,
            ))
        lines.append("deltas: %d, activations: %d"
                     % (self.deltas_observed, self.total_activations))
        return "\n".join(lines)

    def __enter__(self):
        return self.install()

    def __exit__(self, exc_type, exc, tb):
        self.uninstall()
        return False
