"""Simulation profiling.

:class:`SimulationProfiler` observes a simulator's processes to count
activations and measure per-process wall-clock time, so model authors
can see where simulation time goes — the observability behind the
paper's concern that instrumentation "does not have to ... [impact]
the simulation speed" more than necessary.

Since the telemetry layer landed, the profiler is a thin facade over a
:class:`repro.telemetry.MetricsRegistry`: each process's figures live
in the ``sim_process_activations_total`` / ``sim_process_seconds_total``
labelled counters (pass your own ``registry`` to share series with a
:class:`repro.telemetry.Telemetry` export), and the kernel-side
mechanism is the same :meth:`Simulator.attach_observer` hook the
telemetry bundle uses.  The profiler is strictly opt-in and the kernel
pays the timing overhead only while it is installed.
"""

from __future__ import annotations


class ProcessProfile:
    """Activation statistics of one process (a live view onto the
    backing registry's counter series)."""

    __slots__ = ("name", "_activations", "_seconds")

    def __init__(self, name, activations_child, seconds_child):
        self.name = name
        self._activations = activations_child
        self._seconds = seconds_child

    @property
    def activations(self):
        return int(self._activations.value)

    @property
    def total_seconds(self):
        return self._seconds.value

    @property
    def mean_seconds(self):
        """Average wall-clock seconds per activation."""
        if not self.activations:
            return 0.0
        return self.total_seconds / self.activations

    def __repr__(self):
        return "ProcessProfile(%r, n=%d, total=%.4fs)" % (
            self.name, self.activations, self.total_seconds,
        )


class SimulationProfiler:
    """Per-process activation/time profiler for a simulator.

    Usage::

        profiler = SimulationProfiler(sim)
        profiler.install()
        sim.run(until=us(50))
        profiler.uninstall()
        print(profiler.report())

    Parameters
    ----------
    simulator:
        The :class:`Simulator` to observe.
    registry:
        Optional :class:`repro.telemetry.MetricsRegistry` backing the
        per-process counters; a private one is created by default.
        Sharing a registry with a telemetry bundle folds the profile
        into the same metrics export.
    """

    def __init__(self, simulator, registry=None):
        from ..telemetry.registry import MetricsRegistry

        self.simulator = simulator
        self.registry = (registry if registry is not None
                         else MetricsRegistry())
        self.profiles = {}
        self._activations_metric = self.registry.counter(
            "sim_process_activations_total", "Process activations",
            labelnames=("process",))
        self._seconds_metric = self.registry.counter(
            "sim_process_seconds_total",
            "Wall-clock seconds inside each process",
            labelnames=("process",))
        self._installed = False
        self._start_deltas = None

    def _profile_for(self, name):
        profile = self.profiles.get(name)
        if profile is None:
            profile = self.profiles[name] = ProcessProfile(
                name,
                self._activations_metric.labels(process=name),
                self._seconds_metric.labels(process=name),
            )
        return profile

    def install(self):
        """Attach to the kernel and start profiling every process."""
        if self._installed:
            raise RuntimeError("profiler already installed")
        self.simulator.attach_observer(self)
        for process in self.simulator.processes:
            self._profile_for(process.name)
        self._installed = True
        self._start_deltas = self.simulator.delta_count
        return self

    def uninstall(self):
        """Detach from the kernel (idempotent); profiles persist."""
        if not self._installed:
            return
        self.simulator.detach_observer(self)
        self._installed = False

    # -- kernel observer interface -------------------------------------

    def on_process(self, process, now, seconds):
        profile = self._profile_for(process.name)
        profile._activations.inc()
        profile._seconds.inc(seconds)

    def on_settle(self, now, deltas):
        pass

    # -- results ------------------------------------------------------

    @property
    def total_activations(self):
        """Sum of activations across all profiled processes."""
        return sum(profile.activations
                   for profile in self.profiles.values())

    @property
    def deltas_observed(self):
        """Delta cycles executed while the profiler was active."""
        return self.simulator.delta_count - (self._start_deltas or 0)

    def hottest(self, count=10):
        """The *count* most time-consuming processes, descending."""
        return sorted(self.profiles.values(),
                      key=lambda profile: -profile.total_seconds)[:count]

    def report(self, count=15):
        """Formatted profile table."""
        lines = ["%-48s %12s %14s %12s"
                 % ("process", "activations", "total [ms]",
                    "mean [us]")]
        for profile in self.hottest(count):
            lines.append("%-48s %12d %14.3f %12.3f" % (
                profile.name[:48], profile.activations,
                profile.total_seconds * 1e3,
                profile.mean_seconds * 1e6,
            ))
        lines.append("deltas: %d, activations: %d"
                     % (self.deltas_observed, self.total_activations))
        return "\n".join(lines)

    def snapshot(self):
        """The backing registry's snapshot (metrics-export form)."""
        return self.registry.snapshot()

    def __enter__(self):
        return self.install()

    def __exit__(self, exc_type, exc, tb):
        self.uninstall()
        return False
