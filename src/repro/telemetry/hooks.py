"""Hook points wiring the tracer/registry into the simulation stack.

Three instrumentation layers, each strictly observe-only:

* :class:`KernelTelemetry` — a kernel observer (see
  :meth:`repro.kernel.Simulator.attach_observer`): per-process
  activation spans with wall-clock durations, delta-cycles-per-step
  statistics, delta-storm markers, and optional per-signal commit
  markers;
* :class:`BusTelemetry` — a clocked module deriving each master's
  transaction lifecycle (request → grant → address/data → response)
  from the committed bus signals, plus arbiter tenure spans,
  wait-state and RETRY/SPLIT/ERROR annotations and per-transaction
  latency metrics;
* :class:`PowerTracer` — attached to a :class:`~repro.power.PowerFsm`:
  power-FSM state segments and per-block energy counter samples.

:class:`Telemetry` bundles a registry and a tracer and installs all
three onto an assembled :class:`~repro.workloads.AhbSystem`.  A
disabled bundle installs **nothing** — the simulation runs the exact
PR-3 code path, which is the runtime analogue of compiling the paper's
``POWERTEST`` instrumentation out.
"""

from __future__ import annotations

from ..amba.types import HRESP, HTRANS
from ..kernel import Module
from .registry import (
    CYCLE_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
)
from .tracing import NULL_TRACER, Tracer

#: Delta cycles within one time step beyond which the kernel observer
#: flags a "delta-storm" (zero-delay feedback churn worth seeing).
STORM_THRESHOLD = 100

_DELTA_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
                  512.0)

#: Per-cycle energies are ~three orders below per-run totals.
_CYCLE_ENERGY_BUCKETS = tuple(
    mantissa * 10.0 ** exponent
    for exponent in range(-15, -9)
    for mantissa in (1.0, 3.0)
)


class KernelTelemetry:
    """Kernel observer: process activations, delta statistics, storms.

    Installed via ``sim.attach_observer(kernel_telemetry)``; the
    simulator only pays for instrumentation while an observer is
    attached.
    """

    def __init__(self, tracer, registry, storm_threshold=STORM_THRESHOLD):
        self.tracer = tracer
        self.registry = registry
        self.storm_threshold = storm_threshold
        self._scheduler = tracer.track("kernel", "scheduler")
        self._process_state = {}
        activations = registry.counter(
            "sim_process_activations_total",
            "Process activations", labelnames=("process",))
        seconds = registry.counter(
            "sim_process_seconds_total",
            "Wall-clock seconds inside each process",
            labelnames=("process",))
        self._activations_metric = activations
        self._seconds_metric = seconds
        self._steps = registry.counter(
            "sim_time_steps_total", "Distinct time points processed")
        self._deltas = registry.counter(
            "sim_delta_cycles_total", "Delta cycles executed")
        self._storms = registry.counter(
            "sim_delta_storms_total",
            "Time steps exceeding the delta-storm threshold")
        self._delta_hist = registry.histogram(
            "sim_deltas_per_step", "Delta cycles per time step",
            buckets=_DELTA_BUCKETS)
        self._signal_commits = registry.counter(
            "sim_signal_commits_total", "Watched signal commits",
            labelnames=("signal",))

    def _state_for(self, process):
        name = process.name
        state = self._process_state.get(name)
        if state is None:
            state = (
                self.tracer.track("kernel", name),
                self._activations_metric.labels(process=name),
                self._seconds_metric.labels(process=name),
            )
            self._process_state[name] = state
        return state

    # -- Simulator observer interface -----------------------------------

    def on_process(self, process, now, seconds):
        """One process activation took *seconds* of host time."""
        track, activations, total_seconds = self._state_for(process)
        activations.inc()
        total_seconds.inc(seconds)
        track.begin(process.name, now, cat="kernel.process")
        track.end(now, args={"wall_us": seconds * 1e6})

    def on_settle(self, now, deltas):
        """One time step settled after *deltas* delta cycles."""
        self._steps.inc()
        self._deltas.inc(deltas)
        self._delta_hist.observe(deltas)
        if deltas >= self.storm_threshold:
            self._storms.inc()
            self._scheduler.instant("delta-storm", now,
                                    cat="kernel.storm",
                                    args={"deltas": deltas})

    # -- optional signal-commit hooks -----------------------------------

    def watch_signals(self, sim, signals):
        """Emit an instant event (and count) per commit of *signals*.

        Expensive at high toggle rates — opt in per signal.
        """
        track = self.tracer.track("kernel", "signals")
        for signal in signals:
            counter = self._signal_commits.labels(signal=signal.name)

            def watcher(signal, old, new, _track=track,
                        _counter=counter, _sim=sim):
                _counter.inc()
                _track.instant(signal.name, _sim.now,
                               cat="kernel.signal",
                               args={"old": old, "new": new})

            signal.add_watcher(watcher)


class BusTelemetry(Module):
    """Per-master AHB transaction-lifecycle tracing.

    Derives, from the committed bus signals each clock edge, which of
    four lifecycle states every active master occupies:

    ``request``
        ``HBUSREQ`` asserted, bus owned by someone else;
    ``granted``
        address-phase owner but driving IDLE (grant received, transfer
        not started — the paper's arbitration/handover territory);
    ``transfer``
        address-phase owner driving NONSEQ/SEQ/BUSY;
    *(no span)*
        idle.

    State changes open/close spans on the master's track; wait states
    and non-OKAY responses become instant annotations; completed
    transactions (via the master's ``on_complete`` hook) record
    latency/retry metrics and a summary marker.
    """

    def __init__(self, sim, name, clk, bus, masters, tracer, registry,
                 parent=None):
        super().__init__(sim, name, parent=parent)
        self.bus = bus
        self.masters = list(masters)
        self.tracer = tracer
        self._arbiter_track = tracer.track("bus", "arbiter")
        self._response_track = tracer.track("bus", "responses")
        self._owner = None
        self._clk_period = clk.period

        self._wait_counter = registry.counter(
            "bus_wait_cycles_total", "HREADY-low cycles seen by the "
            "address-phase owner", labelnames=("master",))
        self._response_counter = registry.counter(
            "bus_responses_total", "First cycles of non-OKAY responses",
            labelnames=("response",))
        self._handovers = registry.counter(
            "bus_handovers_total", "Address-phase ownership changes")
        self._txn_counter = registry.counter(
            "bus_txns_total", "Completed transactions",
            labelnames=("master", "kind"))
        self._txn_errors = registry.counter(
            "bus_txn_errors_total", "Transactions completed with error",
            labelnames=("master",))
        self._txn_retries = registry.counter(
            "bus_txn_retries_total", "RETRY/SPLIT re-issues",
            labelnames=("master",))
        self._latency_hist = registry.histogram(
            "bus_txn_latency_cycles", "Issue-to-completion latency",
            labelnames=("master",), buckets=CYCLE_BUCKETS)

        self._state = {}
        for index, master in enumerate(self.masters):
            master_name = "master%d" % index
            self._state[index] = {
                "name": master_name,
                "track": tracer.track("bus", master_name),
                "lifecycle": None,
                "wait": self._wait_counter.labels(master=master_name),
            }
            master.on_complete.append(
                self._transaction_hook(index, master_name))

        self.method(self._on_clk, [clk.posedge], name="monitor",
                    initialize=False)

    def _transaction_hook(self, index, master_name):
        track = self.tracer.track("bus", master_name + ".txns")
        read_counter = self._txn_counter.labels(master=master_name,
                                                kind="read")
        write_counter = self._txn_counter.labels(master=master_name,
                                                 kind="write")
        errors = self._txn_errors.labels(master=master_name)
        retries = self._txn_retries.labels(master=master_name)
        latency = self._latency_hist.labels(master=master_name)

        def on_complete(txn):
            (write_counter if txn.write else read_counter).inc()
            if txn.error:
                errors.inc()
            if txn.retries:
                retries.inc(txn.retries)
            args = {"addr": "0x%x" % txn.address, "beats": txn.beats,
                    "retries": txn.retries, "error": txn.error}
            if txn.issue_time is not None \
                    and txn.complete_time is not None:
                cycles = ((txn.complete_time - txn.issue_time)
                          / self._clk_period)
                latency.observe(cycles)
                args["latency_cycles"] = round(cycles, 1)
            track.instant("write" if txn.write else "read",
                          self.sim.now, cat="bus.txn", args=args)

        return on_complete

    def _on_clk(self):
        bus = self.bus
        now = self.sim.now
        owner = bus.hmaster.value
        htrans = bus.htrans.value
        hready = bus.hready.value
        hresp = bus.hresp.value

        if owner != self._owner:
            if self._owner is not None:
                self._arbiter_track.end(now)
                self._handovers.inc()
            self._arbiter_track.begin("master%d" % owner, now,
                                      cat="bus.tenure")
            self._owner = owner

        if not hready and hresp != int(HRESP.OKAY):
            response = HRESP(hresp).name
            self._response_counter.labels(response=response).inc()
            self._response_track.instant(response, now,
                                         cat="bus.response",
                                         args={"hmaster": owner})

        for index, state in self._state.items():
            if index == owner:
                lifecycle = ("granted" if htrans == int(HTRANS.IDLE)
                             else "transfer")
                if not hready:
                    state["wait"].inc()
                    state["track"].instant("wait", now, cat="bus.wait")
            elif self.masters[index].port.hbusreq.value:
                lifecycle = "request"
            else:
                lifecycle = None
            if lifecycle != state["lifecycle"]:
                if state["lifecycle"] is not None:
                    state["track"].end(now)
                if lifecycle is not None:
                    state["track"].begin(lifecycle, now,
                                         cat="bus.master")
                state["lifecycle"] = lifecycle


class PowerTracer:
    """Power-FSM hook: state segments plus per-block energy samples.

    Attached as ``power_fsm.tracer``; the FSM calls :meth:`on_step`
    once per cycle (one ``None`` check per cycle when detached).
    """

    def __init__(self, tracer, registry, counter_every=1):
        self._fsm_track = tracer.track("power", "power_fsm")
        self._energy_track = tracer.track("power", "energy")
        self.counter_every = max(0, int(counter_every))
        self._state = None
        self._tick = 0
        self._block_energy = registry.counter(
            "power_energy_j_total", "Accumulated energy per block",
            labelnames=("block",))
        self._block_children = {}
        self._cycles = registry.counter(
            "power_cycles_total", "Cycles classified by the power FSM")
        self._cycle_hist = registry.histogram(
            "power_cycle_energy_j", "Per-cycle total energy",
            buckets=_CYCLE_ENERGY_BUCKETS)
        self._instructions = registry.counter(
            "power_instructions_total", "Executed bus instructions",
            labelnames=("instruction",))
        self._instruction_children = {}

    def on_step(self, time_ps, mode, instruction, block_energies,
                total, response):
        if mode is not self._state:
            if self._state is not None:
                self._fsm_track.end(time_ps)
            self._fsm_track.begin(mode.name, time_ps, cat="power.fsm")
            self._state = mode
        self._cycles.inc()
        self._cycle_hist.observe(total)
        child = self._instruction_children.get(instruction)
        if child is None:
            child = self._instructions.labels(instruction=instruction)
            self._instruction_children[instruction] = child
        child.inc()
        for block, energy in block_energies.items():
            block_child = self._block_children.get(block)
            if block_child is None:
                block_child = self._block_energy.labels(block=block)
                self._block_children[block] = block_child
            block_child.inc(energy)
        if self.counter_every and self._tick % self.counter_every == 0:
            self._energy_track.counter(
                "energy_j", time_ps,
                {block: energy
                 for block, energy in block_energies.items()})
        self._tick += 1


class Telemetry:
    """A registry + tracer bundle and its system wiring.

    Parameters
    ----------
    enabled:
        ``False`` builds the null bundle: no hooks are installed and
        the simulation runs the uninstrumented code path.
    registry, tracer:
        Pre-built backends (fresh ones are created by default).
    trace_kernel, trace_bus, trace_power:
        Which instrumentation layers :meth:`instrument` installs.
    trace_signals:
        Bus signal attribute names (``"htrans"``, ``"hready"`` …) to
        watch at commit granularity (off by default — expensive).
    storm_threshold, energy_counter_every, max_events:
        Tuning knobs forwarded to the hook layers.
    """

    def __init__(self, enabled=True, registry=None, tracer=None,
                 trace_kernel=True, trace_bus=True, trace_power=True,
                 trace_signals=(), storm_threshold=STORM_THRESHOLD,
                 energy_counter_every=1, max_events=2_000_000):
        self.enabled = enabled
        if enabled:
            self.registry = (registry if registry is not None
                             else MetricsRegistry())
            self.tracer = (tracer if tracer is not None
                           else Tracer(max_events=max_events))
        else:
            self.registry = NULL_REGISTRY
            self.tracer = NULL_TRACER
        self.trace_kernel = trace_kernel
        self.trace_bus = trace_bus
        self.trace_power = trace_power
        self.trace_signals = tuple(trace_signals)
        self.storm_threshold = storm_threshold
        self.energy_counter_every = energy_counter_every
        self.kernel = None
        self.bus = None
        self.power = None
        self._collect_hooks = []
        self._system = None

    @classmethod
    def disabled(cls):
        """The null bundle — same API, zero installed hooks."""
        return cls(enabled=False)

    # -- wiring ---------------------------------------------------------

    def instrument(self, system):
        """Install the enabled layers onto an assembled AhbSystem."""
        if not self.enabled:
            return self
        if self._system is not None:
            raise RuntimeError("telemetry already instruments a system")
        self._system = system
        if self.trace_kernel:
            self.kernel = KernelTelemetry(
                self.tracer, self.registry,
                storm_threshold=self.storm_threshold)
            system.sim.attach_observer(self.kernel)
            if self.trace_signals:
                self.kernel.watch_signals(
                    system.sim,
                    [getattr(system.bus, name)
                     for name in self.trace_signals])
        if self.trace_bus:
            self.bus = BusTelemetry(
                system.sim, "bus_telemetry", system.clk, system.bus,
                system.masters, self.tracer, self.registry)
        if self.trace_power and system.monitor is not None:
            self.power = PowerTracer(
                self.tracer, self.registry,
                counter_every=self.energy_counter_every)
            system.monitor.fsm.tracer = self.power
        self.add_collect(self._collect_system)
        return self

    def add_collect(self, hook):
        """Register a zero-argument callable run before snapshots."""
        self._collect_hooks.append(hook)

    def _collect_system(self):
        system = self._system
        if system is None:
            return
        registry = self.registry
        registry.gauge("run_sim_time_ps",
                       "Kernel time reached").set(system.sim.now)
        registry.gauge("run_txns_completed",
                       "Transactions completed").set(
            system.transactions_completed())
        registry.gauge("run_txns_failed",
                       "Transactions failed").set(
            system.transactions_failed())
        ledger = system.ledger
        if ledger is not None:
            registry.gauge("run_total_energy_j",
                           "Accounted bus energy").set(
                ledger.total_energy)
            registry.gauge("run_cycles",
                           "Cycles charged by the ledger").set(
                ledger.cycles)

    def collect(self):
        """Run every registered collect hook (gauge refresh)."""
        for hook in self._collect_hooks:
            hook()

    def finalize(self):
        """Close open spans at the current kernel time and refresh
        gauges; call once after the run, before exporting."""
        if not self.enabled:
            return self
        now = self._system.sim.now if self._system is not None else 0
        self.tracer.finish(now)
        self.collect()
        return self

    def snapshot(self):
        """Refresh gauges and snapshot the registry."""
        self.collect()
        return self.registry.snapshot()

    def summary(self):
        """Renderable metrics table (see
        :func:`repro.telemetry.aggregate.metrics_table`)."""
        from .aggregate import metrics_table
        return metrics_table(self.snapshot())
