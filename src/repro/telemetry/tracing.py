"""Simulation-time tracing with Chrome-trace / Perfetto export.

A :class:`Tracer` records spans (``B``/``E`` pairs), instant events and
counter samples on named tracks.  Every event is stamped with **both**
time bases: the kernel's simulated time (picoseconds) and host
wall-clock time (nanoseconds since the tracer was created), so the same
recording can be rendered as a simulated-time timeline (bus and power
behaviour) or a wall-clock profile (where the host CPU went).

Export formats:

* :meth:`Tracer.write_chrome` — Chrome trace-event JSON, loadable in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``;
* :meth:`Tracer.write_jsonl` — one compact JSON object per line for
  streaming consumers.

:func:`validate_chrome_trace` re-parses an exported file and checks
the structural invariants (valid JSON, non-decreasing ``ts``, every
``E`` matched to a ``B`` on its track) — used by tests and CI.
"""

from __future__ import annotations

import json
import time as _time


class TraceEvent:
    """One recorded event."""

    __slots__ = ("ts_ps", "wall_ns", "phase", "pid", "tid", "name",
                 "cat", "args")

    def __init__(self, ts_ps, wall_ns, phase, pid, tid, name, cat,
                 args):
        self.ts_ps = ts_ps
        self.wall_ns = wall_ns
        self.phase = phase
        self.pid = pid
        self.tid = tid
        self.name = name
        self.cat = cat
        self.args = args

    def __repr__(self):
        return "TraceEvent(%s %r @%d ps on %s/%s)" % (
            self.phase, self.name, self.ts_ps, self.pid, self.tid)


class Track:
    """One (process, thread) lane of a tracer."""

    __slots__ = ("tracer", "pid", "tid", "_open")

    def __init__(self, tracer, pid, tid):
        self.tracer = tracer
        self.pid = pid
        self.tid = tid
        self._open = []  # names of open spans (for finish/validation)

    def begin(self, name, ts_ps, cat="span", args=None):
        """Open a span at simulated time *ts_ps*."""
        self._open.append(name)
        self.tracer._emit("B", self, name, ts_ps, cat, args)

    def end(self, ts_ps, args=None):
        """Close the innermost open span."""
        if not self._open:
            raise ValueError(
                "no open span on %s/%s" % (self.pid, self.tid))
        name = self._open.pop()
        self.tracer._emit("E", self, name, ts_ps, "span", args)

    def instant(self, name, ts_ps, cat="instant", args=None):
        """A zero-duration marker."""
        self.tracer._emit("i", self, name, ts_ps, cat, args)

    def counter(self, name, ts_ps, values):
        """A sampled set of named values (rendered as stacked series)."""
        self.tracer._emit("C", self, name, ts_ps, "counter",
                          dict(values))

    @property
    def open_spans(self):
        return tuple(self._open)


class NullTrack:
    """No-op track: one shared instance serves every disabled call
    site at the cost of an attribute lookup and an empty call."""

    __slots__ = ()
    pid = tid = "null"
    open_spans = ()

    def begin(self, name, ts_ps, cat="span", args=None):
        pass

    def end(self, ts_ps, args=None):
        pass

    def instant(self, name, ts_ps, cat="instant", args=None):
        pass

    def counter(self, name, ts_ps, values):
        pass


NULL_TRACK = NullTrack()


class Tracer:
    """Records :class:`TraceEvent` streams across named tracks.

    Parameters
    ----------
    max_events:
        Hard cap on buffered events; once reached, further events are
        counted in :attr:`dropped` instead of stored (the trace stays
        structurally valid because open spans are force-closed by
        :meth:`finish`).
    """

    enabled = True

    def __init__(self, max_events=2_000_000):
        self.events = []
        self.max_events = max_events
        self.dropped = 0
        self._tracks = {}
        self._wall_start = _time.perf_counter_ns()

    def wall_now_ns(self):
        """Nanoseconds of host wall-clock since tracer creation."""
        return _time.perf_counter_ns() - self._wall_start

    def track(self, pid, tid):
        """The (created-on-demand) track for process *pid*, lane *tid*."""
        key = (pid, tid)
        track = self._tracks.get(key)
        if track is None:
            track = self._tracks[key] = Track(self, pid, tid)
        return track

    def _emit(self, phase, track, name, ts_ps, cat, args):
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(
            int(ts_ps), self.wall_now_ns(), phase, track.pid,
            track.tid, name, cat, args))

    def finish(self, ts_ps):
        """Force-close every open span at *ts_ps* (end of run)."""
        for track in self._tracks.values():
            while track.open_spans:
                # bypass the max_events cap: structural integrity of
                # already-recorded B events beats completeness
                name = track._open.pop()
                self.events.append(TraceEvent(
                    int(ts_ps), self.wall_now_ns(), "E", track.pid,
                    track.tid, name, "span", None))

    def __len__(self):
        return len(self.events)

    # -- export ---------------------------------------------------------

    def _ids(self):
        """Stable numeric pid/tid assignment in first-use order."""
        pids, tids = {}, {}
        for event in self.events:
            pids.setdefault(event.pid, len(pids) + 1)
            tids.setdefault((event.pid, event.tid), len(tids) + 1)
        return pids, tids

    def chrome_events(self, timebase="sim"):
        """The trace as a list of Chrome trace-event dicts.

        ``timebase="sim"`` stamps ``ts`` in simulated microseconds
        (kernel process activations collapse to zero width — all the
        work of one delta cascade happens at one simulated instant);
        ``timebase="wall"`` stamps ``ts`` in host microseconds, giving
        a conventional CPU profile of the same run.
        """
        if timebase not in ("sim", "wall"):
            raise ValueError("timebase must be 'sim' or 'wall'")
        pids, tids = self._ids()
        out = []
        for name, pid in pids.items():
            out.append({"name": "process_name", "ph": "M", "pid": pid,
                        "tid": 0, "args": {"name": name}})
        for (pid_name, tid_name), tid in tids.items():
            out.append({"name": "thread_name", "ph": "M",
                        "pid": pids[pid_name], "tid": tid,
                        "args": {"name": tid_name}})
        records = []
        for event in self.events:
            ts = (event.ts_ps / 1e6 if timebase == "sim"
                  else event.wall_ns / 1e3)
            record = {
                "name": event.name,
                "cat": event.cat,
                "ph": event.phase,
                "ts": ts,
                "pid": pids[event.pid],
                "tid": tids[(event.pid, event.tid)],
            }
            if event.phase == "i":
                record["s"] = "t"  # thread-scoped instant
            if event.args:
                record["args"] = event.args
            elif event.phase == "C":
                record["args"] = {}
            records.append(record)
        # Chrome/Perfetto want non-decreasing timestamps; Python's sort
        # is stable, so same-ts events keep emission order and B/E
        # nesting per track survives.
        records.sort(key=lambda record: record["ts"])
        return out + records

    def write_chrome(self, path, timebase="sim"):
        """Write Chrome trace-event JSON to *path*; returns the path."""
        payload = {
            "traceEvents": self.chrome_events(timebase=timebase),
            "displayTimeUnit": "ns",
            "otherData": {
                "generator": "repro.telemetry",
                "timebase": timebase,
                "dropped_events": self.dropped,
            },
        }
        with open(path, "w") as fh:
            json.dump(payload, fh)
        return path

    def write_jsonl(self, path):
        """Write the compact one-object-per-line stream to *path*."""
        with open(path, "w") as fh:
            for event in self.events:
                record = {"ts_ps": event.ts_ps,
                          "wall_ns": event.wall_ns,
                          "ph": event.phase, "pid": event.pid,
                          "tid": event.tid, "name": event.name,
                          "cat": event.cat}
                if event.args:
                    record["args"] = event.args
                fh.write(json.dumps(record) + "\n")
        return path


class NullTracer:
    """Disabled tracer: hands out :data:`NULL_TRACK` for every track."""

    enabled = False
    events = ()
    dropped = 0

    def track(self, pid, tid):
        return NULL_TRACK

    def wall_now_ns(self):
        return 0

    def finish(self, ts_ps):
        pass

    def __len__(self):
        return 0


NULL_TRACER = NullTracer()


def validate_chrome_trace(path):
    """Check the structural invariants of an exported Chrome trace.

    Returns a list of problem strings (empty = valid):

    * the file parses as JSON with a ``traceEvents`` list;
    * non-metadata timestamps are non-decreasing;
    * every ``E`` matches an open ``B`` on its ``(pid, tid)`` track
      and no ``B`` is left open.
    """
    problems = []
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except ValueError as exc:
        return ["not valid JSON: %s" % exc]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["no traceEvents list"]
    last_ts = None
    stacks = {}
    for index, event in enumerate(events):
        phase = event.get("ph")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append("event %d has no numeric ts" % index)
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(
                "ts not monotonic at event %d (%r < %r)"
                % (index, ts, last_ts))
        last_ts = ts
        key = (event.get("pid"), event.get("tid"))
        if phase == "B":
            stacks.setdefault(key, []).append(event.get("name"))
        elif phase == "E":
            stack = stacks.get(key)
            if not stack:
                problems.append(
                    "unmatched E %r on track %r (event %d)"
                    % (event.get("name"), key, index))
            else:
                stack.pop()
    for key, stack in stacks.items():
        if stack:
            problems.append(
                "unclosed span(s) %r on track %r" % (stack, key))
    return problems
