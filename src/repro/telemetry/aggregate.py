"""Campaign-level metric aggregation.

Per-run metrics are recorded by :func:`record_run_metrics` from the
**deterministic** quantities of a :class:`~repro.faults.FaultRunResult`
— simulated energy, transaction counts, outcomes — never host wall
time, so the snapshot a worker attaches to its result is a pure
function of the run's ``RunSpec``.  The supervisor folds worker
snapshots with :func:`campaign_metrics` in ``run_id`` order
(synthesizing snapshots for supervisor-made results such as hard-kill
timeouts via the same recorder), which makes serial and ``--jobs N``
campaign aggregates bit-for-bit identical.

Wall-clock-derived figures (throughput, campaign wall time) live in
the :class:`CampaignMetrics` *summary*, deliberately outside the
mergeable snapshot.
"""

from __future__ import annotations

from ..analysis.tables import TextTable, format_energy
from .registry import (
    COUNT_BUCKETS,
    ENERGY_BUCKETS,
    MetricsRegistry,
    merge_snapshots,
)

_RUN_LABELS = ("scenario", "fault")


def record_run_metrics(registry, result):
    """Record one run's deterministic metrics into *registry*.

    *result* is a :class:`~repro.faults.FaultRunResult` (or anything
    with the same attributes).  Only simulation-derived quantities are
    recorded; wall-clock fields are intentionally excluded so merged
    campaign metrics are reproducible across execution modes.
    """
    scenario, fault = result.scenario, result.fault
    registry.counter(
        "campaign_runs_total", "Campaign runs by outcome",
        labelnames=_RUN_LABELS + ("outcome",),
    ).labels(scenario=scenario, fault=fault,
             outcome=result.outcome).inc()
    # Additive tier counter: the per-run label set above is part of
    # the stable snapshot schema, so the execution tier is recorded as
    # its own series instead of widening every existing one.
    registry.counter(
        "campaign_tier_runs_total", "Campaign runs by execution tier",
        labelnames=_RUN_LABELS + ("tier",),
    ).labels(scenario=scenario, fault=fault,
             tier=getattr(result, "tier", "cycle") or "cycle").inc()
    for metric, help_text, value in (
        ("campaign_txns_completed_total",
         "Transactions completed", result.completed),
        ("campaign_txns_failed_total",
         "Transactions failed", result.failed),
        ("campaign_txns_aborted_total",
         "Transactions aborted by recovery", result.aborted),
        ("campaign_watchdog_events_total",
         "Watchdog hazard detections", result.watchdog_events),
        ("campaign_recoveries_total",
         "Successful watchdog recoveries", result.recoveries),
        ("campaign_violations_total",
         "Protocol-compliance violations", result.violations),
        ("campaign_energy_j_total",
         "Total simulated bus energy", result.total_energy),
        ("campaign_overhead_energy_j_total",
         "Energy of non-OKAY response cycles",
         result.overhead_energy),
    ):
        registry.counter(metric, help_text, labelnames=_RUN_LABELS) \
            .labels(scenario=scenario, fault=fault) \
            .inc(max(0.0, value or 0))
    registry.histogram(
        "campaign_run_energy_j", "Per-run total energy",
        labelnames=_RUN_LABELS, buckets=ENERGY_BUCKETS,
    ).labels(scenario=scenario, fault=fault) \
        .observe(result.total_energy or 0.0)
    registry.histogram(
        "campaign_violations_per_run",
        "Per-run compliance violations",
        labelnames=_RUN_LABELS, buckets=COUNT_BUCKETS,
    ).labels(scenario=scenario, fault=fault) \
        .observe(result.violations or 0)
    return registry


def metrics_for_result(result):
    """A fresh per-run snapshot for *result*.

    The same recorder serves both sides of the process boundary: the
    exec worker attaches this snapshot to its result dict, and the
    supervisor synthesizes it for results the worker never produced
    (hard-kill timeouts, dead workers, quarantined runs).
    """
    return record_run_metrics(MetricsRegistry(), result).snapshot()


class CampaignMetrics:
    """Merged campaign metrics plus wall-clock summary figures."""

    def __init__(self, merged, outcomes, runs_total, wall_time_s=0.0,
                 jobs=1):
        #: The deterministic merged snapshot (bit-identical across
        #: serial / parallel / resumed execution of the same campaign).
        self.merged = merged
        #: ``outcome -> run count`` in sorted outcome order.
        self.outcomes = dict(sorted(outcomes.items()))
        self.runs_total = runs_total
        self.wall_time_s = wall_time_s
        self.jobs = jobs

    def _rate(self, outcome):
        if not self.runs_total:
            return 0.0
        return self.outcomes.get(outcome, 0) / self.runs_total

    @property
    def timeout_rate(self):
        return self._rate("timeout")

    @property
    def quarantine_rate(self):
        return self._rate("quarantined")

    @property
    def throughput_runs_per_s(self):
        """Campaign throughput (wall-clock; NOT part of ``merged``)."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.runs_total / self.wall_time_s

    def _counter_total(self, name):
        entry = self.merged.get("counters", {}).get(name)
        if entry is None:
            return 0.0
        return sum(entry["series"].values())

    def to_dict(self):
        return {
            "merged": self.merged,
            "summary": {
                "runs_total": self.runs_total,
                "outcomes": self.outcomes,
                "timeout_rate": self.timeout_rate,
                "quarantine_rate": self.quarantine_rate,
                "wall_time_s": self.wall_time_s,
                "jobs": self.jobs,
                "throughput_runs_per_s": self.throughput_runs_per_s,
            },
        }

    def summary_table(self):
        """Campaign-level headline figures as a renderable table."""
        table = TextTable(["Campaign metric", "Value"])
        table.add_row(["Runs", self.runs_total])
        table.add_row(["Outcomes", ", ".join(
            "%s=%d" % item for item in self.outcomes.items()) or "-"])
        table.add_row(["Timeout rate",
                       "%.1f %%" % (100.0 * self.timeout_rate)])
        table.add_row(["Quarantine rate",
                       "%.1f %%" % (100.0 * self.quarantine_rate)])
        table.add_row(["Throughput",
                       "%.2f runs/s (%d job%s)"
                       % (self.throughput_runs_per_s, self.jobs,
                          "" if self.jobs == 1 else "s")])
        table.add_row(["Total energy", format_energy(
            self._counter_total("campaign_energy_j_total"))])
        table.add_row(["Fault-cycle energy", format_energy(
            self._counter_total("campaign_overhead_energy_j_total"))])
        table.add_row(["Violations", "%d" % self._counter_total(
            "campaign_violations_total")])
        return table


def campaign_metrics(results, wall_time_s=0.0, jobs=1):
    """Fold per-run results into one :class:`CampaignMetrics`.

    Results are sorted by ``run_id`` before merging so the fold order —
    and therefore the merged snapshot — is independent of dispatch
    order, worker count and journal resume.
    """
    ordered = sorted(results, key=lambda result: result.run_id)
    snapshots = []
    outcomes = {}
    for result in ordered:
        snapshot = getattr(result, "metrics", None)
        if not snapshot:
            snapshot = metrics_for_result(result)
        snapshots.append(snapshot)
        outcomes[result.outcome] = outcomes.get(result.outcome, 0) + 1
    return CampaignMetrics(
        merge_snapshots(snapshots), outcomes, len(ordered),
        wall_time_s=wall_time_s, jobs=jobs)


def metrics_table(snapshot):
    """Render a registry snapshot as a :class:`TextTable`.

    Histograms are condensed to ``count / mean``; counters and gauges
    print their raw series values.
    """
    table = TextTable(["Metric", "Kind", "Series", "Value"])
    for name, entry in snapshot.get("counters", {}).items():
        for key, value in entry["series"].items():
            table.add_row([name, "counter", key or "-",
                           _format_value(name, value)])
    for name, entry in snapshot.get("gauges", {}).items():
        for key, value in entry["series"].items():
            table.add_row([name, "gauge", key or "-",
                           _format_value(name, value)])
    for name, entry in snapshot.get("histograms", {}).items():
        for key, series in entry["series"].items():
            count = series["count"]
            mean = series["sum"] / count if count else 0.0
            table.add_row([
                name, "histogram", key or "-",
                "n=%d mean=%s" % (count, _format_value(name, mean)),
            ])
    return table


def _format_value(name, value):
    if "_j" in name or name.endswith("_j_total"):
        return format_energy(value)
    if "seconds" in name:
        return "%.6f s" % value
    if value == int(value):
        return "%d" % int(value)
    return "%.4g" % value
