"""Metrics registry: counters, gauges and histograms with labels.

The runtime analogue of the paper's ``POWERTEST`` compile switch: a
:class:`MetricsRegistry` hands out live instruments, while
:func:`null_registry` hands out no-op instruments sharing the same API,
so instrumented call sites cost one attribute lookup and a no-op call
when telemetry is disabled — no ``if enabled`` branches in model code.

Snapshots are plain JSON-able dicts designed to merge: counters sum,
histogram bins sum element-wise, gauges take the last written value.
:func:`merge_snapshots` folds worker snapshots into campaign-level
aggregates deterministically (the caller fixes the fold order), which
is what makes serial and parallel campaign metrics bit-identical.
"""

from __future__ import annotations

#: Default histogram buckets for per-run energy observations (joules).
#: Log-spaced from sub-pJ glitches to µJ-scale long runs.
ENERGY_BUCKETS = tuple(
    mantissa * 10.0 ** exponent
    for exponent in range(-12, -5)
    for mantissa in (1.0, 3.0)
)

#: Default buckets for small event counts (violations, retries...).
COUNT_BUCKETS = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 500.0)

#: Default buckets for latencies measured in bus cycles.
CYCLE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


def _label_key(labelnames, labelvalues):
    """Canonical series key: ``"name=value,name=value"`` in declared
    label order (empty string for unlabelled series)."""
    return ",".join("%s=%s" % (name, value)
                    for name, value in zip(labelnames, labelvalues))


class _Instrument:
    """Common parent/child machinery of all instrument kinds."""

    kind = "instrument"

    def __init__(self, name, help="", labelnames=()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children = {}
        if not self.labelnames:
            # The unlabelled default child backs the parent-level API.
            self._default = self._make_child()
            self._children[""] = self._default
        else:
            self._default = None

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, **labelvalues):
        """The child series for *labelvalues* (created on first use)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                "%s expects labels %r, got %r"
                % (self.name, self.labelnames, tuple(labelvalues)))
        key = _label_key(self.labelnames,
                         [labelvalues[name] for name in self.labelnames])
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child()
        return child

    def _require_default(self):
        if self._default is None:
            raise ValueError(
                "%s is labelled (%r); use .labels(...)"
                % (self.name, self.labelnames))
        return self._default

    def series(self):
        """Mapping ``label key -> child`` of every live series."""
        return dict(self._children)


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount=1.0):
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Counter(_Instrument):
    """A monotonically increasing sum."""

    kind = "counter"

    def _make_child(self):
        return _CounterChild()

    def inc(self, amount=1.0):
        self._require_default().inc(amount)

    @property
    def value(self):
        return self._require_default().value


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value):
        self.value = float(value)

    def inc(self, amount=1.0):
        self.value += amount

    def dec(self, amount=1.0):
        self.value -= amount


class Gauge(_Instrument):
    """A value that can go up and down (last write wins on merge)."""

    kind = "gauge"

    def _make_child(self):
        return _GaugeChild()

    def set(self, value):
        self._require_default().set(value)

    def inc(self, amount=1.0):
        self._require_default().inc(amount)

    def dec(self, amount=1.0):
        self._require_default().dec(amount)

    @property
    def value(self):
        return self._require_default().value


class _HistogramChild:
    __slots__ = ("counts", "sum", "count", "_buckets")

    def __init__(self, buckets):
        self._buckets = buckets
        # one bin per upper edge plus a final overflow bin
        self.counts = [0] * (len(buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value):
        value = float(value)
        index = len(self._buckets)
        for position, edge in enumerate(self._buckets):
            if value <= edge:
                index = position
                break
        self.counts[index] += 1
        self.sum += value
        self.count += 1


class Histogram(_Instrument):
    """Bucketed observations with explicit upper edges.

    ``counts[i]`` is the number of observations with
    ``value <= buckets[i]`` (non-cumulative bins); the final bin counts
    overflow beyond the last edge.
    """

    kind = "histogram"

    def __init__(self, name, help="", labelnames=(),
                 buckets=COUNT_BUCKETS):
        self.buckets = tuple(sorted(float(edge) for edge in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket edge")
        super().__init__(name, help=help, labelnames=labelnames)

    def _make_child(self):
        return _HistogramChild(self.buckets)

    def observe(self, value):
        self._require_default().observe(value)


class MetricsRegistry:
    """Factory and container of named instruments.

    Re-requesting a name returns the existing instrument (so modules
    can share series); re-requesting it as a different kind or with
    different labels/buckets raises.
    """

    enabled = True

    def __init__(self):
        self._instruments = {}

    def _get(self, cls, name, help, labelnames, **kwargs):
        instrument = self._instruments.get(name)
        if instrument is not None:
            if not isinstance(instrument, cls) \
                    or instrument.labelnames != tuple(labelnames):
                raise ValueError(
                    "metric %r already registered as %s%r"
                    % (name, instrument.kind, instrument.labelnames))
            return instrument
        instrument = cls(name, help=help, labelnames=labelnames,
                         **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name, help="", labelnames=()):
        return self._get(Counter, name, help, labelnames)

    def gauge(self, name, help="", labelnames=()):
        return self._get(Gauge, name, help, labelnames)

    def histogram(self, name, help="", labelnames=(),
                  buckets=COUNT_BUCKETS):
        instrument = self._get(Histogram, name, help, labelnames,
                               buckets=buckets)
        if instrument.buckets != tuple(sorted(float(edge)
                                              for edge in buckets)):
            raise ValueError("metric %r already registered with "
                             "different buckets" % name)
        return instrument

    def __contains__(self, name):
        return name in self._instruments

    def __iter__(self):
        return iter(self._instruments.values())

    def get(self, name):
        """The instrument registered under *name* (None if absent)."""
        return self._instruments.get(name)

    # -- snapshot / merge ----------------------------------------------

    def snapshot(self):
        """JSON-able dump of every live series."""
        data = {"counters": {}, "gauges": {}, "histograms": {}}
        for instrument in self._instruments.values():
            if instrument.kind == "histogram":
                data["histograms"][instrument.name] = {
                    "help": instrument.help,
                    "labels": list(instrument.labelnames),
                    "buckets": list(instrument.buckets),
                    "series": {
                        key: {"counts": list(child.counts),
                              "sum": child.sum, "count": child.count}
                        for key, child in sorted(
                            instrument.series().items())
                    },
                }
            else:
                bucket = data["counters" if instrument.kind == "counter"
                              else "gauges"]
                bucket[instrument.name] = {
                    "help": instrument.help,
                    "labels": list(instrument.labelnames),
                    "series": {
                        key: child.value
                        for key, child in sorted(
                            instrument.series().items())
                    },
                }
        return data


def merge_snapshots(snapshots):
    """Fold an ordered iterable of snapshots into one.

    Counters and histogram bins sum; gauges take the value of the last
    snapshot carrying the series.  The fold is deterministic in the
    input order — callers that need bit-identical aggregates across
    execution modes must fix that order (e.g. sort by run id).
    """
    merged = {"counters": {}, "gauges": {}, "histograms": {}}
    for snapshot in snapshots:
        for name, entry in snapshot.get("counters", {}).items():
            target = merged["counters"].setdefault(
                name, {"help": entry.get("help", ""),
                       "labels": list(entry.get("labels", [])),
                       "series": {}})
            for key, value in entry["series"].items():
                target["series"][key] = \
                    target["series"].get(key, 0.0) + value
        for name, entry in snapshot.get("gauges", {}).items():
            target = merged["gauges"].setdefault(
                name, {"help": entry.get("help", ""),
                       "labels": list(entry.get("labels", [])),
                       "series": {}})
            target["series"].update(entry["series"])
        for name, entry in snapshot.get("histograms", {}).items():
            target = merged["histograms"].setdefault(
                name, {"help": entry.get("help", ""),
                       "labels": list(entry.get("labels", [])),
                       "buckets": list(entry["buckets"]),
                       "series": {}})
            if target["buckets"] != list(entry["buckets"]):
                raise ValueError(
                    "cannot merge histogram %r: bucket mismatch" % name)
            for key, series in entry["series"].items():
                into = target["series"].setdefault(
                    key, {"counts": [0] * len(series["counts"]),
                          "sum": 0.0, "count": 0})
                into["counts"] = [a + b for a, b in
                                  zip(into["counts"], series["counts"])]
                into["sum"] += series["sum"]
                into["count"] += series["count"]
    # canonical ordering so equal aggregates serialize identically
    for kind in merged:
        merged[kind] = {
            name: {**entry,
                   "series": dict(sorted(entry["series"].items()))}
            for name, entry in sorted(merged[kind].items())
        }
    return merged


class _NullChild:
    """A no-op instrument child: every mutator is a cheap no-op and
    ``labels`` returns itself, so one shared instance serves every
    call site of a disabled registry."""

    __slots__ = ()
    value = 0.0
    sum = 0.0
    count = 0
    counts = ()

    def labels(self, **labelvalues):
        return self

    def inc(self, amount=1.0):
        pass

    def dec(self, amount=1.0):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass


#: The shared no-op instrument.
NULL_INSTRUMENT = _NullChild()


class NullRegistry:
    """The disabled backend: hands out :data:`NULL_INSTRUMENT` for
    every request and snapshots to an empty dict."""

    enabled = False

    def counter(self, name, help="", labelnames=()):
        return NULL_INSTRUMENT

    def gauge(self, name, help="", labelnames=()):
        return NULL_INSTRUMENT

    def histogram(self, name, help="", labelnames=(), buckets=()):
        return NULL_INSTRUMENT

    def get(self, name):
        return None

    def __contains__(self, name):
        return False

    def __iter__(self):
        return iter(())

    def snapshot(self):
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: Module-level singleton; ``registry or NULL_REGISTRY`` is the idiom.
NULL_REGISTRY = NullRegistry()


def null_registry():
    """The shared :class:`NullRegistry` singleton."""
    return NULL_REGISTRY
