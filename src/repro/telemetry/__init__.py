"""Unified observability layer: metrics, tracing, aggregation.

The runtime analogue of the paper's ``POWERTEST`` compile switch —
rich signals when enabled, one attribute lookup and a no-op call when
disabled:

* :mod:`~repro.telemetry.registry` — counters / gauges / histograms
  with labelled series, a null backend, and deterministic snapshot
  merging;
* :mod:`~repro.telemetry.tracing` — dual-timebase (simulated +
  wall-clock) span/instant/counter tracing with Chrome-trace
  (Perfetto) and JSONL export;
* :mod:`~repro.telemetry.hooks` — kernel, AHB-bus and power-FSM
  instrumentation plus the :class:`Telemetry` bundle that wires all
  three onto an :class:`~repro.workloads.AhbSystem`;
* :mod:`~repro.telemetry.aggregate` — per-run metric recording and
  the cross-worker campaign merge.

See ``docs/OBSERVABILITY.md`` for the narrative documentation.
"""

from .aggregate import (
    CampaignMetrics,
    campaign_metrics,
    metrics_for_result,
    metrics_table,
    record_run_metrics,
)
from .hooks import (
    STORM_THRESHOLD,
    BusTelemetry,
    KernelTelemetry,
    PowerTracer,
    Telemetry,
)
from .registry import (
    COUNT_BUCKETS,
    CYCLE_BUCKETS,
    ENERGY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    merge_snapshots,
    null_registry,
)
from .tracing import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    Track,
    validate_chrome_trace,
)

__all__ = [
    "BusTelemetry",
    "CampaignMetrics",
    "COUNT_BUCKETS",
    "CYCLE_BUCKETS",
    "Counter",
    "ENERGY_BUCKETS",
    "Gauge",
    "Histogram",
    "KernelTelemetry",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "PowerTracer",
    "STORM_THRESHOLD",
    "Telemetry",
    "TraceEvent",
    "Tracer",
    "Track",
    "campaign_metrics",
    "merge_snapshots",
    "metrics_for_result",
    "metrics_table",
    "null_registry",
    "record_run_metrics",
    "validate_chrome_trace",
]
