"""Logic optimisation passes (a miniature SIS).

SIS's job in the paper was "synthesis and optimization of sequential
circuits": after structural synthesis, redundant logic is cleaned up
before power characterisation so switched capacitance reflects what a
real netlist would contain.  This module provides the classic cheap
passes over :class:`~repro.gatelevel.netlist.Netlist`:

* **constant propagation** — cells whose inputs are tied to constants
  are evaluated away;
* **double-inverter elimination** — ``INV(INV(x)) → x`` and
  ``BUF(x) → x`` rewiring;
* **duplicate-cell sharing** — structurally identical cells merge;
* **dead-cell sweep** — logic driving nothing observable is removed.

:func:`optimize` runs the passes to a fixed point and returns a *new*
netlist (inputs/outputs preserved by name), so callers can compare
gate counts, capacitance and — through the simulator — energy before
and after, exactly like a synthesis flow report.
"""

from __future__ import annotations

from .gates import AND2, BUF, INV, NAND2, NOR2, OR2, XNOR2, XOR2
from .netlist import Netlist

#: Evaluation shortcuts for constant propagation: cell name ->
#: {(frozen input constants) -> result or passthrough index}.
_CONST_RULES = {
    "AND2": {(0, None): 0, (None, 0): 0, (1, None): "b", (None, 1): "a"},
    "OR2": {(1, None): 1, (None, 1): 1, (0, None): "b", (None, 0): "a"},
    "NAND2": {(0, None): 1, (None, 0): 1},
    "NOR2": {(1, None): 0, (None, 1): 0},
}


class _Builder:
    """Rebuilds an optimised copy of a netlist."""

    def __init__(self, source):
        self.source = source
        self.result = Netlist(source.name + "_opt",
                              net_cap=source.net_cap)
        # Maps: source net -> ("net", new_net) or ("const", 0/1)
        self.mapping = {}

    def resolve(self, net):
        binding = self.mapping.get(id(net))
        if binding is None:
            raise KeyError("unresolved net %r" % net.name)
        return binding


def _structural_key(cell_name, bindings):
    """Hashable identity of a cell for duplicate sharing."""
    parts = [cell_name]
    for kind, payload in bindings:
        parts.append(kind)
        parts.append(id(payload) if kind == "net" else payload)
    return tuple(parts)


def optimize(netlist, max_rounds=10):
    """Return an optimised copy of *netlist* (same I/O behaviour).

    Sequential elements (DFFs) are preserved; their D inputs count as
    observable, so logic feeding state is never swept.
    """
    builder = _Builder(netlist)
    result = builder.result
    mapping = builder.mapping

    for net in netlist.inputs:
        mapping[id(net)] = ("net", result.add_input(net.name))
    # Flop outputs are primary-ish sources for the combinational pass;
    # create their nets up front.
    flop_qs = {}
    for flop in netlist.dffs:
        q_new = result.net(flop.q.name)
        mapping[id(flop.q)] = ("net", q_new)
        flop_qs[id(flop)] = q_new

    inverter_of = {}   # id(new net) -> net that is its inversion
    shared = {}        # structural key -> output binding

    for cell in netlist.levelise():
        name = cell.cell_type.name
        bindings = [mapping[id(net)] for net in cell.inputs]
        consts = tuple(payload if kind == "const" else None
                       for kind, payload in bindings)

        # 1. full constant evaluation
        if all(value is not None for value in consts):
            mapping[id(cell.output)] = (
                "const", cell.cell_type.fn(*consts))
            continue

        # 2. partial constant rules
        rule = _CONST_RULES.get(name, {}).get(consts)
        if rule is not None:
            if rule == "a":
                mapping[id(cell.output)] = bindings[0]
            elif rule == "b":
                mapping[id(cell.output)] = bindings[1]
            else:
                mapping[id(cell.output)] = ("const", rule)
            continue
        if name in ("XOR2", "XNOR2") and \
                (consts[0] is None) != (consts[1] is None):
            constant = consts[0] if consts[0] is not None else consts[1]
            other = bindings[1] if consts[0] is not None else bindings[0]
            flip = constant if name == "XOR2" else 1 - constant
            if flip == 0:
                mapping[id(cell.output)] = other
            else:
                mapping[id(cell.output)] = _emit_inverter(
                    result, other, inverter_of, shared)
            continue

        # 3. INV/BUF structural rules
        if name == "BUF":
            mapping[id(cell.output)] = bindings[0]
            continue
        if name == "INV":
            kind, payload = bindings[0]
            if kind == "const":
                mapping[id(cell.output)] = ("const", 1 - payload)
                continue
            undo = inverter_of.get(id(payload))
            if undo is not None:
                # INV(INV(x)) -> x
                mapping[id(cell.output)] = ("net", undo)
                continue
            binding = _emit_inverter(result, bindings[0], inverter_of,
                                     shared)
            mapping[id(cell.output)] = binding
            continue

        # 4. duplicate sharing + emission
        key = _structural_key(name, bindings)
        binding = shared.get(key)
        if binding is None:
            inputs = [_materialise(result, b) for b in bindings]
            out = result.add_cell(cell.cell_type, inputs,
                                  output_name=cell.output.name)
            binding = ("net", out)
            shared[key] = binding
        mapping[id(cell.output)] = binding

    # flops: rebuild with resolved D inputs
    from .netlist import Dff
    from .gates import DEFAULT_INPUT_CAP
    for flop in netlist.dffs:
        d_binding = mapping[id(flop.d)]
        d_net = _materialise(result, d_binding)
        new_flop = Dff(d_net, flop_qs[id(flop)],
                       clock_cap=flop.clock_cap)
        d_net.load_cap += DEFAULT_INPUT_CAP
        result.dffs.append(new_flop)

    # outputs
    for net in netlist.outputs:
        binding = mapping[id(net)]
        out_net = _materialise(result, binding, prefer_name=net.name)
        result.mark_output(out_net,
                           extra_cap=max(0.0, net.capacitance
                                         - out_net.capacitance))

    _sweep_dead(result)
    return result


def _emit_inverter(result, binding, inverter_of, shared):
    """Create (or reuse) an inverter over *binding*."""
    source = _materialise(result, binding)
    key = _structural_key("INV", [("net", source)])
    existing = shared.get(key)
    if existing is not None:
        return existing
    out = result.add_cell(INV, [source])
    inverter_of[id(out)] = source
    created = ("net", out)
    shared[key] = created
    return created


def _materialise(result, binding, prefer_name=None):
    """Turn a binding into a concrete net (constants become tied
    nets that never switch)."""
    kind, payload = binding
    if kind == "net":
        return payload
    name = prefer_name or ("const%d_%d" % (payload, len(result.nets)))
    net = result.net(name)
    net.driver = None
    # model a tie cell: force the value via an initial condition; the
    # simulator keeps undriven nets at 0, so const-1 uses an inverter
    # over a const-0 net.
    if payload == 1:
        return result.add_cell(INV, [net])
    return net


def _sweep_dead(netlist):
    """Remove cells whose outputs reach no output and no flop."""
    alive = set()
    frontier = [net for net in netlist.outputs]
    frontier.extend(flop.d for flop in netlist.dffs)
    seen = set()
    while frontier:
        net = frontier.pop()
        if id(net) in seen:
            continue
        seen.add(id(net))
        if net.driver is not None:
            alive.add(id(net.driver))
            frontier.extend(net.driver.inputs)
    removed = [cell for cell in netlist.cells
               if id(cell) not in alive]
    if not removed:
        return
    netlist.cells = [cell for cell in netlist.cells
                     if id(cell) in alive]
    dead_nets = {id(cell.output) for cell in removed}
    netlist.nets = [net for net in netlist.nets
                    if id(net) not in dead_nets]
    # fanout bookkeeping: subtract removed input loads
    for cell in removed:
        for net in cell.inputs:
            net.load_cap = max(0.0,
                               net.load_cap - cell.cell_type.input_cap)
    netlist._levelised = None


class OptimizationReport:
    """Before/after comparison of :func:`optimize`."""

    def __init__(self, before, after):
        self.before = before
        self.after = after

    @property
    def gates_removed(self):
        return self.before.n_gates - self.after.n_gates

    @property
    def capacitance_saved(self):
        return (self.before.total_capacitance()
                - self.after.total_capacitance())

    def __repr__(self):
        return ("OptimizationReport(%d -> %d gates, %.3e F saved)"
                % (self.before.n_gates, self.after.n_gates,
                   self.capacitance_saved))


def optimize_with_report(netlist, **kwargs):
    """Run :func:`optimize` and return ``(optimised, report)``."""
    optimised = optimize(netlist, **kwargs)
    return optimised, OptimizationReport(netlist, optimised)
