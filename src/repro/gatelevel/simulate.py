"""Gate-level switching simulation and energy accounting.

This is the library's stand-in for the paper's use of Berkeley SIS:
the macromodels of §5.1 were "validated using the software SIS" by
simulating a gate-level implementation and counting node transitions.
:class:`GateLevelSimulator` does exactly that — it evaluates a
levelised netlist vector by vector, counts every net toggle and charges
``½ · C_net · V_DD²`` per transition (the standard dynamic switching
energy; leakage and short-circuit power are out of scope at this
abstraction, as in the paper).
"""

from __future__ import annotations

from .gates import bits_to_int, int_to_bits


class StepResult:
    """Per-vector simulation outcome."""

    __slots__ = ("toggles", "energy", "outputs")

    def __init__(self, toggles, energy, outputs):
        self.toggles = toggles
        self.energy = energy
        self.outputs = outputs

    def __repr__(self):
        return "StepResult(toggles=%d, energy=%.3e J)" % (
            self.toggles, self.energy,
        )


class GateLevelSimulator:
    """Zero-delay, levelised gate simulator with energy accounting.

    Parameters
    ----------
    netlist:
        A :class:`~repro.gatelevel.netlist.Netlist`.
    vdd:
        Supply voltage (volts) used in the ½CV² charge per toggle.
    """

    def __init__(self, netlist, vdd=1.8):
        self.netlist = netlist
        self.vdd = vdd
        self._order = netlist.levelise()
        self.values = {net: 0 for net in netlist.nets}
        self.total_energy = 0.0
        self.total_toggles = 0
        self.steps = 0
        #: Per-net toggle counters keyed by net object.
        self.toggle_counts = {net: 0 for net in netlist.nets}
        self._energy_scale = 0.5 * vdd * vdd
        # Settle the all-zero state so the first vector's toggles are
        # measured against a defined baseline.
        self._propagate(count=False)
        self._clock_dffs_silent()

    # -- core stepping --------------------------------------------------------

    def _propagate(self, count=True):
        """Evaluate combinational cells in topological order."""
        toggles = 0
        energy = 0.0
        values = self.values
        for cell in self._order:
            new = cell.evaluate(values)
            net = cell.output
            if values[net] != new:
                values[net] = new
                if count:
                    toggles += 1
                    energy += net.capacitance * self._energy_scale
                    self.toggle_counts[net] += 1
        return toggles, energy

    def _clock_dffs_silent(self):
        for flop in self.netlist.dffs:
            self.values[flop.q] = self.values[flop.d]

    def step(self, input_values, clock=True):
        """Apply one input vector and advance one clock period.

        Parameters
        ----------
        input_values:
            Mapping from primary-input :class:`Net` to 0/1, or a flat
            sequence ordered like ``netlist.inputs``.
        clock:
            When ``True`` (default) flip-flops capture after the
            combinational settle, and the resulting Q changes propagate
            (the second half of the clock period).

        Returns a :class:`StepResult`.
        """
        values = self.values
        toggles = 0
        energy = 0.0

        if not isinstance(input_values, dict):
            input_values = dict(zip(self.netlist.inputs, input_values))
        for net, new in input_values.items():
            new = 1 if new else 0
            if values[net] != new:
                values[net] = new
                toggles += 1
                energy += net.capacitance * self._energy_scale
                self.toggle_counts[net] += 1

        t, e = self._propagate()
        toggles += t
        energy += e

        if clock and self.netlist.dffs:
            for flop in self.netlist.dffs:
                new = values[flop.d]
                if values[flop.q] != new:
                    values[flop.q] = new
                    toggles += 1
                    energy += flop.q.capacitance * self._energy_scale
                    self.toggle_counts[flop.q] += 1
                # Clock pin switches twice per period regardless.
                energy += flop.clock_cap * 2 * self._energy_scale
            t, e = self._propagate()
            toggles += t
            energy += e

        self.total_energy += energy
        self.total_toggles += toggles
        self.steps += 1
        outputs = {net: values[net] for net in self.netlist.outputs}
        return StepResult(toggles, energy, outputs)

    # -- convenience ------------------------------------------------------------

    def step_ints(self, **buses):
        """Apply integer values to named input buses.

        Bus *name* maps the inputs created by ``add_input_bus(name, w)``;
        scalar inputs accept a bare 0/1.  Returns the
        :class:`StepResult` with an extra dict of integer outputs under
        ``.outputs`` keyed by net.
        """
        vector = {}
        by_name = {}
        for net in self.netlist.inputs:
            base = net.name.split("[")[0]
            by_name.setdefault(base, []).append(net)
        for name, value in buses.items():
            nets = by_name.get(name)
            if nets is None:
                raise KeyError("no input bus named %r" % name)
            if len(nets) == 1 and "[" not in nets[0].name:
                vector[nets[0]] = 1 if value else 0
            else:
                bits = int_to_bits(value, len(nets))
                for net, bit in zip(nets, bits):
                    vector[net] = bit
        return self.step(vector)

    def output_int(self, prefix=None):
        """Pack the primary outputs (LSB-first) into an integer."""
        nets = self.netlist.outputs
        if prefix is not None:
            nets = [net for net in nets if net.name.startswith(prefix)]
        return bits_to_int([self.values[net] for net in nets])

    def run(self, vectors, clock=True):
        """Apply a sequence of vectors; returns the list of results."""
        return [self.step(vector, clock=clock) for vector in vectors]

    @property
    def mean_energy_per_step(self):
        """Average switching energy per applied vector (joules)."""
        if not self.steps:
            return 0.0
        return self.total_energy / self.steps
