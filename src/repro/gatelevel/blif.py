"""BLIF (Berkeley Logic Interchange Format) export and import.

BLIF is the netlist format of the Berkeley SIS system the paper used to
validate its macromodels.  Supporting it makes the gate-level substrate
interoperable with the historical toolchain: netlists synthesised here
can be optimised in SIS/ABC and read back for energy characterisation.

Supported subset (what SIS itself reads and writes):

* ``.model`` / ``.inputs`` / ``.outputs`` / ``.end``;
* ``.names`` single-output cover tables with ``0``/``1``/``-`` input
  literals and an ON-set (``... 1``) or OFF-set (``... 0``) output;
* ``.latch input output [type control] [init]`` D flip-flops.

Import maps recognisable two-level covers onto library cells (INV,
BUF, AND2, OR2, ...) and synthesises an on-the-fly LUT cell type for
anything else, so arbitrary SIS output remains simulatable.
"""

from __future__ import annotations

from .gates import (
    AND2,
    BUF,
    DEFAULT_INPUT_CAP,
    INV,
    NAND2,
    NOR2,
    OR2,
    XNOR2,
    XOR2,
    CellType,
)
from .netlist import Netlist


class BlifError(ValueError):
    """Malformed BLIF input."""


def _sanitise(name):
    """BLIF tokens cannot contain whitespace; dots are fine."""
    return name.replace(" ", "_")


# -- export ------------------------------------------------------------------

_CELL_COVERS = {
    "INV": [("0", "1")],
    "BUF": [("1", "1")],
    "AND2": [("11", "1")],
    "OR2": [("1-", "1"), ("-1", "1")],
    "NAND2": [("11", "0")],
    "NOR2": [("1-", "0"), ("-1", "0")],
    "XOR2": [("01", "1"), ("10", "1")],
    "XNOR2": [("00", "1"), ("11", "1")],
}


def _cover_for(cell):
    """Return the BLIF cover rows for a library cell instance."""
    cover = _CELL_COVERS.get(cell.cell_type.name)
    if cover is not None:
        return cover
    # Generic fallback: enumerate the ON-set exhaustively.
    n = cell.cell_type.n_inputs
    rows = []
    for code in range(1 << n):
        bits = [(code >> index) & 1 for index in range(n)]
        if cell.cell_type.fn(*bits):
            rows.append(("".join(str(bit) for bit in bits), "1"))
    return rows


def write_blif(netlist, fh, model_name=None):
    """Write *netlist* as BLIF to the open text file *fh*."""
    fh.write(".model %s\n" % _sanitise(model_name or netlist.name))
    fh.write(".inputs %s\n" % " ".join(
        _sanitise(net.name) for net in netlist.inputs))
    fh.write(".outputs %s\n" % " ".join(
        _sanitise(net.name) for net in netlist.outputs))
    for flop in netlist.dffs:
        fh.write(".latch %s %s re clk 0\n"
                 % (_sanitise(flop.d.name), _sanitise(flop.q.name)))
    for cell in netlist.levelise():
        names = [_sanitise(net.name) for net in cell.inputs]
        names.append(_sanitise(cell.output.name))
        fh.write(".names %s\n" % " ".join(names))
        for pattern, value in _cover_for(cell):
            fh.write("%s %s\n" % (pattern, value))
    fh.write(".end\n")


def save_blif(netlist, path, model_name=None):
    """Write *netlist* as BLIF to *path*."""
    with open(path, "w") as fh:
        write_blif(netlist, fh, model_name=model_name)


# -- import ------------------------------------------------------------------

def _join_continuations(lines):
    """Merge lines ending in a backslash (BLIF line continuation)."""
    merged = []
    buffer = ""
    for line in lines:
        line = line.split("#", 1)[0].rstrip("\n")
        if line.endswith("\\"):
            buffer += line[:-1] + " "
            continue
        merged.append(buffer + line)
        buffer = ""
    if buffer:
        merged.append(buffer)
    return merged


def _cover_matches(pattern, bits):
    return all(literal == "-" or literal == str(bit)
               for literal, bit in zip(pattern, bits))


def _make_cover_fn(rows, on_value):
    patterns = [pattern for pattern, _ in rows]

    def fn(*bits):
        for pattern in patterns:
            if _cover_matches(pattern, bits):
                return on_value
        return 1 - on_value

    return fn


_REVERSE_COVERS = {
    tuple(sorted(rows)): name for name, rows in _CELL_COVERS.items()
}

_LIBRARY_BY_NAME = {
    "INV": INV, "BUF": BUF, "AND2": AND2, "OR2": OR2,
    "NAND2": NAND2, "NOR2": NOR2, "XOR2": XOR2, "XNOR2": XNOR2,
}


def _cell_type_for_cover(rows):
    """Map a parsed cover to a library cell, or build a LUT type."""
    library_name = _REVERSE_COVERS.get(tuple(sorted(rows)))
    if library_name is not None:
        return _LIBRARY_BY_NAME[library_name]
    n_inputs = len(rows[0][0])
    on_value = int(rows[0][1])
    if any(int(value) != on_value for _, value in rows):
        raise BlifError("mixed ON/OFF-set cover")
    return CellType(
        "LUT%d" % n_inputs, n_inputs,
        _make_cover_fn(rows, on_value), DEFAULT_INPUT_CAP,
    )


def read_blif(fh):
    """Parse BLIF from open file *fh* into a :class:`Netlist`."""
    lines = _join_continuations(fh.readlines())
    model_name = "blif"
    input_names = []
    output_names = []
    latches = []           # (d_name, q_name)
    tables = []            # (input_names, output_name, rows)

    index = 0
    while index < len(lines):
        line = lines[index].strip()
        index += 1
        if not line:
            continue
        tokens = line.split()
        keyword = tokens[0]
        if keyword == ".model":
            model_name = tokens[1] if len(tokens) > 1 else "blif"
        elif keyword == ".inputs":
            input_names.extend(tokens[1:])
        elif keyword == ".outputs":
            output_names.extend(tokens[1:])
        elif keyword == ".latch":
            if len(tokens) < 3:
                raise BlifError("malformed .latch: %r" % line)
            latches.append((tokens[1], tokens[2]))
        elif keyword == ".names":
            signals = tokens[1:]
            if not signals:
                raise BlifError(".names with no signals")
            rows = []
            while index < len(lines):
                row = lines[index].strip()
                if not row or row.startswith("."):
                    break
                index += 1
                parts = row.split()
                if len(signals) == 1:
                    # constant driver: ".names y" then "1" or nothing
                    rows.append(("", parts[0]))
                else:
                    if len(parts) != 2:
                        raise BlifError("malformed cover row: %r" % row)
                    rows.append((parts[0], parts[1]))
            tables.append((signals[:-1], signals[-1], rows))
        elif keyword == ".end":
            break
        elif keyword.startswith("."):
            raise BlifError("unsupported construct: %r" % keyword)
        else:
            raise BlifError("unexpected line: %r" % line)

    netlist = Netlist(model_name)
    nets = {}
    for name in input_names:
        nets[name] = netlist.add_input(name)
    # Latch outputs exist before their drivers are parsed.
    placeholder_dffs = {}
    for d_name, q_name in latches:
        q = netlist.net(q_name)
        nets[q_name] = q
        placeholder_dffs[q_name] = d_name

    # Create nets for every table output first (covers may be listed
    # in any order in SIS output).
    for _, output_name, _ in tables:
        if output_name not in nets:
            nets[output_name] = netlist.net(output_name)

    for in_names, output_name, rows in tables:
        if not rows:
            continue  # constant-0 net: leave undriven (defaults to 0)
        if not in_names:
            # constant driver; model constant-1 as INV of itself is
            # wrong — instead leave constant-0 undriven and reject
            # constant-1 (SIS rarely emits it for mapped netlists).
            if rows[0][1] == "1":
                raise BlifError("constant-1 drivers are unsupported")
            continue
        for name in in_names:
            if name not in nets:
                nets[name] = netlist.net(name)
        cell_type = _cell_type_for_cover(rows)
        inputs = [nets[name] for name in in_names]
        output = nets[output_name]
        cell_output = netlist.add_cell(cell_type, inputs)
        # splice: redirect the created output onto the named net
        netlist.cells[-1].output = output
        output.driver = netlist.cells[-1]
        netlist.nets.remove(cell_output)

    for q_name, d_name in placeholder_dffs.items():
        if d_name not in nets:
            nets[d_name] = netlist.net(d_name)
        from .netlist import Dff
        flop = Dff(nets[d_name], nets[q_name])
        nets[d_name].load_cap += DEFAULT_INPUT_CAP
        netlist.dffs.append(flop)

    for name in output_names:
        if name not in nets:
            raise BlifError("undefined output %r" % name)
        netlist.mark_output(nets[name])
    netlist._levelised = None
    return netlist


def load_blif(path):
    """Parse the BLIF file at *path* into a :class:`Netlist`."""
    with open(path) as fh:
        return read_blif(fh)
