"""Gate-level substrate (Berkeley SIS substitute).

Provides the low-level implementations the paper characterised its
macromodels against: a small cell library, netlists, a
switching-activity energy simulator and synthesis generators for the
AHB sub-blocks (one-hot decoder, AND-OR multiplexer, priority arbiter).
"""

from .blif import BlifError, load_blif, read_blif, save_blif, write_blif
from .equivalence import (
    Mismatch,
    check_combinational,
    check_sequential,
    decoder_reference,
    mux_reference,
)
from .gates import (
    AND2,
    BUF,
    DEFAULT_INPUT_CAP,
    INV,
    LIBRARY,
    NAND2,
    NOR2,
    OR2,
    XNOR2,
    XOR2,
    CellType,
    bits_to_int,
    hamming_int,
    int_to_bits,
)
from .netlist import Cell, Dff, Net, Netlist
from .optimize import OptimizationReport, optimize, optimize_with_report
from .simulate import GateLevelSimulator, StepResult
from .synth import (
    DEFAULT_OUTPUT_CAP,
    decoder_input_bits,
    synth_mux,
    synth_one_hot_decoder,
    synth_priority_arbiter,
)
from .vectorized import BatchResult, run_batch

__all__ = [
    "AND2",
    "BUF",
    "BatchResult",
    "BlifError",
    "load_blif",
    "read_blif",
    "save_blif",
    "write_blif",
    "Cell",
    "CellType",
    "DEFAULT_INPUT_CAP",
    "DEFAULT_OUTPUT_CAP",
    "Dff",
    "GateLevelSimulator",
    "INV",
    "LIBRARY",
    "Mismatch",
    "NAND2",
    "NOR2",
    "Net",
    "Netlist",
    "OR2",
    "OptimizationReport",
    "optimize",
    "optimize_with_report",
    "StepResult",
    "XNOR2",
    "XOR2",
    "bits_to_int",
    "check_combinational",
    "check_sequential",
    "decoder_input_bits",
    "decoder_reference",
    "hamming_int",
    "int_to_bits",
    "mux_reference",
    "run_batch",
    "synth_mux",
    "synth_one_hot_decoder",
    "synth_priority_arbiter",
]
