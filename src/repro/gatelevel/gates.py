"""Combinational cell library.

A deliberately small library in the spirit of the paper's decoder
synthesis ("it was synthesized only with NOT and AND gates"), extended
with the other two-input primitives needed for multiplexers and the
arbiter FSM.  Each cell type carries:

* an evaluation function over 0/1 inputs;
* an *input capacitance* contribution — every cell input loads the net
  that drives it, so a net's switched capacitance grows with fanout,
  which is the physical origin of the paper's ``C_PD`` "equivalent
  capacitance of one node".
"""

from __future__ import annotations


def _inv(a):
    return 1 - a


def _buf(a):
    return a


def _and2(a, b):
    return a & b


def _or2(a, b):
    return a | b


def _nand2(a, b):
    return 1 - (a & b)


def _nor2(a, b):
    return 1 - (a | b)


def _xor2(a, b):
    return a ^ b


def _xnor2(a, b):
    return 1 - (a ^ b)


class CellType:
    """A combinational cell kind.

    Parameters
    ----------
    name:
        Library name (``INV``, ``AND2``, ...).
    n_inputs:
        Number of input pins.
    fn:
        Evaluation function taking ``n_inputs`` 0/1 arguments.
    input_cap:
        Capacitance (farad) each input pin adds to its driving net.
    """

    __slots__ = ("name", "n_inputs", "fn", "input_cap")

    def __init__(self, name, n_inputs, fn, input_cap):
        self.name = name
        self.n_inputs = n_inputs
        self.fn = fn
        self.input_cap = input_cap

    def __repr__(self):
        return "CellType(%s)" % self.name


#: Default input-pin capacitance, farads.  Chosen so that a fanout-2
#: node lands near the paper's implied per-node capacitance.
DEFAULT_INPUT_CAP = 5e-15

INV = CellType("INV", 1, _inv, DEFAULT_INPUT_CAP)
BUF = CellType("BUF", 1, _buf, DEFAULT_INPUT_CAP)
AND2 = CellType("AND2", 2, _and2, DEFAULT_INPUT_CAP)
OR2 = CellType("OR2", 2, _or2, DEFAULT_INPUT_CAP)
NAND2 = CellType("NAND2", 2, _nand2, DEFAULT_INPUT_CAP)
NOR2 = CellType("NOR2", 2, _nor2, DEFAULT_INPUT_CAP)
XOR2 = CellType("XOR2", 2, _xor2, DEFAULT_INPUT_CAP * 1.6)
XNOR2 = CellType("XNOR2", 2, _xnor2, DEFAULT_INPUT_CAP * 1.6)

LIBRARY = {cell.name: cell for cell in
           (INV, BUF, AND2, OR2, NAND2, NOR2, XOR2, XNOR2)}


def int_to_bits(value, width):
    """Little-endian bit list of *value* over *width* bits.

    >>> int_to_bits(6, 4)
    [0, 1, 1, 0]
    """
    return [(value >> index) & 1 for index in range(width)]


def bits_to_int(bits):
    """Inverse of :func:`int_to_bits`.

    >>> bits_to_int([0, 1, 1, 0])
    6
    """
    value = 0
    for index, bit in enumerate(bits):
        if bit:
            value |= 1 << index
    return value


def hamming_int(a, b):
    """Hamming distance between two non-negative integers."""
    return bin(a ^ b).count("1")
