"""Batched (NumPy-vectorized) gate-level switching simulation.

The scalar :class:`~repro.gatelevel.simulate.GateLevelSimulator`
evaluates one vector at a time with a Python dict lookup per cell pin —
fine for protocol work, but macromodel characterisation sweeps apply
thousands of vectors to the same netlist.  :func:`run_batch` evaluates
a whole vector batch in one pass: every net becomes a ``uint8`` column
of length *N* and every cell one NumPy bitwise expression, so the
per-cell interpreter cost is paid once per *batch* instead of once per
*vector*.

Exactness contract:

* **toggle counts are exact integers** — a toggle is a value
  inequality between consecutive settled states, computed on the full
  0/1 column including the simulator's carried-over state, identical
  to the scalar sweep by construction;
* **energies agree to float tolerance only** (``np.isclose``): the
  scalar path accumulates ``½CV²`` charges in cell-evaluation order
  within each step, the batched path sums per-net subtotals — float
  addition is not associative, so the two orders differ in the last
  ulps.  Callers that need the scalar ledger byte-for-byte must use
  the scalar simulator;
* the simulator's end-of-batch state (``values``, ``toggle_counts``,
  ``total_toggles``, ``steps``) is identical to the scalar sweep, so
  scalar and batched stepping can be freely interleaved.

Scope: combinational netlists only (the paper's decoder and
multiplexer blocks).  Flip-flops create a cross-vector recurrence that
would serialize the batch, so netlists with DFFs — the arbiter FSM —
raise :class:`ValueError`; characterise those with the scalar
simulator.  Cell types outside the stock library evaluate through a
per-cell ``np.frompyfunc`` fallback (correct, but without the
vectorized fast path).
"""

from __future__ import annotations

try:
    import numpy as _np
except ImportError:          # pragma: no cover - numpy is baked in
    _np = None

from .gates import int_to_bits

#: Vectorized cell evaluators for the stock library, by cell name.
#: Each maps ``uint8`` 0/1 arrays to a ``uint8`` 0/1 array with the
#: same truth table as the scalar ``fn``.
_VECTOR_FNS = {
    "INV": lambda a: 1 - a,
    "BUF": lambda a: a.copy(),
    "AND2": lambda a, b: a & b,
    "OR2": lambda a, b: a | b,
    "NAND2": lambda a, b: 1 - (a & b),
    "NOR2": lambda a, b: 1 - (a | b),
    "XOR2": lambda a, b: a ^ b,
    "XNOR2": lambda a, b: 1 - (a ^ b),
}


class BatchResult:
    """Aggregate outcome of one vectorized batch.

    ``per_vector_toggles`` is an ``int64`` array of length *N* holding
    the exact toggle count of each applied vector — the batch-level
    activity profile the scalar path would report step by step.
    """

    __slots__ = ("toggles", "energy", "steps", "per_vector_toggles")

    def __init__(self, toggles, energy, steps, per_vector_toggles):
        self.toggles = toggles
        self.energy = energy
        self.steps = steps
        self.per_vector_toggles = per_vector_toggles

    def __repr__(self):
        return "BatchResult(steps=%d, toggles=%d, energy=%.3e J)" % (
            self.steps, self.toggles, self.energy,
        )


def _input_matrix(simulator, vectors):
    """Decode *vectors* (``step_ints``-style bus dicts) into an
    ``(N, n_inputs)`` 0/1 matrix with carried-forward state.

    Reproduces the scalar sweep's semantics exactly: a bus absent from
    a vector keeps its previous value, and each vector sees the state
    left by the one before it.
    """
    netlist = simulator.netlist
    by_name = {}
    for net in netlist.inputs:
        base = net.name.split("[")[0]
        by_name.setdefault(base, []).append(net)
    index_of = {id(net): pos for pos, net in enumerate(netlist.inputs)}
    current = [simulator.values[net] for net in netlist.inputs]
    matrix = _np.empty((len(vectors), len(current)), dtype=_np.uint8)
    for row, vector in enumerate(vectors):
        for name, value in vector.items():
            nets = by_name.get(name)
            if nets is None:
                raise KeyError("no input bus named %r" % name)
            if len(nets) == 1 and "[" not in nets[0].name:
                current[index_of[id(nets[0])]] = 1 if value else 0
            else:
                for net, bit in zip(nets, int_to_bits(value, len(nets))):
                    current[index_of[id(net)]] = bit
        matrix[row] = current
    return matrix


def _vector_fn(cell):
    """The batched evaluator for *cell* (library fast path or a
    ``frompyfunc`` wrap of the scalar truth function)."""
    fast = _VECTOR_FNS.get(cell.cell_type.name)
    if fast is not None:
        return fast
    wrapped = _np.frompyfunc(cell.cell_type.fn, cell.cell_type.n_inputs, 1)
    return lambda *cols: wrapped(*cols).astype(_np.uint8)


def run_batch(simulator, vectors):
    """Apply *vectors* to *simulator* in one vectorized pass.

    Parameters
    ----------
    simulator:
        A :class:`~repro.gatelevel.simulate.GateLevelSimulator` whose
        netlist is purely combinational.
    vectors:
        Sequence of bus-value dicts, each shaped like the keyword
        arguments of
        :meth:`~repro.gatelevel.simulate.GateLevelSimulator.step_ints`.

    Returns a :class:`BatchResult`; the simulator's committed state
    afterwards matches a scalar ``step_ints`` sweep exactly (see the
    module docstring for the energy tolerance).
    """
    if _np is None:            # pragma: no cover - numpy is baked in
        raise RuntimeError("NumPy is required for batched simulation")
    netlist = simulator.netlist
    if netlist.dffs:
        raise ValueError(
            "netlist %r has %d flip-flop(s); the batched path is "
            "combinational-only (sequential state serializes the "
            "batch) — use the scalar simulator" % (netlist.name,
                                                   len(netlist.dffs)))
    vectors = list(vectors)
    count = len(vectors)
    if not count:
        return BatchResult(0, 0.0, 0,
                           _np.zeros(0, dtype=_np.int64))

    matrix = _input_matrix(simulator, vectors)
    columns = {}
    for pos, net in enumerate(netlist.inputs):
        columns[id(net)] = matrix[:, pos]
    for cell in simulator._order:
        fn = _vector_fn(cell)
        columns[id(cell.output)] = fn(*(columns[id(net)]
                                        for net in cell.inputs))

    scale = simulator._energy_scale
    values = simulator.values
    toggle_counts = simulator.toggle_counts
    per_vector = _np.zeros(count, dtype=_np.int64)
    total_toggles = 0
    energy = 0.0
    for net in netlist.nets:
        column = columns.get(id(net))
        if column is None:
            continue            # undriven wire: never changes
        flips = _np.empty(count, dtype=bool)
        flips[0] = column[0] != values[net]
        _np.not_equal(column[1:], column[:-1], out=flips[1:])
        net_toggles = int(_np.count_nonzero(flips))
        if net_toggles:
            per_vector += flips
            total_toggles += net_toggles
            toggle_counts[net] += net_toggles
            energy += net.capacitance * scale * net_toggles
        values[net] = int(column[-1])

    simulator.total_energy += energy
    simulator.total_toggles += total_toggles
    simulator.steps += count
    return BatchResult(total_toggles, energy, count, per_vector)
